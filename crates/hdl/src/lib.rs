//! Fine-grained reference simulator for validating the cycle-approximate
//! STeP simulator (§4.5, Fig 8).
//!
//! The paper validates its simulator against a Bluespec SystemVerilog
//! implementation executed in the cycle-accurate BlueSim: the STeP graph
//! is transformed by *hierarchical tiling* (Appendix B.2, Fig 18) so that
//! every logical tile decomposes into the fabric's 16x16 BF16 physical
//! tiles, every node maps to a dedicated unit with initiation interval 1,
//! and the units are attached to a congestion-free interconnect with an
//! HBM2 subsystem behind them.
//!
//! We cannot run an HDL toolchain here, so this crate implements that
//! *mapped design* directly: a scoreboard simulation at physical-tile
//! granularity (one event per 16x16-tile operation per dedicated unit)
//! of the same SwiGLU workload, with dedicated loader/GEMM/activation/
//! accumulate/store units, per-unit II = 1, scratchpad ports at the
//! validation configuration's 256 B/cycle, and the shared
//! [`step_sim::hbm::Hbm`] timing model. Because the interconnect is
//! congestion-free and every unit is dedicated, completion times follow
//! the classic pipeline recurrence
//! `t[unit][op] = max(deps ready, unit free) + II`, which is exact for
//! this mapping — giving an independent, finer-grained reference to
//! correlate the coarse simulator against (the paper reports Pearson
//! r = 0.99; see EXPERIMENTS.md for ours).

use step_models::swiglu::SwigluCfg;
use step_sim::HbmConfig;
use step_sim::hbm::Hbm;

/// Physical compute-tile edge length (16x16 BF16 tiles, §4.5).
pub const PHYS: u64 = 16;

/// Hardware parameters of the reference design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefConfig {
    /// On-chip memory unit bandwidth in bytes/cycle (256 in §4.5).
    pub onchip_bytes_per_cycle: u64,
    /// HBM2 subsystem timing.
    pub hbm: HbmConfig,
}

impl Default for RefConfig {
    fn default() -> Self {
        RefConfig {
            onchip_bytes_per_cycle: 256,
            hbm: HbmConfig {
                bytes_per_cycle: 256,
                ..HbmConfig::default()
            },
        }
    }
}

/// Result of a reference simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefReport {
    /// Total execution time from first off-chip read to last off-chip
    /// write (the paper's measurement window).
    pub cycles: u64,
    /// Off-chip traffic in bytes.
    pub offchip_bytes: u64,
    /// Physical-tile operations executed.
    pub phys_tile_ops: u64,
}

/// A dedicated pipelined unit with initiation interval `ii`.
#[derive(Debug, Clone, Copy)]
struct Unit {
    free: u64,
    ii: u64,
}

impl Unit {
    fn new(ii: u64) -> Unit {
        Unit { free: 0, ii }
    }

    /// Starts an operation whose operands are ready at `deps`; returns
    /// its completion time.
    fn issue(&mut self, deps: u64) -> u64 {
        let start = self.free.max(deps);
        self.free = start + self.ii;
        self.free
    }
}

/// Simulates the mapped SwiGLU design at physical-tile granularity.
///
/// The schedule mirrors the STeP-level program: for each `[Tb, H]`
/// activation tile, the three weight matrices stream strip by strip; the
/// gate/up GEMMs, the fused SiLU-multiply, and the down-projection GEMM
/// with on-chip accumulation proceed at 16x16 granularity on dedicated
/// units.
///
/// # Panics
///
/// Panics if tile sizes are not multiples of the physical tile edge or do
/// not divide the layer dimensions.
pub fn simulate_swiglu(cfg: &SwigluCfg, hw: &RefConfig) -> RefReport {
    assert!(
        cfg.tile_batch.is_multiple_of(PHYS)
            && cfg.tile_inter.is_multiple_of(PHYS)
            && cfg.hidden.is_multiple_of(PHYS),
        "tile sizes must be multiples of the physical tile edge"
    );
    assert!(
        cfg.batch.is_multiple_of(cfg.tile_batch) && cfg.inter.is_multiple_of(cfg.tile_inter),
        "tiles must divide dims"
    );
    let mut hbm = Hbm::new(hw.hbm.clone());
    let phys_bytes = PHYS * PHYS * step_core::DTYPE_BYTES;
    // Scratchpad port: cycles to move one physical tile.
    let spad = phys_bytes.div_ceil(hw.onchip_bytes_per_cycle.max(1)).max(1);

    // Dedicated units (Fig 18 mapping): loaders stage into scratchpads;
    // GEMM/activation units run at II=1 per physical-tile op.
    let mut x_stage = Unit::new(spad);
    let mut w1_stage = Unit::new(spad);
    let mut w3_stage = Unit::new(spad);
    let mut w2_stage = Unit::new(spad);
    let mut gemm1 = Unit::new(1);
    let mut gemm3 = Unit::new(1);
    let mut act = Unit::new(1);
    let mut gemm2 = Unit::new(1);
    let mut accum = Unit::new(1);
    let mut store_port = Unit::new(spad);

    let (b, h, i) = (cfg.batch, cfg.hidden, cfg.inter);
    let (tb, ti) = (cfg.tile_batch, cfg.tile_inter);
    let (pb, ph, pi) = (tb / PHYS, h / PHYS, ti / PHYS);
    let x_base = 0u64;
    let w1_base = 0x100_0000u64;
    let w3_base = 0x200_0000u64;
    let w2_base = 0x300_0000u64;
    let out_base = 0x400_0000u64;

    let mut ops: u64 = 0;
    let mut first_read_issue = u64::MAX;
    let mut last_write_done = 0u64;
    let mut clock = 0u64; // issue clock for DMA requests
    let mut end = 0u64;

    for bt in 0..(b / tb) {
        // Stream the activation tile: one burst per physical tile.
        let mut x_ready = vec![0u64; (pb * ph) as usize];
        for p in 0..(pb * ph) {
            let addr = x_base + (bt * tb * h + p * PHYS * PHYS) * 2;
            first_read_issue = first_read_issue.min(clock);
            let arrive = hbm.access(addr, phys_bytes, clock, false);
            clock += 1;
            x_ready[p as usize] = x_stage.issue(arrive);
        }
        // Accumulator state per output physical tile of this batch tile.
        let mut acc_ready = vec![0u64; (pb * ph) as usize];
        for strip in 0..(i / ti) {
            // Stream W1/W3 strips [H, Ti] and the W2 strip [Ti, H].
            let mut w1_ready = vec![0u64; (ph * pi) as usize];
            let mut w3_ready = vec![0u64; (ph * pi) as usize];
            let mut w2_ready = vec![0u64; (pi * ph) as usize];
            for p in 0..(ph * pi) {
                let off = (strip * h * ti + p * PHYS * PHYS) * 2;
                let a1 = hbm.access(w1_base + off, phys_bytes, clock, false);
                let a3 = hbm.access(w3_base + off, phys_bytes, clock, false);
                clock += 1;
                w1_ready[p as usize] = w1_stage.issue(a1);
                w3_ready[p as usize] = w3_stage.issue(a3);
            }
            for p in 0..(pi * ph) {
                let off = (strip * ti * h + p * PHYS * PHYS) * 2;
                let a2 = hbm.access(w2_base + off, phys_bytes, clock, false);
                clock += 1;
                w2_ready[p as usize] = w2_stage.issue(a2);
            }
            // Gate/up GEMMs, activation, and down GEMM + accumulation.
            for bi in 0..pb {
                for ji in 0..pi {
                    let mut g1 = 0u64;
                    let mut g3 = 0u64;
                    for k in 0..ph {
                        let xr = x_ready[(bi * ph + k) as usize];
                        let w1r = w1_ready[(k * pi + ji) as usize];
                        let w3r = w3_ready[(k * pi + ji) as usize];
                        g1 = gemm1.issue(xr.max(w1r).max(g1));
                        g3 = gemm3.issue(xr.max(w3r).max(g3));
                        ops += 2;
                    }
                    let h_ready = act.issue(g1.max(g3));
                    ops += 1;
                    // Down projection: this [16,16] activation tile
                    // contributes to every output column tile.
                    for ko in 0..ph {
                        let w2r = w2_ready[(ji * ph + ko) as usize];
                        let partial = gemm2.issue(h_ready.max(w2r));
                        let slot = (bi * ph + ko) as usize;
                        acc_ready[slot] = accum.issue(partial.max(acc_ready[slot]));
                        ops += 2;
                    }
                }
            }
        }
        // Write the finished [Tb, H] output tile.
        for p in 0..(pb * ph) {
            let ready = store_port.issue(acc_ready[p as usize]);
            let addr = out_base + (bt * tb * h + p * PHYS * PHYS) * 2;
            let done = hbm.access(addr, phys_bytes, ready, true);
            last_write_done = last_write_done.max(done);
        }
        end = end.max(last_write_done);
    }

    let start = if first_read_issue == u64::MAX {
        0
    } else {
        first_read_issue
    };
    RefReport {
        cycles: end.saturating_sub(start),
        offchip_bytes: hbm.total_bytes(),
        phys_tile_ops: ops,
    }
}

/// Pearson correlation coefficient between two equally-long series.
///
/// # Panics
///
/// Panics if the series differ in length or are shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must align");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_matches_analytic_model() {
        let cfg = SwigluCfg::validation(32, 64);
        let r = simulate_swiglu(&cfg, &RefConfig::default());
        let reloads = cfg.batch / cfg.tile_batch;
        let w_bytes = 3 * cfg.hidden * cfg.inter * 2;
        let io = 2 * cfg.batch * cfg.hidden * 2;
        assert_eq!(r.offchip_bytes, reloads * w_bytes + io);
    }

    #[test]
    fn smaller_batch_tiles_cost_more() {
        let small = simulate_swiglu(&SwigluCfg::validation(16, 64), &RefConfig::default());
        let large = simulate_swiglu(&SwigluCfg::validation(64, 64), &RefConfig::default());
        assert!(small.cycles > large.cycles);
        assert!(small.offchip_bytes > large.offchip_bytes);
    }

    #[test]
    fn phys_ops_match_flop_structure() {
        let cfg = SwigluCfg::validation(64, 256);
        let r = simulate_swiglu(&cfg, &RefConfig::default());
        let macs = (cfg.batch / PHYS) * (cfg.hidden / PHYS) * (cfg.inter / PHYS);
        // gate + up + (down gemm + accum) + activation.
        let expected = 2 * macs + 2 * macs + (cfg.batch / PHYS) * (cfg.inter / PHYS);
        assert_eq!(r.phys_tile_ops, expected);
    }

    #[test]
    fn reference_is_deterministic() {
        let cfg = SwigluCfg::validation(32, 128);
        let a = simulate_swiglu(&cfg, &RefConfig::default());
        let b = simulate_swiglu(&cfg, &RefConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-9);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "physical tile")]
    fn rejects_sub_physical_tiles() {
        let _ = simulate_swiglu(&SwigluCfg::validation(8, 64), &RefConfig::default());
    }
}
