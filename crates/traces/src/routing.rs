//! MoE expert-routing traces (Appendix B.3).
//!
//! A router assigns each token to its top-`k` experts. Real routers are
//! imbalanced: popular experts receive multiples of the mean load. We
//! sample per-token expert sets with Gumbel-top-k over log-normal expert
//! propensities, where `skew` controls the imbalance (skew 0 = uniform).
//! The statistic the experiments consume is the per-expert token
//! histogram ("expert bin counts"), whose standard deviation the paper
//! uses to pick representative iterations.

use crate::rng::StdRng;
use crate::{std_dev, std_normal};

/// Configuration of an expert-routing sample.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingConfig {
    /// Total experts in the layer.
    pub experts: u32,
    /// Experts activated per token (top-k).
    pub top_k: u32,
    /// Tokens in the batch.
    pub batch: usize,
    /// Imbalance of expert popularity (0 = uniform; ~0.8 matches the
    /// "median skew" regime used in the paper's trace selection).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RoutingConfig {
    /// Mixtral-8x7B routing: 8 experts, top-2.
    pub fn mixtral(batch: usize, seed: u64) -> RoutingConfig {
        RoutingConfig {
            experts: 8,
            top_k: 2,
            batch,
            skew: 0.8,
            seed,
        }
    }

    /// Qwen3-30B-A3B routing: 128 experts, top-8.
    pub fn qwen3(batch: usize, seed: u64) -> RoutingConfig {
        RoutingConfig {
            experts: 128,
            top_k: 8,
            batch,
            skew: 0.8,
            seed,
        }
    }
}

/// A sampled routing: per token, the ascending list of activated experts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTrace {
    /// Per-token expert sets.
    pub assignments: Vec<Vec<u32>>,
    /// Total experts.
    pub experts: u32,
}

impl RoutingTrace {
    /// Tokens routed to each expert.
    pub fn histogram(&self) -> Vec<u32> {
        tokens_per_expert(&self.assignments, self.experts)
    }

    /// Standard deviation of the expert bin counts (the trace-selection
    /// statistic of Appendix B.3).
    pub fn bin_std_dev(&self) -> f64 {
        std_dev(
            &self
                .histogram()
                .iter()
                .map(|&x| x as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Number of experts receiving at least one token.
    pub fn active_experts(&self) -> usize {
        self.histogram().iter().filter(|&&c| c > 0).count()
    }
}

/// Counts tokens routed to each expert.
pub fn tokens_per_expert(assignments: &[Vec<u32>], experts: u32) -> Vec<u32> {
    let mut hist = vec![0u32; experts as usize];
    for token in assignments {
        for &e in token {
            hist[e as usize] += 1;
        }
    }
    hist
}

/// Samples an expert-routing trace.
///
/// # Panics
///
/// Panics if `top_k > experts` or `experts == 0`.
pub fn expert_routing(cfg: &RoutingConfig) -> RoutingTrace {
    assert!(cfg.experts > 0, "need at least one expert");
    assert!(
        cfg.top_k <= cfg.experts,
        "top_k {} exceeds experts {}",
        cfg.top_k,
        cfg.experts
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Fixed per-expert propensities for this layer.
    let logits: Vec<f64> = (0..cfg.experts)
        .map(|_| cfg.skew * std_normal(&mut rng))
        .collect();
    let assignments = (0..cfg.batch)
        .map(|_| {
            // Gumbel-top-k: the k largest (logit + Gumbel noise) indices
            // are a weighted sample without replacement.
            let mut keyed: Vec<(f64, u32)> = logits
                .iter()
                .enumerate()
                .map(|(e, &l)| {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let gumbel = -(-u.ln()).ln();
                    (l + gumbel, e as u32)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
            let mut picked: Vec<u32> = keyed[..cfg.top_k as usize]
                .iter()
                .map(|&(_, e)| e)
                .collect();
            picked.sort_unstable();
            picked
        })
        .collect();
    RoutingTrace {
        assignments,
        experts: cfg.experts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = expert_routing(&RoutingConfig::mixtral(64, 5));
        let b = expert_routing(&RoutingConfig::mixtral(64, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn each_token_gets_k_distinct_experts() {
        let t = expert_routing(&RoutingConfig::qwen3(128, 9));
        for token in &t.assignments {
            assert_eq!(token.len(), 8);
            let mut sorted = token.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "duplicate experts in {token:?}");
            assert!(token.iter().all(|&e| e < 128));
        }
    }

    #[test]
    fn histogram_sums_to_batch_times_k() {
        let t = expert_routing(&RoutingConfig::mixtral(100, 3));
        let total: u32 = t.histogram().iter().sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn skew_increases_bin_variance() {
        let uniform = expert_routing(&RoutingConfig {
            skew: 0.0,
            ..RoutingConfig::qwen3(2000, 11)
        });
        let skewed = expert_routing(&RoutingConfig {
            skew: 1.5,
            ..RoutingConfig::qwen3(2000, 11)
        });
        assert!(
            skewed.bin_std_dev() > uniform.bin_std_dev() * 1.5,
            "{} vs {}",
            skewed.bin_std_dev(),
            uniform.bin_std_dev()
        );
    }

    #[test]
    fn mixtral_batch64_activates_most_experts() {
        // §5.5: all Mixtral experts are active at batch 64.
        let t = expert_routing(&RoutingConfig::mixtral(64, 1));
        assert_eq!(t.active_experts(), 8);
    }

    #[test]
    fn qwen_small_batch_leaves_experts_idle() {
        // 128 experts, 64 tokens * top-8 = 512 slots: many experts idle
        // under skew — the headroom time-multiplexing exploits.
        let t = expert_routing(&RoutingConfig::qwen3(64, 1));
        assert!(t.active_experts() < 128);
    }
}
