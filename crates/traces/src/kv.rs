//! KV-cache length traces (Appendix B.3).
//!
//! During decode, each request in a batch attends over its own KV cache,
//! whose length is the prompt length plus tokens generated so far. The
//! paper batches requests from the AzureLLMInference trace and studies
//! three variability classes by per-batch KV-length standard deviation.
//! This module samples log-normal lengths with a class-controlled sigma —
//! matching the long-tailed shape of production prompt lengths.

use crate::rng::StdRng;
use crate::{std_dev, std_normal};

/// KV-length variability classes (Fig 14 / Fig 21's Low/Med/High).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variability {
    /// Tight batch: requests have similar KV lengths.
    Low,
    /// Matches the overall trace spread.
    Medium,
    /// Top-variability batches (long-tail mixes).
    High,
}

impl Variability {
    /// Log-normal sigma for the class.
    pub fn sigma(self) -> f64 {
        match self {
            Variability::Low => 0.15,
            Variability::Medium => 0.55,
            Variability::High => 1.05,
        }
    }

    /// All classes, for sweeps.
    pub fn all() -> [Variability; 3] {
        [Variability::Low, Variability::Medium, Variability::High]
    }
}

impl std::fmt::Display for Variability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variability::Low => write!(f, "low"),
            Variability::Medium => write!(f, "med"),
            Variability::High => write!(f, "high"),
        }
    }
}

/// Configuration of a KV-length batch sample.
#[derive(Debug, Clone, PartialEq)]
pub struct KvTraceConfig {
    /// Requests in the batch.
    pub batch: usize,
    /// Variability class.
    pub variability: Variability,
    /// Median KV length in tokens.
    pub median_len: f64,
    /// Clamp range in tokens.
    pub min_len: u32,
    /// Maximum length in tokens.
    pub max_len: u32,
    /// RNG seed (runs are fully deterministic).
    pub seed: u64,
}

impl Default for KvTraceConfig {
    fn default() -> Self {
        KvTraceConfig {
            batch: 64,
            variability: Variability::Medium,
            median_len: 1024.0,
            min_len: 32,
            max_len: 16_384,
            seed: 0xA22,
        }
    }
}

/// A sampled batch of KV lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvTrace {
    /// Per-request KV length in tokens.
    pub lengths: Vec<u32>,
}

impl KvTrace {
    /// Standard deviation of the lengths.
    pub fn std_dev(&self) -> f64 {
        std_dev(&self.lengths.iter().map(|&x| x as f64).collect::<Vec<_>>())
    }

    /// Sum of all lengths.
    pub fn total(&self) -> u64 {
        self.lengths.iter().map(|&x| x as u64).sum()
    }

    /// Maximum length.
    pub fn max(&self) -> u32 {
        self.lengths.iter().copied().max().unwrap_or(0)
    }
}

/// Samples a batch of KV lengths.
pub fn kv_lengths(cfg: &KvTraceConfig) -> KvTrace {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mu = cfg.median_len.max(1.0).ln();
    let sigma = cfg.variability.sigma();
    let lengths = (0..cfg.batch)
        .map(|_| {
            let x = (mu + sigma * std_normal(&mut rng)).exp();
            (x.round() as u32).clamp(cfg.min_len, cfg.max_len)
        })
        .collect();
    KvTrace { lengths }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(v: Variability, seed: u64) -> KvTraceConfig {
        KvTraceConfig {
            batch: 256,
            variability: v,
            seed,
            ..KvTraceConfig::default()
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = kv_lengths(&cfg(Variability::Medium, 1));
        let b = kv_lengths(&cfg(Variability::Medium, 1));
        assert_eq!(a, b);
        let c = kv_lengths(&cfg(Variability::Medium, 2));
        assert_ne!(a, c);
    }

    #[test]
    fn variability_classes_are_ordered() {
        let lo = kv_lengths(&cfg(Variability::Low, 3)).std_dev();
        let md = kv_lengths(&cfg(Variability::Medium, 3)).std_dev();
        let hi = kv_lengths(&cfg(Variability::High, 3)).std_dev();
        assert!(lo < md && md < hi, "{lo} {md} {hi}");
    }

    #[test]
    fn lengths_respect_clamps() {
        let t = kv_lengths(&KvTraceConfig {
            batch: 1000,
            variability: Variability::High,
            min_len: 100,
            max_len: 2000,
            ..KvTraceConfig::default()
        });
        assert!(t.lengths.iter().all(|&l| (100..=2000).contains(&l)));
    }

    #[test]
    fn median_is_near_configured() {
        let mut t = kv_lengths(&KvTraceConfig {
            batch: 4001,
            variability: Variability::Low,
            median_len: 1024.0,
            ..KvTraceConfig::default()
        });
        t.lengths.sort_unstable();
        let median = t.lengths[t.lengths.len() / 2] as f64;
        assert!((median - 1024.0).abs() / 1024.0 < 0.1, "median {median}");
    }
}
