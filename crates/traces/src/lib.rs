//! Deterministic synthetic workload traces.
//!
//! The paper's experiments are driven by two datasets:
//!
//! 1. **KV-cache lengths** sampled from the AzureLLMInference production
//!    trace \[32\], where batches are classified by the standard deviation
//!    of their per-request KV lengths (low/medium/high variability,
//!    Appendix B.3).
//! 2. **Expert-routing traces** from running Qwen3-30B-A3B and
//!    Mixtral-8x7B on the HH-RLHF requests \[10\], selecting iterations
//!    whose expert-bin-count standard deviation is near the average.
//!
//! Neither dataset is redistributable here, so this crate provides
//! seeded synthetic equivalents that control exactly the statistics the
//! experiments depend on: the *variance class* of KV lengths (Fig 14/15/
//! 21) and the *per-expert token histogram skew* (Fig 9/10/12/13). See
//! DESIGN.md ("Substitutions") for the preservation argument.
//!
//! # Serving workloads
//!
//! On top of the per-batch samplers, [`arrivals`] generates whole
//! *request-arrival traces* for the continuous-batching serving driver
//! (`step_models::serving`): seeded Poisson or duty-cycled bursty
//! arrival times in simulated cycles, with log-normal prompt and output
//! lengths per request. The seeding contract is the same as the rest of
//! the crate — a trace is a pure function of its [`ArrivalConfig`], so
//! same-seed serving runs replay the identical workload bit for bit
//! (`tests/prop_arrivals.rs` pins determinism, empirical rates, length
//! bounds, and the bursty duty cycle).

pub mod arrivals;
pub mod kv;
pub mod rng;
pub mod routing;

pub use arrivals::{ArrivalConfig, ArrivalPattern, LenDist, Request, RequestTrace, arrival_trace};
pub use kv::{KvTrace, KvTraceConfig, Variability, kv_lengths};
pub use routing::{RoutingConfig, RoutingTrace, expert_routing, tokens_per_expert};

use rng::StdRng;

/// A standard normal sample via Box–Muller (avoids extra dependencies).
pub(crate) fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Population standard deviation of a sequence.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_normal_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| std_normal(&mut rng)).collect();
        let sd = std_dev(&xs);
        assert!((sd - 1.0).abs() < 0.05, "sd = {sd}");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn std_dev_of_constants_is_zero() {
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
