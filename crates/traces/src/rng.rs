//! Minimal deterministic PRNG.
//!
//! The container this repo builds in has no access to crates.io, so the
//! trace samplers use a local xoshiro256++ generator (Blackman & Vigna)
//! seeded through SplitMix64 instead of the `rand` crate. Determinism per
//! seed is part of the crate contract: traces are reproducible inputs to
//! the paper's experiments, not cryptographic material.

/// A seedable PRNG with the small API surface the samplers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Expands `seed` into the full generator state via SplitMix64, as
    /// the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: std::array::from_fn(|_| splitmix64(&mut sm)),
        }
    }

    /// The next 64 uniform bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_stays_in_unit_interval_and_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..10_000).map(|_| r.next_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
        }
    }
}
