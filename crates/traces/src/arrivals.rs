//! Seeded request-arrival traces for the continuous-batching serving
//! driver.
//!
//! The paper's figures step a *fixed* batch through decode; a serving
//! system sees a churning one — requests arrive over time, are admitted
//! into batch slots, prefill, decode, and leave. This module generates
//! the arrival side of that workload as a deterministic, seeded trace:
//!
//! - **Poisson** arrivals: exponentially distributed inter-arrival times
//!   around a configured mean — the classic open-loop load model;
//! - **Bursty** arrivals: time alternates between *burst* windows (all
//!   the traffic, compressed by the duty cycle so the long-run rate
//!   matches the configured mean) and *idle* windows with no arrivals —
//!   the diurnal/batchy shape production traces show;
//! - per-request **prompt** and **output** lengths from independent
//!   log-normal distributions with hard clamps (the same long-tailed
//!   family as [`crate::kv_lengths`]).
//!
//! All times are in simulated cycles — the same clock the simulator
//! reports — so a serving driver can merge arrivals with simulated
//! iteration boundaries without unit conversion. Determinism per seed is
//! part of the contract: the full trace is a pure function of
//! [`ArrivalConfig`], byte for byte, across platforms and reruns
//! (`tests/prop_arrivals.rs` checks it).

use crate::rng::StdRng;
use crate::std_normal;

/// The arrival-time process of a request trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Poisson process: i.i.d. exponential inter-arrival times.
    Poisson,
    /// Duty-cycled bursts: arrivals only occur inside periodic burst
    /// windows; inter-arrival times inside a burst are compressed by the
    /// duty cycle `burst / (burst + idle)` so the *long-run* mean rate
    /// still matches [`ArrivalConfig::mean_interarrival`]. An arrival
    /// that would land in an idle window is deferred to the next burst
    /// start.
    Bursty {
        /// Burst window length in cycles.
        burst: u64,
        /// Idle window length in cycles (no arrivals).
        idle: u64,
    },
}

/// A log-normal token-length distribution with hard clamps.
#[derive(Debug, Clone, PartialEq)]
pub struct LenDist {
    /// Median length in tokens (the log-normal's `exp(mu)`).
    pub median: f64,
    /// Log-normal sigma (0 = constant `median`).
    pub sigma: f64,
    /// Minimum length in tokens (inclusive clamp).
    pub min: u32,
    /// Maximum length in tokens (inclusive clamp).
    pub max: u32,
}

impl LenDist {
    /// A distribution with the given median and sigma, clamped to
    /// `[min, max]`.
    pub fn new(median: f64, sigma: f64, min: u32, max: u32) -> LenDist {
        LenDist {
            median,
            sigma,
            min,
            max,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        let x = (self.median.max(1.0).ln() + self.sigma * std_normal(rng)).exp();
        (x.round() as u32).clamp(self.min, self.max)
    }
}

/// Configuration of a request-arrival trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalConfig {
    /// Requests to generate.
    pub requests: usize,
    /// Mean inter-arrival time in cycles (offered load is its inverse).
    pub mean_interarrival: f64,
    /// Arrival-time process.
    pub pattern: ArrivalPattern,
    /// Prompt-length distribution.
    pub prompt: LenDist,
    /// Output-length distribution (tokens to generate; min is clamped to
    /// at least 1 — every request produces at least its first token).
    pub output: LenDist,
    /// RNG seed (the trace is a pure function of this config).
    pub seed: u64,
}

impl Default for ArrivalConfig {
    fn default() -> ArrivalConfig {
        ArrivalConfig {
            requests: 64,
            mean_interarrival: 500_000.0,
            pattern: ArrivalPattern::Poisson,
            prompt: LenDist::new(512.0, 0.55, 16, 8192),
            output: LenDist::new(64.0, 0.55, 1, 1024),
            seed: 0xA221,
        }
    }
}

/// One request of a serving trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Trace-order id (also the arrival order).
    pub id: u32,
    /// Arrival time in cycles.
    pub arrival: u64,
    /// Prompt length in tokens (prefill work).
    pub prompt: u32,
    /// Output length in tokens (decode iterations; at least 1).
    pub output: u32,
}

impl Request {
    /// Final KV context length when the request completes:
    /// prompt plus every generated token.
    pub fn final_ctx(&self) -> u32 {
        self.prompt + self.output
    }
}

/// A sampled request-arrival trace, sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Requests in arrival order.
    pub requests: Vec<Request>,
}

impl RequestTrace {
    /// Arrival span in cycles (last minus first arrival).
    pub fn span(&self) -> u64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) => b.arrival - a.arrival,
            _ => 0,
        }
    }

    /// Empirical mean inter-arrival time in cycles.
    pub fn mean_interarrival(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        self.span() as f64 / (self.requests.len() - 1) as f64
    }

    /// Offered load in requests per million cycles.
    pub fn offered_per_mcycle(&self) -> f64 {
        let m = self.mean_interarrival();
        if m == 0.0 { 0.0 } else { 1e6 / m }
    }

    /// The admitted-set envelope: the largest KV context any request ever
    /// reaches (prompt + output). A serving driver provisions its
    /// attention plan's dispatch queues for this bound so one plan serves
    /// every iteration through source rebinding.
    pub fn max_ctx(&self) -> u32 {
        self.requests
            .iter()
            .map(Request::final_ctx)
            .max()
            .unwrap_or(1)
    }

    /// Total prompt tokens across the trace.
    pub fn total_prompt_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.prompt as u64).sum()
    }

    /// Total output tokens across the trace.
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output as u64).sum()
    }
}

/// Samples a request-arrival trace.
///
/// # Panics
///
/// Panics if `mean_interarrival` is not positive, or if a bursty pattern
/// has a zero-length burst window.
pub fn arrival_trace(cfg: &ArrivalConfig) -> RequestTrace {
    assert!(
        cfg.mean_interarrival > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Under a duty cycle, in-burst gaps are compressed so the long-run
    // rate matches the configured mean.
    let duty = match cfg.pattern {
        ArrivalPattern::Poisson => 1.0,
        ArrivalPattern::Bursty { burst, idle } => {
            assert!(burst > 0, "burst window must be non-empty");
            burst as f64 / (burst + idle) as f64
        }
    };
    let mut t = 0.0f64;
    let mut requests = Vec::with_capacity(cfg.requests);
    for id in 0..cfg.requests {
        let u = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() * cfg.mean_interarrival * duty;
        if let ArrivalPattern::Bursty { burst, idle } = cfg.pattern {
            let period = (burst + idle) as f64;
            let pos = t.rem_euclid(period);
            if pos >= burst as f64 {
                // Defer an idle-window arrival to the next burst start.
                t += period - pos;
            }
        }
        // Round to nearest rather than truncate: `t as u64` biases every
        // arrival low by half a cycle on average, which a long trace
        // compounds into a measurable offered-load overstatement.
        let mut arrival = t.round();
        if let ArrivalPattern::Bursty { burst, idle } = cfg.pattern {
            // Rounding up can push an in-burst sample across the burst
            // end (t = burst - 0.3 rounds to the idle start); fall back
            // to floor, which provably stays inside the burst window:
            // burst starts are integral multiples of the period, so
            // `t >= start` implies `floor(t) >= start`, and
            // `t < start + burst` implies `floor(t) <= start + burst - 1`.
            // Monotonicity survives the mixed rounding: floor and round
            // are each monotone, and a floor fallback only fires when the
            // rounded value sits in idle — where no kept rounded arrival
            // can sit — so no later arrival can land before an earlier one.
            let period = (burst + idle) as f64;
            if arrival.rem_euclid(period) >= burst as f64 {
                arrival = t.floor();
            }
        }
        let prompt = cfg.prompt.sample(&mut rng);
        let output = cfg.output.sample(&mut rng).max(1);
        requests.push(Request {
            id: id as u32,
            arrival: arrival as u64,
            prompt,
            output,
        });
    }
    RequestTrace { requests }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        let cfg = ArrivalConfig::default();
        let a = arrival_trace(&cfg);
        let b = arrival_trace(&cfg);
        assert_eq!(a, b);
        assert!(a.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let c = arrival_trace(&ArrivalConfig { seed: 9, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn outputs_are_at_least_one_token() {
        let t = arrival_trace(&ArrivalConfig {
            output: LenDist::new(1.0, 2.0, 0, 8),
            ..ArrivalConfig::default()
        });
        assert!(t.requests.iter().all(|r| r.output >= 1));
    }

    #[test]
    fn bursty_never_lands_in_idle_windows() {
        let cfg = ArrivalConfig {
            requests: 500,
            mean_interarrival: 1000.0,
            pattern: ArrivalPattern::Bursty {
                burst: 20_000,
                idle: 60_000,
            },
            ..ArrivalConfig::default()
        };
        let t = arrival_trace(&cfg);
        for r in &t.requests {
            assert!(r.arrival % 80_000 < 20_000, "arrival {} in idle", r.arrival);
        }
    }
}
