//! Seeded property tests for the request-arrival generators.
//!
//! No external property-testing crate (the container has no crates.io
//! access), so the "properties" run over a deterministic seed sweep —
//! every failure reproduces exactly from the printed seed.

use step_traces::arrivals::{ArrivalConfig, ArrivalPattern, LenDist, RequestTrace, arrival_trace};

fn cfg(seed: u64) -> ArrivalConfig {
    ArrivalConfig {
        requests: 2000,
        mean_interarrival: 10_000.0,
        pattern: ArrivalPattern::Poisson,
        prompt: LenDist::new(512.0, 0.55, 16, 4096),
        output: LenDist::new(32.0, 0.55, 1, 256),
        seed,
    }
}

#[test]
fn trace_is_a_pure_function_of_its_config() {
    for seed in 0..24u64 {
        let a = arrival_trace(&cfg(seed));
        let b = arrival_trace(&cfg(seed));
        assert_eq!(a, b, "seed {seed} not deterministic");
    }
    // Distinct seeds produce distinct traces.
    assert_ne!(arrival_trace(&cfg(1)), arrival_trace(&cfg(2)));
}

#[test]
fn arrivals_are_nondecreasing_with_ids_in_order() {
    for seed in 0..24u64 {
        let t = arrival_trace(&cfg(seed));
        assert!(
            t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "seed {seed}: arrivals out of order"
        );
        assert!(
            t.requests.iter().enumerate().all(|(i, r)| r.id == i as u32),
            "seed {seed}: ids out of order"
        );
    }
}

#[test]
fn poisson_empirical_rate_matches_configured() {
    for seed in 0..12u64 {
        let t = arrival_trace(&cfg(seed));
        let mean = t.mean_interarrival();
        // 2000 exponential samples: the sample mean concentrates well
        // within 10% of the configured mean.
        assert!(
            (mean - 10_000.0).abs() / 10_000.0 < 0.10,
            "seed {seed}: empirical mean inter-arrival {mean}"
        );
    }
}

#[test]
fn lengths_respect_their_bounds() {
    for seed in 0..24u64 {
        // Wide sigma so the clamps actually engage.
        let t = arrival_trace(&ArrivalConfig {
            prompt: LenDist::new(256.0, 2.0, 32, 1024),
            output: LenDist::new(8.0, 2.0, 1, 64),
            ..cfg(seed)
        });
        for r in &t.requests {
            assert!(
                (32..=1024).contains(&r.prompt),
                "seed {seed}: prompt {} out of bounds",
                r.prompt
            );
            assert!(
                (1..=64).contains(&r.output),
                "seed {seed}: output {} out of bounds",
                r.output
            );
        }
    }
}

#[test]
fn output_min_is_clamped_to_one_token() {
    let t = arrival_trace(&ArrivalConfig {
        output: LenDist::new(1.0, 1.5, 0, 16),
        ..cfg(5)
    });
    assert!(t.requests.iter().all(|r| r.output >= 1));
}

fn bursty(seed: u64, burst: u64, idle: u64) -> (RequestTrace, u64, u64) {
    let t = arrival_trace(&ArrivalConfig {
        pattern: ArrivalPattern::Bursty { burst, idle },
        mean_interarrival: 2_000.0,
        ..cfg(seed)
    });
    (t, burst, idle)
}

#[test]
fn bursty_traces_honor_the_duty_cycle() {
    for seed in 0..12u64 {
        let (t, burst, idle) = bursty(seed, 50_000, 150_000);
        let period = burst + idle;
        // Every arrival lands inside a burst window.
        for r in &t.requests {
            assert!(
                r.arrival % period < burst,
                "seed {seed}: arrival {} fell in an idle window",
                r.arrival
            );
        }
        // The long-run rate still tracks the configured mean: in-burst
        // gaps are compressed by the duty cycle, and deferrals only shift
        // arrivals forward by less than one period each.
        let mean = t.mean_interarrival();
        assert!(
            (mean - 2_000.0).abs() / 2_000.0 < 0.25,
            "seed {seed}: bursty long-run mean inter-arrival {mean}"
        );
    }
}

#[test]
fn bursty_matches_poisson_when_idle_is_zero() {
    // A zero idle window is a degenerate burst: the duty cycle is 1 and
    // no arrival is ever deferred, so the process is exactly Poisson.
    for seed in 0..6u64 {
        let p = arrival_trace(&ArrivalConfig {
            mean_interarrival: 2_000.0,
            ..cfg(seed)
        });
        let (b, _, _) = bursty(seed, 10_000, 0);
        assert_eq!(p, b, "seed {seed}");
    }
}

/// Poisson arrival times are the continuous sample rounded to the
/// *nearest* cycle, not truncated. The test replays the generator's RNG
/// schedule (one exponential draw, then two Box–Muller pairs per
/// request) and checks every emitted arrival against `t.round()`;
/// truncation (`t as u64`) would bias low by half a cycle on average and
/// fail on roughly every other request.
#[test]
fn poisson_arrivals_round_to_nearest_cycle() {
    use step_traces::rng::StdRng;
    for seed in 0..12u64 {
        let c = cfg(seed);
        let t = arrival_trace(&c);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clock = 0.0f64;
        let mut rounded_up = 0usize;
        for r in &t.requests {
            let u = rng.gen_range(f64::EPSILON..1.0);
            clock += -u.ln() * c.mean_interarrival;
            assert_eq!(
                r.arrival,
                clock.round() as u64,
                "seed {seed} id {}: arrival not round-to-nearest",
                r.id
            );
            rounded_up += (clock.round() as u64 != clock as u64) as usize;
            // Consume the prompt and output draws (two Box–Muller
            // uniforms each) to stay in step with the generator.
            for _ in 0..4 {
                rng.gen_range(0.0..1.0);
            }
        }
        // The check must be able to distinguish rounding from
        // truncation: about half the samples should round up.
        assert!(
            rounded_up > t.requests.len() / 4,
            "seed {seed}: only {rounded_up} arrivals rounded up"
        );
    }
}

/// Round-to-nearest at the burst-end boundary: a sample just inside the
/// burst must not round *out* of it. Tiny windows and sub-window mean
/// gaps make arrivals dense across every boundary, so a naive
/// `t.round()` (no floor fallback) lands in idle many times per seed.
#[test]
fn bursty_burst_end_boundary_never_rounds_into_idle() {
    for seed in 0..24u64 {
        let t = arrival_trace(&ArrivalConfig {
            requests: 4000,
            mean_interarrival: 2.0,
            pattern: ArrivalPattern::Bursty { burst: 7, idle: 13 },
            ..cfg(seed)
        });
        for r in &t.requests {
            assert!(
                r.arrival % 20 < 7,
                "seed {seed}: arrival {} rounded into idle",
                r.arrival
            );
        }
        assert!(
            t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "seed {seed}: mixed round/floor broke monotonicity"
        );
    }
}

#[test]
fn envelope_helpers_are_consistent() {
    for seed in 0..12u64 {
        let t = arrival_trace(&cfg(seed));
        let max_ctx = t
            .requests
            .iter()
            .map(|r| r.prompt + r.output)
            .max()
            .unwrap();
        assert_eq!(t.max_ctx(), max_ctx, "seed {seed}");
        assert_eq!(
            t.total_prompt_tokens(),
            t.requests.iter().map(|r| r.prompt as u64).sum::<u64>()
        );
        assert_eq!(
            t.total_output_tokens(),
            t.requests.iter().map(|r| r.output as u64).sum::<u64>()
        );
        assert!(t.offered_per_mcycle() > 0.0);
    }
}
