//! Cooperative cancellation for in-flight runs.
//!
//! A [`CancelToken`] is a cloneable flag shared between a driver and a
//! run. The engine polls it in the scheduler wave loop (next to the
//! `max_rounds` budget check) and fails the run with
//! [`step_core::StepError::Cancelled`] once it is raised. Cancellation
//! is *cooperative and nondeterministic*: which wave observes the flag
//! depends on when the canceller raised it, so — like wall-clock
//! deadlines — it is an operational escape hatch, never part of any
//! determinism check. A token raised before the run starts cancels it
//! on the first wave, which *is* reproducible and what the tests pin.

use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};

/// A shared flag a driver raises to stop an in-flight run.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unraised token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raise the flag. Idempotent; wakes nothing by itself — runs
    /// observe it at their next scheduler wave.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called (on this token or any
    /// clone of it)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
    }
}
