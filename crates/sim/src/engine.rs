//! The simulation engine: event-driven scheduler, termination, and
//! reporting.
//!
//! The scheduler is a ready-set loop over *waves* (generations of the
//! wake list) rather than a round-robin poll of every node. A node is
//! fired only when one of its channels signals that progress may be
//! possible: a token arrived for it, one of its full output queues freed
//! a slot, or a downstream consumer closed. Within a wave, nodes fire in
//! index order, and a wake targeting a node ahead of the sweep joins the
//! current wave while one behind it joins the next — which reproduces
//! the round-robin engine's host execution order exactly, minus the
//! no-op fires, so cycle and traffic results are bit-identical while
//! large mostly-idle graphs (MoE with many experts) schedule in time
//! proportional to actual work.
//!
//! Time advances the same way it always did: nodes only consume tokens
//! ready within the current `horizon` window, and when the wake list
//! drains with work still pending the engine advances the horizon
//! directly to the earliest pending channel event and wakes exactly the
//! readers whose heads became visible.

use crate::arena::{Arena, BackingStore};
use crate::channel::{Channel, event};
use crate::config::SimConfig;
use crate::hbm::Hbm;
use crate::nodes::{self, Ctx, SimNode};
use crate::stats::NodeStats;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use step_core::error::{Result, StepError};
use step_core::graph::{Graph, NodeId};
use step_core::token::Token;

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Total execution time in cycles (latest node completion or HBM
    /// transfer).
    pub cycles: u64,
    /// Total off-chip traffic in bytes (measured at the HBM node).
    pub offchip_traffic: u64,
    /// Off-chip bytes read.
    pub offchip_read: u64,
    /// Off-chip bytes written.
    pub offchip_write: u64,
    /// Measured on-chip memory requirement in bytes (per-node §4.2
    /// equations with runtime-observed dynamic quantities).
    pub onchip_memory: u64,
    /// Peak bytes resident in the buffer arena.
    pub arena_peak: u64,
    /// Total FLOPs executed by higher-order operators.
    pub total_flops: u64,
    /// Total compute bandwidth allocated across compute nodes
    /// (FLOPs/cycle).
    pub allocated_compute: u64,
    /// Peak off-chip bandwidth (bytes/cycle) for utilization.
    pub offchip_peak_bw: u64,
    /// Scheduler waves executed (generations of the wake list; the
    /// round-robin engine's equivalent was full passes over all nodes).
    pub rounds: u64,
    /// Per-node statistics, indexed like `graph.nodes()`.
    pub node_stats: Vec<NodeStats>,
    /// Recorded token streams per recording sink.
    pub sinks: BTreeMap<NodeId, Vec<Token>>,
}

impl SimReport {
    /// Fraction of allocated compute actually used:
    /// `FLOPs / (allocated FLOPs/cycle × cycles)` (Fig 12).
    pub fn compute_utilization(&self) -> f64 {
        if self.allocated_compute == 0 || self.cycles == 0 {
            0.0
        } else {
            self.total_flops as f64 / (self.allocated_compute as f64 * self.cycles as f64)
        }
    }

    /// Total `fire` invocations across all nodes — the work the scheduler
    /// actually did. Round-robin polling made this O(nodes × rounds);
    /// event-driven scheduling keeps it proportional to progress.
    pub fn total_fires(&self) -> u64 {
        self.node_stats.iter().map(|s| s.fires).sum()
    }

    /// Total fires that made no progress (wasted polls).
    pub fn idle_fires(&self) -> u64 {
        self.node_stats.iter().map(|s| s.idle_fires).sum()
    }

    /// Fraction of peak off-chip bandwidth used (Fig 13).
    pub fn offchip_bw_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.offchip_traffic as f64 / (self.offchip_peak_bw as f64 * self.cycles as f64)
        }
    }

    /// The recorded tokens of the sink created by
    /// [`step_core::graph::GraphBuilder::sink`].
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the node did not record.
    pub fn sink_tokens(&self, id: NodeId) -> Result<&[Token]> {
        self.sinks
            .get(&id)
            .map(|v| v.as_slice())
            .ok_or_else(|| StepError::Exec(format!("node {id:?} is not a recording sink")))
    }
}

/// A configured simulation of one STeP graph.
pub struct Simulation {
    graph: Graph,
    cfg: SimConfig,
    channels: Vec<Channel>,
    nodes: Vec<Box<dyn SimNode>>,
    hbm: Hbm,
    arena: Arena,
    store: BackingStore,
}

impl Simulation {
    /// Builds executors and channels for `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if an operator cannot be executed.
    pub fn new(graph: Graph, cfg: SimConfig) -> Result<Simulation> {
        let channels: Vec<Channel> = graph
            .edges()
            .iter()
            .map(|e| Channel::new(e.capacity, cfg.channel_latency))
            .collect();
        let nodes: Result<Vec<_>> = (0..graph.nodes().len())
            .map(|i| nodes::build_node(&graph, i))
            .collect();
        let hbm = Hbm::new(cfg.hbm.clone());
        Ok(Simulation {
            graph,
            cfg,
            channels,
            nodes: nodes?,
            hbm,
            arena: Arena::new(),
            store: BackingStore::new(),
        })
    }

    /// Registers a dense tensor in off-chip memory so loads return real
    /// data (functional runs).
    pub fn preload(&mut self, base_addr: u64, rows: usize, cols: usize, data: Vec<f32>) {
        self.store.register(base_addr, rows, cols, data);
    }

    /// Reads back a preloaded/stored tensor.
    pub fn offchip_tensor(&self, base_addr: u64) -> Option<(usize, usize, Vec<f32>)> {
        self.store
            .tensor(base_addr)
            .map(|(r, c, d)| (r, c, d.to_vec()))
    }

    /// Runs the graph to completion.
    ///
    /// The scheduler keeps a wake list: after each fire it drains the
    /// fired node's channel events (a node only mutates channels it is
    /// connected to) and wakes the endpoint that can now progress —
    /// readers of channels that received tokens, writers of channels
    /// that freed a slot or closed. When the list drains with nodes
    /// still unfinished, the horizon advances directly to the earliest
    /// pending channel event, waking the readers whose heads became
    /// visible; if no event is pending the graph is deadlocked.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Deadlock`] if the graph stops making progress
    /// before finishing, or the first functional error raised by a node.
    pub fn run(mut self) -> Result<SimReport> {
        let n = self.nodes.len();
        // Edge endpoint tables: who to wake when a channel changes.
        let mut reader_of = vec![u32::MAX; self.channels.len()];
        let mut writer_of = vec![u32::MAX; self.channels.len()];
        for (i, node) in self.graph.nodes().iter().enumerate() {
            for e in &node.inputs {
                reader_of[e.0 as usize] = i as u32;
            }
            for e in &node.outputs {
                writer_of[e.0 as usize] = i as u32;
            }
        }

        let mut rounds: u64 = 0;
        let mut horizon: u64 = self.cfg.horizon_step;
        let mut undone = self.nodes.iter().filter(|nd| !nd.done()).count();

        // The current wave, swept in node-index order (a min-heap so
        // wakes ahead of the sweep join it), and the next wave.
        let mut wave: BinaryHeap<Reverse<usize>> = (0..n).map(Reverse).collect();
        let mut in_wave = vec![true; n];
        let mut next: Vec<usize> = Vec::new();
        let mut in_next = vec![false; n];

        // Time calendar: `(ready_time, edge)` for channel heads beyond
        // the horizon, maintained lazily. Invariant: every channel whose
        // head is beyond the horizon has an entry with exactly its head
        // ready time (per-channel ready times strictly increase, so a
        // mismatched entry is stale and the real head has its own).
        let mut calendar: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();

        while undone > 0 {
            rounds += 1;
            if rounds > self.cfg.max_rounds {
                return Err(StepError::Exec(format!(
                    "exceeded {} scheduler rounds",
                    self.cfg.max_rounds
                )));
            }
            while let Some(Reverse(i)) = wave.pop() {
                in_wave[i] = false;
                if self.nodes[i].done() {
                    continue;
                }
                let mut ctx = Ctx {
                    channels: &mut self.channels,
                    hbm: &mut self.hbm,
                    arena: &mut self.arena,
                    store: &mut self.store,
                    cfg: &self.cfg,
                    horizon,
                };
                let p = self.nodes[i].fire(&mut ctx).map_err(|e| {
                    let g = &self.graph.nodes()[i];
                    let label = if g.label.is_empty() {
                        g.op.name().to_string()
                    } else {
                        format!("{} ({})", g.op.name(), g.label)
                    };
                    StepError::Exec(format!("node {i} [{label}]: {e}"))
                })?;
                let g_node = &self.graph.nodes()[i];
                if p {
                    // Publish a conservative lower bound on this node's
                    // future token times so arrival-order merges can
                    // commit safely.
                    let t = self.nodes[i].local_time();
                    for e in &g_node.outputs {
                        self.channels[e.0 as usize].raise_floor(t);
                    }
                }
                // Drain this node's channel events into wakes. A wake
                // ahead of the sweep joins the current wave (round-robin
                // would reach it later this round); one behind joins the
                // next wave.
                let mut wake = |j: u32| {
                    let j = j as usize;
                    if j == u32::MAX as usize {
                        return;
                    }
                    if j > i {
                        if !in_wave[j] {
                            in_wave[j] = true;
                            wave.push(Reverse(j));
                        }
                    } else if !in_next[j] {
                        in_next[j] = true;
                        next.push(j);
                    }
                };
                for e in g_node.inputs.iter().chain(g_node.outputs.iter()) {
                    let idx = e.0 as usize;
                    let ev = self.channels[idx].take_events();
                    if ev == 0 {
                        continue;
                    }
                    if ev & (event::FREED | event::CLOSED) != 0 {
                        wake(writer_of[idx]);
                    }
                    if ev & event::SRC_FINISHED != 0 {
                        wake(reader_of[idx]);
                    }
                    if ev & (event::ENQUEUED | event::FREED) != 0 {
                        // A new head may have appeared (token enqueued on
                        // an empty queue, or the old head popped). Wake
                        // the reader if it is visible in the current
                        // window; otherwise file it in the calendar for
                        // the horizon advance.
                        if let Some(&(ready, _)) = self.channels[idx].peek() {
                            if ready <= horizon {
                                if ev & event::ENQUEUED != 0 {
                                    wake(reader_of[idx]);
                                }
                            } else {
                                calendar.push(Reverse((ready, idx)));
                            }
                        }
                    }
                }
                if self.nodes[i].done() {
                    undone -= 1;
                    if undone == 0 {
                        break;
                    }
                } else if p && !in_next[i] {
                    // Progress with work possibly remaining (budget cap,
                    // more queued input): poll again next wave.
                    in_next[i] = true;
                    next.push(i);
                }
            }
            if undone == 0 {
                break;
            }
            if next.is_empty() {
                // Quiescent within the current window: advance the horizon
                // to the next pending channel event and wake the readers
                // whose heads just became visible. The first valid
                // calendar entry is the earliest beyond-horizon head;
                // every valid entry within a window of it wakes too.
                let mut new_horizon: Option<u64> = None;
                while let Some(&Reverse((t, idx))) = calendar.peek() {
                    if new_horizon.is_some_and(|h| t > h) {
                        break;
                    }
                    calendar.pop();
                    // Stale entries: the head was consumed (its channel's
                    // current head, if any, carries a later entry) or is
                    // already visible.
                    let live = self.channels[idx]
                        .peek()
                        .is_some_and(|&(ready, _)| ready == t && ready > horizon);
                    if !live {
                        continue;
                    }
                    if new_horizon.is_none() {
                        new_horizon = Some(t + self.cfg.horizon_step);
                    }
                    let j = reader_of[idx] as usize;
                    if j != u32::MAX as usize && !in_next[j] {
                        in_next[j] = true;
                        next.push(j);
                    }
                }
                let Some(h) = new_horizon else {
                    return Err(self.deadlock_error());
                };
                horizon = h;
            }
            for j in next.drain(..) {
                in_next[j] = false;
                if !in_wave[j] {
                    in_wave[j] = true;
                    wave.push(Reverse(j));
                }
            }
        }
        Ok(self.into_report(rounds))
    }

    fn deadlock_error(&self) -> StepError {
        let blocked: Vec<String> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, nd)| !nd.done())
            .map(|(i, nd)| {
                let g = &self.graph.nodes()[i];
                let why = nd
                    .blocked_on()
                    .map_or_else(String::new, |b| format!(" ({b})"));
                format!("{i}:{} t={}{why}", g.op.name(), nd.local_time())
            })
            .collect();
        StepError::Deadlock(format!(
            "no progress with {} nodes blocked: {}",
            blocked.len(),
            blocked.join(", ")
        ))
    }

    fn into_report(self, rounds: u64) -> SimReport {
        let node_stats: Vec<NodeStats> = self.nodes.iter().map(|n| n.stats().clone()).collect();
        let cycles = node_stats
            .iter()
            .map(|s| s.finish_time)
            .max()
            .unwrap_or(0)
            .max(self.hbm.last_completion());
        let mut sinks = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(toks) = n.recorded() {
                sinks.insert(NodeId(i as u32), toks.to_vec());
            }
        }
        let onchip_memory = node_stats.iter().map(|s| s.onchip_bytes).sum();
        let total_flops = node_stats.iter().map(|s| s.flops).sum();
        SimReport {
            cycles,
            offchip_traffic: self.hbm.total_bytes(),
            offchip_read: self.hbm.read_bytes(),
            offchip_write: self.hbm.write_bytes(),
            onchip_memory,
            arena_peak: self.arena.peak_bytes(),
            total_flops,
            allocated_compute: self.graph.allocated_compute(),
            offchip_peak_bw: self.hbm.peak_bytes_per_cycle(),
            rounds,
            node_stats,
            sinks,
        }
    }
}
