//! The simulation engine: scheduler, termination, and reporting.

use crate::arena::{Arena, BackingStore};
use crate::channel::Channel;
use crate::config::SimConfig;
use crate::hbm::Hbm;
use crate::nodes::{self, Ctx, SimNode};
use crate::stats::NodeStats;
use std::collections::BTreeMap;
use step_core::error::{Result, StepError};
use step_core::graph::{Graph, NodeId};
use step_core::token::Token;

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Total execution time in cycles (latest node completion or HBM
    /// transfer).
    pub cycles: u64,
    /// Total off-chip traffic in bytes (measured at the HBM node).
    pub offchip_traffic: u64,
    /// Off-chip bytes read.
    pub offchip_read: u64,
    /// Off-chip bytes written.
    pub offchip_write: u64,
    /// Measured on-chip memory requirement in bytes (per-node §4.2
    /// equations with runtime-observed dynamic quantities).
    pub onchip_memory: u64,
    /// Peak bytes resident in the buffer arena.
    pub arena_peak: u64,
    /// Total FLOPs executed by higher-order operators.
    pub total_flops: u64,
    /// Total compute bandwidth allocated across compute nodes
    /// (FLOPs/cycle).
    pub allocated_compute: u64,
    /// Peak off-chip bandwidth (bytes/cycle) for utilization.
    pub offchip_peak_bw: u64,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Per-node statistics, indexed like `graph.nodes()`.
    pub node_stats: Vec<NodeStats>,
    /// Recorded token streams per recording sink.
    pub sinks: BTreeMap<NodeId, Vec<Token>>,
}

impl SimReport {
    /// Fraction of allocated compute actually used:
    /// `FLOPs / (allocated FLOPs/cycle × cycles)` (Fig 12).
    pub fn compute_utilization(&self) -> f64 {
        if self.allocated_compute == 0 || self.cycles == 0 {
            0.0
        } else {
            self.total_flops as f64 / (self.allocated_compute as f64 * self.cycles as f64)
        }
    }

    /// Fraction of peak off-chip bandwidth used (Fig 13).
    pub fn offchip_bw_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.offchip_traffic as f64 / (self.offchip_peak_bw as f64 * self.cycles as f64)
        }
    }

    /// The recorded tokens of the sink created by
    /// [`step_core::graph::GraphBuilder::sink`].
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the node did not record.
    pub fn sink_tokens(&self, id: NodeId) -> Result<&[Token]> {
        self.sinks
            .get(&id)
            .map(|v| v.as_slice())
            .ok_or_else(|| StepError::Exec(format!("node {id:?} is not a recording sink")))
    }
}

/// A configured simulation of one STeP graph.
pub struct Simulation {
    graph: Graph,
    cfg: SimConfig,
    channels: Vec<Channel>,
    nodes: Vec<Box<dyn SimNode>>,
    hbm: Hbm,
    arena: Arena,
    store: BackingStore,
}

impl Simulation {
    /// Builds executors and channels for `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if an operator cannot be executed.
    pub fn new(graph: Graph, cfg: SimConfig) -> Result<Simulation> {
        let channels: Vec<Channel> = graph
            .edges()
            .iter()
            .map(|e| Channel::new(e.capacity, cfg.channel_latency))
            .collect();
        let nodes: Result<Vec<_>> = (0..graph.nodes().len())
            .map(|i| nodes::build_node(&graph, i))
            .collect();
        let hbm = Hbm::new(cfg.hbm.clone());
        Ok(Simulation {
            graph,
            cfg,
            channels,
            nodes: nodes?,
            hbm,
            arena: Arena::new(),
            store: BackingStore::new(),
        })
    }

    /// Registers a dense tensor in off-chip memory so loads return real
    /// data (functional runs).
    pub fn preload(&mut self, base_addr: u64, rows: usize, cols: usize, data: Vec<f32>) {
        self.store.register(base_addr, rows, cols, data);
    }

    /// Reads back a preloaded/stored tensor.
    pub fn offchip_tensor(&self, base_addr: u64) -> Option<(usize, usize, Vec<f32>)> {
        self.store
            .tensor(base_addr)
            .map(|(r, c, d)| (r, c, d.to_vec()))
    }

    /// Runs the graph to completion.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Deadlock`] if the graph stops making progress
    /// before finishing, or the first functional error raised by a node.
    pub fn run(mut self) -> Result<SimReport> {
        let mut rounds: u64 = 0;
        let mut horizon: u64 = self.cfg.horizon_step;
        loop {
            rounds += 1;
            if rounds > self.cfg.max_rounds {
                return Err(StepError::Exec(format!(
                    "exceeded {} scheduler rounds",
                    self.cfg.max_rounds
                )));
            }
            let mut progress = false;
            let mut all_done = true;
            for (i, node) in self.nodes.iter_mut().enumerate() {
                if node.done() {
                    continue;
                }
                all_done = false;
                let mut ctx = Ctx {
                    channels: &mut self.channels,
                    hbm: &mut self.hbm,
                    arena: &mut self.arena,
                    store: &mut self.store,
                    cfg: &self.cfg,
                    horizon,
                };
                let p = node.fire(&mut ctx).map_err(|e| {
                    let n = &self.graph.nodes()[i];
                    let label = if n.label.is_empty() {
                        n.op.name().to_string()
                    } else {
                        format!("{} ({})", n.op.name(), n.label)
                    };
                    StepError::Exec(format!("node {i} [{label}]: {e}"))
                })?;
                progress |= p;
                // Publish a conservative lower bound on this node's future
                // token times so arrival-order merges can commit safely.
                let t = node.local_time();
                for e in &self.graph.nodes()[i].outputs {
                    self.channels[e.0 as usize].raise_floor(t);
                }
            }
            if all_done {
                break;
            }
            if !progress {
                // Quiescent within the current window: advance the horizon
                // to the next pending event.
                let next_event = self
                    .channels
                    .iter()
                    .filter_map(|c| c.peek().map(|(t, _)| *t))
                    .filter(|&t| t > horizon)
                    .min();
                if let Some(t) = next_event {
                    horizon = t + self.cfg.horizon_step;
                    continue;
                }
                let blocked: Vec<String> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| !n.done())
                    .map(|(i, n)| {
                        let g = &self.graph.nodes()[i];
                        format!("{i}:{} t={}", g.op.name(), n.local_time())
                    })
                    .collect();
                return Err(StepError::Deadlock(format!(
                    "no progress with {} nodes blocked: {}",
                    blocked.len(),
                    blocked.join(", ")
                )));
            }
        }
        Ok(self.into_report(rounds))
    }

    fn into_report(self, rounds: u64) -> SimReport {
        let node_stats: Vec<NodeStats> =
            self.nodes.iter().map(|n| n.stats().clone()).collect();
        let cycles = node_stats
            .iter()
            .map(|s| s.finish_time)
            .max()
            .unwrap_or(0)
            .max(self.hbm.last_completion());
        let mut sinks = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(toks) = n.recorded() {
                sinks.insert(NodeId(i as u32), toks.to_vec());
            }
        }
        let onchip_memory = node_stats.iter().map(|s| s.onchip_bytes).sum();
        let total_flops = node_stats.iter().map(|s| s.flops).sum();
        SimReport {
            cycles,
            offchip_traffic: self.hbm.total_bytes(),
            offchip_read: self.hbm.read_bytes(),
            offchip_write: self.hbm.write_bytes(),
            onchip_memory,
            arena_peak: self.arena.peak_bytes(),
            total_flops,
            allocated_compute: self.graph.allocated_compute(),
            offchip_peak_bw: self.hbm.peak_bytes_per_cycle(),
            rounds,
            node_stats,
            sinks,
        }
    }
}
