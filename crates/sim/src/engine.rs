//! The simulation engine: sharded event-driven scheduling, deterministic
//! parallel execution, termination, and reporting.
//!
//! # Execution model
//!
//! The graph is split into connected **shards** by
//! [`step_core::partition`] (cut at high-slack channels; single shard for
//! small graphs or `SimConfig::shards == 1`). Each shard runs the
//! event-driven wake-list scheduler over its own nodes: a node fires only
//! when one of its channels signals that progress may be possible, waves
//! fire in node-index order, and tokens are visible only within the
//! global execution horizon.
//!
//! Shards synchronize at **barriers**. Between barriers a shard sees no
//! external mutation: cross-shard channels are split into a writer half
//! (send credits + in-flight mailbox) and a reader half (the receiving
//! FIFO), and the coordinator shuttles tokens, freed-slot credits, close
//! and finish flags between the halves at each barrier in edge-id order.
//! Off-chip accesses are issued as requests during a sub-round and
//! committed against the HBM ledger at the barrier in `(time, node, seq)`
//! order. When the whole system is quiescent the coordinator advances the
//! horizon to the earliest pending channel event, exactly like the
//! monolithic engine.
//!
//! # Determinism contract
//!
//! Every reported metric is a pure function of `(graph, SimConfig minus
//! threads)`. A shard's sub-round execution depends only on its own state
//! plus what previous barriers delivered, and every barrier action is
//! ordered by stable keys (edge id, request `(time, node, seq)`), so
//! `threads` — and host scheduling generally — can never change the
//! committed execution order. Parallel runs are bit-identical to running
//! the same plan on one thread. Single-shard plans take the legacy
//! immediate-commitment path, which the sharded path generalizes.

use crate::arena::{Arena, ArenaEvent, SharedStore, peak_of_events};
use crate::channel::{Channel, event};
use crate::config::SimConfig;
use crate::hbm::{Hbm, HbmRequest};
use crate::nodes::{self, Chans, Ctx, HbmPort, HbmSink, SimNode};
use crate::stats::NodeStats;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use step_core::error::{Result, StepError};
use step_core::graph::{Graph, NodeId};
use step_core::partition::{Partition, PartitionCfg, partition};
use step_core::token::Token;

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Total execution time in cycles (latest node completion or HBM
    /// transfer).
    pub cycles: u64,
    /// Total off-chip traffic in bytes (measured at the HBM node).
    pub offchip_traffic: u64,
    /// Off-chip bytes read.
    pub offchip_read: u64,
    /// Off-chip bytes written.
    pub offchip_write: u64,
    /// Measured on-chip memory requirement in bytes (per-node §4.2
    /// equations with runtime-observed dynamic quantities).
    pub onchip_memory: u64,
    /// Peak bytes resident in the buffer arenas, merged across shards in
    /// simulated-time order.
    pub arena_peak: u64,
    /// Total FLOPs executed by higher-order operators.
    pub total_flops: u64,
    /// Total compute bandwidth allocated across compute nodes
    /// (FLOPs/cycle).
    pub allocated_compute: u64,
    /// Peak off-chip bandwidth (bytes/cycle) for utilization.
    pub offchip_peak_bw: u64,
    /// Scheduler waves executed, summed across shards (generations of the
    /// wake lists).
    pub rounds: u64,
    /// Shards the graph was partitioned into.
    pub shards: usize,
    /// Per-node statistics, indexed like `graph.nodes()`.
    pub node_stats: Vec<NodeStats>,
    /// Recorded token streams per recording sink.
    pub sinks: BTreeMap<NodeId, Vec<Token>>,
}

impl SimReport {
    /// Fraction of allocated compute actually used:
    /// `FLOPs / (allocated FLOPs/cycle × cycles)` (Fig 12).
    pub fn compute_utilization(&self) -> f64 {
        if self.allocated_compute == 0 || self.cycles == 0 {
            0.0
        } else {
            self.total_flops as f64 / (self.allocated_compute as f64 * self.cycles as f64)
        }
    }

    /// Total `fire` invocations across all nodes — the work the scheduler
    /// actually did. Round-robin polling made this O(nodes × rounds);
    /// event-driven scheduling keeps it proportional to progress.
    pub fn total_fires(&self) -> u64 {
        self.node_stats.iter().map(|s| s.fires).sum()
    }

    /// Total fires that made no progress (wasted polls).
    pub fn idle_fires(&self) -> u64 {
        self.node_stats.iter().map(|s| s.idle_fires).sum()
    }

    /// Fraction of peak off-chip bandwidth used (Fig 13).
    pub fn offchip_bw_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.offchip_traffic as f64 / (self.offchip_peak_bw as f64 * self.cycles as f64)
        }
    }

    /// The recorded tokens of the sink created by
    /// [`step_core::graph::GraphBuilder::sink`].
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the node did not record.
    pub fn sink_tokens(&self, id: NodeId) -> Result<&[Token]> {
        self.sinks
            .get(&id)
            .map(|v| v.as_slice())
            .ok_or_else(|| StepError::Exec(format!("node {id:?} is not a recording sink")))
    }
}

/// One shard of the simulation: a connected subgraph with its own nodes,
/// channels (including its halves of cross-shard edges), scratchpad
/// arena, wake lists, and time calendar. A shard's sub-round execution is
/// a pure function of its state — it touches nothing outside itself
/// except the (lock-free for timing runs) backing store.
struct Shard {
    /// Global node ids, ascending; local index ↔ position here.
    node_ids: Vec<u32>,
    nodes: Vec<Box<dyn SimNode + Send>>,
    channels: Vec<Channel>,
    /// Global edge id → local channel index (`u32::MAX` = not here).
    edge_map: Vec<u32>,
    /// Local channel → local reader/writer node (`u32::MAX` = remote or
    /// none).
    reader_of: Vec<u32>,
    writer_of: Vec<u32>,
    /// Local edge lists per local node (inputs then outputs, local
    /// channel indices), mirroring the graph's port order.
    ins_of: Vec<Vec<u32>>,
    outs_of: Vec<Vec<u32>>,
    arena: Arena,
    // Scheduling state (local node indices).
    wave: BinaryHeap<Reverse<usize>>,
    in_wave: Vec<bool>,
    next: Vec<usize>,
    in_next: Vec<bool>,
    /// `(ready_time, local channel)` for heads beyond the horizon.
    calendar: BinaryHeap<Reverse<(u64, usize)>>,
    undone: usize,
    rounds: u64,
    // Off-chip request plumbing (per local node).
    hbm_reqs: Vec<HbmRequest>,
    hbm_seq: Vec<u64>,
    hbm_resp: Vec<VecDeque<(u64, u64)>>,
}

impl Shard {
    /// Wakes local node `j` into the current wave (barrier-time wakes:
    /// both wake lists are empty between sub-rounds). Done nodes are
    /// never woken — a stale wave entry would read as pending work and
    /// stall the global horizon.
    fn wake(&mut self, j: u32) {
        let j = j as usize;
        if j != u32::MAX as usize && !self.in_wave[j] && !self.nodes[j].done() {
            self.in_wave[j] = true;
            self.wave.push(Reverse(j));
        }
    }

    /// Pops stale calendar entries and returns the earliest live
    /// beyond-horizon event time, leaving the live entry queued.
    fn next_event(&mut self, horizon: u64) -> Option<u64> {
        while let Some(&Reverse((t, idx))) = self.calendar.peek() {
            let live = self.channels[idx]
                .peek()
                .is_some_and(|&(ready, _)| ready == t && ready > horizon);
            if live {
                return Some(t);
            }
            self.calendar.pop();
        }
        None
    }

    /// Wakes the readers of every head that became visible when the
    /// horizon advanced from `old` to `new` (the monolithic engine's
    /// calendar drain).
    fn wake_visible(&mut self, old: u64, new: u64) {
        while let Some(&Reverse((t, idx))) = self.calendar.peek() {
            if t > new {
                break;
            }
            self.calendar.pop();
            let live = self.channels[idx]
                .peek()
                .is_some_and(|&(ready, _)| ready == t && ready > old);
            if live {
                let j = self.reader_of[idx];
                self.wake(j);
            }
        }
    }

    /// Diagnostic lines for this shard's blocked nodes.
    fn blocked_lines(&self, graph: &Graph, out: &mut Vec<(u32, String)>) {
        for (i, nd) in self.nodes.iter().enumerate() {
            if nd.done() {
                continue;
            }
            let gid = self.node_ids[i];
            let g = &graph.nodes()[gid as usize];
            let why = nd
                .blocked_on()
                .map_or_else(String::new, |b| format!(" ({b})"));
            out.push((
                gid,
                format!("{gid}:{} t={}{why}", g.op.name(), nd.local_time()),
            ));
        }
    }

    /// Runs this shard's wave scheduler to quiescence under `horizon`.
    /// `hbm` is the immediate ledger for single-shard plans; sharded
    /// plans queue requests for the barrier commit.
    fn run_to_quiescence(
        &mut self,
        horizon: u64,
        cfg: &SimConfig,
        store: &SharedStore,
        graph: &Graph,
        mut hbm: Option<&mut Hbm>,
    ) -> Result<()> {
        let Shard {
            node_ids,
            nodes,
            channels,
            edge_map,
            reader_of,
            writer_of,
            ins_of,
            outs_of,
            arena,
            wave,
            in_wave,
            next,
            in_next,
            calendar,
            undone,
            rounds,
            hbm_reqs,
            hbm_seq,
            hbm_resp,
        } = self;
        while *undone > 0 && !wave.is_empty() {
            *rounds += 1;
            if *rounds > cfg.max_rounds {
                return Err(StepError::Exec(format!(
                    "exceeded {} scheduler rounds",
                    cfg.max_rounds
                )));
            }
            while let Some(Reverse(i)) = wave.pop() {
                in_wave[i] = false;
                if nodes[i].done() {
                    continue;
                }
                let sink = match &mut hbm {
                    Some(h) => HbmSink::Immediate(h),
                    None => HbmSink::Queued(hbm_reqs),
                };
                let mut ctx = Ctx {
                    chans: Chans::mapped(channels, edge_map),
                    hbm: HbmPort::new(sink, node_ids[i], &mut hbm_seq[i], &mut hbm_resp[i]),
                    arena,
                    store,
                    cfg,
                    horizon,
                };
                let p = nodes[i].fire(&mut ctx).map_err(|e| {
                    let gid = node_ids[i] as usize;
                    let g = &graph.nodes()[gid];
                    let label = if g.label.is_empty() {
                        g.op.name().to_string()
                    } else {
                        format!("{} ({})", g.op.name(), g.label)
                    };
                    StepError::Exec(format!("node {gid} [{label}]: {e}"))
                })?;
                if p {
                    // Publish a conservative lower bound on this node's
                    // future token times so arrival-order merges can
                    // commit safely.
                    let t = nodes[i].local_time();
                    for &c in &outs_of[i] {
                        channels[c as usize].raise_floor(t);
                    }
                }
                // Drain this node's channel events into wakes. A wake
                // ahead of the sweep joins the current wave (round-robin
                // would reach it later this round); one behind joins the
                // next wave. Remote endpoints (u32::MAX) are handled by
                // the barrier coordinator.
                let mut wake = |j: u32| {
                    let j = j as usize;
                    if j == u32::MAX as usize {
                        return;
                    }
                    if j > i {
                        if !in_wave[j] {
                            in_wave[j] = true;
                            wave.push(Reverse(j));
                        }
                    } else if !in_next[j] {
                        in_next[j] = true;
                        next.push(j);
                    }
                };
                for &c in ins_of[i].iter().chain(outs_of[i].iter()) {
                    let idx = c as usize;
                    let ev = channels[idx].take_events();
                    if ev == 0 {
                        continue;
                    }
                    if ev & (event::FREED | event::CLOSED) != 0 {
                        wake(writer_of[idx]);
                    }
                    if ev & event::SRC_FINISHED != 0 {
                        wake(reader_of[idx]);
                    }
                    if ev & (event::ENQUEUED | event::FREED) != 0 {
                        // A new head may have appeared (token enqueued on
                        // an empty queue, or the old head popped). Wake
                        // the reader if it is visible in the current
                        // window; otherwise file it in the calendar for
                        // the horizon advance.
                        if let Some(&(ready, _)) = channels[idx].peek() {
                            if ready <= horizon {
                                if ev & event::ENQUEUED != 0 {
                                    wake(reader_of[idx]);
                                }
                            } else {
                                calendar.push(Reverse((ready, idx)));
                            }
                        }
                    }
                }
                if nodes[i].done() {
                    *undone -= 1;
                    if *undone == 0 {
                        break;
                    }
                } else if p && !in_next[i] {
                    // Progress with work possibly remaining (budget cap,
                    // more queued input): poll again next wave.
                    in_next[i] = true;
                    next.push(i);
                }
            }
            for j in next.drain(..) {
                in_next[j] = false;
                if !in_wave[j] {
                    in_wave[j] = true;
                    wave.push(Reverse(j));
                }
            }
        }
        if *undone == 0 {
            // A finished shard must read as quiescent: stale wave entries
            // for done nodes would stall the global horizon forever.
            wave.clear();
            in_wave.fill(false);
            for j in next.drain(..) {
                in_next[j] = false;
            }
        }
        Ok(())
    }
}

/// A cross-shard edge: writer half `w_ch` in shard `w_shard`, reader half
/// `r_ch` in shard `r_shard`.
struct CrossEdge {
    w_shard: u32,
    w_ch: u32,
    r_shard: u32,
    r_ch: u32,
}

/// A configured simulation of one STeP graph.
pub struct Simulation {
    graph: Graph,
    cfg: SimConfig,
    shards: Vec<Mutex<Shard>>,
    cross: Vec<CrossEdge>,
    /// Node (global id) → owning shard / local index.
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    hbm: Hbm,
    store: SharedStore,
}

impl Simulation {
    /// Builds executors, channels, and the shard plan for `graph`.
    ///
    /// The partition is derived from the graph and
    /// [`SimConfig::shards`] only — never from `threads` — so reported
    /// results are independent of worker count.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if an operator cannot be executed.
    pub fn new(graph: Graph, cfg: SimConfig) -> Result<Simulation> {
        let plan = match cfg.shards {
            1 => Partition::monolithic(&graph),
            0 => partition(&graph, &PartitionCfg::default()),
            n => partition(
                &graph,
                &PartitionCfg {
                    target_shards: n,
                    min_nodes: 0,
                    ..PartitionCfg::default()
                },
            ),
        };
        let k = plan.shards;
        let n = graph.nodes().len();
        let e = graph.edges().len();
        let sharded = k > 1;

        // Local node ids per shard, ascending.
        let mut node_ids: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut local_node = vec![u32::MAX; n];
        for (i, &s) in plan.shard_of.iter().enumerate() {
            local_node[i] = node_ids[s as usize].len() as u32;
            node_ids[s as usize].push(i as u32);
        }

        // Channels: intra-shard edges get one channel in their shard;
        // cut edges get a writer half and a reader half.
        let mut channels: Vec<Vec<Channel>> = (0..k).map(|_| Vec::new()).collect();
        let mut edge_map: Vec<Vec<u32>> = vec![vec![u32::MAX; e]; k];
        let mut reader_of: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut writer_of: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut cross = Vec::new();
        for (ei, edge) in graph.edges().iter().enumerate() {
            let src = edge.src.0.0 as usize;
            let dst = edge
                .dst
                .expect("finished graphs have no dangling edges")
                .0
                .0 as usize;
            let (ws, rs) = (plan.shard_of[src] as usize, plan.shard_of[dst] as usize);
            if ws == rs {
                let s = ws;
                edge_map[s][ei] = channels[s].len() as u32;
                channels[s].push(Channel::new(edge.capacity, cfg.channel_latency));
                writer_of[s].push(local_node[src]);
                reader_of[s].push(local_node[dst]);
            } else {
                let w_ch = channels[ws].len() as u32;
                edge_map[ws][ei] = w_ch;
                channels[ws].push(Channel::new(edge.capacity, cfg.channel_latency));
                writer_of[ws].push(local_node[src]);
                reader_of[ws].push(u32::MAX);
                let r_ch = channels[rs].len() as u32;
                edge_map[rs][ei] = r_ch;
                channels[rs].push(Channel::cross_reader(edge.capacity, cfg.channel_latency));
                writer_of[rs].push(u32::MAX);
                reader_of[rs].push(local_node[dst]);
                cross.push(CrossEdge {
                    w_shard: ws as u32,
                    w_ch,
                    r_shard: rs as u32,
                    r_ch,
                });
            }
        }

        let mut shards = Vec::with_capacity(k);
        for s in 0..k {
            let ids = std::mem::take(&mut node_ids[s]);
            let m = ids.len();
            let nodes: Result<Vec<_>> = ids
                .iter()
                .map(|&gid| nodes::build_node(&graph, gid as usize))
                .collect();
            let nodes = nodes?;
            let map = std::mem::take(&mut edge_map[s]);
            let ins_of: Vec<Vec<u32>> = ids
                .iter()
                .map(|&gid| {
                    graph.nodes()[gid as usize]
                        .inputs
                        .iter()
                        .map(|e| map[e.0 as usize])
                        .collect()
                })
                .collect();
            let outs_of: Vec<Vec<u32>> = ids
                .iter()
                .map(|&gid| {
                    graph.nodes()[gid as usize]
                        .outputs
                        .iter()
                        .map(|e| map[e.0 as usize])
                        .collect()
                })
                .collect();
            let undone = nodes.iter().filter(|nd| !nd.done()).count();
            shards.push(Mutex::new(Shard {
                node_ids: ids,
                nodes,
                channels: std::mem::take(&mut channels[s]),
                edge_map: map,
                reader_of: std::mem::take(&mut reader_of[s]),
                writer_of: std::mem::take(&mut writer_of[s]),
                ins_of,
                outs_of,
                arena: if sharded {
                    Arena::with_event_log()
                } else {
                    Arena::new()
                },
                wave: (0..m).map(Reverse).collect(),
                in_wave: vec![true; m],
                next: Vec::new(),
                in_next: vec![false; m],
                calendar: BinaryHeap::new(),
                undone,
                rounds: 0,
                hbm_reqs: Vec::new(),
                hbm_seq: vec![0; m],
                hbm_resp: vec![VecDeque::new(); m],
            }));
        }
        let hbm = Hbm::new(cfg.hbm.clone());
        Ok(Simulation {
            graph,
            cfg,
            shards,
            cross,
            shard_of: plan.shard_of,
            local_of: local_node,
            hbm,
            store: SharedStore::new(),
        })
    }

    /// Registers a dense tensor in off-chip memory so loads return real
    /// data (functional runs).
    pub fn preload(&mut self, base_addr: u64, rows: usize, cols: usize, data: Vec<f32>) {
        self.store.register(base_addr, rows, cols, data);
    }

    /// Reads back a preloaded/stored tensor.
    pub fn offchip_tensor(&self, base_addr: u64) -> Option<(usize, usize, Vec<f32>)> {
        self.store.tensor(base_addr)
    }

    /// Runs the graph to completion.
    ///
    /// Single-shard plans run the wave scheduler inline with immediate
    /// off-chip commitment (the legacy engine, bit for bit). Sharded
    /// plans run sub-rounds over the shards — on `SimConfig::threads`
    /// workers when > 1 — separated by deterministic coordination
    /// barriers; see the module docs for the determinism contract.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Deadlock`] if the graph stops making progress
    /// before finishing, or the first functional error raised by a node.
    pub fn run(mut self) -> Result<SimReport> {
        let k = self.shards.len();
        if k == 1 {
            self.run_single()?;
        } else {
            let threads = self.cfg.threads.clamp(1, k);
            if threads == 1 {
                self.run_sharded_inline()?;
            } else {
                self.run_sharded_threaded(threads)?;
            }
        }
        Ok(self.into_report())
    }

    /// Monolithic execution: one shard, immediate HBM commitment.
    fn run_single(&mut self) -> Result<()> {
        let mut horizon = self.cfg.horizon_step;
        let shard = self.shards[0].get_mut().expect("shard lock");
        loop {
            shard.run_to_quiescence(
                horizon,
                &self.cfg,
                &self.store,
                &self.graph,
                Some(&mut self.hbm),
            )?;
            if shard.undone == 0 {
                return Ok(());
            }
            // Quiescent within the current window: advance the horizon to
            // the next pending channel event and wake the readers whose
            // heads became visible.
            let Some(t0) = shard.next_event(horizon) else {
                let mut lines = Vec::new();
                shard.blocked_lines(&self.graph, &mut lines);
                return Err(deadlock_error(lines));
            };
            let new_horizon = t0 + self.cfg.horizon_step;
            shard.wake_visible(horizon, new_horizon);
            horizon = new_horizon;
        }
    }

    /// Sharded execution on the calling thread: the reference schedule
    /// every worker count reproduces.
    fn run_sharded_inline(&mut self) -> Result<()> {
        let mut horizon = self.cfg.horizon_step;
        loop {
            for s in self.shards.iter() {
                let mut shard = s.lock().expect("shard lock");
                if shard.wave.is_empty() {
                    continue;
                }
                shard.run_to_quiescence(horizon, &self.cfg, &self.store, &self.graph, None)?;
            }
            let plan = CoordPlan {
                cross: &self.cross,
                shard_of: &self.shard_of,
                local_of: &self.local_of,
                graph: &self.graph,
                cfg: &self.cfg,
            };
            if !coordinate(&self.shards, &plan, &mut self.hbm, &mut horizon)? {
                return Ok(());
            }
        }
    }

    /// Sharded execution on `threads` workers. Workers steal quiescence
    /// runs of whole shards between two barriers per sub-round; worker 0
    /// coordinates in the exclusive window between sub-rounds. Which
    /// worker runs a shard can never affect the result, so this is
    /// bit-identical to [`Simulation::run_sharded_inline`].
    fn run_sharded_threaded(&mut self, threads: usize) -> Result<()> {
        let horizon = AtomicU64::new(self.cfg.horizon_step);
        let barrier = Barrier::new(threads);
        let stop = AtomicBool::new(false);
        let cursor = AtomicUsize::new(0);
        let active: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let failure: Mutex<Option<StepError>> = Mutex::new(None);

        let Simulation {
            graph,
            cfg,
            shards,
            cross,
            shard_of,
            local_of,
            hbm,
            store,
        } = self;
        let shards: &[Mutex<Shard>] = shards;
        let plan = CoordPlan {
            cross,
            shard_of,
            local_of,
            graph,
            cfg,
        };

        // Every fallible step — including panics, which would otherwise
        // leave the other threads waiting at a barrier forever — funnels
        // into `failure`, so a crash surfaces as an error, not a hang.
        let work = || {
            let body = || -> Result<()> {
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let id = {
                        let a = active.lock().expect("active list");
                        match a.get(k) {
                            Some(&id) => id as usize,
                            None => return Ok(()),
                        }
                    };
                    let mut shard = shards[id].lock().expect("shard lock");
                    let h = horizon.load(Ordering::Acquire);
                    shard.run_to_quiescence(h, cfg, store, graph, None)?;
                }
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body))
                .unwrap_or_else(|p| {
                    Err(StepError::Exec(format!(
                        "worker panicked: {}",
                        panic_message(&p)
                    )))
                });
            if let Err(e) = result
                && let Ok(mut slot) = failure.lock()
            {
                slot.get_or_insert(e);
            }
        };

        let mut outcome: Result<()> = Ok(());
        std::thread::scope(|sc| {
            for _ in 1..threads {
                let work = &work;
                let (barrier, stop) = (&barrier, &stop);
                sc.spawn(move || {
                    loop {
                        barrier.wait();
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        work();
                        barrier.wait();
                    }
                });
            }
            // Coordinator loop on this thread. Between the second barrier
            // of one sub-round and the first barrier of the next, workers
            // are parked, so coordination has exclusive access.
            let run = loop {
                let prepared = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut a = active.lock().expect("active list");
                    a.clear();
                    for (i, s) in shards.iter().enumerate() {
                        if !s.lock().expect("shard lock").wave.is_empty() {
                            a.push(i as u32);
                        }
                    }
                }));
                if let Err(p) = prepared {
                    break Err(StepError::Exec(format!(
                        "coordinator panicked: {}",
                        panic_message(&p)
                    )));
                }
                cursor.store(0, Ordering::Relaxed);
                barrier.wait();
                work();
                barrier.wait();
                if let Some(e) = failure.lock().expect("failure slot").take() {
                    break Err(e);
                }
                let mut h = horizon.load(Ordering::Acquire);
                let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    coordinate(shards, &plan, hbm, &mut h)
                }))
                .unwrap_or_else(|p| {
                    Err(StepError::Exec(format!(
                        "coordinator panicked: {}",
                        panic_message(&p)
                    )))
                });
                match step {
                    Ok(true) => horizon.store(h, Ordering::Release),
                    Ok(false) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            stop.store(true, Ordering::Release);
            barrier.wait();
            outcome = run;
        });
        outcome
    }

    fn into_report(mut self) -> SimReport {
        let n = self.graph.nodes().len();
        let k = self.shards.len();
        let mut node_stats = vec![NodeStats::default(); n];
        let mut sinks = BTreeMap::new();
        let mut rounds = 0;
        let mut arena_events: Vec<ArenaEvent> = Vec::new();
        let mut arena_peak_single = 0;
        for s in self.shards.iter_mut() {
            let s = s.get_mut().expect("shard lock");
            rounds += s.rounds;
            arena_peak_single = arena_peak_single.max(s.arena.peak_bytes());
            arena_events.extend(s.arena.take_events());
            for (i, nd) in s.nodes.iter().enumerate() {
                let gid = s.node_ids[i] as usize;
                node_stats[gid] = nd.stats().clone();
                if let Some(toks) = nd.recorded() {
                    sinks.insert(NodeId(gid as u32), toks.to_vec());
                }
            }
        }
        let arena_peak = if k == 1 {
            arena_peak_single
        } else {
            peak_of_events(arena_events)
        };
        let cycles = node_stats
            .iter()
            .map(|s| s.finish_time)
            .max()
            .unwrap_or(0)
            .max(self.hbm.last_completion());
        let onchip_memory = node_stats.iter().map(|s| s.onchip_bytes).sum();
        let total_flops = node_stats.iter().map(|s| s.flops).sum();
        SimReport {
            cycles,
            offchip_traffic: self.hbm.total_bytes(),
            offchip_read: self.hbm.read_bytes(),
            offchip_write: self.hbm.write_bytes(),
            onchip_memory,
            arena_peak,
            total_flops,
            allocated_compute: self.graph.allocated_compute(),
            offchip_peak_bw: self.hbm.peak_bytes_per_cycle(),
            rounds,
            shards: k,
            node_stats,
            sinks,
        }
    }
}

/// Read-only context the coordinator needs besides the shards and HBM.
struct CoordPlan<'a> {
    cross: &'a [CrossEdge],
    shard_of: &'a [u32],
    local_of: &'a [u32],
    graph: &'a Graph,
    cfg: &'a SimConfig,
}

/// One coordination barrier: shuttles cross-shard state, commits the
/// off-chip batch, and — if the system is fully quiescent — advances the
/// horizon. Returns `false` once every node is done.
///
/// Runs with exclusive access between sub-rounds (locks are uncontended);
/// every action is ordered by stable keys (edge order, request `(time,
/// node, seq)`), so the outcome is a pure function of shard states.
fn coordinate(
    shards: &[Mutex<Shard>],
    plan: &CoordPlan<'_>,
    hbm: &mut Hbm,
    horizon: &mut u64,
) -> Result<bool> {
    // Cross-shard transfer, in edge order.
    for x in plan.cross {
        let (lo, hi) = (x.w_shard.min(x.r_shard), x.w_shard.max(x.r_shard));
        let g_lo = shards[lo as usize].lock().expect("shard lock");
        let g_hi = shards[hi as usize].lock().expect("shard lock");
        let (mut ws, mut rs) = if x.w_shard == lo {
            (g_lo, g_hi)
        } else {
            (g_hi, g_lo)
        };
        let (w_ch, r_ch) = (x.w_ch as usize, x.r_ch as usize);
        // Tokens ride with their writer-computed ready times; inject
        // drops them if the reader closed.
        let moved: Vec<(u64, Token)> = ws.channels[w_ch].drain_queue().collect();
        for (t, tok) in moved {
            rs.channels[r_ch].inject(t, tok);
        }
        // Freed slots return to the writer as send credits.
        let freed = rs.channels[r_ch].drain_freed_slots();
        if !freed.is_empty() {
            ws.channels[w_ch].grant_slots(freed);
        }
        // Close / finish / floor propagation.
        if rs.channels[r_ch].is_closed() && !ws.channels[w_ch].is_closed() {
            ws.channels[w_ch].close();
        }
        if ws.channels[w_ch].src_finished()
            && !rs.channels[r_ch].src_finished()
            && ws.channels[w_ch].is_empty()
        {
            rs.channels[r_ch].finish_src();
        }
        let floor = ws.channels[w_ch].floor_raw();
        rs.channels[r_ch].raise_floor(floor);
        // Events → wakes, mirroring the in-shard drain.
        let wev = ws.channels[w_ch].take_events();
        if wev & (event::FREED | event::CLOSED) != 0 {
            let j = ws.writer_of[w_ch];
            ws.wake(j);
        }
        let rev = rs.channels[r_ch].take_events();
        if rev & event::SRC_FINISHED != 0 {
            let j = rs.reader_of[r_ch];
            rs.wake(j);
        }
        if rev & (event::ENQUEUED | event::FREED) != 0
            && let Some(&(ready, _)) = rs.channels[r_ch].peek()
        {
            if ready <= *horizon {
                if rev & event::ENQUEUED != 0 {
                    let j = rs.reader_of[r_ch];
                    rs.wake(j);
                }
            } else {
                rs.calendar.push(Reverse((ready, r_ch)));
            }
        }
    }

    // Commit the off-chip batch in (time, node, seq) order and wake the
    // requesters.
    let mut batch = Vec::new();
    for s in shards {
        batch.append(&mut s.lock().expect("shard lock").hbm_reqs);
    }
    if !batch.is_empty() {
        for (node, seq, done) in hbm.service_batch(batch) {
            let shard = plan.shard_of[node as usize] as usize;
            let local = plan.local_of[node as usize] as usize;
            let mut s = shards[shard].lock().expect("shard lock");
            // Per-node issue times are monotone, so sorted service
            // delivers each node's responses in seq order.
            debug_assert!(s.hbm_resp[local].back().is_none_or(|&(q, _)| q < seq));
            s.hbm_resp[local].push_back((seq, done));
            s.wake(local as u32);
        }
    }

    let mut undone = 0usize;
    let mut any_wave = false;
    for s in shards {
        let s = s.lock().expect("shard lock");
        undone += s.undone;
        any_wave |= !s.wave.is_empty();
    }
    if undone == 0 {
        return Ok(false);
    }
    if any_wave {
        return Ok(true);
    }
    // Fully quiescent: advance the horizon to the earliest pending
    // channel event across all shards.
    let mut t0: Option<u64> = None;
    for s in shards {
        if let Some(t) = s.lock().expect("shard lock").next_event(*horizon) {
            t0 = Some(t0.map_or(t, |cur| cur.min(t)));
        }
    }
    let Some(t0) = t0 else {
        let mut lines = Vec::new();
        for s in shards {
            s.lock()
                .expect("shard lock")
                .blocked_lines(plan.graph, &mut lines);
        }
        return Err(deadlock_error(lines));
    };
    let new_horizon = t0 + plan.cfg.horizon_step;
    for s in shards {
        s.lock()
            .expect("shard lock")
            .wake_visible(*horizon, new_horizon);
    }
    *horizon = new_horizon;
    Ok(true)
}

/// Best-effort text of a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deadlock diagnostics, in global node order.
fn deadlock_error(mut lines: Vec<(u32, String)>) -> StepError {
    lines.sort_by_key(|(gid, _)| *gid);
    let blocked: Vec<String> = lines.into_iter().map(|(_, l)| l).collect();
    StepError::Deadlock(format!(
        "no progress with {} nodes blocked: {}",
        blocked.len(),
        blocked.join(", ")
    ))
}
