//! The simulation engine: an immutable, reusable execution plan
//! ([`SimPlan`]) driving sharded event-driven scheduling over per-run
//! mutable state, with deterministic parallel execution, termination,
//! and reporting.
//!
//! # Plan / run lifecycle
//!
//! Building a simulation is two phases with very different costs and
//! mutability:
//!
//! - [`SimPlan::new`] does everything that depends only on `(graph,
//!   SimConfig)`: it partitions the graph into shards
//!   ([`step_core::partition`], with cut metadata), lays out every
//!   shard's channel topology (local channel table, edge map,
//!   reader/writer indices, cross-shard halves), and freezes the
//!   configuration. The resulting plan is **immutable** — it can be
//!   wrapped in an `Arc` and run from many threads at once.
//! - [`SimPlan::run`] (or [`SimPlan::run_bound`] with a per-run
//!   [`RunBinding`]) materializes the cheap mutable state for one
//!   execution — node executors, channel queues, scratchpad arenas,
//!   scheduler ready-sets, the HBM ledger — runs it to completion, and
//!   returns the [`SimReport`]. Every run of the same plan (with the
//!   same binding) is bit-identical to a fresh
//!   `Simulation::new(graph, cfg)?.run()?` of the same graph.
//!
//! [`RunBinding`] supplies the per-run inputs: replacement token streams
//! for `Source` nodes (**source rebinding** — drive one plan with many
//! trace iterations without re-partitioning) and dense off-chip preloads
//! for functional runs.
//!
//! [`Simulation`] remains as the one-shot convenience wrapper:
//! `Simulation::new(graph, cfg)?.run()` builds a plan, runs it once, and
//! throws it away.
//!
//! # Execution model
//!
//! The graph is split into connected **shards** by
//! [`step_core::partition`] (cut at high-slack channels; single shard for
//! small graphs or `SimConfig::shards == 1`). Each shard runs the
//! event-driven wake-list scheduler over its own nodes: a node fires only
//! when one of its channels signals that progress may be possible, waves
//! fire in node-index order, and tokens are visible only within the
//! shard's effective execution horizon.
//!
//! Shards synchronize at **barriers**. Between barriers a shard sees no
//! external mutation: cross-shard channels are split into a writer half
//! (send credits + in-flight mailbox) and a reader half (the receiving
//! FIFO), and the coordinator shuttles tokens, freed-slot credits, close
//! and finish flags between the halves at each barrier in edge-id order.
//! Off-chip accesses are issued as requests during a sub-round and
//! committed against the HBM ledger at the barrier in `(time, node, seq)`
//! order. When the whole system is quiescent the coordinator advances the
//! horizon to the earliest pending channel event, exactly like the
//! monolithic engine.
//!
//! Three optimizations keep the barrier protocol off the hot path, all
//! plan knobs with no effect on thread-count independence:
//!
//! - **Barrier elision** ([`SimConfig::elide_barriers`]): each shard owns
//!   an *effective horizon* `eff ≥` the global horizon. At every barrier
//!   the coordinator raises it to the *cut-slack allowance* — one cycle
//!   below the minimum time floor of the shard's incoming cut channels,
//!   the earliest instant a cross-shard token could still arrive
//!   (channels whose producer finished or whose reader closed no longer
//!   constrain it). Until simulated time reaches that bound the shard's
//!   execution is a pure local function, so it runs windows back-to-back
//!   without coordination; shards with no unfinished incoming cuts run
//!   dark until credits or off-chip responses stall them. The global
//!   horizon still advances by `horizon_step` at full quiescence, so
//!   arrival-order faithfulness is never *worse* than barrier-stepped
//!   execution — within the allowance it is exact.
//! - **Wake deduplication**: sharded shards schedule with a
//!   generation-stamped ready set (`cur`/`nxt` + per-node wave stamps)
//!   instead of the monolithic engine's round-robin-faithful wake lists.
//!   Every wake targets the next wave and a node is queued at most once
//!   per wave no matter how many channel events it receives — the
//!   absorbed wakes are reported as
//!   [`step::stats::SchedCounters::wake_dedup`](crate::stats::SchedCounters).
//! - **Off-chip fast path** ([`SimConfig::offchip_fast_path`]): when a
//!   sub-round's schedule has exactly one runnable shard, that shard is
//!   the sole accessor of the HBM ledger in the window. The coordinator
//!   runs it inline with the monolithic engine's immediate-commit sink —
//!   request/response collapses back to single-fire, and in threaded mode
//!   the two worker barrier waits are skipped entirely (workers stay
//!   parked).
//!
//! # Determinism contract
//!
//! Every reported metric is a pure function of `(graph, SimConfig minus
//! threads, RunBinding)`. A shard's sub-round execution depends only on
//! its own state plus what previous barriers delivered; every barrier
//! action is ordered by stable keys (edge id, request `(time, node,
//! seq)`); and the elision allowance, solo-shard schedule, and wake
//! stamps are all computed from barrier-time shard state in the
//! coordinator's exclusive window. So `threads` — and host scheduling
//! generally — can never change the committed execution order. Parallel
//! runs are bit-identical to running the same plan on one thread, and
//! re-running a plan is bit-identical to rebuilding it from scratch:
//! the plan is read-only during execution, every piece of mutable state
//! lives in the per-run `RunState`. Single-shard plans take the legacy
//! immediate-commitment path, which the sharded path generalizes.

use crate::arena::{Arena, ArenaEvent, SharedStore, peak_of_events};
use crate::cancel::CancelToken;
use crate::channel::{Channel, event};
use crate::config::SimConfig;
use crate::fingerprint::Fingerprint;
use crate::hbm::{Hbm, HbmRequest};
use crate::nodes::{self, Chans, CompiledNode, Ctx, HbmPort, HbmSink, NodeExec, SimNode};
use crate::run::TimeRun;
use crate::stats::{NodeStats, SchedCounters};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};
use std::time::Instant;
use step_core::error::{DeadlineKind, Result, StepError};
use step_core::graph::{EdgeId, Graph, NodeId};
use step_core::ops::OpKind;
use step_core::partition::{Partition, PartitionCfg, partition};
use step_core::sync::{get_mut, lock};
use step_core::token::{self, Token};

/// The outcome of a simulation run.
///
/// `PartialEq` compares every field — the differential suites' "bit
/// identical" is literal. (`NodeStats::wall_ns` is all zero unless
/// `SimConfig::profile_fires` was on, which no determinism check uses.)
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total execution time in cycles (latest node completion or HBM
    /// transfer).
    pub cycles: u64,
    /// Total off-chip traffic in bytes (measured at the HBM node).
    pub offchip_traffic: u64,
    /// Off-chip bytes read.
    pub offchip_read: u64,
    /// Off-chip bytes written.
    pub offchip_write: u64,
    /// Measured on-chip memory requirement in bytes (per-node §4.2
    /// equations with runtime-observed dynamic quantities).
    pub onchip_memory: u64,
    /// Peak bytes resident in the buffer arenas, merged across shards in
    /// simulated-time order.
    pub arena_peak: u64,
    /// Total FLOPs executed by higher-order operators.
    pub total_flops: u64,
    /// Total compute bandwidth allocated across compute nodes
    /// (FLOPs/cycle).
    pub allocated_compute: u64,
    /// Peak off-chip bandwidth (bytes/cycle) for utilization.
    pub offchip_peak_bw: u64,
    /// Scheduler waves executed, summed across shards (generations of the
    /// wake lists).
    pub rounds: u64,
    /// Tokens ever enqueued across all channels (the transported volume).
    pub chan_tokens: u64,
    /// Run entries ever enqueued across all channels — the bulk channel
    /// operations actually performed. `chan_tokens / chan_runs` is the
    /// run-length transport compression ratio.
    pub chan_runs: u64,
    /// Shards the graph was partitioned into.
    pub shards: usize,
    /// Coordination counters of the sharded engine (all zero for
    /// monolithic plans).
    pub sched: SchedCounters,
    /// Fresh run-state materializations this run performed: 1 when the
    /// state was built from scratch, 0 when a pooled state was reused.
    /// Host-side bookkeeping, never part of the simulated results — CI
    /// guards the alloc-free steady state with this counter instead of
    /// wall time.
    pub run_allocs: u64,
    /// In-place pool resets this run performed (1 on a pooled rerun).
    pub pool_resets: u64,
    /// Per-node statistics, indexed like `graph.nodes()`.
    pub node_stats: Vec<NodeStats>,
    /// Recorded token streams per recording sink.
    pub sinks: BTreeMap<NodeId, Vec<Token>>,
}

impl SimReport {
    /// Fraction of allocated compute actually used:
    /// `FLOPs / (allocated FLOPs/cycle × cycles)` (Fig 12).
    pub fn compute_utilization(&self) -> f64 {
        if self.allocated_compute == 0 || self.cycles == 0 {
            0.0
        } else {
            self.total_flops as f64 / (self.allocated_compute as f64 * self.cycles as f64)
        }
    }

    /// Total `fire` invocations across all nodes — the work the scheduler
    /// actually did. Round-robin polling made this O(nodes × rounds);
    /// event-driven scheduling keeps it proportional to progress.
    pub fn total_fires(&self) -> u64 {
        self.node_stats.iter().map(|s| s.fires).sum()
    }

    /// Total fires that made no progress (wasted polls).
    pub fn idle_fires(&self) -> u64 {
        self.node_stats.iter().map(|s| s.idle_fires).sum()
    }

    /// Fraction of peak off-chip bandwidth used (Fig 13).
    pub fn offchip_bw_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.offchip_traffic as f64 / (self.offchip_peak_bw as f64 * self.cycles as f64)
        }
    }

    /// The recorded tokens of the sink created by
    /// [`step_core::graph::GraphBuilder::sink`].
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the node did not record.
    pub fn sink_tokens(&self, id: NodeId) -> Result<&[Token]> {
        self.sinks
            .get(&id)
            .map(|v| v.as_slice())
            .ok_or_else(|| StepError::Exec(format!("node {id:?} is not a recording sink")))
    }
}

/// A shard's wake-list scheduler state.
enum Sched {
    /// The monolithic engine's wake lists, kept bit-for-bit for
    /// single-shard plans (the legacy PR-1 schedule): a wake ahead of the
    /// sweep joins the *current* wave (round-robin would reach it later
    /// this round), one behind joins the next. The wave is a bitset
    /// swept in ascending node order — the exact order the old binary
    /// heap popped, at a fraction of the per-fire cost (wakes within a
    /// wave always target indices ahead of the sweep cursor).
    Legacy {
        /// Current-wave membership, one bit per local node.
        bits: Vec<u64>,
        /// Set-bit count (the wave's pending size).
        ready: usize,
        /// Sweep position: all set bits of the running wave are >= this.
        cursor: usize,
        next: Vec<usize>,
        in_next: Vec<bool>,
    },
    /// Generation-stamped ready set for sharded plans: all wakes target
    /// the next wave (`nxt`), a node is queued at most once per wave
    /// (`stamp[j] == wave_gen` means already queued), and each wave is sorted
    /// into node-index order before firing.
    Dedup {
        cur: Vec<usize>,
        nxt: Vec<usize>,
        stamp: Vec<u64>,
        wave_gen: u64,
        dedup_hits: u64,
    },
}

impl Default for Sched {
    fn default() -> Sched {
        Sched::Legacy {
            bits: Vec::new(),
            ready: 0,
            cursor: 0,
            next: Vec::new(),
            in_next: Vec::new(),
        }
    }
}

/// Finds the lowest set bit at index >= `from`, or `None`.
fn bits_next(bits: &[u64], from: usize) -> Option<usize> {
    let mut w = from / 64;
    if w >= bits.len() {
        return None;
    }
    let mut word = bits[w] & (u64::MAX << (from % 64));
    loop {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        w += 1;
        if w >= bits.len() {
            return None;
        }
        word = bits[w];
    }
}

impl Sched {
    fn legacy(m: usize) -> Sched {
        let mut bits = vec![u64::MAX; m.div_ceil(64)];
        if !m.is_multiple_of(64)
            && let Some(last) = bits.last_mut()
        {
            *last = (1u64 << (m % 64)) - 1;
        }
        if m == 0 {
            bits.clear();
        }
        Sched::Legacy {
            bits,
            ready: m,
            cursor: 0,
            next: Vec::new(),
            in_next: vec![false; m],
        }
    }

    fn dedup(m: usize) -> Sched {
        Sched::Dedup {
            cur: Vec::new(),
            nxt: (0..m).collect(),
            stamp: vec![0; m],
            wave_gen: 0,
            dedup_hits: 0,
        }
    }

    /// Restores the just-built all-ready state in place, keeping the
    /// allocations (pooled run reset). `m` must match the shard's node
    /// count the scheduler was built with.
    fn reset(&mut self, m: usize) {
        match self {
            Sched::Legacy {
                bits,
                ready,
                cursor,
                next,
                in_next,
            } => {
                bits.fill(u64::MAX);
                if !m.is_multiple_of(64)
                    && let Some(last) = bits.last_mut()
                {
                    *last = (1u64 << (m % 64)) - 1;
                }
                *ready = m;
                *cursor = 0;
                next.clear();
                in_next.iter_mut().for_each(|b| *b = false);
            }
            Sched::Dedup {
                cur,
                nxt,
                stamp,
                wave_gen,
                dedup_hits,
            } => {
                cur.clear();
                nxt.clear();
                nxt.extend(0..m);
                stamp.iter_mut().for_each(|s| *s = 0);
                *wave_gen = 0;
                *dedup_hits = 0;
            }
        }
    }
}

/// The capacity spec of one shard-local channel.
#[derive(Debug, Clone, Copy)]
struct ChanSpec {
    /// FIFO capacity in tokens.
    capacity: usize,
    /// Whether this is the reader half of a cross-shard edge.
    cross_reader: bool,
}

impl ChanSpec {
    fn build(self, latency: u64) -> Channel {
        if self.cross_reader {
            Channel::cross_reader(self.capacity, latency)
        } else {
            Channel::new(self.capacity, latency)
        }
    }
}

/// The immutable topology of one shard: which nodes it owns, how its
/// local channels map onto graph edges, and which channels are the
/// reader halves of incoming cut edges. Shared by every run of the plan.
struct ShardPlan {
    /// Global node ids, ascending; local index ↔ position here.
    node_ids: Vec<u32>,
    /// Per-local-channel capacity spec (run state builds the queues).
    chans: Vec<ChanSpec>,
    /// Global edge id → local channel index (`u32::MAX` = not here).
    edge_map: Vec<u32>,
    /// Local channel → local reader/writer node (`u32::MAX` = remote or
    /// none).
    reader_of: Vec<u32>,
    writer_of: Vec<u32>,
    /// Local edge lists per local node (inputs then outputs, local
    /// channel indices), mirroring the graph's port order.
    ins_of: Vec<Vec<u32>>,
    outs_of: Vec<Vec<u32>>,
    /// Reader halves of this shard's incoming cut edges (local channel
    /// indices): the only channels that can carry tokens in from outside,
    /// whose time floors bound the barrier-elision allowance.
    cut_ins: Vec<u32>,
}

impl ShardPlan {
    /// Translates a blocked marker carrying a shard-local channel index
    /// back to the global edge id, by scanning the forward map
    /// (diagnostics only; no reverse table is kept).
    fn unmap_blocked(&self, b: nodes::Blocked) -> nodes::Blocked {
        let unmap = |e: EdgeId| {
            self.edge_map
                .iter()
                .position(|&m| m == e.0)
                .map_or(e, |g| EdgeId(g as u32))
        };
        match b {
            nodes::Blocked::Input(e) => nodes::Blocked::Input(unmap(e)),
            nodes::Blocked::Output(e) => nodes::Blocked::Output(unmap(e)),
            nodes::Blocked::Hbm => nodes::Blocked::Hbm,
        }
    }
}

/// One shard's mutable execution state: node executors, channel queues,
/// scratchpad arena, wake lists, and time calendar. A shard's sub-round
/// execution is a pure function of this state plus the (immutable)
/// [`ShardPlan`] — it touches nothing outside itself except the
/// (lock-free for timing runs) backing store.
///
/// Generic over the executor kind `N` ([`NodeExec`]): the compiled enum
/// on the default path, boxed `dyn` nodes on the differential-testing
/// reference path. Each instantiation monomorphizes the whole wave loop.
struct Shard<N> {
    nodes: Vec<N>,
    channels: Vec<Channel>,
    arena: Arena,
    sched: Sched,
    /// Host nanoseconds per local node's fires (only filled under
    /// `SimConfig::profile_fires`).
    fire_ns: Vec<u64>,
    /// Effective execution horizon: the global horizon, possibly raised
    /// by the cut-slack allowance (barrier elision). Monotone; set by the
    /// coordinator in its exclusive window.
    eff: u64,
    /// `(ready_time, local channel)` for heads beyond the horizon.
    calendar: BinaryHeap<Reverse<(u64, usize)>>,
    undone: usize,
    rounds: u64,
    // Off-chip request plumbing (per local node).
    hbm_reqs: Vec<HbmRequest>,
    hbm_seq: Vec<u64>,
    hbm_resp: Vec<VecDeque<nodes::RespRun>>,
}

impl<N: NodeExec> Shard<N> {
    /// Wakes local node `j` into the pending wave (barrier-time wakes:
    /// the engine is between sub-rounds). Done nodes are never woken — a
    /// stale entry would read as pending work and stall the global
    /// horizon.
    fn wake(&mut self, j: u32) {
        let j = j as usize;
        if j == u32::MAX as usize || self.nodes[j].done() {
            return;
        }
        match &mut self.sched {
            Sched::Legacy {
                bits,
                ready,
                cursor,
                ..
            } => {
                if bits[j / 64] & (1 << (j % 64)) == 0 {
                    bits[j / 64] |= 1 << (j % 64);
                    *ready += 1;
                    *cursor = (*cursor).min(j);
                }
            }
            Sched::Dedup {
                nxt,
                stamp,
                wave_gen,
                dedup_hits,
                ..
            } => {
                if stamp[j] == *wave_gen {
                    *dedup_hits += 1;
                } else {
                    stamp[j] = *wave_gen;
                    nxt.push(j);
                }
            }
        }
    }

    /// Whether any node is queued to fire in the next sub-round.
    fn has_ready(&self) -> bool {
        match &self.sched {
            Sched::Legacy { ready, .. } => *ready > 0,
            Sched::Dedup { nxt, .. } => !nxt.is_empty(),
        }
    }

    /// One cycle below the earliest simulated time at which a token
    /// could still arrive on an incoming cut channel — how far this
    /// shard may run ahead of the global horizon with no barrier (its
    /// execution up to the bound is a pure local function). Channels
    /// whose producer finished or whose reader closed carry nothing
    /// further and do not constrain the bound.
    fn allowance(&self, plan: &ShardPlan) -> u64 {
        let mut bound = u64::MAX;
        for &c in &plan.cut_ins {
            let ch = &self.channels[c as usize];
            if ch.src_finished() || ch.is_closed() {
                continue;
            }
            bound = bound.min(ch.time_floor());
        }
        bound.saturating_sub(1)
    }

    /// Raises the effective horizon to `new` (if higher), waking readers
    /// of heads that became visible.
    fn raise_eff(&mut self, plan: &ShardPlan, new: u64) {
        if new > self.eff {
            let old = self.eff;
            self.eff = new;
            self.wake_visible(plan, old, new);
        }
    }

    /// Pops stale calendar entries and returns the earliest live
    /// beyond-horizon event time, leaving the live entry queued.
    fn next_event(&mut self, horizon: u64) -> Option<u64> {
        while let Some(&Reverse((t, idx))) = self.calendar.peek() {
            let live = self.channels[idx]
                .peek()
                .is_some_and(|(ready, _)| ready == t && ready > horizon);
            if live {
                return Some(t);
            }
            self.calendar.pop();
        }
        None
    }

    /// Wakes the readers of every head that became visible when the
    /// horizon advanced from `old` to `new` (the monolithic engine's
    /// calendar drain).
    fn wake_visible(&mut self, plan: &ShardPlan, old: u64, new: u64) {
        while let Some(&Reverse((t, idx))) = self.calendar.peek() {
            if t > new {
                break;
            }
            self.calendar.pop();
            let live = self.channels[idx]
                .peek()
                .is_some_and(|(ready, _)| ready == t && ready > old);
            if live {
                let j = plan.reader_of[idx];
                self.wake(j);
            }
        }
    }

    /// Diagnostic lines for this shard's blocked nodes. Compiled
    /// executors report shard-local edge indices; unmap them back to
    /// global edge ids so the message matches the graph (cold path).
    fn blocked_lines(&self, plan: &ShardPlan, graph: &Graph, out: &mut Vec<(u32, String)>) {
        for (i, nd) in self.nodes.iter().enumerate() {
            if nd.done() {
                continue;
            }
            let gid = plan.node_ids[i];
            let g = &graph.nodes()[gid as usize];
            let why = nd.blocked_on().map_or_else(String::new, |b| {
                let b = if N::IDENTITY_CHANS {
                    plan.unmap_blocked(b)
                } else {
                    b
                };
                format!(" ({b})")
            });
            out.push((
                gid,
                format!("{gid}:{} t={}{why}", g.op.name(), nd.local_time()),
            ));
        }
    }

    /// Fires local node `i` under horizon `eff`, raises the floors of its
    /// outputs on progress, and drains its channel events into `wakes`
    /// (local node indices, `u32::MAX` for remote endpoints, in event
    /// order). Returns whether the node made progress.
    #[allow(clippy::too_many_arguments)]
    fn fire_node(
        &mut self,
        plan: &ShardPlan,
        i: usize,
        eff: u64,
        cfg: &SimConfig,
        store: &SharedStore,
        graph: &Graph,
        hbm: &mut Option<&mut Hbm>,
        wakes: &mut Vec<u32>,
    ) -> Result<bool> {
        let sink = match hbm {
            Some(h) => HbmSink::Immediate(h),
            None => HbmSink::Queued(&mut self.hbm_reqs),
        };
        // Compiled executors carry shard-local channel indices baked at
        // freeze time, so the per-access edge translation disappears.
        let chans = if N::IDENTITY_CHANS {
            Chans::identity(&mut self.channels)
        } else {
            Chans::mapped(&mut self.channels, &plan.edge_map)
        };
        let mut ctx = Ctx {
            chans,
            hbm: HbmPort::new(
                sink,
                plan.node_ids[i],
                &mut self.hbm_seq[i],
                &mut self.hbm_resp[i],
            ),
            arena: &mut self.arena,
            store,
            cfg,
            horizon: eff,
        };
        let t0 = cfg.profile_fires.then(std::time::Instant::now);
        let p = self.nodes[i].fire(&mut ctx).map_err(|e| {
            let gid = plan.node_ids[i] as usize;
            let g = &graph.nodes()[gid];
            let label = if g.label.is_empty() {
                g.op.name().to_string()
            } else {
                format!("{} ({})", g.op.name(), g.label)
            };
            StepError::Exec(format!("node {gid} [{label}]: {e}"))
        })?;
        if let Some(t0) = t0 {
            self.fire_ns[i] += t0.elapsed().as_nanos() as u64;
        }
        if p {
            // Publish a conservative lower bound on this node's future
            // token times so arrival-order merges can commit safely.
            let t = self.nodes[i].local_time();
            for &c in &plan.outs_of[i] {
                self.channels[c as usize].raise_floor(t);
            }
        }
        // Drain this node's channel events into wakes. Remote endpoints
        // (u32::MAX) are handled by the barrier coordinator.
        for &c in plan.ins_of[i].iter().chain(plan.outs_of[i].iter()) {
            let idx = c as usize;
            let ev = self.channels[idx].take_events();
            if ev == 0 {
                continue;
            }
            if ev & (event::FREED | event::CLOSED) != 0 {
                wakes.push(plan.writer_of[idx]);
            }
            if ev & event::SRC_FINISHED != 0 {
                wakes.push(plan.reader_of[idx]);
            }
            if ev & (event::ENQUEUED | event::FREED) != 0 {
                // A new head may have appeared (token enqueued on an
                // empty queue, or the old head popped). Wake the reader
                // if it is visible in the current window; otherwise file
                // it in the calendar for the horizon advance.
                if let Some((ready, _)) = self.channels[idx].peek() {
                    if ready <= eff {
                        if ev & event::ENQUEUED != 0 {
                            wakes.push(plan.reader_of[idx]);
                        }
                    } else {
                        self.calendar.push(Reverse((ready, idx)));
                    }
                }
            }
        }
        Ok(p)
    }

    /// Runs this shard's wave scheduler to quiescence under `eff`.
    /// `hbm` is the immediate ledger for single-shard plans and the
    /// solo-shard fast path; otherwise requests queue for the barrier
    /// commit.
    #[allow(clippy::too_many_arguments)]
    fn run_to_quiescence(
        &mut self,
        plan: &ShardPlan,
        eff: u64,
        cfg: &SimConfig,
        store: &SharedStore,
        graph: &Graph,
        hbm: Option<&mut Hbm>,
        ctrl: &RunCtrl,
    ) -> Result<()> {
        let mut sched = std::mem::take(&mut self.sched);
        let result = match &mut sched {
            Sched::Legacy {
                bits,
                ready,
                cursor,
                next,
                in_next,
            } => self.run_legacy(
                plan, bits, ready, cursor, next, in_next, eff, cfg, store, graph, hbm, ctrl,
            ),
            Sched::Dedup {
                cur,
                nxt,
                stamp,
                wave_gen,
                dedup_hits,
            } => self.run_dedup(
                plan, cur, nxt, stamp, wave_gen, dedup_hits, eff, cfg, store, graph, hbm, ctrl,
            ),
        };
        self.sched = sched;
        result
    }

    /// The legacy (PR 1) wave loop, bit-for-bit: ahead-of-sweep wakes
    /// join the current wave, a node can re-fire within a wave. The wave
    /// bitset is swept in ascending node order — exactly the order the
    /// old min-heap popped, since in-wave wakes always target indices
    /// ahead of the sweep.
    #[allow(clippy::too_many_arguments)]
    fn run_legacy(
        &mut self,
        plan: &ShardPlan,
        bits: &mut [u64],
        ready: &mut usize,
        cursor: &mut usize,
        next: &mut Vec<usize>,
        in_next: &mut [bool],
        eff: u64,
        cfg: &SimConfig,
        store: &SharedStore,
        graph: &Graph,
        mut hbm: Option<&mut Hbm>,
        ctrl: &RunCtrl,
    ) -> Result<()> {
        let mut wakes: Vec<u32> = Vec::new();
        while self.undone > 0 && *ready > 0 {
            self.rounds += 1;
            if self.rounds > cfg.max_rounds {
                return Err(self.round_limit_error(cfg));
            }
            ctrl.check_wave()?;
            while let Some(i) = bits_next(bits, *cursor) {
                bits[i / 64] &= !(1 << (i % 64));
                *ready -= 1;
                *cursor = i + 1;
                if self.nodes[i].done() {
                    continue;
                }
                wakes.clear();
                let p = self.fire_node(plan, i, eff, cfg, store, graph, &mut hbm, &mut wakes)?;
                for &j in &wakes {
                    let j = j as usize;
                    if j == u32::MAX as usize {
                        continue;
                    }
                    if j > i {
                        if bits[j / 64] & (1 << (j % 64)) == 0 {
                            bits[j / 64] |= 1 << (j % 64);
                            *ready += 1;
                        }
                    } else if !in_next[j] {
                        in_next[j] = true;
                        next.push(j);
                    }
                }
                if self.nodes[i].done() {
                    self.undone -= 1;
                    if self.undone == 0 {
                        break;
                    }
                } else if p && !in_next[i] {
                    // Progress with work possibly remaining (budget cap,
                    // more queued input): poll again next wave.
                    in_next[i] = true;
                    next.push(i);
                }
            }
            for j in next.drain(..) {
                in_next[j] = false;
                if bits[j / 64] & (1 << (j % 64)) == 0 {
                    bits[j / 64] |= 1 << (j % 64);
                    *ready += 1;
                }
            }
            *cursor = 0;
        }
        if self.undone == 0 {
            // A finished shard must read as quiescent: stale wave entries
            // for done nodes would stall the global horizon forever.
            bits.fill(0);
            *ready = 0;
            *cursor = 0;
            for j in next.drain(..) {
                in_next[j] = false;
            }
        }
        Ok(())
    }

    /// The deduplicated wave loop for sharded plans: each wave is the
    /// sorted generation-stamped ready set, and every wake (including a
    /// node's own progress re-poll) targets the next wave at most once.
    #[allow(clippy::too_many_arguments)]
    fn run_dedup(
        &mut self,
        plan: &ShardPlan,
        cur: &mut Vec<usize>,
        nxt: &mut Vec<usize>,
        stamp: &mut [u64],
        wave_gen: &mut u64,
        dedup_hits: &mut u64,
        eff: u64,
        cfg: &SimConfig,
        store: &SharedStore,
        graph: &Graph,
        mut hbm: Option<&mut Hbm>,
        ctrl: &RunCtrl,
    ) -> Result<()> {
        let mut wakes: Vec<u32> = Vec::new();
        while self.undone > 0 && !nxt.is_empty() {
            self.rounds += 1;
            if self.rounds > cfg.max_rounds {
                return Err(self.round_limit_error(cfg));
            }
            ctrl.check_wave()?;
            std::mem::swap(cur, nxt);
            *wave_gen += 1;
            cur.sort_unstable();
            for &i in cur.iter() {
                if self.nodes[i].done() {
                    continue;
                }
                wakes.clear();
                let p = self.fire_node(plan, i, eff, cfg, store, graph, &mut hbm, &mut wakes)?;
                let mut enqueue = |j: usize| {
                    if stamp[j] == *wave_gen {
                        *dedup_hits += 1;
                    } else {
                        stamp[j] = *wave_gen;
                        nxt.push(j);
                    }
                };
                for &j in &wakes {
                    let j = j as usize;
                    if j != u32::MAX as usize && !self.nodes[j].done() {
                        enqueue(j);
                    }
                }
                if self.nodes[i].done() {
                    self.undone -= 1;
                    if self.undone == 0 {
                        break;
                    }
                } else if p {
                    enqueue(i);
                }
            }
            cur.clear();
        }
        if self.undone == 0 {
            nxt.clear();
        }
        Ok(())
    }

    /// The typed `max_rounds` overrun error, carrying the counters at
    /// the blow so callers classify the budget blow as non-retryable
    /// and tests can match on it.
    fn round_limit_error(&self, cfg: &SimConfig) -> StepError {
        StepError::RoundLimit {
            limit: cfg.max_rounds,
            rounds: self.rounds,
            fires: self.nodes.iter().map(|n| n.stats().fires).sum(),
        }
    }
}

/// A cross-shard edge: writer half `w_ch` in shard `w_shard`, reader half
/// `r_ch` in shard `r_shard`.
struct CrossEdge {
    w_shard: u32,
    w_ch: u32,
    r_shard: u32,
    r_ch: u32,
}

/// Per-run inputs for [`SimPlan::run_bound`]: replacement token streams
/// for `Source` nodes and dense off-chip preloads.
///
/// Source rebinding is what makes one plan serve many trace iterations:
/// a decode loop binds each iteration's grown KV-request stream and
/// re-sampled expert routing onto the same partitioned topology instead
/// of rebuilding graph + partition + channels per iteration. Bound
/// streams are validated against the source's declared stream rank at
/// run start; an empty binding reproduces the plan's baked-in streams
/// bit for bit.
#[derive(Debug, Clone, Default)]
pub struct RunBinding {
    sources: BTreeMap<NodeId, Vec<Token>>,
    preloads: Vec<(u64, usize, usize, Vec<f32>)>,
    limits: RunLimits,
}

/// Per-run execution limits carried by a [`RunBinding`]: deadlines and
/// a cooperative cancellation token.
///
/// Cycle- and round-denominated deadlines are **deterministic**: they
/// are checked only at points the determinism contract already orders
/// (the monolithic window advance and the coordinator's exclusive
/// barrier window), so a run that blows a simulated deadline fails with
/// the identical [`StepError::Deadline`] at any thread or worker count.
/// The wall-clock deadline and the [`CancelToken`] are polled per
/// scheduler wave — inherently host-dependent, opt-in escape hatches
/// that no conformance check ever uses.
#[derive(Debug, Clone, Default)]
pub struct RunLimits {
    deadline_cycles: Option<u64>,
    deadline_rounds: Option<u64>,
    wall_deadline_ms: Option<u64>,
    cancel: Option<CancelToken>,
}

impl RunLimits {
    fn is_empty(&self) -> bool {
        self.deadline_cycles.is_none()
            && self.deadline_rounds.is_none()
            && self.wall_deadline_ms.is_none()
            && self.cancel.is_none()
    }
}

/// The resolved limit state for one run: wall deadlines become an
/// [`Instant`] at run start so waves compare against a fixed point.
struct RunCtrl {
    deadline_cycles: Option<u64>,
    deadline_rounds: Option<u64>,
    wall: Option<(Instant, u64)>,
    cancel: Option<CancelToken>,
}

impl RunCtrl {
    fn new(limits: &RunLimits) -> RunCtrl {
        RunCtrl {
            deadline_cycles: limits.deadline_cycles,
            deadline_rounds: limits.deadline_rounds,
            wall: limits.wall_deadline_ms.map(|ms| (Instant::now(), ms)),
            cancel: limits.cancel.clone(),
        }
    }

    /// The nondeterministic per-wave checks: cancellation and the
    /// wall-clock deadline. Cheap when no limit is armed.
    fn check_wave(&self) -> Result<()> {
        if let Some(tok) = &self.cancel
            && tok.is_cancelled()
        {
            return Err(StepError::Cancelled);
        }
        if let Some((start, ms)) = &self.wall {
            // Compare durations, not truncated milliseconds: a sub-ms
            // elapsed would floor to 0 and sail past a 0 ms limit.
            let elapsed = start.elapsed();
            if elapsed > std::time::Duration::from_millis(*ms) {
                return Err(StepError::Deadline {
                    kind: DeadlineKind::WallMs,
                    limit: *ms,
                    at: elapsed.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// The deterministic round-deadline check, run where `rounds` is a
    /// pure function of the schedule (never mid-wave).
    fn check_rounds(&self, rounds: u64) -> Result<()> {
        if let Some(limit) = self.deadline_rounds
            && rounds > limit
        {
            return Err(StepError::Deadline {
                kind: DeadlineKind::Rounds,
                limit,
                at: rounds,
            });
        }
        Ok(())
    }

    /// The deterministic cycle-deadline check, run when the global
    /// horizon is about to advance past `t0` (the earliest pending
    /// event): a run whose next event lies beyond the deadline can
    /// never finish within it.
    fn check_cycles(&self, t0: u64) -> Result<()> {
        if let Some(limit) = self.deadline_cycles
            && t0 > limit
        {
            return Err(StepError::Deadline {
                kind: DeadlineKind::Cycles,
                limit,
                at: t0,
            });
        }
        Ok(())
    }

    /// The authoritative deadline check on a finished run: a report
    /// whose final cycle or round count exceeds its budget fails even
    /// when the run completed without crossing a window boundary (small
    /// graphs can quiesce in one pass). The mid-run checks are early
    /// exits consistent with this one — a window trip at `t0 > limit`
    /// implies the finished run would have blown the budget too.
    fn check_final(&self, report: &SimReport) -> Result<()> {
        self.check_cycles(report.cycles)?;
        self.check_rounds(report.rounds)
    }
}

impl RunBinding {
    /// An empty binding: the plan's baked-in source streams play as-is.
    pub fn new() -> RunBinding {
        RunBinding::default()
    }

    /// Replaces the token stream of `Source` node `id` for this run
    /// (include the trailing `Done`). Validated against the source's
    /// declared rank when the run starts.
    pub fn bind_source(&mut self, id: NodeId, tokens: Vec<Token>) -> &mut Self {
        self.sources.insert(id, tokens);
        self
    }

    /// Registers a dense tensor in off-chip memory so loads return real
    /// data (functional runs).
    pub fn preload(
        &mut self,
        base_addr: u64,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> &mut Self {
        self.preloads.push((base_addr, rows, cols, data));
        self
    }

    /// Fails the run with [`StepError::Deadline`] (`Cycles`) once the
    /// conservative horizon would advance past `limit` simulated cycles
    /// with work still pending. Deterministic at any thread count.
    pub fn deadline_cycles(&mut self, limit: u64) -> &mut Self {
        self.limits.deadline_cycles = Some(limit);
        self
    }

    /// Fails the run with [`StepError::Deadline`] (`Rounds`) once the
    /// scheduler has executed more than `limit` rounds with work still
    /// pending. Deterministic at any thread count. (Monolithic plans
    /// count waves; sharded plans count summed shard waves at each
    /// coordination barrier.)
    pub fn deadline_rounds(&mut self, limit: u64) -> &mut Self {
        self.limits.deadline_rounds = Some(limit);
        self
    }

    /// Fails the run with [`StepError::Deadline`] (`WallMs`) once more
    /// than `limit` host milliseconds elapse. **Nondeterministic** — an
    /// operational guard for untrusted workloads, never used by any
    /// conformance check.
    pub fn wall_deadline_ms(&mut self, limit: u64) -> &mut Self {
        self.limits.wall_deadline_ms = Some(limit);
        self
    }

    /// Attaches a cooperative [`CancelToken`]: raising it fails the run
    /// with [`StepError::Cancelled`] at the next scheduler wave.
    pub fn cancel_token(&mut self, token: CancelToken) -> &mut Self {
        self.limits.cancel = Some(token);
        self
    }

    /// Whether the binding carries no overrides.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty() && self.preloads.is_empty() && self.limits.is_empty()
    }

    /// The content identity of this binding for report-cache keys: a
    /// seeded [`crate::Fingerprint`] folding every bound source's token
    /// stream (in node-id order — `sources` is a `BTreeMap`, so
    /// insertion order cannot leak in), every preload (address, shape,
    /// and data bits), and the **deterministic** limits (cycle and round
    /// deadlines change a run's outcome, so they are part of its
    /// identity). The host-dependent limits — wall deadline and
    /// cancellation — are deliberately *not* folded: they make the
    /// outcome impure, which [`RunBinding::cache_safe`] reports so
    /// caches can bypass such bindings entirely.
    ///
    /// Two bindings with equal fingerprints drive a given plan to
    /// bit-identical reports (minus the host-side `run_allocs` /
    /// `pool_resets` bookkeeping); any single-token, ordering, or
    /// preload perturbation changes the fingerprint
    /// (`crates/sim/tests/report_cache.rs` holds both directions over
    /// seeded generators).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("RunBinding");
        fp.push_u64(self.sources.len() as u64);
        for (id, tokens) in &self.sources {
            fp.push_debug(id).push_u64(tokens.len() as u64);
            fp.push_debug(tokens);
        }
        fp.push_u64(self.preloads.len() as u64);
        for (base, rows, cols, data) in &self.preloads {
            fp.push_u64(*base)
                .push_u64(*rows as u64)
                .push_u64(*cols as u64)
                .push_u64(data.len() as u64);
            for v in data {
                fp.push_u64(u64::from(v.to_bits()));
            }
        }
        fp.push_debug(&self.limits.deadline_cycles);
        fp.push_debug(&self.limits.deadline_rounds);
        fp.finish()
    }

    /// Whether a run of this binding is a pure function of
    /// `(plan, binding)`: true unless a host-dependent limit is armed
    /// (wall-clock deadline or cancellation token), whose firing depends
    /// on the host scheduler. [`crate::ReportCache`] refuses to store or
    /// serve bindings that are not cache-safe.
    pub fn cache_safe(&self) -> bool {
        self.limits.wall_deadline_ms.is_none() && self.limits.cancel.is_none()
    }
}

/// The mutable state of one run of a [`SimPlan`]: node executors,
/// channel queues, arenas, scheduler state, the HBM ledger, and the
/// functional backing store. Built per run — or, on the compiled path,
/// parked in a [`RunPool`] between runs and reset in place.
struct RunState<N> {
    shards: Vec<Mutex<Shard<N>>>,
    hbm: Hbm,
    store: SharedStore,
    counters: SchedCounters,
}

/// Parks one compiled [`RunState`] between runs of the same plan, making
/// steady-state reruns and sweep points allocation-free: every channel
/// queue, outbox, ready set, ledger vector, and scratch buffer keeps its
/// capacity and is reset in place by the next
/// [`SimPlan::pooled_run_bound`].
///
/// The pool remembers which plan its state belongs to; handing it to a
/// different plan simply rebuilds (and re-parks) fresh state, so one
/// pool can trail a sweep across plans. A run that fails mid-flight
/// drops its state instead of parking it — a poisoned half-run state
/// must never leak into the next run.
#[derive(Default)]
pub struct RunPool {
    /// Identity of the plan the parked state was built from.
    plan_id: u64,
    state: Option<RunState<CompiledNode>>,
}

impl RunPool {
    /// An empty pool; the first pooled run builds and parks its state.
    pub fn new() -> RunPool {
        RunPool::default()
    }
}

/// Process-unique plan identities for [`RunPool`] matching.
static PLAN_IDS: AtomicU64 = AtomicU64::new(1);

/// An immutable, reusable execution plan for one STeP graph: the graph,
/// the frozen [`SimConfig`], the shard partition (with cut metadata),
/// and every shard's channel topology.
///
/// Build once with [`SimPlan::new`], run many times with
/// [`SimPlan::run`] / [`SimPlan::run_bound`]. The plan is read-only
/// during execution, so `Arc<SimPlan>` can be shared across threads and
/// run concurrently; each run materializes its own `RunState`. Every
/// run of the same plan with the same binding is bit-identical — to
/// other runs of the plan and to a fresh
/// `Simulation::new(graph, cfg)?.run()?`.
pub struct SimPlan {
    graph: Graph,
    cfg: SimConfig,
    plans: Vec<ShardPlan>,
    cross: Vec<CrossEdge>,
    /// Node (global id) → owning shard / local index.
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    /// Compiled executor prototypes, one per shard in `node_ids` order,
    /// with `Io` edge ids pre-resolved to shard-local channel slots.
    /// Each run clones its shard's prototypes — static dispatch, no
    /// vtable, no per-run edge translation.
    protos: Vec<Vec<CompiledNode>>,
    /// Process-unique identity for [`RunPool`] matching.
    id: u64,
}

impl SimPlan {
    /// Partitions `graph` and lays out the shard/channel topology.
    ///
    /// The partition is derived from the graph and
    /// [`SimConfig::shards`] only — never from `threads` — so reported
    /// results are independent of worker count.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if an operator cannot be executed.
    pub fn new(graph: Graph, cfg: SimConfig) -> Result<SimPlan> {
        let plan = match cfg.shards {
            1 => Partition::monolithic(&graph),
            0 => partition(&graph, &PartitionCfg::default()),
            n => partition(
                &graph,
                &PartitionCfg {
                    target_shards: n,
                    min_nodes: 0,
                    ..PartitionCfg::default()
                },
            ),
        };
        let k = plan.shards;
        let n = graph.nodes().len();
        let e = graph.edges().len();

        // Local node ids per shard, ascending.
        let mut node_ids: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut local_node = vec![u32::MAX; n];
        for (i, &s) in plan.shard_of.iter().enumerate() {
            local_node[i] = node_ids[s as usize].len() as u32;
            node_ids[s as usize].push(i as u32);
        }

        // Channels: intra-shard edges get one channel in their shard;
        // cut edges get a writer half and a reader half.
        let mut chans: Vec<Vec<ChanSpec>> = (0..k).map(|_| Vec::new()).collect();
        let mut edge_map: Vec<Vec<u32>> = vec![vec![u32::MAX; e]; k];
        let mut reader_of: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut writer_of: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut cross = Vec::new();
        for (ei, edge) in graph.edges().iter().enumerate() {
            let src = edge.src.0.0 as usize;
            let dst = edge
                .dst
                .expect("finished graphs have no dangling edges")
                .0
                .0 as usize;
            let (ws, rs) = (plan.shard_of[src] as usize, plan.shard_of[dst] as usize);
            if ws == rs {
                let s = ws;
                edge_map[s][ei] = chans[s].len() as u32;
                chans[s].push(ChanSpec {
                    capacity: edge.capacity,
                    cross_reader: false,
                });
                writer_of[s].push(local_node[src]);
                reader_of[s].push(local_node[dst]);
            } else {
                let w_ch = chans[ws].len() as u32;
                edge_map[ws][ei] = w_ch;
                chans[ws].push(ChanSpec {
                    capacity: edge.capacity,
                    cross_reader: false,
                });
                writer_of[ws].push(local_node[src]);
                reader_of[ws].push(u32::MAX);
                let r_ch = chans[rs].len() as u32;
                edge_map[rs][ei] = r_ch;
                chans[rs].push(ChanSpec {
                    capacity: edge.capacity,
                    cross_reader: true,
                });
                writer_of[rs].push(u32::MAX);
                reader_of[rs].push(local_node[dst]);
                cross.push(CrossEdge {
                    w_shard: ws as u32,
                    w_ch,
                    r_shard: rs as u32,
                    r_ch,
                });
            }
        }

        let mut shard_plans = Vec::with_capacity(k);
        for s in 0..k {
            let ids = std::mem::take(&mut node_ids[s]);
            let map = std::mem::take(&mut edge_map[s]);
            let ins_of: Vec<Vec<u32>> = ids
                .iter()
                .map(|&gid| {
                    graph.nodes()[gid as usize]
                        .inputs
                        .iter()
                        .map(|e| map[e.0 as usize])
                        .collect()
                })
                .collect();
            let outs_of: Vec<Vec<u32>> = ids
                .iter()
                .map(|&gid| {
                    graph.nodes()[gid as usize]
                        .outputs
                        .iter()
                        .map(|e| map[e.0 as usize])
                        .collect()
                })
                .collect();
            let cut_ins: Vec<u32> = plan.cut_ins_of[s]
                .iter()
                .map(|e| map[e.0 as usize])
                .collect();
            shard_plans.push(ShardPlan {
                node_ids: ids,
                chans: std::mem::take(&mut chans[s]),
                edge_map: map,
                reader_of: std::mem::take(&mut reader_of[s]),
                writer_of: std::mem::take(&mut writer_of[s]),
                ins_of,
                outs_of,
                cut_ins,
            });
        }
        // Compile every node into its static-dispatch executor, with
        // `Io` edge ids rewritten to the owning shard's channel slots.
        // This also surfaces inexecutable operators at plan time (not
        // first run).
        let mut protos = Vec::with_capacity(k);
        for sp in &shard_plans {
            let mut v = Vec::with_capacity(sp.node_ids.len());
            for &gid in &sp.node_ids {
                let mut node = nodes::compile_node_bound(&graph, gid as usize, None)?;
                let io = node.io_mut();
                for e in io.ins.iter_mut().chain(io.outs.iter_mut()) {
                    *e = EdgeId(sp.edge_map[e.0 as usize]);
                }
                v.push(node);
            }
            protos.push(v);
        }
        Ok(SimPlan {
            graph,
            cfg,
            plans: shard_plans,
            cross,
            shard_of: plan.shard_of,
            local_of: local_node,
            protos,
            id: PLAN_IDS.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Process-unique plan identity — the key [`RunPool`] parking uses,
    /// exposed so drivers that hold many plans (e.g. a sweep-service
    /// worker) can keep one pool per plan in a map.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The planned graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The frozen configuration.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Shards in the plan.
    pub fn shards(&self) -> usize {
        self.plans.len()
    }

    /// Runs the plan once with its baked-in source streams.
    ///
    /// Takes `&self`: the plan is never mutated, so an `Arc<SimPlan>`
    /// may run concurrently from many threads, each run with its own
    /// state and bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Deadlock`] if the graph stops making progress
    /// before finishing, or the first functional error raised by a node.
    pub fn run(&self) -> Result<SimReport> {
        self.run_bound(&RunBinding::default())
    }

    /// Runs the plan once with per-run source streams and preloads.
    ///
    /// Single-shard plans run the wave scheduler inline with immediate
    /// off-chip commitment (the legacy engine, bit for bit). Sharded
    /// plans run sub-rounds over the shards — on `SimConfig::threads`
    /// workers when > 1 — separated by deterministic coordination
    /// barriers; see the module docs for the determinism contract.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] for a binding that targets a
    /// non-`Source` node or violates the source's stream rank, plus the
    /// run errors of [`SimPlan::run`].
    pub fn run_bound(&self, binding: &RunBinding) -> Result<SimReport> {
        let ctrl = RunCtrl::new(&binding.limits);
        if self.cfg.compiled {
            let mut state = self.build_compiled_state(binding)?;
            self.drive(&mut state, &ctrl)?;
            let report = self.build_report(&mut state);
            ctrl.check_final(&report)?;
            Ok(report)
        } else {
            let mut state = self.build_state(binding)?;
            self.drive(&mut state, &ctrl)?;
            let report = self.build_report(&mut state);
            ctrl.check_final(&report)?;
            Ok(report)
        }
    }

    /// Runs the plan once, parking the run state in `pool` for the next
    /// run (see [`SimPlan::pooled_run_bound`]).
    ///
    /// # Errors
    ///
    /// The run errors of [`SimPlan::run`].
    pub fn pooled_run(&self, pool: &mut RunPool) -> Result<SimReport> {
        self.pooled_run_bound(&RunBinding::default(), pool)
    }

    /// Runs the plan once with per-run source streams and preloads,
    /// reusing the run state parked in `pool` when it belongs to this
    /// plan — channels, outboxes, ready sets, ledgers, and counters are
    /// reset in place, so steady-state reruns allocate nothing beyond
    /// what the workload itself grows. The report's
    /// [`SimReport::run_allocs`] / [`SimReport::pool_resets`] say which
    /// path was taken.
    ///
    /// Results are bit-identical to [`SimPlan::run_bound`] with the same
    /// binding. With [`SimConfig::compiled`] disabled this falls back to
    /// `run_bound` (dynamic dispatch pools nothing).
    ///
    /// # Errors
    ///
    /// The errors of [`SimPlan::run_bound`]. A failed run drops its
    /// state instead of parking it.
    pub fn pooled_run_bound(&self, binding: &RunBinding, pool: &mut RunPool) -> Result<SimReport> {
        if !self.cfg.compiled {
            return self.run_bound(binding);
        }
        // Validate before taking the parked state: a rejected binding
        // must not cost the pool its buffers.
        self.validate_binding(binding)?;
        let ctrl = RunCtrl::new(&binding.limits);
        let (mut state, reused) = match pool.state.take() {
            Some(mut st) if pool.plan_id == self.id => {
                self.reset_state(&mut st, binding);
                (st, true)
            }
            _ => (self.build_compiled_state(binding)?, false),
        };
        self.drive(&mut state, &ctrl)?;
        let mut report = self.build_report(&mut state);
        // A deadline blow is a failed run: state drops instead of
        // parking, like every other error path.
        ctrl.check_final(&report)?;
        report.run_allocs = u64::from(!reused);
        report.pool_resets = u64::from(reused);
        pool.plan_id = self.id;
        pool.state = Some(state);
        Ok(report)
    }

    /// Drives a materialized run state to completion.
    fn drive<N: NodeExec>(&self, state: &mut RunState<N>, ctrl: &RunCtrl) -> Result<()> {
        if self.plans.len() == 1 {
            self.run_single(state, ctrl)
        } else {
            let threads = self.cfg.threads.clamp(1, self.plans.len());
            if threads == 1 {
                self.run_sharded_inline(state, ctrl)
            } else {
                self.run_sharded_threaded(state, threads, ctrl)
            }
        }
    }

    /// Rejects bindings that target a non-`Source` node or violate the
    /// source's stream rank.
    fn validate_binding(&self, binding: &RunBinding) -> Result<()> {
        for (id, toks) in &binding.sources {
            let Some(node) = self.graph.nodes().get(id.0 as usize) else {
                return Err(StepError::Config(format!(
                    "bound source {id:?} is not in the graph"
                )));
            };
            if !matches!(node.op, OpKind::Source(_)) {
                return Err(StepError::Config(format!(
                    "bound node {id:?} [{}] is not a Source",
                    node.op.name()
                )));
            }
            let rank = self.graph.edge(node.outputs[0]).shape.rank();
            token::validate(toks, rank)
                .map_err(|e| StepError::Config(format!("bound stream for source {id:?}: {e}")))?;
        }
        Ok(())
    }

    /// Materializes the mutable state for one run on the dynamic-dispatch
    /// path: boxed node executors (with bound source streams), channel
    /// queues, arenas, scheduler ready-sets, the HBM ledger, and the
    /// preloaded backing store.
    fn build_state(&self, binding: &RunBinding) -> Result<RunState<Box<dyn SimNode + Send>>> {
        self.validate_binding(binding)?;
        let mut shards = Vec::with_capacity(self.plans.len());
        for sp in &self.plans {
            let nodes: Result<Vec<_>> = sp
                .node_ids
                .iter()
                .map(|&gid| {
                    nodes::build_node_bound(
                        &self.graph,
                        gid as usize,
                        binding.sources.get(&NodeId(gid)).cloned(),
                    )
                })
                .collect();
            shards.push(Mutex::new(self.assemble_shard(sp, nodes?)));
        }
        Ok(self.finish_state(shards, binding))
    }

    /// Materializes the mutable state for one compiled run: clones the
    /// pre-resolved executor prototypes (no graph walk, no edge
    /// translation) and binds per-run source streams.
    fn build_compiled_state(&self, binding: &RunBinding) -> Result<RunState<CompiledNode>> {
        self.validate_binding(binding)?;
        let mut shards = Vec::with_capacity(self.plans.len());
        for (sp, protos) in self.plans.iter().zip(&self.protos) {
            let mut nodes = protos.clone();
            for (i, &gid) in sp.node_ids.iter().enumerate() {
                if let Some(toks) = binding.sources.get(&NodeId(gid)) {
                    nodes[i].bind_source(toks.clone());
                }
            }
            shards.push(Mutex::new(self.assemble_shard(sp, nodes)));
        }
        Ok(self.finish_state(shards, binding))
    }

    /// Assembles one shard's run state around its node executors.
    fn assemble_shard<N: NodeExec>(&self, sp: &ShardPlan, nodes: Vec<N>) -> Shard<N> {
        let sharded = self.plans.len() > 1;
        let m = sp.node_ids.len();
        let channels = sp
            .chans
            .iter()
            .map(|c| c.build(self.cfg.channel_latency))
            .collect();
        let undone = nodes.iter().filter(|nd| !nd.done()).count();
        Shard {
            nodes,
            channels,
            arena: if sharded {
                Arena::with_event_log()
            } else {
                Arena::new()
            },
            sched: if sharded {
                Sched::dedup(m)
            } else {
                Sched::legacy(m)
            },
            eff: self.cfg.horizon_step,
            fire_ns: vec![0; m],
            calendar: BinaryHeap::new(),
            undone,
            rounds: 0,
            hbm_reqs: Vec::new(),
            hbm_seq: vec![0; m],
            hbm_resp: vec![VecDeque::new(); m],
        }
    }

    /// Finishes a run state: preloaded backing store, HBM ledger, and
    /// scheduler counters.
    fn finish_state<N>(&self, shards: Vec<Mutex<Shard<N>>>, binding: &RunBinding) -> RunState<N> {
        let store = SharedStore::new();
        for (base, rows, cols, data) in &binding.preloads {
            store.register(*base, *rows, *cols, data.clone());
        }
        RunState {
            shards,
            hbm: Hbm::new(self.cfg.hbm.clone()),
            store,
            counters: SchedCounters::default(),
        }
    }

    /// Resets a parked run state in place for its next run: every node,
    /// channel, arena, ready-set, calendar, ledger, the HBM model, the
    /// backing store, and the scheduler counters return to their
    /// just-built values without releasing their buffers. The result is
    /// indistinguishable from [`SimPlan::build_compiled_state`] output —
    /// the conformance suite holds the two to bit-identical reports.
    fn reset_state(&self, state: &mut RunState<CompiledNode>, binding: &RunBinding) {
        for (sp, s) in self.plans.iter().zip(state.shards.iter_mut()) {
            let s = get_mut(s);
            let m = sp.node_ids.len();
            for (i, node) in s.nodes.iter_mut().enumerate() {
                node.reset();
                if let Some(toks) = binding.sources.get(&NodeId(sp.node_ids[i])) {
                    node.bind_source(toks.clone());
                }
            }
            for (ch, spec) in s.channels.iter_mut().zip(&sp.chans) {
                ch.reset(spec.capacity, spec.cross_reader);
            }
            s.arena.reset();
            s.sched.reset(m);
            s.eff = self.cfg.horizon_step;
            s.fire_ns.fill(0);
            s.calendar.clear();
            s.undone = s.nodes.iter().filter(|nd| !nd.done()).count();
            s.rounds = 0;
            s.hbm_reqs.clear();
            s.hbm_seq.fill(0);
            for resp in &mut s.hbm_resp {
                resp.clear();
            }
        }
        state.hbm.reset();
        state.store.reset();
        for (base, rows, cols, data) in &binding.preloads {
            state.store.register(*base, *rows, *cols, data.clone());
        }
        state.counters = SchedCounters::default();
    }

    /// Monolithic execution: one shard, immediate HBM commitment.
    fn run_single<N: NodeExec>(&self, state: &mut RunState<N>, ctrl: &RunCtrl) -> Result<()> {
        let mut horizon = self.cfg.horizon_step;
        let plan = &self.plans[0];
        let shard = get_mut(&mut state.shards[0]);
        loop {
            shard.run_to_quiescence(
                plan,
                horizon,
                &self.cfg,
                &state.store,
                &self.graph,
                Some(&mut state.hbm),
                ctrl,
            )?;
            if shard.undone == 0 {
                return Ok(());
            }
            // Deterministic deadline checks sit at the window boundary:
            // a finished run never trips them, and `rounds` here is a
            // pure function of the schedule.
            ctrl.check_rounds(shard.rounds)?;
            // Quiescent within the current window: advance the horizon to
            // the next pending channel event and wake the readers whose
            // heads became visible.
            let Some(t0) = shard.next_event(horizon) else {
                let mut lines = Vec::new();
                shard.blocked_lines(plan, &self.graph, &mut lines);
                return Err(deadlock_error(lines));
            };
            ctrl.check_cycles(t0)?;
            let new_horizon = t0 + self.cfg.horizon_step;
            shard.wake_visible(plan, horizon, new_horizon);
            horizon = new_horizon;
        }
    }

    /// Sharded execution on the calling thread: the reference schedule
    /// every worker count reproduces.
    fn run_sharded_inline<N: NodeExec>(
        &self,
        state: &mut RunState<N>,
        ctrl: &RunCtrl,
    ) -> Result<()> {
        let mut horizon = self.cfg.horizon_step;
        let mut active: Vec<u32> = (0..state.shards.len() as u32).collect();
        state.counters.shard_runs += active.len() as u64;
        let mut solo: Option<u32> = None;
        loop {
            if let Some(id) = solo {
                // Off-chip fast path: the sole runnable shard commits
                // against the ledger immediately, like the monolithic
                // engine.
                let mut shard = lock(&state.shards[id as usize]);
                let eff = shard.eff;
                shard.run_to_quiescence(
                    &self.plans[id as usize],
                    eff,
                    &self.cfg,
                    &state.store,
                    &self.graph,
                    Some(&mut state.hbm),
                    ctrl,
                )?;
            } else {
                for &id in &active {
                    let mut shard = lock(&state.shards[id as usize]);
                    let eff = shard.eff;
                    shard.run_to_quiescence(
                        &self.plans[id as usize],
                        eff,
                        &self.cfg,
                        &state.store,
                        &self.graph,
                        None,
                        ctrl,
                    )?;
                }
            }
            match coordinate(
                self,
                &state.shards,
                &mut state.hbm,
                &mut horizon,
                &mut active,
                &mut state.counters,
                ctrl,
            )? {
                CoordStep::Done => return Ok(()),
                CoordStep::Run => solo = None,
                CoordStep::Solo(id) => solo = Some(id),
            }
        }
    }

    /// Sharded execution on `threads` workers. Workers steal quiescence
    /// runs of whole shards between two barriers per sub-round; worker 0
    /// coordinates in the exclusive window between sub-rounds, and runs
    /// solo-shard sub-rounds itself without waking the workers (barrier
    /// waits elided). Which worker runs a shard can never affect the
    /// result, so this is bit-identical to
    /// [`SimPlan::run_sharded_inline`].
    fn run_sharded_threaded<N: NodeExec>(
        &self,
        state: &mut RunState<N>,
        threads: usize,
        ctrl: &RunCtrl,
    ) -> Result<()> {
        let barrier = Barrier::new(threads);
        let stop = AtomicBool::new(false);
        let cursor = AtomicUsize::new(0);
        let active: Mutex<Vec<u32>> = Mutex::new((0..state.shards.len() as u32).collect());
        let failure: Mutex<Option<StepError>> = Mutex::new(None);

        let RunState {
            shards,
            hbm,
            store,
            counters,
        } = state;
        let shards: &[Mutex<Shard<N>>] = shards;
        let store: &SharedStore = store;
        counters.shard_runs += shards.len() as u64;

        // Every fallible step — including panics, which would otherwise
        // leave the other threads waiting at a barrier forever — funnels
        // into `failure`, so a crash surfaces as an error, not a hang.
        let work = || {
            let body = || -> Result<()> {
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let id = {
                        let a = lock(&active);
                        match a.get(k) {
                            Some(&id) => id as usize,
                            None => return Ok(()),
                        }
                    };
                    let mut shard = lock(&shards[id]);
                    let eff = shard.eff;
                    shard.run_to_quiescence(
                        &self.plans[id],
                        eff,
                        &self.cfg,
                        store,
                        &self.graph,
                        None,
                        ctrl,
                    )?;
                }
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body))
                .unwrap_or_else(|p| {
                    Err(StepError::Exec(format!(
                        "worker panicked: {}",
                        panic_message(&p)
                    )))
                });
            if let Err(e) = result {
                lock(&failure).get_or_insert(e);
            }
        };

        let mut outcome: Result<()> = Ok(());
        std::thread::scope(|sc| {
            for _ in 1..threads {
                let work = &work;
                let (barrier, stop) = (&barrier, &stop);
                sc.spawn(move || {
                    loop {
                        barrier.wait();
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        work();
                        barrier.wait();
                    }
                });
            }
            // Coordinator loop on this thread. Between the second barrier
            // of one sub-round and the first barrier of the next, workers
            // are parked, so coordination has exclusive access. Solo
            // sub-rounds never touch the barrier at all — the workers
            // stay parked and the coordinator runs the shard with the
            // immediate-commit sink.
            let mut horizon = self.cfg.horizon_step;
            let mut step = CoordStep::Run;
            let run = loop {
                match step {
                    CoordStep::Done => break Ok(()),
                    CoordStep::Solo(id) => {
                        let solo = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut shard = lock(&shards[id as usize]);
                            let eff = shard.eff;
                            shard.run_to_quiescence(
                                &self.plans[id as usize],
                                eff,
                                &self.cfg,
                                store,
                                &self.graph,
                                Some(hbm),
                                ctrl,
                            )
                        }))
                        .unwrap_or_else(|p| {
                            Err(StepError::Exec(format!(
                                "coordinator panicked: {}",
                                panic_message(&p)
                            )))
                        });
                        if let Err(e) = solo {
                            break Err(e);
                        }
                    }
                    CoordStep::Run => {
                        cursor.store(0, Ordering::Relaxed);
                        barrier.wait();
                        work();
                        barrier.wait();
                        if let Some(e) = lock(&failure).take() {
                            break Err(e);
                        }
                    }
                }
                let next = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut a = lock(&active);
                    coordinate(self, shards, hbm, &mut horizon, &mut a, counters, ctrl)
                }))
                .unwrap_or_else(|p| {
                    Err(StepError::Exec(format!(
                        "coordinator panicked: {}",
                        panic_message(&p)
                    )))
                });
                match next {
                    Ok(s) => step = s,
                    Err(e) => break Err(e),
                }
            };
            stop.store(true, Ordering::Release);
            barrier.wait();
            outcome = run;
        });
        outcome
    }

    fn build_report<N: NodeExec>(&self, state: &mut RunState<N>) -> SimReport {
        let n = self.graph.nodes().len();
        let k = state.shards.len();
        let mut node_stats = vec![NodeStats::default(); n];
        let mut sinks = BTreeMap::new();
        let mut rounds = 0;
        let mut arena_events: Vec<ArenaEvent> = Vec::new();
        let mut arena_peak_single = 0;
        let mut counters = state.counters.clone();
        let (mut chan_tokens, mut chan_runs) = (0, 0);
        for (sp, s) in self.plans.iter().zip(state.shards.iter_mut()) {
            let s = get_mut(s);
            rounds += s.rounds;
            if let Sched::Dedup { dedup_hits, .. } = &s.sched {
                counters.wake_dedup += dedup_hits;
            }
            arena_peak_single = arena_peak_single.max(s.arena.peak_bytes());
            arena_events.extend(s.arena.take_events());
            for ch in &s.channels {
                chan_tokens += ch.sent_tokens();
                chan_runs += ch.sent_runs();
            }
            for (i, nd) in s.nodes.iter().enumerate() {
                let gid = sp.node_ids[i] as usize;
                node_stats[gid] = nd.stats().clone();
                node_stats[gid].wall_ns = s.fire_ns[i];
                if let Some(toks) = nd.recorded() {
                    sinks.insert(NodeId(gid as u32), toks.to_vec());
                }
            }
        }
        let arena_peak = if k == 1 {
            arena_peak_single
        } else {
            peak_of_events(arena_events)
        };
        let cycles = node_stats
            .iter()
            .map(|s| s.finish_time)
            .max()
            .unwrap_or(0)
            .max(state.hbm.last_completion());
        let onchip_memory = node_stats.iter().map(|s| s.onchip_bytes).sum();
        let total_flops = node_stats.iter().map(|s| s.flops).sum();
        SimReport {
            cycles,
            offchip_traffic: state.hbm.total_bytes(),
            offchip_read: state.hbm.read_bytes(),
            offchip_write: state.hbm.write_bytes(),
            onchip_memory,
            arena_peak,
            total_flops,
            allocated_compute: self.graph.allocated_compute(),
            offchip_peak_bw: state.hbm.peak_bytes_per_cycle(),
            rounds,
            chan_tokens,
            chan_runs,
            shards: k,
            sched: counters,
            run_allocs: 1,
            pool_resets: 0,
            node_stats,
            sinks,
        }
    }
}

/// A one-shot simulation: builds a [`SimPlan`], carries a [`RunBinding`],
/// and runs once. The convenience path for single runs —
/// `Simulation::new(graph, cfg)?.run()` — and the compatibility surface
/// for code predating the plan/run split. Sweeps and multi-iteration
/// drivers should hold a [`SimPlan`] and call [`SimPlan::run_bound`]
/// instead, paying partition and topology layout once.
pub struct Simulation {
    plan: SimPlan,
    binding: RunBinding,
}

impl Simulation {
    /// Builds the execution plan for `graph` (see [`SimPlan::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if an operator cannot be executed.
    pub fn new(graph: Graph, cfg: SimConfig) -> Result<Simulation> {
        Ok(Simulation {
            plan: SimPlan::new(graph, cfg)?,
            binding: RunBinding::default(),
        })
    }

    /// Registers a dense tensor in off-chip memory so loads return real
    /// data (functional runs).
    pub fn preload(&mut self, base_addr: u64, rows: usize, cols: usize, data: Vec<f32>) {
        self.binding.preload(base_addr, rows, cols, data);
    }

    /// Replaces a `Source` node's token stream for this run (see
    /// [`RunBinding::bind_source`]).
    pub fn bind_source(&mut self, id: NodeId, tokens: Vec<Token>) {
        self.binding.bind_source(id, tokens);
    }

    /// The underlying reusable plan.
    pub fn plan(&self) -> &SimPlan {
        &self.plan
    }

    /// Extracts the reusable plan, dropping any binding.
    pub fn into_plan(self) -> SimPlan {
        self.plan
    }

    /// Runs the graph to completion (see [`SimPlan::run_bound`]).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Deadlock`] if the graph stops making progress
    /// before finishing, or the first functional error raised by a node.
    pub fn run(self) -> Result<SimReport> {
        self.plan.run_bound(&self.binding)
    }
}

/// What the engine should run after a coordination barrier.
enum CoordStep {
    /// Every node is done.
    Done,
    /// Dispatch the active list to the workers.
    Run,
    /// Exactly one shard is runnable: run it on the coordinator with the
    /// immediate-commit HBM sink (off-chip fast path, no barrier waits).
    Solo(u32),
}

/// One coordination barrier: shuttles cross-shard state, commits the
/// off-chip batch, raises each shard's effective horizon to its
/// cut-slack allowance (barrier elision), and — if the system is fully
/// quiescent — advances the global horizon. Fills `active` with the
/// shards to run next.
///
/// Runs with exclusive access between sub-rounds (every shard guard is
/// taken once up front); every action is ordered by stable keys (edge
/// order, request `(time, node, seq)`), so the outcome is a pure
/// function of shard states.
fn coordinate<N: NodeExec>(
    plan: &SimPlan,
    shards: &[Mutex<Shard<N>>],
    hbm: &mut Hbm,
    horizon: &mut u64,
    active: &mut Vec<u32>,
    counters: &mut SchedCounters,
    ctrl: &RunCtrl,
) -> Result<CoordStep> {
    counters.sub_rounds += 1;
    let mut gs: Vec<MutexGuard<'_, Shard<N>>> = shards.iter().map(lock).collect();

    // Cross-shard transfer, in edge order. Idle edges — nothing queued,
    // no credits to return, flags and floor already mirrored — are
    // skipped without mutating either half.
    for x in &plan.cross {
        let (wp, rp) = (
            &plan.plans[x.w_shard as usize],
            &plan.plans[x.r_shard as usize],
        );
        let [ws, rs] = gs
            .get_disjoint_mut([x.w_shard as usize, x.r_shard as usize])
            .expect("cross edge joins two distinct shards");
        let (w_ch, r_ch) = (x.w_ch as usize, x.r_ch as usize);
        {
            let w = &ws.channels[w_ch];
            let r = &rs.channels[r_ch];
            let idle = w.is_empty()
                && !r.has_freed_slots()
                && (!r.is_closed() || w.is_closed())
                && (r.src_finished() || !(w.src_finished() && w.is_empty()))
                && r.floor_raw() >= w.floor_raw();
            if idle {
                continue;
            }
        }
        // Token runs ride with their writer-computed ready times; inject
        // drops them if the reader closed.
        let moved: Vec<(TimeRun, Token)> = ws.channels[w_ch].drain_queue().collect();
        for (ts, tok) in moved {
            rs.channels[r_ch].inject(ts, tok);
        }
        // Freed slots return to the writer as send credits.
        let freed = rs.channels[r_ch].drain_freed_slots();
        if !freed.is_empty() {
            ws.channels[w_ch].grant_slots(freed);
        }
        // Close / finish / floor propagation.
        if rs.channels[r_ch].is_closed() && !ws.channels[w_ch].is_closed() {
            ws.channels[w_ch].close();
        }
        if ws.channels[w_ch].src_finished()
            && !rs.channels[r_ch].src_finished()
            && ws.channels[w_ch].is_empty()
        {
            rs.channels[r_ch].finish_src();
        }
        let floor = ws.channels[w_ch].floor_raw();
        rs.channels[r_ch].raise_floor(floor);
        // Events → wakes, mirroring the in-shard drain.
        let wev = ws.channels[w_ch].take_events();
        if wev & (event::FREED | event::CLOSED) != 0 {
            let j = wp.writer_of[w_ch];
            ws.wake(j);
        }
        let rev = rs.channels[r_ch].take_events();
        if rev & event::SRC_FINISHED != 0 {
            let j = rp.reader_of[r_ch];
            rs.wake(j);
        }
        if rev & (event::ENQUEUED | event::FREED) != 0
            && let Some((ready, _)) = rs.channels[r_ch].peek()
        {
            if ready <= rs.eff {
                if rev & event::ENQUEUED != 0 {
                    let j = rp.reader_of[r_ch];
                    rs.wake(j);
                }
            } else {
                rs.calendar.push(Reverse((ready, r_ch)));
            }
        }
    }

    // Commit the off-chip batch in (time, node, seq) order and wake the
    // requesters.
    let mut batch = Vec::new();
    for s in gs.iter_mut() {
        batch.append(&mut s.hbm_reqs);
    }
    if !batch.is_empty() {
        for (node, seq, done) in hbm.service_batch(batch) {
            let shard = plan.shard_of[node as usize] as usize;
            let local = plan.local_of[node as usize] as usize;
            let s = &mut gs[shard];
            // Per-node issue times are monotone, so sorted service
            // delivers each node's responses in seq order.
            debug_assert!(
                s.hbm_resp[local]
                    .back()
                    .is_none_or(|r| r.seq0 + r.done.count <= seq)
            );
            nodes::push_response(&mut s.hbm_resp[local], seq, done);
            s.wake(local as u32);
        }
    }

    let undone: usize = gs.iter().map(|s| s.undone).sum();
    if undone == 0 {
        return Ok(CoordStep::Done);
    }
    // Deterministic round deadline: summed shard waves are a pure
    // function of the schedule, and the coordinator's exclusive window
    // is ordered identically at every worker count. A finished run
    // (checked above) never trips this.
    ctrl.check_rounds(gs.iter().map(|s| s.rounds).sum())?;

    // Barrier elision: raise each shard's effective horizon to its
    // cut-slack allowance, waking readers of newly visible heads.
    if plan.cfg.elide_barriers {
        for (sp, s) in plan.plans.iter().zip(gs.iter_mut()) {
            let allow = s.allowance(sp);
            s.raise_eff(sp, allow);
        }
    }

    let fill = |gs: &[MutexGuard<'_, Shard<N>>], active: &mut Vec<u32>| {
        active.clear();
        for (i, s) in gs.iter().enumerate() {
            if s.has_ready() {
                active.push(i as u32);
            }
        }
    };
    fill(&gs, active);
    if active.is_empty() {
        // Fully quiescent: advance the global horizon to the earliest
        // pending channel event across all shards.
        let mut t0: Option<u64> = None;
        for s in gs.iter_mut() {
            let eff = s.eff;
            if let Some(t) = s.next_event(eff) {
                t0 = Some(t0.map_or(t, |cur| cur.min(t)));
            }
        }
        let Some(t0) = t0 else {
            let mut lines = Vec::new();
            for (sp, s) in plan.plans.iter().zip(gs.iter()) {
                s.blocked_lines(sp, &plan.graph, &mut lines);
            }
            return Err(deadlock_error(lines));
        };
        // Deterministic cycle deadline, checked when the global horizon
        // advances (under barrier elision shards may run ahead of it
        // within their slack allowance, so the check is coarse — but
        // t0 is a pure function of shard states, hence reproducible).
        ctrl.check_cycles(t0)?;
        *horizon = t0 + plan.cfg.horizon_step;
        for (sp, s) in plan.plans.iter().zip(gs.iter_mut()) {
            s.raise_eff(sp, *horizon);
        }
        fill(&gs, active);
    }
    for &id in active.iter() {
        if gs[id as usize].eff > *horizon {
            counters.elided_runs += 1;
        }
    }
    if let [only] = active[..]
        && plan.cfg.offchip_fast_path
    {
        counters.solo_runs += 1;
        return Ok(CoordStep::Solo(only));
    }
    counters.shard_runs += active.len() as u64;
    Ok(CoordStep::Run)
}

/// Best-effort text of a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deadlock diagnostics, in global node order.
fn deadlock_error(mut lines: Vec<(u32, String)>) -> StepError {
    lines.sort_by_key(|(gid, _)| *gid);
    let blocked: Vec<String> = lines.into_iter().map(|(_, l)| l).collect();
    StepError::Deadlock(format!(
        "no progress with {} nodes blocked: {}",
        blocked.len(),
        blocked.join(", ")
    ))
}
