//! Per-node execution statistics and engine scheduling counters.

/// Counters for the sharded engine's coordination work: how many global
/// barriers ran, how much of the schedule they carried, and how much work
/// the barrier-elision / wake-dedup machinery saved. All are pure
/// functions of `(graph, SimConfig minus threads)` — the perf-regression
/// guard in `sched_bench --json` asserts on them because, unlike
/// wall-clock, they can never flake.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Coordination barriers executed (sub-rounds of the sharded engine;
    /// zero for monolithic plans).
    pub sub_rounds: u64,
    /// Shard quiescence runs dispatched across all sub-rounds.
    pub shard_runs: u64,
    /// Sub-rounds with exactly one runnable shard that took the off-chip
    /// fast path (immediate HBM commit, no barrier waits).
    pub solo_runs: u64,
    /// Shard runs dispatched with an elided horizon — an effective
    /// horizon beyond the global one, granted by cut-channel floor slack.
    pub elided_runs: u64,
    /// Wakes absorbed by the generation-stamped ready set (a node already
    /// scheduled for the next wave was woken again).
    pub wake_dedup: u64,
}

/// Statistics collected by each node during simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Value tokens processed (per primary input).
    pub values_in: u64,
    /// Value tokens emitted (per primary output).
    pub values_out: u64,
    /// FLOPs executed (higher-order operators only).
    pub flops: u64,
    /// Cycles this node spent busy (processing, not blocked).
    pub busy_cycles: u64,
    /// Local clock at completion.
    pub finish_time: u64,
    /// Measured on-chip memory requirement in bytes, per the §4.2
    /// equations with dynamic quantities observed at runtime.
    pub onchip_bytes: u64,
    /// Times the scheduler invoked this node's `fire`. The shard-summed
    /// total also rides in `StepError::RoundLimit` when a run blows its
    /// `SimConfig::max_rounds` budget.
    pub fires: u64,
    /// Fires that made no progress (wasted polls; the event-driven
    /// scheduler keeps this near zero).
    pub idle_fires: u64,
    /// Host wall-clock spent inside this node's `fire`, in nanoseconds.
    /// Zero unless the run enabled `SimConfig::profile_fires`; host-
    /// dependent by nature and excluded from every determinism check.
    pub wall_ns: u64,
}

impl NodeStats {
    /// Merges peak-style fields and accumulates counters (used when a node
    /// reports incrementally).
    pub fn absorb(&mut self, other: &NodeStats) {
        self.values_in += other.values_in;
        self.values_out += other.values_out;
        self.flops += other.flops;
        self.busy_cycles += other.busy_cycles;
        self.finish_time = self.finish_time.max(other.finish_time);
        self.onchip_bytes = self.onchip_bytes.max(other.onchip_bytes);
        self.fires += other.fires;
        self.idle_fires += other.idle_fires;
        self.wall_ns += other.wall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_mixes_counters_and_peaks() {
        let mut a = NodeStats {
            values_in: 1,
            flops: 10,
            onchip_bytes: 100,
            finish_time: 5,
            ..NodeStats::default()
        };
        let b = NodeStats {
            values_in: 2,
            flops: 5,
            onchip_bytes: 50,
            finish_time: 9,
            ..NodeStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.values_in, 3);
        assert_eq!(a.flops, 15);
        assert_eq!(a.onchip_bytes, 100);
        assert_eq!(a.finish_time, 9);
    }
}
