//! Per-node execution statistics.

/// Statistics collected by each node during simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Value tokens processed (per primary input).
    pub values_in: u64,
    /// Value tokens emitted (per primary output).
    pub values_out: u64,
    /// FLOPs executed (higher-order operators only).
    pub flops: u64,
    /// Cycles this node spent busy (processing, not blocked).
    pub busy_cycles: u64,
    /// Local clock at completion.
    pub finish_time: u64,
    /// Measured on-chip memory requirement in bytes, per the §4.2
    /// equations with dynamic quantities observed at runtime.
    pub onchip_bytes: u64,
    /// Times the scheduler invoked this node's `fire`.
    pub fires: u64,
    /// Fires that made no progress (wasted polls; the event-driven
    /// scheduler keeps this near zero).
    pub idle_fires: u64,
}

impl NodeStats {
    /// Merges peak-style fields and accumulates counters (used when a node
    /// reports incrementally).
    pub fn absorb(&mut self, other: &NodeStats) {
        self.values_in += other.values_in;
        self.values_out += other.values_out;
        self.flops += other.flops;
        self.busy_cycles += other.busy_cycles;
        self.finish_time = self.finish_time.max(other.finish_time);
        self.onchip_bytes = self.onchip_bytes.max(other.onchip_bytes);
        self.fires += other.fires;
        self.idle_fires += other.idle_fires;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_mixes_counters_and_peaks() {
        let mut a = NodeStats {
            values_in: 1,
            flops: 10,
            onchip_bytes: 100,
            finish_time: 5,
            ..NodeStats::default()
        };
        let b = NodeStats {
            values_in: 2,
            flops: 5,
            onchip_bytes: 50,
            finish_time: 9,
            ..NodeStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.values_in, 3);
        assert_eq!(a.flops, 15);
        assert_eq!(a.onchip_bytes, 100);
        assert_eq!(a.finish_time, 9);
    }
}
