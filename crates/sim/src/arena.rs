//! On-chip buffer arena and off-chip backing store.

use std::collections::HashMap;
use step_core::elem::Elem;
use step_core::error::{Result, StepError};
use step_core::tile::Tile;

/// A buffer allocated by `Bufferize`: the captured tiles plus the
/// dimension extents observed while filling it.
#[derive(Debug, Clone)]
pub struct StoredBuffer {
    /// Captured elements in stream order.
    pub elems: Vec<Elem>,
    /// Extents of the buffered dims (outermost first).
    pub dims: Vec<u64>,
    /// Total payload bytes.
    pub bytes: u64,
}

/// The on-chip scratchpad arena shared by `Bufferize`/`Streamify` nodes.
///
/// Tracks live and peak byte usage, which provides the *measured* on-chip
/// memory requirement for dynamically-sized buffers (§4.2, "handling data
/// dependencies").
#[derive(Debug, Default)]
pub struct Arena {
    buffers: HashMap<u64, StoredBuffer>,
    next_id: u64,
    live_bytes: u64,
    peak_bytes: u64,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Allocates a buffer, returning its id.
    pub fn alloc(&mut self, buf: StoredBuffer) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.live_bytes += buf.bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.buffers.insert(id, buf);
        id
    }

    /// Reads a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the buffer does not exist (already
    /// freed or never allocated).
    pub fn get(&self, id: u64) -> Result<&StoredBuffer> {
        self.buffers
            .get(&id)
            .ok_or_else(|| StepError::Exec(format!("buffer {id} not resident")))
    }

    /// Frees a buffer. Freeing twice is an error.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the buffer does not exist.
    pub fn free(&mut self, id: u64) -> Result<()> {
        match self.buffers.remove(&id) {
            Some(b) => {
                self.live_bytes -= b.bytes;
                Ok(())
            }
            None => Err(StepError::Exec(format!("double free of buffer {id}"))),
        }
    }

    /// Current resident bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Peak resident bytes over the run.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }
}

/// Dense contents of off-chip memory, keyed by the base address of each
/// registered tensor. Loads overlapping a registered tensor return dense
/// tiles; loads elsewhere return phantom tiles of the right shape, keeping
/// timing runs cheap.
#[derive(Debug, Default)]
pub struct BackingStore {
    tensors: HashMap<u64, StoredTensor>,
}

#[derive(Debug)]
struct StoredTensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl BackingStore {
    /// Creates an empty store.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    /// Registers a dense row-major tensor at `base_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn register(&mut self, base_addr: u64, rows: usize, cols: usize, data: Vec<f32>) {
        assert_eq!(data.len(), rows * cols, "backing tensor size mismatch");
        self.tensors
            .insert(base_addr, StoredTensor { rows, cols, data });
    }

    /// Reads the tile at element offset `(r0, c0)` of the tensor at
    /// `base_addr`, or a phantom tile if nothing is registered there.
    pub fn read_tile(
        &self,
        base_addr: u64,
        r0: usize,
        c0: usize,
        rows: usize,
        cols: usize,
    ) -> Tile {
        match self.tensors.get(&base_addr) {
            Some(t) => {
                let mut out = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for c in 0..cols {
                        let (rr, cc) = (r0 + r, c0 + c);
                        out.push(if rr < t.rows && cc < t.cols {
                            t.data[rr * t.cols + cc]
                        } else {
                            0.0
                        });
                    }
                }
                Tile::dense(rows, cols, out)
            }
            None => Tile::phantom(rows, cols),
        }
    }

    /// Writes a tile at element offset `(r0, c0)` of the tensor at
    /// `base_addr`. Writes to unregistered regions or with phantom data
    /// are accounted but not materialized.
    pub fn write_tile(&mut self, base_addr: u64, r0: usize, c0: usize, tile: &Tile) {
        if let (Some(t), Some(vals)) = (self.tensors.get_mut(&base_addr), tile.values()) {
            for r in 0..tile.rows() {
                for c in 0..tile.cols() {
                    let (rr, cc) = (r0 + r, c0 + c);
                    if rr < t.rows && cc < t.cols {
                        t.data[rr * t.cols + cc] = vals[r * tile.cols() + c];
                    }
                }
            }
        }
    }

    /// Reads back a registered tensor's dense contents, if present.
    pub fn tensor(&self, base_addr: u64) -> Option<(usize, usize, &[f32])> {
        self.tensors
            .get(&base_addr)
            .map(|t| (t.rows, t.cols, t.data.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_tracks_peak() {
        let mut a = Arena::new();
        let id1 = a.alloc(StoredBuffer {
            elems: vec![],
            dims: vec![2],
            bytes: 100,
        });
        let id2 = a.alloc(StoredBuffer {
            elems: vec![],
            dims: vec![4],
            bytes: 50,
        });
        assert_eq!(a.live_bytes(), 150);
        a.free(id1).unwrap();
        assert_eq!(a.live_bytes(), 50);
        assert_eq!(a.peak_bytes(), 150);
        a.free(id2).unwrap();
        assert!(a.free(id2).is_err());
    }

    #[test]
    fn arena_get_missing_errors() {
        let a = Arena::new();
        assert!(a.get(0).is_err());
    }

    #[test]
    fn backing_store_roundtrip() {
        let mut s = BackingStore::new();
        s.register(0x1000, 4, 4, (0..16).map(|x| x as f32).collect());
        let t = s.read_tile(0x1000, 2, 2, 2, 2);
        assert_eq!(t.values().unwrap(), &[10.0, 11.0, 14.0, 15.0]);
        s.write_tile(0x1000, 0, 0, &Tile::splat(2, 2, 9.0));
        let t = s.read_tile(0x1000, 0, 0, 2, 2);
        assert_eq!(t.values().unwrap(), &[9.0; 4]);
    }

    #[test]
    fn unregistered_reads_are_phantom() {
        let s = BackingStore::new();
        let t = s.read_tile(0xdead, 0, 0, 8, 8);
        assert!(t.is_phantom());
        assert_eq!((t.rows(), t.cols()), (8, 8));
    }

    #[test]
    fn out_of_range_reads_are_zero_padded() {
        let mut s = BackingStore::new();
        s.register(0, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let t = s.read_tile(0, 1, 1, 2, 2);
        assert_eq!(t.values().unwrap(), &[4.0, 0.0, 0.0, 0.0]);
    }
}
