//! On-chip buffer arena and off-chip backing store.

use std::collections::HashMap;
use step_core::elem::Elem;
use step_core::error::{Result, StepError};
use step_core::tile::Tile;

/// A buffer allocated by `Bufferize`: the captured tiles plus the
/// dimension extents observed while filling it.
#[derive(Debug, Clone)]
pub struct StoredBuffer {
    /// Captured elements in stream order.
    pub elems: Vec<Elem>,
    /// Extents of the buffered dims (outermost first).
    pub dims: Vec<u64>,
    /// Total payload bytes.
    pub bytes: u64,
}

/// One allocation or release in simulated time, for computing a global
/// peak across shard-local arenas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaEvent {
    /// Simulated time of the event (the node's local clock).
    pub time: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Allocation (`true`) or release (`false`).
    pub alloc: bool,
}

/// Peak resident bytes of a set of [`ArenaEvent`] timelines, merged in
/// simulated-time order (allocations before releases at equal times, so
/// the estimate is conservative). Order-independent: the result depends
/// only on the multiset of events, never on which shard or worker
/// produced them.
pub fn peak_of_events(mut events: Vec<ArenaEvent>) -> u64 {
    events.sort_by_key(|e| (e.time, !e.alloc));
    let (mut live, mut peak) = (0u64, 0u64);
    for e in events {
        if e.alloc {
            live += e.bytes;
            peak = peak.max(live);
        } else {
            live = live.saturating_sub(e.bytes);
        }
    }
    peak
}

/// The on-chip scratchpad arena shared by `Bufferize`/`Streamify` nodes.
///
/// Tracks live and peak byte usage, which provides the *measured* on-chip
/// memory requirement for dynamically-sized buffers (§4.2, "handling data
/// dependencies"). In sharded simulations each shard owns an arena; the
/// per-shard [`ArenaEvent`] logs are merged by simulated time at report
/// time so the whole-accelerator peak is deterministic regardless of how
/// shards interleave on the host.
#[derive(Debug, Default)]
pub struct Arena {
    buffers: HashMap<u64, StoredBuffer>,
    next_id: u64,
    live_bytes: u64,
    peak_bytes: u64,
    /// Timestamped alloc/free log, kept only when enabled (sharded runs).
    events: Option<Vec<ArenaEvent>>,
    /// Simulated time of the most recent alloc/free, stamped by callers.
    last_time: u64,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Creates an arena that records timestamped alloc/free events for a
    /// cross-shard peak merge.
    pub fn with_event_log() -> Arena {
        Arena {
            events: Some(Vec::new()),
            ..Arena::default()
        }
    }

    /// Restores the just-built state in place, keeping the buffer map's
    /// and event log's allocations (pooled run reset). Whether the arena
    /// records events is preserved.
    pub fn reset(&mut self) {
        self.buffers.clear();
        self.next_id = 0;
        self.live_bytes = 0;
        self.peak_bytes = 0;
        if let Some(ev) = &mut self.events {
            ev.clear();
        }
        self.last_time = 0;
    }

    /// Stamps the simulated time of the next alloc/free (callers set this
    /// to their local clock right before mutating).
    pub fn set_time(&mut self, t: u64) {
        self.last_time = t;
    }

    /// Drains the recorded event log (empty unless created with
    /// [`Arena::with_event_log`]).
    pub fn take_events(&mut self) -> Vec<ArenaEvent> {
        self.events.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Allocates a buffer, returning its id.
    pub fn alloc(&mut self, buf: StoredBuffer) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.live_bytes += buf.bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        if let Some(ev) = &mut self.events {
            ev.push(ArenaEvent {
                time: self.last_time,
                bytes: buf.bytes,
                alloc: true,
            });
        }
        self.buffers.insert(id, buf);
        id
    }

    /// Reads a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the buffer does not exist (already
    /// freed or never allocated).
    pub fn get(&self, id: u64) -> Result<&StoredBuffer> {
        self.buffers
            .get(&id)
            .ok_or_else(|| StepError::Exec(format!("buffer {id} not resident")))
    }

    /// Frees a buffer. Freeing twice is an error.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the buffer does not exist.
    pub fn free(&mut self, id: u64) -> Result<()> {
        match self.buffers.remove(&id) {
            Some(b) => {
                self.live_bytes -= b.bytes;
                if let Some(ev) = &mut self.events {
                    ev.push(ArenaEvent {
                        time: self.last_time,
                        bytes: b.bytes,
                        alloc: false,
                    });
                }
                Ok(())
            }
            None => Err(StepError::Exec(format!("double free of buffer {id}"))),
        }
    }

    /// Current resident bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Peak resident bytes over the run.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }
}

/// Dense contents of off-chip memory, keyed by the base address of each
/// registered tensor. Loads overlapping a registered tensor return dense
/// tiles; loads elsewhere return phantom tiles of the right shape, keeping
/// timing runs cheap.
#[derive(Debug, Default)]
pub struct BackingStore {
    tensors: HashMap<u64, StoredTensor>,
}

#[derive(Debug)]
struct StoredTensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl BackingStore {
    /// Creates an empty store.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    /// Drops every registered tensor (pooled run reset).
    pub fn clear(&mut self) {
        self.tensors.clear();
    }

    /// Registers a dense row-major tensor at `base_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn register(&mut self, base_addr: u64, rows: usize, cols: usize, data: Vec<f32>) {
        assert_eq!(data.len(), rows * cols, "backing tensor size mismatch");
        self.tensors
            .insert(base_addr, StoredTensor { rows, cols, data });
    }

    /// Reads the tile at element offset `(r0, c0)` of the tensor at
    /// `base_addr`, or a phantom tile if nothing is registered there.
    pub fn read_tile(
        &self,
        base_addr: u64,
        r0: usize,
        c0: usize,
        rows: usize,
        cols: usize,
    ) -> Tile {
        match self.tensors.get(&base_addr) {
            Some(t) => {
                let mut out = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for c in 0..cols {
                        let (rr, cc) = (r0 + r, c0 + c);
                        out.push(if rr < t.rows && cc < t.cols {
                            t.data[rr * t.cols + cc]
                        } else {
                            0.0
                        });
                    }
                }
                Tile::dense(rows, cols, out)
            }
            None => Tile::phantom(rows, cols),
        }
    }

    /// Writes a tile at element offset `(r0, c0)` of the tensor at
    /// `base_addr`. Writes to unregistered regions or with phantom data
    /// are accounted but not materialized.
    pub fn write_tile(&mut self, base_addr: u64, r0: usize, c0: usize, tile: &Tile) {
        if let (Some(t), Some(vals)) = (self.tensors.get_mut(&base_addr), tile.values()) {
            for r in 0..tile.rows() {
                for c in 0..tile.cols() {
                    let (rr, cc) = (r0 + r, c0 + c);
                    if rr < t.rows && cc < t.cols {
                        t.data[rr * t.cols + cc] = vals[r * tile.cols() + c];
                    }
                }
            }
        }
    }

    /// Reads back a registered tensor's dense contents, if present.
    pub fn tensor(&self, base_addr: u64) -> Option<(usize, usize, &[f32])> {
        self.tensors
            .get(&base_addr)
            .map(|t| (t.rows, t.cols, t.data.as_slice()))
    }

    /// Whether any tensor is registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }
}

/// A [`BackingStore`] shareable across shard workers.
///
/// Timing-only runs (no preloaded tensors) never take the lock: reads
/// return phantom tiles and writes are accounted but not materialized, so
/// the hot path is a single relaxed atomic load.
///
/// **Functional-determinism caveat:** accesses are serialized but not
/// *ordered* across shards within a sub-round. Reads and writes of the
/// same registered tensor are deterministic only when the program orders
/// them through dataflow (a load consuming a token produced after the
/// store's acknowledgement) or when they live in the same shard. A
/// sharded program whose shards race unordered reads against writes of
/// one tensor is outside the engine's determinism contract — the same
/// caveat the monolithic engine has for programs racing through off-chip
/// memory, widened to host scheduling. Every current model builder only
/// reads preloaded (read-only) tensors and writes disjoint output
/// regions.
#[derive(Debug, Default)]
pub struct SharedStore {
    has_data: std::sync::atomic::AtomicBool,
    inner: std::sync::RwLock<BackingStore>,
}

impl SharedStore {
    /// Creates an empty store.
    pub fn new() -> SharedStore {
        SharedStore::default()
    }

    /// Drops every registered tensor and re-arms the phantom fast path
    /// (pooled run reset; preloads re-register from the run binding).
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn reset(&self) {
        self.inner.write().expect("store lock").clear();
        self.has_data
            .store(false, std::sync::atomic::Ordering::Release);
    }

    /// Registers a dense row-major tensor at `base_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or the lock is poisoned.
    pub fn register(&self, base_addr: u64, rows: usize, cols: usize, data: Vec<f32>) {
        self.inner
            .write()
            .expect("store lock")
            .register(base_addr, rows, cols, data);
        self.has_data
            .store(true, std::sync::atomic::Ordering::Release);
    }

    fn backed(&self) -> bool {
        self.has_data.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Whether no tensor is registered: every read returns a phantom
    /// tile, so bulk emitters may collapse whole completion runs into
    /// one repeated shape-only payload.
    pub fn is_empty(&self) -> bool {
        !self.backed()
    }

    /// See [`BackingStore::read_tile`].
    pub fn read_tile(
        &self,
        base_addr: u64,
        r0: usize,
        c0: usize,
        rows: usize,
        cols: usize,
    ) -> Tile {
        if !self.backed() {
            return Tile::phantom(rows, cols);
        }
        self.inner
            .read()
            .expect("store lock")
            .read_tile(base_addr, r0, c0, rows, cols)
    }

    /// See [`BackingStore::write_tile`].
    pub fn write_tile(&self, base_addr: u64, r0: usize, c0: usize, tile: &Tile) {
        if !self.backed() {
            return;
        }
        self.inner
            .write()
            .expect("store lock")
            .write_tile(base_addr, r0, c0, tile);
    }

    /// Reads back a registered tensor's dense contents, if present.
    pub fn tensor(&self, base_addr: u64) -> Option<(usize, usize, Vec<f32>)> {
        if !self.backed() {
            return None;
        }
        self.inner
            .read()
            .expect("store lock")
            .tensor(base_addr)
            .map(|(r, c, d)| (r, c, d.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_tracks_peak() {
        let mut a = Arena::new();
        let id1 = a.alloc(StoredBuffer {
            elems: vec![],
            dims: vec![2],
            bytes: 100,
        });
        let id2 = a.alloc(StoredBuffer {
            elems: vec![],
            dims: vec![4],
            bytes: 50,
        });
        assert_eq!(a.live_bytes(), 150);
        a.free(id1).unwrap();
        assert_eq!(a.live_bytes(), 50);
        assert_eq!(a.peak_bytes(), 150);
        a.free(id2).unwrap();
        assert!(a.free(id2).is_err());
    }

    #[test]
    fn event_log_peak_is_time_ordered_not_host_ordered() {
        // Two shard-local arenas whose host-order interleaving is unknown:
        // the merged peak depends only on simulated timestamps.
        let mut a = Arena::with_event_log();
        let mut b = Arena::with_event_log();
        a.set_time(10);
        let ia = a.alloc(StoredBuffer {
            elems: vec![],
            dims: vec![],
            bytes: 100,
        });
        a.set_time(30);
        a.free(ia).unwrap();
        b.set_time(20);
        let ib = b.alloc(StoredBuffer {
            elems: vec![],
            dims: vec![],
            bytes: 60,
        });
        b.set_time(40);
        b.free(ib).unwrap();
        let mut ev = a.take_events();
        ev.extend(b.take_events());
        // Overlap in [20, 30): 100 + 60.
        assert_eq!(peak_of_events(ev), 160);
    }

    #[test]
    fn event_peak_allocs_before_frees_at_equal_time() {
        let ev = vec![
            ArenaEvent {
                time: 5,
                bytes: 10,
                alloc: true,
            },
            ArenaEvent {
                time: 7,
                bytes: 10,
                alloc: false,
            },
            ArenaEvent {
                time: 7,
                bytes: 4,
                alloc: true,
            },
        ];
        assert_eq!(peak_of_events(ev), 14);
    }

    #[test]
    fn shared_store_phantom_fast_path_and_roundtrip() {
        let s = SharedStore::new();
        assert!(s.read_tile(0, 0, 0, 2, 2).is_phantom());
        s.register(0x10, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            s.read_tile(0x10, 0, 0, 2, 2).values().unwrap(),
            &[1.0, 2.0, 3.0, 4.0]
        );
        s.write_tile(0x10, 0, 0, &Tile::splat(1, 1, 9.0));
        assert_eq!(s.tensor(0x10).unwrap().2[0], 9.0);
    }

    #[test]
    fn arena_get_missing_errors() {
        let a = Arena::new();
        assert!(a.get(0).is_err());
    }

    #[test]
    fn backing_store_roundtrip() {
        let mut s = BackingStore::new();
        s.register(0x1000, 4, 4, (0..16).map(|x| x as f32).collect());
        let t = s.read_tile(0x1000, 2, 2, 2, 2);
        assert_eq!(t.values().unwrap(), &[10.0, 11.0, 14.0, 15.0]);
        s.write_tile(0x1000, 0, 0, &Tile::splat(2, 2, 9.0));
        let t = s.read_tile(0x1000, 0, 0, 2, 2);
        assert_eq!(t.values().unwrap(), &[9.0; 4]);
    }

    #[test]
    fn unregistered_reads_are_phantom() {
        let s = BackingStore::new();
        let t = s.read_tile(0xdead, 0, 0, 8, 8);
        assert!(t.is_phantom());
        assert_eq!((t.rows(), t.cols()), (8, 8));
    }

    #[test]
    fn out_of_range_reads_are_zero_padded() {
        let mut s = BackingStore::new();
        s.register(0, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let t = s.read_tile(0, 1, 1, 2, 2);
        assert_eq!(t.values().unwrap(), &[4.0, 0.0, 0.0, 0.0]);
    }
}
