//! Stable content fingerprints for plan-cache keys.
//!
//! A sweep service that caches frozen [`crate::SimPlan`]s needs a key
//! that is a pure function of *what the plan computes*: the builder's
//! inputs and the [`SimConfig`] — minus the knobs that provably cannot
//! change reported results. [`Fingerprint`] is the hasher those keys are
//! built from: an explicitly seeded FNV-1a accumulator, deterministic
//! across processes, platforms, and reruns (`std::hash::DefaultHasher`
//! is randomly keyed per process and would silently break cross-run
//! cache-counter pinning).
//!
//! Every `push_*` method is length- or width-prefixed where ambiguity is
//! possible (`push_str`, `push_bytes`), so `"ab" + "c"` and `"a" + "bc"`
//! fold differently.

use crate::config::SimConfig;
use std::fmt::Write as _;

/// An explicitly seeded FNV-1a accumulator for plan-cache keys.
///
/// ```
/// use step_sim::Fingerprint;
/// let mut a = Fingerprint::new("moe");
/// a.push_u64(64);
/// let mut b = Fingerprint::new("moe");
/// b.push_u64(64);
/// assert_eq!(a.finish(), b.finish());
/// let mut c = Fingerprint::new("moe");
/// c.push_u64(65);
/// assert_ne!(a.finish(), c.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
    /// Scratch for `push_debug` — reused so repeated pushes don't
    /// reallocate.
    scratch: String,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fingerprint {
    /// A fresh accumulator, domain-separated by `tag` (two fingerprints
    /// with different tags never collide by construction order alone).
    pub fn new(tag: &str) -> Fingerprint {
        let mut fp = Fingerprint {
            state: FNV_OFFSET,
            scratch: String::new(),
        };
        fp.push_str(tag);
        fp
    }

    /// Folds raw bytes (length-prefixed).
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.fold(&(bytes.len() as u64).to_le_bytes());
        self.fold(bytes);
        self
    }

    /// Folds one `u64`.
    pub fn push_u64(&mut self, x: u64) -> &mut Self {
        self.fold(&x.to_le_bytes());
        self
    }

    /// Folds one `bool`.
    pub fn push_bool(&mut self, x: bool) -> &mut Self {
        self.fold(&[x as u8]);
        self
    }

    /// Folds one `f64` by bit pattern (`-0.0` and `0.0` differ; NaNs
    /// with different payloads differ — keys are byte-level identities,
    /// not numeric ones).
    pub fn push_f64(&mut self, x: f64) -> &mut Self {
        self.fold(&x.to_bits().to_le_bytes());
        self
    }

    /// Folds a string (length-prefixed).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_bytes(s.as_bytes())
    }

    /// Folds a value's `Debug` form — the same operator-configuration
    /// identity [`step_core::partition`]'s structural ranks use. Derived
    /// `Debug` prints every field, so two configs fold equal only if
    /// they are field-for-field equal.
    pub fn push_debug<T: std::fmt::Debug>(&mut self, value: &T) -> &mut Self {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let _ = write!(scratch, "{value:?}");
        self.push_str(&scratch);
        self.scratch = scratch;
        self
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

impl SimConfig {
    /// The plan-cache identity of this configuration: a stable
    /// fingerprint over every field **except `threads`** — the one knob
    /// the determinism contract excludes (it only maps shards onto
    /// workers; every reported metric is a pure function of the graph
    /// and the remaining fields). Two configs with equal fingerprints
    /// may share one frozen plan.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("SimConfig");
        // NOTE: every field except `threads` must be folded here; adding
        // a field to SimConfig without extending this list would make
        // configs that differ in it collide in plan caches.
        let SimConfig {
            onchip_bytes_per_cycle,
            channel_latency,
            hbm,
            max_rounds,
            horizon_step,
            threads: _,
            shards,
            elide_barriers,
            offchip_fast_path,
            compiled,
            profile_fires,
        } = self;
        fp.push_u64(*onchip_bytes_per_cycle)
            .push_u64(*channel_latency)
            .push_u64(hbm.bytes_per_cycle)
            .push_u64(hbm.banks)
            .push_u64(hbm.row_bytes)
            .push_u64(hbm.t_cas)
            .push_u64(hbm.t_row_miss)
            .push_u64(*max_rounds)
            .push_u64(*horizon_step)
            .push_u64(*shards as u64)
            .push_bool(*elide_barriers)
            .push_bool(*offchip_fast_path)
            .push_bool(*compiled)
            .push_bool(*profile_fires);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let mut a = Fingerprint::new("t");
        a.push_str("ab").push_u64(3);
        let mut b = Fingerprint::new("t");
        b.push_str("ab").push_u64(3);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new("t");
        c.push_str("a").push_str("b3");
        assert_ne!(a.finish(), c.finish(), "length prefixing separates splits");
    }

    #[test]
    fn sim_config_fingerprint_ignores_threads_only() {
        let base = SimConfig::default();
        let threads = SimConfig {
            threads: 8,
            ..base.clone()
        };
        assert_eq!(base.fingerprint(), threads.fingerprint());
        let horizon = SimConfig {
            horizon_step: 512,
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), horizon.fingerprint());
        let hbm = SimConfig::validation();
        assert_ne!(base.fingerprint(), hbm.fingerprint());
        let dynless = SimConfig {
            compiled: false,
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), dynless.fingerprint());
    }
}
