//! Off-chip memory operators (Table 3) wired to the HBM timing node.
//!
//! Every operator is a two-phase state machine: consuming an input token
//! *issues* requests through the node's [`super::HbmPort`], and a FIFO of
//! pending emissions turns *completions* back into timed output tokens in
//! issue order. Under an immediate sink (monolithic runs, and sharded
//! sub-rounds whose sole runnable shard takes the engine's off-chip fast
//! path) completions are available within the same fire, so the operator
//! collapses back to single-fire exactly like the legacy synchronous
//! implementation; under a queued sink (sharded runs) the node parks
//! between issue and completion and the engine wakes it after the
//! barrier commit. Interleaved structural tokens (block separators,
//! pass-through stops) ride the same FIFO so emission order is preserved
//! while requests pipeline.

use super::basic::impl_simnode_common;
use super::{BUDGET, Blocked, Ctx, Io, SimNode};
use crate::stats::NodeStats;
use std::collections::VecDeque;
use step_core::Elem;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::ops::{LinearLoadCfg, RandomAccessCfg};
use step_core::token::Token;

/// Soft cap on requests a node keeps in flight under a queued sink: the
/// check runs before consuming an input token, and one input may issue a
/// whole block (`LinearOffChipLoad` issues `nr*nc` requests per
/// reference), so pipelining can overshoot the cap by up to one block.
/// Immediate sinks drain within the fire, so the cap never binds there.
const HBM_PIPELINE: usize = 2 * BUDGET;

/// A pending emission: either a tile awaiting its completion or a
/// structural token already stamped at issue time.
enum PendingEmit {
    /// Response `seq` will carry the completion time; `gr`/`gc` locate
    /// the tile in the stored tensor's grid and `row_stop` appends a
    /// level-1 stop after it.
    Tile {
        seq: u64,
        gr: u64,
        gc: u64,
        row_stop: bool,
    },
    /// A token emitted as-is at a time fixed at issue.
    Mark { time: u64, token: Token },
}

/// The shared drain loop over a node's pending-emission FIFO: marks emit
/// eagerly at their issue-time stamps, tiles wait for their completion
/// (recording [`Blocked::Hbm`] when it has not arrived), and the closure
/// materializes a completed tile entry as output tokens.
macro_rules! drain_pending {
    ($self:ident, $ctx:ident, |$done:ident, $gr:ident, $gc:ident, $row_stop:ident| $emit:block) => {{
        let mut progress = false;
        while let Some(front) = $self.pending.front() {
            match *front {
                PendingEmit::Mark { time, ref token } => {
                    let token = token.clone();
                    $self.io.push_at(0, time, token);
                    $self.pending.pop_front();
                }
                PendingEmit::Tile {
                    seq,
                    gr: $gr,
                    gc: $gc,
                    row_stop: $row_stop,
                } => {
                    let Some($done) = $ctx.hbm.take_response(seq) else {
                        $self.io.blocked = Some(Blocked::Hbm);
                        break;
                    };
                    $emit
                    $self.pending.pop_front();
                }
            }
            progress = true;
        }
        progress
    }};
}

/// `LinearOffChipLoad` (Fig 2): per reference element, an affine tiled
/// read of the stored tensor, adding two dimensions to the stream.
pub struct LinearLoadNode {
    io: Io,
    cfg: LinearLoadCfg,
    pending: VecDeque<PendingEmit>,
    /// A completed block awaits its separator stop (the block-emitter
    /// rule shared by every block-expanding operator).
    sep_pending: bool,
}

impl LinearLoadNode {
    pub fn new(node: &Node, cfg: LinearLoadCfg) -> LinearLoadNode {
        LinearLoadNode {
            io: Io::new(node),
            cfg,
            pending: VecDeque::new(),
            sep_pending: false,
        }
    }

    /// Issues one block of tile requests; emission happens as completions
    /// drain through the FIFO.
    fn issue_block(&mut self, ctx: &mut Ctx<'_>) {
        let (nr, nc) = self.cfg.shape_tiled;
        let (sr, sc) = self.cfg.stride_tiled;
        let grid_cols = self.cfg.grid().1.max(1);
        let tile_bytes = self.cfg.tile_bytes();
        let issue = self.io.time;
        if self.sep_pending {
            self.pending.push_back(PendingEmit::Mark {
                time: issue,
                token: Token::Stop(2),
            });
        }
        self.sep_pending = true;
        let mut k = 0u64;
        for i in 0..nr {
            for j in 0..nc {
                let idx = i * sr + j * sc;
                let addr = self.cfg.base_addr + idx * tile_bytes;
                // Requests issue pipelined at one per cycle; completions
                // are bounded by the shared HBM bus.
                let seq = ctx.hbm.request(addr, tile_bytes, issue + k, false);
                k += 1;
                self.pending.push_back(PendingEmit::Tile {
                    seq,
                    gr: idx / grid_cols,
                    gc: idx % grid_cols,
                    row_stop: j + 1 == nc && i + 1 < nr,
                });
            }
        }
        self.io.time = issue + k;
        // Double-buffered staging of the tile being transferred (§4.2).
        self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * tile_bytes);
    }

    /// Emits every pending entry whose completion has arrived.
    fn drain(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let (tr, tc) = self.cfg.tile_shape;
        drain_pending!(self, ctx, |done, gr, gc, row_stop| {
            let tile = ctx.store.read_tile(
                self.cfg.base_addr,
                (gr * tr) as usize,
                (gc * tc) as usize,
                tr as usize,
                tc as usize,
            );
            self.io.push_at(0, done, Token::Val(Elem::Tile(tile)));
            if row_stop {
                self.io.push_at(0, done, Token::Stop(1));
            }
        })
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        // A draining step ends before the next issue so the flush between
        // steps applies output backpressure exactly like the synchronous
        // implementation did (the staging gate must see the emissions
        // before the node consumes further input).
        if self.drain(ctx) {
            return Ok(true);
        }
        if self.pending.len() >= HBM_PIPELINE {
            return Ok(false);
        }
        // Structural reference tokens wait for in-flight blocks so the
        // separator algebra observes emissions in order.
        let head_is_val = match self.io.peek(ctx, 0) {
            None => return Ok(false),
            Some((_, tok)) => tok.is_val(),
        };
        if !head_is_val && !self.pending.is_empty() {
            self.io.blocked = Some(Blocked::Hbm);
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(_) => self.issue_block(ctx),
            Token::Stop(k) => {
                self.io.push(0, Token::Stop(k + 2));
                self.sep_pending = false;
            }
            Token::Done => {
                if self.sep_pending {
                    self.io.push(0, Token::Stop(2));
                    self.sep_pending = false;
                }
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(LinearLoadNode);

/// `LinearOffChipStore`: writes tiles linearly at the base address.
pub struct LinearStoreNode {
    io: Io,
    base_addr: u64,
    offset_bytes: u64,
    row_offset: usize,
    last_done: u64,
    outstanding: usize,
}

impl LinearStoreNode {
    pub fn new(node: &Node, base_addr: u64) -> LinearStoreNode {
        LinearStoreNode {
            io: Io::new(node),
            base_addr,
            offset_bytes: 0,
            row_offset: 0,
            last_done: 0,
            outstanding: 0,
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let mut progress = false;
        while let Some((_, done)) = ctx.hbm.pop_response() {
            self.last_done = self.last_done.max(done);
            self.outstanding -= 1;
            progress = true;
        }
        progress
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        let drained = self.drain(ctx);
        if self.outstanding >= HBM_PIPELINE {
            return Ok(drained);
        }
        let head_is_done = match self.io.peek(ctx, 0) {
            None => return Ok(drained),
            Some((_, tok)) => matches!(tok, Token::Done),
        };
        if head_is_done && self.outstanding > 0 {
            // The finish time folds in every write completion.
            self.io.blocked = Some(Blocked::Hbm);
            return Ok(drained);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let tile = e.as_tile()?;
                let bytes = tile.bytes();
                ctx.hbm.request(
                    self.base_addr + self.offset_bytes,
                    bytes,
                    self.io.time,
                    true,
                );
                self.outstanding += 1;
                ctx.store
                    .write_tile(self.base_addr, self.row_offset, 0, tile);
                self.row_offset += tile.rows();
                self.offset_bytes += bytes;
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
                self.drain(ctx);
            }
            Token::Stop(_) => {}
            Token::Done => {
                self.io.time = self.io.time.max(self.last_done);
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(LinearStoreNode);

/// `RandomOffChipLoad`: one tile per byte address.
pub struct RandomLoadNode {
    io: Io,
    cfg: RandomAccessCfg,
    pending: VecDeque<PendingEmit>,
}

impl RandomLoadNode {
    pub fn new(node: &Node, cfg: RandomAccessCfg) -> RandomLoadNode {
        RandomLoadNode {
            io: Io::new(node),
            cfg,
            pending: VecDeque::new(),
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let (tr, tc) = self.cfg.tile_shape;
        drain_pending!(self, ctx, |done, gr, _gc, _row_stop| {
            // Functional payload: tiles are addressed as a vertical stack
            // below the configured base.
            let tile = ctx.store.read_tile(
                self.cfg.base_addr,
                (gr * tr) as usize,
                0,
                tr as usize,
                tc as usize,
            );
            self.io.push_at(0, done, Token::Val(Elem::Tile(tile)));
        })
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.drain(ctx) {
            return Ok(true);
        }
        if self.pending.len() >= HBM_PIPELINE {
            return Ok(false);
        }
        let head_is_done = match self.io.peek(ctx, 0) {
            None => return Ok(false),
            Some((_, tok)) => matches!(tok, Token::Done),
        };
        if head_is_done && !self.pending.is_empty() {
            self.io.blocked = Some(Blocked::Hbm);
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let addr = e.as_addr()?;
                let bytes = self.cfg.tile_bytes();
                // Issue immediately (the pop above already rate-limits to
                // one address per cycle); the token carries the completion
                // time, and the bounded output channel caps requests in
                // flight.
                let seq = ctx.hbm.request(addr, bytes, self.io.time, false);
                let tile_idx = addr.saturating_sub(self.cfg.base_addr) / bytes.max(1);
                self.pending.push_back(PendingEmit::Tile {
                    seq,
                    gr: tile_idx,
                    gc: 0,
                    row_stop: false,
                });
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
            }
            Token::Stop(k) => self.pending.push_back(PendingEmit::Mark {
                time: self.io.time,
                token: Token::Stop(k),
            }),
            Token::Done => self.io.push_done_all(),
        }
        Ok(true)
    }
}

impl_simnode_common!(RandomLoadNode);

/// `RandomOffChipStore`: writes data tiles at paired addresses, emitting
/// an acknowledgement stream.
pub struct RandomStoreNode {
    io: Io,
    cfg: RandomAccessCfg,
    pending: VecDeque<PendingEmit>,
}

impl RandomStoreNode {
    pub fn new(node: &Node, cfg: RandomAccessCfg) -> RandomStoreNode {
        RandomStoreNode {
            io: Io::new(node),
            cfg,
            pending: VecDeque::new(),
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_>) -> bool {
        drain_pending!(self, ctx, |done, _gr, _gc, _row_stop| {
            self.io.push_at(0, done, Token::Val(Elem::Bool(true)));
        })
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.drain(ctx) {
            return Ok(true);
        }
        if self.pending.len() >= HBM_PIPELINE {
            return Ok(false);
        }
        if self.io.peek(ctx, 0).is_none() || self.io.peek(ctx, 1).is_none() {
            return Ok(false);
        }
        let heads_done = matches!(self.io.peek(ctx, 0), Some(&(_, Token::Done)));
        if heads_done && !self.pending.is_empty() {
            self.io.blocked = Some(Blocked::Hbm);
            return Ok(false);
        }
        let a = self.io.pop(ctx, 0);
        let d = self.io.pop(ctx, 1);
        match (a, d) {
            (Token::Val(a), Token::Val(d)) => {
                let addr = a.as_addr()?;
                let tile = d.as_tile()?;
                let bytes = tile.bytes();
                let seq = ctx.hbm.request(addr, bytes, self.io.time, true);
                let (tr, _) = self.cfg.tile_shape;
                let tile_idx =
                    addr.saturating_sub(self.cfg.base_addr) / self.cfg.tile_bytes().max(1);
                ctx.store
                    .write_tile(self.cfg.base_addr, (tile_idx * tr) as usize, 0, tile);
                self.pending.push_back(PendingEmit::Tile {
                    seq,
                    gr: 0,
                    gc: 0,
                    row_stop: false,
                });
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
            }
            (Token::Stop(s1), Token::Stop(s2)) if s1 == s2 => {
                self.pending.push_back(PendingEmit::Mark {
                    time: self.io.time,
                    token: Token::Stop(s1),
                });
            }
            (Token::Done, Token::Done) => self.io.push_done_all(),
            (x, y) => {
                return Err(StepError::Exec(format!(
                    "random store misalignment: {x} vs {y}"
                )));
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(RandomStoreNode);
