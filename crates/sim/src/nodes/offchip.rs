//! Off-chip memory operators (Table 3) wired to the HBM timing node.
//!
//! Every operator is a two-phase state machine: consuming an input token
//! *issues* requests through the node's [`super::HbmPort`], and a FIFO of
//! pending emissions turns *completions* back into timed output tokens in
//! issue order. Under an immediate sink (monolithic runs, and sharded
//! sub-rounds whose sole runnable shard takes the engine's off-chip fast
//! path) completions are available within the same fire, so the operator
//! collapses back to single-fire exactly like the legacy synchronous
//! implementation; under a queued sink (sharded runs) the node parks
//! between issue and completion and the engine wakes it after the
//! barrier commit. Interleaved structural tokens (block separators,
//! pass-through stops) ride the same FIFO so emission order is preserved
//! while requests pipeline.

use super::basic::impl_simnode_common;
use super::{BUDGET, Blocked, Ctx, Io, SimNode};
use crate::stats::NodeStats;
use std::collections::VecDeque;
use step_core::Elem;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::ops::{LinearLoadCfg, RandomAccessCfg};
use step_core::tile::Tile;
use step_core::token::Token;

/// Soft cap on requests a node keeps in flight under a queued sink: the
/// check runs before consuming an input token, and one input may issue a
/// whole block (`LinearOffChipLoad` issues `nr*nc` requests per
/// reference), so pipelining can overshoot the cap by up to one block.
/// Immediate sinks drain within the fire, so the cap never binds there.
const HBM_PIPELINE: usize = 2 * BUDGET as usize;

/// A pending emission: a *run* of tiles awaiting their completions, or a
/// structural token already stamped at issue time. A whole row of tile
/// requests is one entry (consecutive sequence numbers, tensor indices
/// advancing by `idx_stride`), so the pending FIFO scales with block
/// rows, not tiles.
#[derive(Clone)]
enum PendingEmit {
    /// Responses `seq0..seq0 + count` carry the completion times;
    /// `idx0 + j * idx_stride` locates tile `j` in the stored tensor
    /// (interpretation is the operator's), and `row_stop_last` appends a
    /// level-1 stop after the final tile.
    Tiles {
        seq0: u64,
        count: u64,
        idx0: u64,
        idx_stride: u64,
        row_stop_last: bool,
    },
    /// A token emitted as-is at a time fixed at issue.
    Mark { time: u64, token: Token },
}

/// The shared drain loop over a node's pending-emission FIFO: marks emit
/// eagerly at their issue-time stamps, tiles wait for their completion
/// (recording [`Blocked::Hbm`] when it has not arrived), and the closure
/// materializes one completed tile — identified by its tensor index —
/// as output tokens.
macro_rules! drain_pending {
    ($self:ident, $ctx:ident, |$done:ident, $idx:ident, $row_stop:ident| $emit:block) => {{
        let mut progress = false;
        loop {
            let Some(front) = $self.pending.front() else {
                break;
            };
            match *front {
                PendingEmit::Mark { time, ref token } => {
                    let token = token.clone();
                    $self.io.push_at(0, time, token);
                    $self.pending.pop_front();
                    $self.on_mark_popped();
                }
                PendingEmit::Tiles {
                    seq0,
                    count,
                    idx0,
                    idx_stride,
                    row_stop_last,
                } => {
                    let Some($done) = $ctx.hbm.take_response(seq0) else {
                        $self.io.blocked = Some(Blocked::Hbm);
                        break;
                    };
                    let $idx = idx0;
                    let $row_stop = row_stop_last && count == 1;
                    $emit
                    if count == 1 {
                        $self.pending.pop_front();
                    } else if let Some(PendingEmit::Tiles {
                        seq0, count, idx0, ..
                    }) = $self.pending.front_mut()
                    {
                        *seq0 += 1;
                        *count -= 1;
                        *idx0 += idx_stride;
                    }
                }
            }
            progress = true;
        }
        progress
    }};
}

/// `LinearOffChipLoad` (Fig 2): per reference element, an affine tiled
/// read of the stored tensor, adding two dimensions to the stream.
#[derive(Clone)]
pub struct LinearLoadNode {
    io: Io,
    cfg: LinearLoadCfg,
    pending: VecDeque<PendingEmit>,
    /// Pending emissions in flight — tiles *plus* separator marks,
    /// exactly the entry count the per-tile FIFO used to have, so the
    /// pipeline cap stalls at the same point it always did.
    in_flight: u64,
    /// A completed block awaits its separator stop (the block-emitter
    /// rule shared by every block-expanding operator).
    sep_pending: bool,
}

impl LinearLoadNode {
    pub fn new(node: &Node, cfg: LinearLoadCfg) -> LinearLoadNode {
        LinearLoadNode {
            io: Io::new(node),
            cfg,
            pending: VecDeque::new(),
            in_flight: 0,
            sep_pending: false,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.pending.clear();
        self.in_flight = 0;
        self.sep_pending = false;
    }

    /// Mark entries count toward the pipeline cap (macro hook).
    fn on_mark_popped(&mut self) {
        self.in_flight -= 1;
    }

    /// Issues one block of tile requests; emission happens as completions
    /// drain through the FIFO.
    fn issue_block(&mut self, ctx: &mut Ctx<'_>) {
        let (nr, nc) = self.cfg.shape_tiled;
        let (sr, sc) = self.cfg.stride_tiled;
        let tile_bytes = self.cfg.tile_bytes();
        let issue = self.io.time;
        if self.sep_pending {
            self.in_flight += 1;
            self.pending.push_back(PendingEmit::Mark {
                time: issue,
                token: Token::Stop(2),
            });
        }
        self.sep_pending = true;
        let mut k = 0u64;
        for i in 0..nr {
            let mut seq0 = 0;
            for j in 0..nc {
                let idx = i * sr + j * sc;
                let addr = self.cfg.base_addr + idx * tile_bytes;
                // Requests issue pipelined at one per cycle; completions
                // are bounded by the shared HBM bus.
                let seq = ctx.hbm.request(addr, tile_bytes, issue + k, false);
                if j == 0 {
                    seq0 = seq;
                }
                k += 1;
            }
            if nc > 0 {
                self.in_flight += nc;
                // One pending entry per row of tiles.
                self.pending.push_back(PendingEmit::Tiles {
                    seq0,
                    count: nc,
                    idx0: i * sr,
                    idx_stride: sc,
                    row_stop_last: i + 1 < nr,
                });
            }
        }
        self.io.time = issue + k;
        // Double-buffered staging of the tile being transferred (§4.2).
        self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * tile_bytes);
    }

    /// Emits every pending entry whose completion has arrived. Timing
    /// runs (no registered tensors) read every tile back as the same
    /// shape-only payload, so a stretch of completed requests emits as
    /// one run: one completion-run pickup, one payload, one outbox entry.
    fn drain(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let (tr, tc) = self.cfg.tile_shape;
        if ctx.store.is_empty() {
            let mut progress = false;
            loop {
                match self.pending.front() {
                    None => break,
                    Some(PendingEmit::Mark { time, token }) => {
                        let (time, token) = (*time, token.clone());
                        self.io.push_at(0, time, token);
                        self.pending.pop_front();
                        self.in_flight -= 1;
                    }
                    Some(&PendingEmit::Tiles {
                        seq0,
                        count,
                        row_stop_last,
                        ..
                    }) => {
                        // All but a trailing row stop emit as one run of
                        // the same shape-only tile.
                        let plain = if row_stop_last { count - 1 } else { count };
                        if plain > 0 {
                            let Some(dones) = ctx.hbm.take_response_run(seq0, plain) else {
                                self.io.blocked = Some(Blocked::Hbm);
                                break;
                            };
                            let k = dones.count;
                            self.in_flight -= k;
                            let tile = Tile::phantom(tr as usize, tc as usize);
                            self.io.push_run(0, dones, Token::Val(Elem::Tile(tile)));
                            if k < count {
                                if let Some(PendingEmit::Tiles { seq0, count, .. }) =
                                    self.pending.front_mut()
                                {
                                    *seq0 += k;
                                    *count -= k;
                                }
                                if k < plain {
                                    // More plain tiles await responses.
                                    progress = true;
                                    continue;
                                }
                            } else {
                                self.pending.pop_front();
                                progress = true;
                                continue;
                            }
                        }
                        // The row-closing tile: emit tile + Stop(1).
                        let Some((seq, _)) = self.pending.front().and_then(|e| match e {
                            &PendingEmit::Tiles { seq0, count, .. } => Some((seq0, count)),
                            _ => None,
                        }) else {
                            break;
                        };
                        let Some(done) = ctx.hbm.take_response(seq) else {
                            self.io.blocked = Some(Blocked::Hbm);
                            break;
                        };
                        self.in_flight -= 1;
                        let tile = Tile::phantom(tr as usize, tc as usize);
                        self.io.push_at(0, done, Token::Val(Elem::Tile(tile)));
                        self.io.push_at(0, done, Token::Stop(1));
                        self.pending.pop_front();
                    }
                }
                progress = true;
            }
            return progress;
        }
        drain_pending!(self, ctx, |done, idx, row_stop| {
            self.in_flight -= 1;
            let grid_cols = self.cfg.grid().1.max(1);
            let (gr, gc) = (idx / grid_cols, idx % grid_cols);
            let tile = ctx.store.read_tile(
                self.cfg.base_addr,
                (gr * tr) as usize,
                (gc * tc) as usize,
                tr as usize,
                tc as usize,
            );
            self.io.push_at(0, done, Token::Val(Elem::Tile(tile)));
            if row_stop {
                self.io.push_at(0, done, Token::Stop(1));
            }
        })
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        // A draining step ends before the next issue so the flush between
        // steps applies output backpressure exactly like the synchronous
        // implementation did (the staging gate must see the emissions
        // before the node consumes further input).
        if self.drain(ctx) {
            return Ok(1);
        }
        if self.in_flight >= HBM_PIPELINE as u64 {
            return Ok(0);
        }
        // Structural reference tokens wait for in-flight blocks so the
        // separator algebra observes emissions in order.
        let head_is_val = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, tok)) => tok.is_val(),
        };
        if !head_is_val && !self.pending.is_empty() {
            self.io.blocked = Some(Blocked::Hbm);
            return Ok(0);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(_) => self.issue_block(ctx),
            Token::Stop(k) => {
                self.io.push(0, Token::Stop(k + 2));
                self.sep_pending = false;
            }
            Token::Done => {
                if self.sep_pending {
                    self.io.push(0, Token::Stop(2));
                    self.sep_pending = false;
                }
                self.io.push_done_all();
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(LinearLoadNode);

/// `LinearOffChipStore`: writes tiles linearly at the base address.
#[derive(Clone)]
pub struct LinearStoreNode {
    io: Io,
    base_addr: u64,
    offset_bytes: u64,
    row_offset: usize,
    last_done: u64,
    outstanding: usize,
}

impl LinearStoreNode {
    pub fn new(node: &Node, base_addr: u64) -> LinearStoreNode {
        LinearStoreNode {
            io: Io::new(node),
            base_addr,
            offset_bytes: 0,
            row_offset: 0,
            last_done: 0,
            outstanding: 0,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.offset_bytes = 0;
        self.row_offset = 0;
        self.last_done = 0;
        self.outstanding = 0;
    }

    fn drain(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let mut progress = false;
        while let Some((_, done)) = ctx.hbm.pop_response() {
            self.last_done = self.last_done.max(done);
            self.outstanding -= 1;
            progress = true;
        }
        progress
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        let drained = self.drain(ctx) as u64;
        if self.outstanding >= HBM_PIPELINE {
            return Ok(drained);
        }
        let head_is_done = match self.io.peek(ctx, 0) {
            None => return Ok(drained),
            Some((_, tok)) => matches!(tok, Token::Done),
        };
        if head_is_done && self.outstanding > 0 {
            // The finish time folds in every write completion.
            self.io.blocked = Some(Blocked::Hbm);
            return Ok(drained);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let tile = e.as_tile()?;
                let bytes = tile.bytes();
                ctx.hbm.request(
                    self.base_addr + self.offset_bytes,
                    bytes,
                    self.io.time,
                    true,
                );
                self.outstanding += 1;
                ctx.store
                    .write_tile(self.base_addr, self.row_offset, 0, tile);
                self.row_offset += tile.rows();
                self.offset_bytes += bytes;
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
                self.drain(ctx);
            }
            Token::Stop(_) => {}
            Token::Done => {
                self.io.time = self.io.time.max(self.last_done);
                self.io.push_done_all();
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(LinearStoreNode);

/// `RandomOffChipLoad`: one tile per byte address.
#[derive(Clone)]
pub struct RandomLoadNode {
    io: Io,
    cfg: RandomAccessCfg,
    pending: VecDeque<PendingEmit>,
}

impl RandomLoadNode {
    pub fn new(node: &Node, cfg: RandomAccessCfg) -> RandomLoadNode {
        RandomLoadNode {
            io: Io::new(node),
            cfg,
            pending: VecDeque::new(),
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.pending.clear();
    }

    /// Pipeline cap counts pending entries directly here (macro hook).
    fn on_mark_popped(&mut self) {}

    fn drain(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let (tr, tc) = self.cfg.tile_shape;
        drain_pending!(self, ctx, |done, idx, _row_stop| {
            // Functional payload: tiles are addressed as a vertical stack
            // below the configured base.
            let tile = ctx.store.read_tile(
                self.cfg.base_addr,
                (idx * tr) as usize,
                0,
                tr as usize,
                tc as usize,
            );
            self.io.push_at(0, done, Token::Val(Elem::Tile(tile)));
        })
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        if self.drain(ctx) {
            return Ok(1);
        }
        if self.pending.len() >= HBM_PIPELINE {
            return Ok(0);
        }
        let head_is_done = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, tok)) => matches!(tok, Token::Done),
        };
        if head_is_done && !self.pending.is_empty() {
            self.io.blocked = Some(Blocked::Hbm);
            return Ok(0);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let addr = e.as_addr()?;
                let bytes = self.cfg.tile_bytes();
                // Issue immediately (the pop above already rate-limits to
                // one address per cycle); the token carries the completion
                // time, and the bounded output channel caps requests in
                // flight.
                let seq = ctx.hbm.request(addr, bytes, self.io.time, false);
                let tile_idx = addr.saturating_sub(self.cfg.base_addr) / bytes.max(1);
                self.pending.push_back(PendingEmit::Tiles {
                    seq0: seq,
                    count: 1,
                    idx0: tile_idx,
                    idx_stride: 0,
                    row_stop_last: false,
                });
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
            }
            Token::Stop(k) => self.pending.push_back(PendingEmit::Mark {
                time: self.io.time,
                token: Token::Stop(k),
            }),
            Token::Done => self.io.push_done_all(),
        }
        Ok(1)
    }
}

impl_simnode_common!(RandomLoadNode);

/// `RandomOffChipStore`: writes data tiles at paired addresses, emitting
/// an acknowledgement stream.
#[derive(Clone)]
pub struct RandomStoreNode {
    io: Io,
    cfg: RandomAccessCfg,
    pending: VecDeque<PendingEmit>,
}

impl RandomStoreNode {
    pub fn new(node: &Node, cfg: RandomAccessCfg) -> RandomStoreNode {
        RandomStoreNode {
            io: Io::new(node),
            cfg,
            pending: VecDeque::new(),
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.pending.clear();
    }

    /// Pipeline cap counts pending entries directly here (macro hook).
    fn on_mark_popped(&mut self) {}

    fn drain(&mut self, ctx: &mut Ctx<'_>) -> bool {
        drain_pending!(self, ctx, |done, _idx, _row_stop| {
            self.io.push_at(0, done, Token::Val(Elem::Bool(true)));
        })
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        if self.drain(ctx) {
            return Ok(1);
        }
        if self.pending.len() >= HBM_PIPELINE {
            return Ok(0);
        }
        if self.io.peek(ctx, 0).is_none() || self.io.peek(ctx, 1).is_none() {
            return Ok(0);
        }
        let heads_done = matches!(self.io.peek(ctx, 0), Some((_, Token::Done)));
        if heads_done && !self.pending.is_empty() {
            self.io.blocked = Some(Blocked::Hbm);
            return Ok(0);
        }
        let a = self.io.pop(ctx, 0);
        let d = self.io.pop(ctx, 1);
        match (a, d) {
            (Token::Val(a), Token::Val(d)) => {
                let addr = a.as_addr()?;
                let tile = d.as_tile()?;
                let bytes = tile.bytes();
                let seq = ctx.hbm.request(addr, bytes, self.io.time, true);
                let (tr, _) = self.cfg.tile_shape;
                let tile_idx =
                    addr.saturating_sub(self.cfg.base_addr) / self.cfg.tile_bytes().max(1);
                ctx.store
                    .write_tile(self.cfg.base_addr, (tile_idx * tr) as usize, 0, tile);
                self.pending.push_back(PendingEmit::Tiles {
                    seq0: seq,
                    count: 1,
                    idx0: 0,
                    idx_stride: 0,
                    row_stop_last: false,
                });
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
            }
            (Token::Stop(s1), Token::Stop(s2)) if s1 == s2 => {
                self.pending.push_back(PendingEmit::Mark {
                    time: self.io.time,
                    token: Token::Stop(s1),
                });
            }
            (Token::Done, Token::Done) => self.io.push_done_all(),
            (x, y) => {
                return Err(StepError::Exec(format!(
                    "random store misalignment: {x} vs {y}"
                )));
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(RandomStoreNode);
