//! Off-chip memory operators (Table 3) wired to the HBM timing node.

use super::basic::impl_simnode_common;
use super::{BUDGET, BlockEmitter, Ctx, Io, SimNode};
use crate::stats::NodeStats;
use step_core::Elem;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::ops::{LinearLoadCfg, RandomAccessCfg};
use step_core::token::Token;

/// `LinearOffChipLoad` (Fig 2): per reference element, an affine tiled
/// read of the stored tensor, adding two dimensions to the stream.
pub struct LinearLoadNode {
    io: Io,
    cfg: LinearLoadCfg,
    emitter: BlockEmitter,
}

impl LinearLoadNode {
    pub fn new(node: &Node, cfg: LinearLoadCfg) -> LinearLoadNode {
        LinearLoadNode {
            io: Io::new(node),
            cfg,
            emitter: BlockEmitter::default(),
        }
    }

    fn emit_block(&mut self, ctx: &mut Ctx<'_>) {
        let (nr, nc) = self.cfg.shape_tiled;
        let (sr, sc) = self.cfg.stride_tiled;
        let (tr, tc) = self.cfg.tile_shape;
        let grid_cols = self.cfg.grid().1.max(1);
        let tile_bytes = self.cfg.tile_bytes();
        let issue = self.io.time;
        let mut k = 0u64;
        for i in 0..nr {
            for j in 0..nc {
                let idx = i * sr + j * sc;
                let addr = self.cfg.base_addr + idx * tile_bytes;
                // Requests issue pipelined at one per cycle; completions
                // are bounded by the shared HBM bus.
                let done = ctx.hbm.access(addr, tile_bytes, issue + k, false);
                k += 1;
                let (gr, gc) = (idx / grid_cols, idx % grid_cols);
                let tile = ctx.store.read_tile(
                    self.cfg.base_addr,
                    (gr * tr) as usize,
                    (gc * tc) as usize,
                    tr as usize,
                    tc as usize,
                );
                self.io.push_at(0, done, Token::Val(Elem::Tile(tile)));
                if j + 1 == nc && i + 1 < nr {
                    self.io.push_at(0, done, Token::Stop(1));
                }
            }
        }
        self.io.time = issue + k;
        // Double-buffered staging of the tile being transferred (§4.2).
        self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * tile_bytes);
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(_) => {
                self.emitter.before_block(&mut self.io, 0, 2);
                self.emit_block(ctx);
            }
            Token::Stop(k) => self.emitter.on_stop(&mut self.io, 0, k, 2),
            Token::Done => {
                self.emitter.on_done(&mut self.io, 0, 2);
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(LinearLoadNode);

/// `LinearOffChipStore`: writes tiles linearly at the base address.
pub struct LinearStoreNode {
    io: Io,
    base_addr: u64,
    offset_bytes: u64,
    row_offset: usize,
    last_done: u64,
}

impl LinearStoreNode {
    pub fn new(node: &Node, base_addr: u64) -> LinearStoreNode {
        LinearStoreNode {
            io: Io::new(node),
            base_addr,
            offset_bytes: 0,
            row_offset: 0,
            last_done: 0,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let tile = e.as_tile()?;
                let bytes = tile.bytes();
                let done = ctx.hbm.access(
                    self.base_addr + self.offset_bytes,
                    bytes,
                    self.io.time,
                    true,
                );
                ctx.store
                    .write_tile(self.base_addr, self.row_offset, 0, tile);
                self.row_offset += tile.rows();
                self.offset_bytes += bytes;
                self.last_done = self.last_done.max(done);
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
            }
            Token::Stop(_) => {}
            Token::Done => {
                self.io.time = self.io.time.max(self.last_done);
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(LinearStoreNode);

/// `RandomOffChipLoad`: one tile per byte address.
pub struct RandomLoadNode {
    io: Io,
    cfg: RandomAccessCfg,
}

impl RandomLoadNode {
    pub fn new(node: &Node, cfg: RandomAccessCfg) -> RandomLoadNode {
        RandomLoadNode {
            io: Io::new(node),
            cfg,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let addr = e.as_addr()?;
                let bytes = self.cfg.tile_bytes();
                // Issue immediately (the pop above already rate-limits to
                // one address per cycle); the token carries the completion
                // time, and the bounded output channel caps requests in
                // flight.
                let done = ctx.hbm.access(addr, bytes, self.io.time, false);
                // Functional payload: tiles are addressed as a vertical
                // stack below the configured base.
                let (tr, tc) = self.cfg.tile_shape;
                let tile_idx = addr.saturating_sub(self.cfg.base_addr) / bytes.max(1);
                let tile = ctx.store.read_tile(
                    self.cfg.base_addr,
                    (tile_idx * tr) as usize,
                    0,
                    tr as usize,
                    tc as usize,
                );
                self.io.push_at(0, done, Token::Val(Elem::Tile(tile)));
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
            }
            Token::Stop(k) => self.io.push(0, Token::Stop(k)),
            Token::Done => self.io.push_done_all(),
        }
        Ok(true)
    }
}

impl_simnode_common!(RandomLoadNode);

/// `RandomOffChipStore`: writes data tiles at paired addresses, emitting
/// an acknowledgement stream.
pub struct RandomStoreNode {
    io: Io,
    cfg: RandomAccessCfg,
}

impl RandomStoreNode {
    pub fn new(node: &Node, cfg: RandomAccessCfg) -> RandomStoreNode {
        RandomStoreNode {
            io: Io::new(node),
            cfg,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() || self.io.peek(ctx, 1).is_none() {
            return Ok(false);
        }
        let a = self.io.pop(ctx, 0);
        let d = self.io.pop(ctx, 1);
        match (a, d) {
            (Token::Val(a), Token::Val(d)) => {
                let addr = a.as_addr()?;
                let tile = d.as_tile()?;
                let bytes = tile.bytes();
                let done = ctx.hbm.access(addr, bytes, self.io.time, true);
                let (tr, _) = self.cfg.tile_shape;
                let tile_idx =
                    addr.saturating_sub(self.cfg.base_addr) / self.cfg.tile_bytes().max(1);
                ctx.store
                    .write_tile(self.cfg.base_addr, (tile_idx * tr) as usize, 0, tile);
                self.io.push_at(0, done, Token::Val(Elem::Bool(true)));
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(2 * bytes);
            }
            (Token::Stop(s1), Token::Stop(s2)) if s1 == s2 => {
                self.io.push(0, Token::Stop(s1));
            }
            (Token::Done, Token::Done) => self.io.push_done_all(),
            (x, y) => {
                return Err(StepError::Exec(format!(
                    "random store misalignment: {x} vs {y}"
                )));
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(RandomStoreNode);
