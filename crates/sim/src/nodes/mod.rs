//! Operator executors.
//!
//! Each STeP operator is executed by a node implementing [`SimNode`]:
//! a state machine with a local clock that consumes timed tokens from its
//! input channels, performs the operator's functional semantics (§3.2),
//! charges its timing model (§4.3), and produces timed tokens. Nodes are
//! fired round-robin by the engine until the graph drains.

mod basic;
mod compute;
mod offchip;
mod onchip;
mod routing;
mod routing_partition;

use crate::arena::{Arena, BackingStore};
use crate::channel::Channel;
use crate::config::SimConfig;
use crate::hbm::Hbm;
use crate::stats::NodeStats;
use std::collections::VecDeque;
use step_core::error::{Result, StepError};
use step_core::graph::{EdgeId, Graph, Node};
use step_core::ops::OpKind;
use step_core::token::Token;

/// Shared mutable simulation state handed to nodes on every fire.
pub struct Ctx<'a> {
    /// Channels indexed by [`EdgeId`].
    pub channels: &'a mut [Channel],
    /// The shared off-chip memory timing node.
    pub hbm: &'a mut Hbm,
    /// The on-chip scratchpad arena.
    pub arena: &'a mut Arena,
    /// Dense off-chip contents for functional runs.
    pub store: &'a mut BackingStore,
    /// Global configuration.
    pub cfg: &'a SimConfig,
    /// Upper bound (inclusive) on token ready times visible this round:
    /// the engine advances this window so that host execution order
    /// tracks simulated time (conservative windowed execution).
    pub horizon: u64,
}

impl Ctx<'_> {
    fn ch(&mut self, e: EdgeId) -> &mut Channel {
        &mut self.channels[e.0 as usize]
    }
}

/// Steps a node can take per `fire` call, bounding per-round work so the
/// scheduler interleaves nodes fairly.
pub(crate) const BUDGET: usize = 256;

/// A simulated operator.
pub trait SimNode {
    /// Processes as much as possible (bounded); returns whether any
    /// progress was made.
    ///
    /// # Errors
    ///
    /// Returns [`StepError`] on functional violations (shape mismatches,
    /// selector range errors, malformed streams).
    fn fire(&mut self, ctx: &mut Ctx<'_>) -> Result<bool>;

    /// Whether the node has fully finished.
    fn done(&self) -> bool;

    /// Execution statistics.
    fn stats(&self) -> &NodeStats;

    /// The node's local clock.
    fn local_time(&self) -> u64;

    /// Recorded tokens, for recording sinks.
    fn recorded(&self) -> Option<&[Token]> {
        None
    }
}

/// Tokens a port may stage beyond its channel before the node stalls —
/// the unit's small internal output register, decoupling ports from each
/// other (a full FIFO on port A must not block traffic for port B).
const PORT_STAGING: usize = 2;

/// Common I/O harness embedded in every node: input/output edges, local
/// clock, statistics, and per-port timed outboxes providing
/// backpressure-correct sends.
pub(crate) struct Io {
    pub ins: Vec<EdgeId>,
    pub outs: Vec<EdgeId>,
    pub time: u64,
    pub stats: NodeStats,
    outbox: Vec<VecDeque<(u64, Token)>>,
    pub finishing: bool,
    pub done: bool,
}

impl Io {
    pub fn new(node: &Node) -> Io {
        Io {
            ins: node.inputs.clone(),
            outs: node.outputs.clone(),
            time: 0,
            stats: NodeStats::default(),
            outbox: vec![VecDeque::new(); node.outputs.len()],
            finishing: false,
            done: false,
        }
    }

    /// Queues a token for `port` stamped with the current local time.
    pub fn push(&mut self, port: usize, tok: Token) {
        let t = self.time;
        self.push_at(port, t, tok);
    }

    /// Queues a token for `port` with an explicit production time.
    pub fn push_at(&mut self, port: usize, time: u64, tok: Token) {
        if let Token::Val(_) = &tok {
            self.stats.values_out += 1;
        }
        self.outbox[port].push_back((time, tok));
    }

    /// Queues `Done` on every output port and marks the node finishing.
    pub fn push_done_all(&mut self) {
        for port in 0..self.outs.len() {
            let t = self.time;
            self.outbox[port].push_back((t, Token::Done));
        }
        self.finishing = true;
    }

    /// Attempts to drain every port's outbox (ports never block each
    /// other). Returns `(made_progress, may_step)` where `may_step`
    /// allows further input processing only while every port is within
    /// its staging allowance.
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) -> (bool, bool) {
        let mut progress = false;
        let mut may_step = true;
        for (port, q) in self.outbox.iter_mut().enumerate() {
            while let Some((t, tok)) = q.front().cloned() {
                let ch = ctx.ch(self.outs[port]);
                if !ch.can_send() {
                    break;
                }
                ch.send(t, tok);
                q.pop_front();
                progress = true;
            }
            if q.len() > PORT_STAGING {
                may_step = false;
            }
        }
        if may_step && self.finishing && !self.done {
            // Finish only once everything is delivered.
            if self.outbox.iter().all(VecDeque::is_empty) {
                self.finish(ctx);
                progress = true;
            } else {
                may_step = false;
            }
        }
        (progress, may_step)
    }

    /// Closes all inputs, marks outputs finished, and flags the node done.
    pub fn finish(&mut self, ctx: &mut Ctx<'_>) {
        for e in &self.ins {
            ctx.channels[e.0 as usize].close();
        }
        for e in &self.outs {
            ctx.channels[e.0 as usize].finish_src();
        }
        self.stats.finish_time = self.time;
        self.done = true;
    }

    /// Peeks input `port`'s head token, if it is ready within the
    /// engine's current time horizon.
    pub fn peek<'c>(&self, ctx: &'c Ctx<'_>, port: usize) -> Option<&'c (u64, Token)> {
        ctx.channels[self.ins[port].0 as usize]
            .peek()
            .filter(|(ready, _)| *ready <= ctx.horizon)
    }

    /// Pops input `port`, advancing the local clock to the dequeue time
    /// and counting values.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty; peek first.
    pub fn pop(&mut self, ctx: &mut Ctx<'_>, port: usize) -> Token {
        let (t, tok) = ctx.ch(self.ins[port]).pop(self.time);
        self.time = self.time.max(t);
        if tok.is_val() {
            self.stats.values_in += 1;
        }
        tok
    }

    /// Charges `cycles` of busy processing time.
    pub fn busy(&mut self, cycles: u64) {
        self.time += cycles;
        self.stats.busy_cycles += cycles;
    }
}

/// Cost of moving `bytes` through an on-chip memory port (§4.3 roofline
/// memory terms), at least one cycle.
pub(crate) fn mem_cycles(bytes: u64, cfg: &SimConfig) -> u64 {
    bytes.div_ceil(cfg.onchip_bytes_per_cycle.max(1)).max(1)
}

/// Roofline compute cost for `flops` at `compute_bw` FLOPs/cycle, at
/// least one cycle per element (II = 1).
pub(crate) fn compute_cycles(flops: u64, compute_bw: u64) -> u64 {
    flops.div_ceil(compute_bw.max(1)).max(1)
}

/// Emits separator stops between consecutive blocks and shifts incoming
/// stops by the added rank — the shared structural rule of every
/// block-expanding operator (`LinearOffChipLoad`, `Streamify`, `FlatMap`,
/// `AddrGen`).
#[derive(Debug, Default)]
pub(crate) struct BlockEmitter {
    pending: bool,
}

impl BlockEmitter {
    /// Call before emitting a new block: flushes the pending separator.
    pub fn before_block(&mut self, io: &mut Io, port: usize, added_rank: u8) {
        if self.pending {
            io.push(port, Token::Stop(added_rank));
        }
        self.pending = true;
    }

    /// Call on an incoming stop: emits the shifted stop, absorbing any
    /// pending separator.
    pub fn on_stop(&mut self, io: &mut Io, port: usize, level: u8, added_rank: u8) {
        io.push(port, Token::Stop(level + added_rank));
        self.pending = false;
    }

    /// Call on `Done`: closes the final block if one is pending.
    pub fn on_done(&mut self, io: &mut Io, port: usize, added_rank: u8) {
        if self.pending {
            io.push(port, Token::Stop(added_rank));
            self.pending = false;
        }
    }
}

/// Builds the executor for a graph node.
///
/// # Errors
///
/// Returns [`StepError::Config`] for operators whose configuration cannot
/// be executed.
pub fn build_node(graph: &Graph, index: usize) -> Result<Box<dyn SimNode>> {
    let node = &graph.nodes()[index];
    let rank_of = |e: EdgeId| graph.edge(e).shape.rank();
    Ok(match &node.op {
        OpKind::Source(cfg) => Box::new(basic::SourceNode::new(node, cfg.clone())),
        OpKind::Sink(cfg) => Box::new(basic::SinkNode::new(node, cfg.record)),
        OpKind::Fork { .. } => Box::new(basic::ForkNode::new(node)),
        OpKind::Zip => Box::new(basic::ZipNode::new(node)),
        OpKind::Flatten { min, max } => Box::new(basic::FlattenNode::new(node, *min, *max)),
        OpKind::Promote => {
            let rank = rank_of(node.inputs[0]);
            Box::new(basic::PromoteNode::new(node, rank))
        }
        OpKind::ExpandStatic { factor } => {
            Box::new(basic::ExpandStaticNode::new(node, *factor))
        }
        OpKind::Expand { level } => Box::new(basic::ExpandNode::new(node, *level)),
        OpKind::Reshape { level, chunk, pad } => {
            if *level != 0 {
                return Err(StepError::Config(
                    "only innermost (level 0) reshape is executable".into(),
                ));
            }
            Box::new(basic::ReshapeNode::new(node, *chunk, pad.clone()))
        }
        OpKind::LinearLoad(cfg) => Box::new(offchip::LinearLoadNode::new(node, cfg.clone())),
        OpKind::LinearStore { base_addr } => {
            Box::new(offchip::LinearStoreNode::new(node, *base_addr))
        }
        OpKind::RandomLoad(cfg) => Box::new(offchip::RandomLoadNode::new(node, cfg.clone())),
        OpKind::RandomStore(cfg) => Box::new(offchip::RandomStoreNode::new(node, cfg.clone())),
        OpKind::Bufferize { rank } => Box::new(onchip::BufferizeNode::new(node, *rank)),
        OpKind::Streamify(cfg) => {
            let buf_rank = rank_of(node.inputs[0]);
            let ref_rank = rank_of(node.inputs[1]);
            Box::new(onchip::StreamifyNode::new(
                node,
                cfg.clone(),
                ref_rank - buf_rank,
            ))
        }
        OpKind::Partition {
            rank,
            num_consumers,
        } => Box::new(routing_partition::PartitionNode::new(node, *rank, *num_consumers)),
        OpKind::Reassemble {
            rank,
            num_producers,
        } => Box::new(routing::ReassembleNode::new(node, *rank, *num_producers)),
        OpKind::EagerMerge { num_producers } => {
            let rank = rank_of(node.inputs[0]);
            Box::new(routing::EagerMergeNode::new(node, *num_producers, rank))
        }
        OpKind::Map { func, compute_bw } => {
            Box::new(compute::MapNode::new(node, *func, *compute_bw))
        }
        OpKind::Accum {
            rank,
            func,
            compute_bw,
        } => Box::new(compute::AccumNode::new(node, *rank, *func, *compute_bw)),
        OpKind::Scan {
            rank,
            func,
            compute_bw,
        } => Box::new(compute::ScanNode::new(node, *rank, *func, *compute_bw)),
        OpKind::FlatMap { func } => Box::new(compute::FlatMapNode::new(node, *func)),
        OpKind::AddrGen {
            count,
            stride,
            base,
        } => Box::new(compute::AddrGenNode::new(node, *count, *stride, *base)),
    })
}

