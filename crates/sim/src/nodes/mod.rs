//! Operator executors.
//!
//! Each STeP operator is executed by a node implementing [`SimNode`]:
//! a state machine with a local clock that consumes timed tokens from its
//! input channels, performs the operator's functional semantics (§3.2),
//! charges its timing model (§4.3), and produces timed tokens. The engine
//! fires a node only when one of its channels signals that progress is
//! possible (event-driven wake lists); a node that returns without
//! progress reports the edge that blocked it via [`SimNode::blocked_on`].

mod basic;
mod compute;
mod offchip;
mod onchip;
mod routing;
mod routing_partition;

use crate::arena::{Arena, SharedStore};
use crate::channel::Channel;
use crate::config::SimConfig;
use crate::hbm::{Hbm, HbmRequest};
use crate::stats::NodeStats;
use std::collections::VecDeque;
use step_core::error::{Result, StepError};
use step_core::graph::{EdgeId, Graph, Node};
use step_core::ops::OpKind;
use step_core::token::Token;

/// A shard's view of the channels, addressed by global [`EdgeId`].
///
/// A monolithic simulation owns every channel (identity mapping); a shard
/// owns only the channels incident to its nodes, plus the writer/reader
/// halves of its cross-shard edges, and translates edge ids through a
/// local index table.
pub struct Chans<'a> {
    channels: &'a mut [Channel],
    /// Global edge id → local index; `None` means identity.
    map: Option<&'a [u32]>,
}

impl<'a> Chans<'a> {
    /// A view owning every channel, addressed directly.
    pub fn identity(channels: &'a mut [Channel]) -> Chans<'a> {
        Chans {
            channels,
            map: None,
        }
    }

    /// A shard-local view translating through `map` (u32::MAX = absent).
    pub fn mapped(channels: &'a mut [Channel], map: &'a [u32]) -> Chans<'a> {
        Chans {
            channels,
            map: Some(map),
        }
    }

    fn local(&self, e: EdgeId) -> usize {
        match self.map {
            None => e.0 as usize,
            Some(m) => m[e.0 as usize] as usize,
        }
    }

    /// The channel for edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not visible in this view.
    pub fn get(&self, e: EdgeId) -> &Channel {
        &self.channels[self.local(e)]
    }

    /// The channel for edge `e`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not visible in this view.
    pub fn get_mut(&mut self, e: EdgeId) -> &mut Channel {
        let i = self.local(e);
        &mut self.channels[i]
    }
}

/// Where a node's off-chip requests commit: directly against the HBM
/// ledger (monolithic runs — the legacy immediate path, batches of one)
/// or into a queue the engine commits at the next barrier in
/// deterministic `(time, node, seq)` order (sharded runs).
pub enum HbmSink<'a> {
    /// Service immediately; responses are available in the same fire.
    Immediate(&'a mut Hbm),
    /// Queue for the engine's next barrier commit.
    Queued(&'a mut Vec<HbmRequest>),
}

/// A node's port into the off-chip memory subsystem: issue requests, pick
/// up completions in issue order.
pub struct HbmPort<'a> {
    sink: HbmSink<'a>,
    /// The requesting node's global id (response routing, commit-order
    /// tiebreak).
    node: u32,
    /// Next request sequence number for this node.
    next_seq: &'a mut u64,
    /// Completions `(seq, done)` awaiting pickup, in issue order.
    responses: &'a mut VecDeque<(u64, u64)>,
}

impl<'a> HbmPort<'a> {
    /// Creates the port handed to node `node` for one fire.
    pub fn new(
        sink: HbmSink<'a>,
        node: u32,
        next_seq: &'a mut u64,
        responses: &'a mut VecDeque<(u64, u64)>,
    ) -> HbmPort<'a> {
        HbmPort {
            sink,
            node,
            next_seq,
            responses,
        }
    }

    /// Issues an access of `bytes` at `addr` at local time `time`,
    /// returning its sequence number. The completion arrives via
    /// [`HbmPort::take_response`] — in the same fire under an immediate
    /// sink, after the engine's next commit barrier under a queued one.
    pub fn request(&mut self, addr: u64, bytes: u64, time: u64, write: bool) -> u64 {
        let seq = *self.next_seq;
        *self.next_seq += 1;
        match &mut self.sink {
            HbmSink::Immediate(hbm) => {
                let done = hbm.access(addr, bytes, time, write);
                self.responses.push_back((seq, done));
            }
            HbmSink::Queued(q) => q.push(HbmRequest {
                time,
                node: self.node,
                seq,
                addr,
                bytes,
                write,
            }),
        }
        seq
    }

    /// The completion time of request `seq`, if it is the oldest pending
    /// response and has been serviced.
    pub fn take_response(&mut self, seq: u64) -> Option<u64> {
        match self.responses.front() {
            Some(&(s, done)) if s == seq => {
                self.responses.pop_front();
                Some(done)
            }
            _ => None,
        }
    }

    /// The oldest serviced completion `(seq, done)`, if any.
    pub fn pop_response(&mut self) -> Option<(u64, u64)> {
        self.responses.pop_front()
    }
}

/// Shared mutable simulation state handed to nodes on every fire.
pub struct Ctx<'a> {
    /// Channels visible to the firing node, addressed by [`EdgeId`].
    pub chans: Chans<'a>,
    /// The node's port into the off-chip memory subsystem.
    pub hbm: HbmPort<'a>,
    /// The (shard-local) on-chip scratchpad arena.
    pub arena: &'a mut Arena,
    /// Dense off-chip contents for functional runs.
    pub store: &'a SharedStore,
    /// Global configuration.
    pub cfg: &'a SimConfig,
    /// Upper bound (inclusive) on token ready times visible this round:
    /// the engine advances this window so that host execution order
    /// tracks simulated time (conservative windowed execution).
    pub horizon: u64,
}

impl Ctx<'_> {
    fn ch(&mut self, e: EdgeId) -> &mut Channel {
        self.chans.get_mut(e)
    }
}

/// Steps a node can take per `fire` call, bounding per-wave work so the
/// scheduler interleaves nodes fairly.
pub(crate) const BUDGET: usize = 256;

/// What a node was waiting on when its last `fire` made no progress —
/// the readiness surface the event-driven engine and its deadlock
/// diagnostics consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocked {
    /// Waiting for a token (ready within the horizon) on this input edge.
    Input(EdgeId),
    /// Waiting for free space on this output edge's channel.
    Output(EdgeId),
    /// Waiting for an off-chip completion (queued HBM commitment).
    Hbm,
}

impl std::fmt::Display for Blocked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Blocked::Input(e) => write!(f, "awaiting input on edge {}", e.0),
            Blocked::Output(e) => write!(f, "output edge {} full", e.0),
            Blocked::Hbm => write!(f, "awaiting off-chip completion"),
        }
    }
}

/// A simulated operator.
pub trait SimNode {
    /// Processes as much as possible (bounded); returns whether any
    /// progress was made.
    ///
    /// # Errors
    ///
    /// Returns [`StepError`] on functional violations (shape mismatches,
    /// selector range errors, malformed streams).
    fn fire(&mut self, ctx: &mut Ctx<'_>) -> Result<bool>;

    /// Whether the node has fully finished.
    fn done(&self) -> bool;

    /// Execution statistics.
    fn stats(&self) -> &NodeStats;

    /// The node's local clock.
    fn local_time(&self) -> u64;

    /// The edge the node's most recent no-progress `fire` was blocked on,
    /// if it recorded one (diagnostics; the wake lists are authoritative
    /// for scheduling).
    fn blocked_on(&self) -> Option<Blocked> {
        None
    }

    /// Recorded tokens, for recording sinks.
    fn recorded(&self) -> Option<&[Token]> {
        None
    }
}

/// Tokens a port may stage beyond its channel before the node stalls —
/// the unit's small internal output register, decoupling ports from each
/// other (a full FIFO on port A must not block traffic for port B).
const PORT_STAGING: usize = 2;

/// Common I/O harness embedded in every node: input/output edges, local
/// clock, statistics, and per-port timed outboxes providing
/// backpressure-correct sends.
pub(crate) struct Io {
    pub ins: Vec<EdgeId>,
    pub outs: Vec<EdgeId>,
    pub time: u64,
    pub stats: NodeStats,
    outbox: Vec<VecDeque<(u64, Token)>>,
    pub finishing: bool,
    pub done: bool,
    /// The last edge a peek or flush found blocking (readiness surface).
    pub blocked: Option<Blocked>,
}

impl Io {
    pub fn new(node: &Node) -> Io {
        Io {
            ins: node.inputs.clone(),
            outs: node.outputs.clone(),
            time: 0,
            stats: NodeStats::default(),
            outbox: vec![VecDeque::new(); node.outputs.len()],
            finishing: false,
            done: false,
            blocked: None,
        }
    }

    /// Queues a token for `port` stamped with the current local time.
    pub fn push(&mut self, port: usize, tok: Token) {
        let t = self.time;
        self.push_at(port, t, tok);
    }

    /// Queues a token for `port` with an explicit production time.
    pub fn push_at(&mut self, port: usize, time: u64, tok: Token) {
        if let Token::Val(_) = &tok {
            self.stats.values_out += 1;
        }
        self.outbox[port].push_back((time, tok));
    }

    /// Queues `Done` on every output port and marks the node finishing.
    pub fn push_done_all(&mut self) {
        for port in 0..self.outs.len() {
            let t = self.time;
            self.outbox[port].push_back((t, Token::Done));
        }
        self.finishing = true;
    }

    /// Attempts to drain every port's outbox (ports never block each
    /// other). Returns `(made_progress, may_step)` where `may_step`
    /// allows further input processing only while every port is within
    /// its staging allowance.
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) -> (bool, bool) {
        let mut progress = false;
        let mut may_step = true;
        for (port, q) in self.outbox.iter_mut().enumerate() {
            while let Some((t, tok)) = q.front().cloned() {
                let ch = ctx.ch(self.outs[port]);
                if !ch.can_send() {
                    self.blocked = Some(Blocked::Output(self.outs[port]));
                    break;
                }
                ch.send(t, tok);
                q.pop_front();
                progress = true;
            }
            if q.len() > PORT_STAGING {
                may_step = false;
            }
        }
        if may_step && self.finishing && !self.done {
            // Finish only once everything is delivered.
            if self.outbox.iter().all(VecDeque::is_empty) {
                self.finish(ctx);
                progress = true;
            } else {
                may_step = false;
            }
        }
        (progress, may_step)
    }

    /// Closes all inputs, marks outputs finished, and flags the node done.
    pub fn finish(&mut self, ctx: &mut Ctx<'_>) {
        for e in &self.ins {
            ctx.chans.get_mut(*e).close();
        }
        for e in &self.outs {
            ctx.chans.get_mut(*e).finish_src();
        }
        self.stats.finish_time = self.time;
        self.done = true;
    }

    /// Peeks input `port`'s head token, if it is ready within the
    /// engine's current time horizon. A miss records the port as the
    /// node's blocker.
    pub fn peek<'c>(&mut self, ctx: &'c Ctx<'_>, port: usize) -> Option<&'c (u64, Token)> {
        let head = ctx
            .chans
            .get(self.ins[port])
            .peek()
            .filter(|(ready, _)| *ready <= ctx.horizon);
        if head.is_none() {
            self.blocked = Some(Blocked::Input(self.ins[port]));
        }
        head
    }

    /// Pops input `port`, advancing the local clock to the dequeue time
    /// and counting values.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty; peek first.
    pub fn pop(&mut self, ctx: &mut Ctx<'_>, port: usize) -> Token {
        let (t, tok) = ctx.ch(self.ins[port]).pop(self.time);
        self.time = self.time.max(t);
        if tok.is_val() {
            self.stats.values_in += 1;
        }
        tok
    }

    /// Charges `cycles` of busy processing time.
    pub fn busy(&mut self, cycles: u64) {
        self.time += cycles;
        self.stats.busy_cycles += cycles;
    }
}

/// Cost of moving `bytes` through an on-chip memory port (§4.3 roofline
/// memory terms), at least one cycle.
pub(crate) fn mem_cycles(bytes: u64, cfg: &SimConfig) -> u64 {
    bytes.div_ceil(cfg.onchip_bytes_per_cycle.max(1)).max(1)
}

/// Roofline compute cost for `flops` at `compute_bw` FLOPs/cycle, at
/// least one cycle per element (II = 1).
pub(crate) fn compute_cycles(flops: u64, compute_bw: u64) -> u64 {
    flops.div_ceil(compute_bw.max(1)).max(1)
}

/// Emits separator stops between consecutive blocks and shifts incoming
/// stops by the added rank — the shared structural rule of every
/// block-expanding operator (`LinearOffChipLoad`, `Streamify`, `FlatMap`,
/// `AddrGen`).
#[derive(Debug, Default)]
pub(crate) struct BlockEmitter {
    pending: bool,
}

impl BlockEmitter {
    /// Call before emitting a new block: flushes the pending separator.
    pub fn before_block(&mut self, io: &mut Io, port: usize, added_rank: u8) {
        if self.pending {
            io.push(port, Token::Stop(added_rank));
        }
        self.pending = true;
    }

    /// Call on an incoming stop: emits the shifted stop, absorbing any
    /// pending separator.
    pub fn on_stop(&mut self, io: &mut Io, port: usize, level: u8, added_rank: u8) {
        io.push(port, Token::Stop(level + added_rank));
        self.pending = false;
    }

    /// Call on `Done`: closes the final block if one is pending.
    pub fn on_done(&mut self, io: &mut Io, port: usize, added_rank: u8) {
        if self.pending {
            io.push(port, Token::Stop(added_rank));
            self.pending = false;
        }
    }
}

/// Builds the executor for a graph node. Executors are `Send` so shards
/// can run on worker threads.
///
/// # Errors
///
/// Returns [`StepError::Config`] for operators whose configuration cannot
/// be executed.
pub fn build_node(graph: &Graph, index: usize) -> Result<Box<dyn SimNode + Send>> {
    let node = &graph.nodes()[index];
    let rank_of = |e: EdgeId| graph.edge(e).shape.rank();
    Ok(match &node.op {
        OpKind::Source(cfg) => Box::new(basic::SourceNode::new(node, cfg.clone())),
        OpKind::Sink(cfg) => Box::new(basic::SinkNode::new(node, cfg.record)),
        OpKind::Fork { .. } => Box::new(basic::ForkNode::new(node)),
        OpKind::Zip => Box::new(basic::ZipNode::new(node)),
        OpKind::Flatten { min, max } => Box::new(basic::FlattenNode::new(node, *min, *max)),
        OpKind::Promote => {
            let rank = rank_of(node.inputs[0]);
            Box::new(basic::PromoteNode::new(node, rank))
        }
        OpKind::ExpandStatic { factor } => Box::new(basic::ExpandStaticNode::new(node, *factor)),
        OpKind::Expand { level } => Box::new(basic::ExpandNode::new(node, *level)),
        OpKind::Reshape { level, chunk, pad } => {
            if *level != 0 {
                return Err(StepError::Config(
                    "only innermost (level 0) reshape is executable".into(),
                ));
            }
            Box::new(basic::ReshapeNode::new(node, *chunk, pad.clone()))
        }
        OpKind::LinearLoad(cfg) => Box::new(offchip::LinearLoadNode::new(node, cfg.clone())),
        OpKind::LinearStore { base_addr } => {
            Box::new(offchip::LinearStoreNode::new(node, *base_addr))
        }
        OpKind::RandomLoad(cfg) => Box::new(offchip::RandomLoadNode::new(node, cfg.clone())),
        OpKind::RandomStore(cfg) => Box::new(offchip::RandomStoreNode::new(node, cfg.clone())),
        OpKind::Bufferize { rank } => Box::new(onchip::BufferizeNode::new(node, *rank)),
        OpKind::Streamify(cfg) => {
            let buf_rank = rank_of(node.inputs[0]);
            let ref_rank = rank_of(node.inputs[1]);
            Box::new(onchip::StreamifyNode::new(
                node,
                cfg.clone(),
                ref_rank - buf_rank,
            ))
        }
        OpKind::Partition {
            rank,
            num_consumers,
        } => Box::new(routing_partition::PartitionNode::new(
            node,
            *rank,
            *num_consumers,
        )),
        OpKind::Reassemble {
            rank,
            num_producers,
        } => Box::new(routing::ReassembleNode::new(node, *rank, *num_producers)),
        OpKind::EagerMerge { num_producers } => {
            let rank = rank_of(node.inputs[0]);
            Box::new(routing::EagerMergeNode::new(node, *num_producers, rank))
        }
        OpKind::Map { func, compute_bw } => {
            Box::new(compute::MapNode::new(node, *func, *compute_bw))
        }
        OpKind::Accum {
            rank,
            func,
            compute_bw,
        } => Box::new(compute::AccumNode::new(node, *rank, *func, *compute_bw)),
        OpKind::Scan {
            rank,
            func,
            compute_bw,
        } => Box::new(compute::ScanNode::new(node, *rank, *func, *compute_bw)),
        OpKind::FlatMap { func } => Box::new(compute::FlatMapNode::new(node, *func)),
        OpKind::AddrGen {
            count,
            stride,
            base,
        } => Box::new(compute::AddrGenNode::new(node, *count, *stride, *base)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::Hbm;
    use step_core::elem::Elem;
    use step_core::graph::EdgeId;
    use step_core::ops::OpKind;

    /// Test fixture owning everything a `Ctx` borrows.
    pub(crate) struct Fixture {
        pub channels: Vec<Channel>,
        pub hbm: Hbm,
        pub arena: Arena,
        pub store: SharedStore,
        pub cfg: SimConfig,
        pub seq: u64,
        pub responses: VecDeque<(u64, u64)>,
    }

    impl Fixture {
        pub fn new(capacities: &[usize]) -> Fixture {
            let cfg = SimConfig::default();
            Fixture {
                channels: capacities.iter().map(|&c| Channel::new(c, 0)).collect(),
                hbm: Hbm::new(cfg.hbm.clone()),
                arena: Arena::new(),
                store: SharedStore::new(),
                cfg,
                seq: 0,
                responses: VecDeque::new(),
            }
        }

        pub fn ctx(&mut self, horizon: u64) -> Ctx<'_> {
            Ctx {
                chans: Chans::identity(&mut self.channels),
                hbm: HbmPort::new(
                    HbmSink::Immediate(&mut self.hbm),
                    0,
                    &mut self.seq,
                    &mut self.responses,
                ),
                arena: &mut self.arena,
                store: &self.store,
                cfg: &self.cfg,
                horizon,
            }
        }
    }

    fn out_node(ports: u32) -> Node {
        Node {
            op: OpKind::Zip,
            inputs: vec![],
            outputs: (0..ports).map(EdgeId).collect(),
            label: String::new(),
        }
    }

    fn val(x: u64) -> Token {
        Token::Val(Elem::Addr(x))
    }

    #[test]
    fn full_port_does_not_block_other_ports() {
        // Port 0's channel holds one token; port 1's holds plenty. Port 1
        // must drain fully even while port 0 is backed up.
        let mut fx = Fixture::new(&[1, 8]);
        let mut io = Io::new(&out_node(2));
        for k in 0..5 {
            io.push(0, val(k));
            io.push(1, val(k));
        }
        let mut ctx = fx.ctx(u64::MAX);
        let (progress, may_step) = io.flush(&mut ctx);
        assert!(progress);
        // Port 0 staged 4 tokens, beyond PORT_STAGING: the node stalls.
        assert!(!may_step);
        assert_eq!(fx.channels[0].len(), 1);
        assert_eq!(fx.channels[1].len(), 5);
        assert_eq!(io.blocked, Some(Blocked::Output(EdgeId(0))));
    }

    #[test]
    fn staging_allowance_lets_a_port_run_slightly_ahead() {
        // With exactly PORT_STAGING tokens staged beyond the channel, the
        // node may still step; one more and it stalls.
        let mut fx = Fixture::new(&[1]);
        let mut io = Io::new(&out_node(1));
        for k in 0..(1 + PORT_STAGING as u64) {
            io.push(0, val(k));
        }
        let mut ctx = fx.ctx(u64::MAX);
        let (_, may_step) = io.flush(&mut ctx);
        assert!(may_step, "PORT_STAGING staged tokens must not stall");
        io.push(0, val(99));
        let (_, may_step) = io.flush(&mut ctx);
        assert!(!may_step, "beyond the staging allowance the node stalls");
        // Draining the channel lets the staged tokens through again.
        fx.channels[0].pop(0);
        let mut ctx = fx.ctx(u64::MAX);
        let (progress, _) = io.flush(&mut ctx);
        assert!(progress);
        assert_eq!(fx.channels[0].len(), 1);
    }

    #[test]
    fn peek_records_the_blocking_edge() {
        let node = Node {
            op: OpKind::Zip,
            inputs: vec![EdgeId(0), EdgeId(1)],
            outputs: vec![],
            label: String::new(),
        };
        let mut io = Io::new(&node);
        let mut fx = Fixture::new(&[2, 2]);
        // A token beyond the horizon is invisible and counts as blocking.
        fx.channels[1].send(500, val(1));
        let ctx = fx.ctx(64);
        assert!(io.peek(&ctx, 0).is_none());
        assert_eq!(io.blocked, Some(Blocked::Input(EdgeId(0))));
        assert!(io.peek(&ctx, 1).is_none(), "head beyond horizon");
        assert_eq!(io.blocked, Some(Blocked::Input(EdgeId(1))));
    }
}
