//! Operator executors.
//!
//! Each STeP operator is executed by a node implementing [`SimNode`]:
//! a state machine with a local clock that consumes timed tokens from its
//! input channels, performs the operator's functional semantics (§3.2),
//! charges its timing model (§4.3), and produces timed tokens. The engine
//! fires a node only when one of its channels signals that progress is
//! possible (event-driven wake lists); a node that returns without
//! progress reports the edge that blocked it via [`SimNode::blocked_on`].

mod basic;
mod compiled;
mod compute;
mod offchip;
mod onchip;
mod routing;
mod routing_partition;

pub use compiled::{CompiledNode, compiled_kind};

use crate::arena::{Arena, SharedStore};
use crate::channel::Channel;
use crate::config::SimConfig;
use crate::hbm::{Hbm, HbmRequest};
use crate::run::TimeRun;
use crate::stats::NodeStats;
use std::collections::VecDeque;
use step_core::error::{Result, StepError};
use step_core::graph::{EdgeId, Graph, Node};
use step_core::ops::OpKind;
use step_core::token::Token;

/// A shard's view of the channels, addressed by global [`EdgeId`].
///
/// A monolithic simulation owns every channel (identity mapping); a shard
/// owns only the channels incident to its nodes, plus the writer/reader
/// halves of its cross-shard edges, and translates edge ids through a
/// local index table.
pub struct Chans<'a> {
    channels: &'a mut [Channel],
    /// Global edge id → local index; `None` means identity.
    map: Option<&'a [u32]>,
}

impl<'a> Chans<'a> {
    /// A view owning every channel, addressed directly.
    pub fn identity(channels: &'a mut [Channel]) -> Chans<'a> {
        Chans {
            channels,
            map: None,
        }
    }

    /// A shard-local view translating through `map` (u32::MAX = absent).
    pub fn mapped(channels: &'a mut [Channel], map: &'a [u32]) -> Chans<'a> {
        Chans {
            channels,
            map: Some(map),
        }
    }

    fn local(&self, e: EdgeId) -> usize {
        match self.map {
            None => e.0 as usize,
            Some(m) => m[e.0 as usize] as usize,
        }
    }

    /// The channel for edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not visible in this view.
    pub fn get(&self, e: EdgeId) -> &Channel {
        &self.channels[self.local(e)]
    }

    /// The channel for edge `e`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not visible in this view.
    pub fn get_mut(&mut self, e: EdgeId) -> &mut Channel {
        let i = self.local(e);
        &mut self.channels[i]
    }

    /// Two distinct channels, mutably (coupled bulk pops, e.g. `Zip`).
    ///
    /// # Panics
    ///
    /// Panics if the edges coincide or are not visible in this view.
    pub fn get2_mut(&mut self, a: EdgeId, b: EdgeId) -> (&mut Channel, &mut Channel) {
        let (ia, ib) = (self.local(a), self.local(b));
        let [ca, cb] = self
            .channels
            .get_disjoint_mut([ia, ib])
            .expect("distinct edges");
        (ca, cb)
    }
}

/// Where a node's off-chip requests commit: directly against the HBM
/// ledger (monolithic runs — the legacy immediate path, batches of one)
/// or into a queue the engine commits at the next barrier in
/// deterministic `(time, node, seq)` order (sharded runs).
pub enum HbmSink<'a> {
    /// Service immediately; responses are available in the same fire.
    Immediate(&'a mut Hbm),
    /// Queue for the engine's next barrier commit.
    Queued(&'a mut Vec<HbmRequest>),
}

/// A run of serviced off-chip completions: requests `seq0..seq0 +
/// done.count` completed at the (arithmetic) times `done`. Responses
/// coalesce into runs at delivery, so a pipelined burst of tile reads
/// costs one queue entry instead of one per request.
#[derive(Debug, Clone, Copy)]
pub struct RespRun {
    /// First request sequence number covered.
    pub seq0: u64,
    /// Completion times, one per consecutive sequence number.
    pub done: TimeRun,
}

/// Appends completion `(seq, done)` to a response queue, coalescing with
/// the tail run when the sequence and completion times both continue.
pub(crate) fn push_response(q: &mut VecDeque<RespRun>, seq: u64, done: u64) {
    if let Some(back) = q.back_mut()
        && back.seq0 + back.done.count == seq
        && back.done.try_extend(TimeRun::single(done))
    {
        return;
    }
    q.push_back(RespRun {
        seq0: seq,
        done: TimeRun::single(done),
    });
}

/// A node's port into the off-chip memory subsystem: issue requests, pick
/// up completions in issue order.
pub struct HbmPort<'a> {
    sink: HbmSink<'a>,
    /// The requesting node's global id (response routing, commit-order
    /// tiebreak).
    node: u32,
    /// Next request sequence number for this node.
    next_seq: &'a mut u64,
    /// Completion runs awaiting pickup, in issue order.
    responses: &'a mut VecDeque<RespRun>,
}

impl<'a> HbmPort<'a> {
    /// Creates the port handed to node `node` for one fire.
    pub fn new(
        sink: HbmSink<'a>,
        node: u32,
        next_seq: &'a mut u64,
        responses: &'a mut VecDeque<RespRun>,
    ) -> HbmPort<'a> {
        HbmPort {
            sink,
            node,
            next_seq,
            responses,
        }
    }

    /// Issues an access of `bytes` at `addr` at local time `time`,
    /// returning its sequence number. The completion arrives via
    /// [`HbmPort::take_response`] — in the same fire under an immediate
    /// sink, after the engine's next commit barrier under a queued one.
    pub fn request(&mut self, addr: u64, bytes: u64, time: u64, write: bool) -> u64 {
        let seq = *self.next_seq;
        *self.next_seq += 1;
        match &mut self.sink {
            HbmSink::Immediate(hbm) => {
                let done = hbm.access(addr, bytes, time, write);
                push_response(self.responses, seq, done);
            }
            HbmSink::Queued(q) => q.push(HbmRequest {
                time,
                node: self.node,
                seq,
                addr,
                bytes,
                write,
            }),
        }
        seq
    }

    /// The completion time of request `seq`, if it is the oldest pending
    /// response and has been serviced.
    pub fn take_response(&mut self, seq: u64) -> Option<u64> {
        self.take_response_run(seq, 1).map(|r| r.start)
    }

    /// The completion times of up to `max` requests with consecutive
    /// sequence numbers starting at `seq`, if `seq` is the oldest pending
    /// response and has been serviced. Consumes the returned prefix.
    pub fn take_response_run(&mut self, seq: u64, max: u64) -> Option<TimeRun> {
        let front = self.responses.front_mut()?;
        if front.seq0 != seq || max == 0 {
            return None;
        }
        let k = front.done.count.min(max);
        let out = front.done.prefix(k);
        if k == front.done.count {
            self.responses.pop_front();
        } else {
            front.seq0 += k;
            front.done = front.done.advance(k);
        }
        Some(out)
    }

    /// The oldest serviced completion `(seq, done)`, if any.
    pub fn pop_response(&mut self) -> Option<(u64, u64)> {
        let front = self.responses.front_mut()?;
        let out = (front.seq0, front.done.start);
        if front.done.count == 1 {
            self.responses.pop_front();
        } else {
            front.seq0 += 1;
            front.done = front.done.advance(1);
        }
        Some(out)
    }
}

/// Shared mutable simulation state handed to nodes on every fire.
pub struct Ctx<'a> {
    /// Channels visible to the firing node, addressed by [`EdgeId`].
    pub chans: Chans<'a>,
    /// The node's port into the off-chip memory subsystem.
    pub hbm: HbmPort<'a>,
    /// The (shard-local) on-chip scratchpad arena.
    pub arena: &'a mut Arena,
    /// Dense off-chip contents for functional runs.
    pub store: &'a SharedStore,
    /// Global configuration.
    pub cfg: &'a SimConfig,
    /// Upper bound (inclusive) on token ready times visible this round:
    /// the engine advances this window so that host execution order
    /// tracks simulated time (conservative windowed execution).
    pub horizon: u64,
}

impl Ctx<'_> {
    fn ch(&mut self, e: EdgeId) -> &mut Channel {
        self.chans.get_mut(e)
    }
}

/// Tokens a node may process per `fire` call, bounding per-wave work so
/// the scheduler interleaves nodes fairly. A bulk run step charges its
/// whole token count against the budget, so the fire schedule is
/// identical to per-token execution.
pub(crate) const BUDGET: u64 = 256;

/// What a node was waiting on when its last `fire` made no progress —
/// the readiness surface the event-driven engine and its deadlock
/// diagnostics consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocked {
    /// Waiting for a token (ready within the horizon) on this input edge.
    Input(EdgeId),
    /// Waiting for free space on this output edge's channel.
    Output(EdgeId),
    /// Waiting for an off-chip completion (queued HBM commitment).
    Hbm,
}

impl std::fmt::Display for Blocked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Blocked::Input(e) => write!(f, "awaiting input on edge {}", e.0),
            Blocked::Output(e) => write!(f, "output edge {} full", e.0),
            Blocked::Hbm => write!(f, "awaiting off-chip completion"),
        }
    }
}

/// A simulated operator.
pub trait SimNode {
    /// Processes as much as possible (bounded); returns whether any
    /// progress was made.
    ///
    /// # Errors
    ///
    /// Returns [`StepError`] on functional violations (shape mismatches,
    /// selector range errors, malformed streams).
    fn fire(&mut self, ctx: &mut Ctx<'_>) -> Result<bool>;

    /// Whether the node has fully finished.
    fn done(&self) -> bool;

    /// Execution statistics.
    fn stats(&self) -> &NodeStats;

    /// The node's local clock.
    fn local_time(&self) -> u64;

    /// The edge the node's most recent no-progress `fire` was blocked on,
    /// if it recorded one (diagnostics; the wake lists are authoritative
    /// for scheduling).
    fn blocked_on(&self) -> Option<Blocked> {
        None
    }

    /// Recorded tokens, for recording sinks.
    fn recorded(&self) -> Option<&[Token]> {
        None
    }
}

/// A node executor as the engine drives it: either a boxed [`SimNode`]
/// (virtual dispatch, global edge addressing — the differential-testing
/// reference path) or a [`CompiledNode`] (one `match`, shard-local dense
/// edge indices baked at freeze time). The engine's shard loops are
/// generic over this trait, so the hot path monomorphizes per executor
/// kind instead of branching per fire.
pub(crate) trait NodeExec: Send {
    /// Whether the executor's edge ids were rewritten to shard-local
    /// channel indices at freeze time (identity channel addressing; no
    /// per-access translation table).
    const IDENTITY_CHANS: bool;

    /// See [`SimNode::fire`].
    ///
    /// # Errors
    ///
    /// Returns [`StepError`] on functional violations, exactly as
    /// [`SimNode::fire`] does.
    fn fire(&mut self, ctx: &mut Ctx<'_>) -> Result<bool>;
    /// See [`SimNode::done`].
    fn done(&self) -> bool;
    /// See [`SimNode::stats`].
    fn stats(&self) -> &NodeStats;
    /// See [`SimNode::local_time`].
    fn local_time(&self) -> u64;
    /// See [`SimNode::blocked_on`].
    fn blocked_on(&self) -> Option<Blocked>;
    /// See [`SimNode::recorded`].
    fn recorded(&self) -> Option<&[Token]>;
}

impl NodeExec for Box<dyn SimNode + Send> {
    const IDENTITY_CHANS: bool = false;

    fn fire(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        self.as_mut().fire(ctx)
    }

    fn done(&self) -> bool {
        self.as_ref().done()
    }

    fn stats(&self) -> &NodeStats {
        self.as_ref().stats()
    }

    fn local_time(&self) -> u64 {
        self.as_ref().local_time()
    }

    fn blocked_on(&self) -> Option<Blocked> {
        self.as_ref().blocked_on()
    }

    fn recorded(&self) -> Option<&[Token]> {
        self.as_ref().recorded()
    }
}

/// Tokens a port may stage beyond its channel before the node stalls —
/// the unit's small internal output register, decoupling ports from each
/// other (a full FIFO on port A must not block traffic for port B).
const PORT_STAGING: u64 = 2;

/// Common I/O harness embedded in every node: input/output edges, local
/// clock, statistics, and per-port run-staged outboxes providing
/// backpressure-correct bulk sends. All per-token timestamp arithmetic
/// is identical to the old one-entry-per-token harness; only the storage
/// granularity changed (one entry per run).
#[derive(Clone)]
pub(crate) struct Io {
    pub ins: Vec<EdgeId>,
    pub outs: Vec<EdgeId>,
    pub time: u64,
    pub stats: NodeStats,
    outbox: Vec<VecDeque<(TimeRun, Token)>>,
    /// Staged token count per port (sum of outbox run counts).
    staged: Vec<u64>,
    pub finishing: bool,
    pub done: bool,
    /// The last edge a peek or flush found blocking (readiness surface).
    pub blocked: Option<Blocked>,
    /// Dequeue-time pieces of the most recent [`Io::pop_run`], reusable
    /// scratch (runs are `Copy`; index it while pushing outputs).
    pub popped: Vec<TimeRun>,
}

impl Io {
    pub fn new(node: &Node) -> Io {
        Io {
            ins: node.inputs.clone(),
            outs: node.outputs.clone(),
            time: 0,
            stats: NodeStats::default(),
            outbox: vec![VecDeque::new(); node.outputs.len()],
            staged: vec![0; node.outputs.len()],
            finishing: false,
            done: false,
            blocked: None,
            popped: Vec::new(),
        }
    }

    /// Restores the harness to its just-built state in place, keeping
    /// every allocation (edge tables, outbox queues, scratch vectors).
    pub fn reset(&mut self) {
        self.time = 0;
        self.stats = NodeStats::default();
        for q in &mut self.outbox {
            q.clear();
        }
        self.staged.iter_mut().for_each(|s| *s = 0);
        self.finishing = false;
        self.done = false;
        self.blocked = None;
        self.popped.clear();
    }

    /// Queues a token for `port` stamped with the current local time.
    pub fn push(&mut self, port: usize, tok: Token) {
        let t = self.time;
        self.push_at(port, t, tok);
    }

    /// Queues a token for `port` with an explicit production time,
    /// coalescing with the port's staged tail when the token repeats and
    /// the time continues the tail's arithmetic sequence.
    pub fn push_at(&mut self, port: usize, time: u64, tok: Token) {
        self.push_run(port, TimeRun::single(time), tok);
    }

    /// Queues a run: `times.count` copies of `tok` with production times
    /// `times`.
    pub fn push_run(&mut self, port: usize, times: TimeRun, tok: Token) {
        if let Token::Val(_) = &tok {
            self.stats.values_out += times.count;
        }
        self.staged[port] += times.count;
        if let Some((ts, tail)) = self.outbox[port].back_mut()
            && tail.coalesces_with(&tok)
            && ts.try_extend(times)
        {
            return;
        }
        self.outbox[port].push_back((times, tok));
    }

    /// Queues `Done` on every output port and marks the node finishing.
    pub fn push_done_all(&mut self) {
        for port in 0..self.outs.len() {
            let t = self.time;
            self.staged[port] += 1;
            self.outbox[port].push_back((TimeRun::single(t), Token::Done));
        }
        self.finishing = true;
    }

    /// How many more tokens this node may stage for `port` before the
    /// per-token fire loop would have stalled on the staging gate: the
    /// channel's free slots plus the staging allowance, minus what is
    /// already staged. Bulk steps cap their token count here so the
    /// schedule (which fire consumes which token) is bit-identical to
    /// per-token execution.
    pub fn out_allowance(&self, ctx: &Ctx<'_>, port: usize) -> u64 {
        let free = ctx.chans.get(self.outs[port]).free_slots();
        free.saturating_add(PORT_STAGING + 1)
            .saturating_sub(self.staged[port])
    }

    /// Attempts to drain every port's outbox (ports never block each
    /// other). Returns `(made_progress, may_step)` where `may_step`
    /// allows further input processing only while every port is within
    /// its staging allowance.
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) -> (bool, bool) {
        let mut progress = false;
        let mut may_step = true;
        for (port, q) in self.outbox.iter_mut().enumerate() {
            while let Some((times, tok)) = q.front_mut() {
                let ch = ctx.chans.get_mut(self.outs[port]);
                let free = ch.free_slots();
                if free == 0 {
                    self.blocked = Some(Blocked::Output(self.outs[port]));
                    break;
                }
                if free >= times.count {
                    let (times, tok) = q.pop_front().expect("front exists");
                    let ch = ctx.chans.get_mut(self.outs[port]);
                    ch.send_run(times, tok);
                    self.staged[port] -= times.count;
                    progress = true;
                } else {
                    // Partial: send what fits, keep the tail staged.
                    let head = times.prefix(free);
                    *times = times.advance(free);
                    let tok = tok.clone();
                    let ch = ctx.chans.get_mut(self.outs[port]);
                    ch.send_run(head, tok);
                    self.staged[port] -= free;
                    progress = true;
                }
            }
            if self.staged[port] > PORT_STAGING {
                may_step = false;
            }
        }
        if may_step && self.finishing && !self.done {
            // Finish only once everything is delivered.
            if self.staged.iter().all(|&s| s == 0) {
                self.finish(ctx);
                progress = true;
            } else {
                may_step = false;
            }
        }
        (progress, may_step)
    }

    /// Closes all inputs, marks outputs finished, and flags the node done.
    pub fn finish(&mut self, ctx: &mut Ctx<'_>) {
        for e in &self.ins {
            ctx.chans.get_mut(*e).close();
        }
        for e in &self.outs {
            ctx.chans.get_mut(*e).finish_src();
        }
        self.stats.finish_time = self.time;
        self.done = true;
    }

    /// Peeks input `port`'s head token, if it is ready within the
    /// engine's current time horizon. A miss records the port as the
    /// node's blocker.
    pub fn peek<'c>(&mut self, ctx: &'c Ctx<'_>, port: usize) -> Option<(u64, &'c Token)> {
        let head = ctx
            .chans
            .get(self.ins[port])
            .peek()
            .filter(|(ready, _)| *ready <= ctx.horizon);
        if head.is_none() {
            self.blocked = Some(Blocked::Input(self.ins[port]));
        }
        head
    }

    /// Pops input `port`, advancing the local clock to the dequeue time
    /// and counting values.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty; peek first.
    pub fn pop(&mut self, ctx: &mut Ctx<'_>, port: usize) -> Token {
        let (t, tok) = ctx.ch(self.ins[port]).pop(self.time);
        self.time = self.time.max(t);
        if tok.is_val() {
            self.stats.values_in += 1;
        }
        tok
    }

    /// Bulk pop: consumes up to `max` copies of input `port`'s head run
    /// (visible within the horizon), for a consumer whose clock advances
    /// by `pace` cycles after each token. Advances the local clock to the
    /// last dequeue time (the caller adds its trailing `pace`), counts
    /// values, and leaves the dequeue-time pieces in [`Io::popped`].
    /// Returns `None` — recording the port as the blocker — when nothing
    /// is visible.
    pub fn pop_run(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: usize,
        pace: u64,
        max: u64,
    ) -> Option<(Token, u64)> {
        self.popped.clear();
        let horizon = ctx.horizon;
        let ch = ctx.ch(self.ins[port]);
        match ch.pop_run(self.time, pace, horizon, max, &mut self.popped) {
            Some((tok, k)) => {
                let last = self.popped.last().expect("non-empty pop").last();
                self.time = self.time.max(last);
                if tok.is_val() {
                    self.stats.values_in += k;
                }
                Some((tok, k))
            }
            None => {
                self.blocked = Some(Blocked::Input(self.ins[port]));
                None
            }
        }
    }

    /// Charges `cycles` of busy processing time.
    pub fn busy(&mut self, cycles: u64) {
        self.time += cycles;
        self.stats.busy_cycles += cycles;
    }

    /// Charges the trailing per-token cost of a bulk step: `count` tokens
    /// of `cycles` each were processed, with all but the last already
    /// folded into the dequeue pacing — the clock advances by one
    /// `cycles`, the busy counter by `count * cycles`.
    pub fn busy_run(&mut self, count: u64, cycles: u64) {
        self.time += cycles;
        self.stats.busy_cycles += count * cycles;
    }
}

/// Cost of moving `bytes` through an on-chip memory port (§4.3 roofline
/// memory terms), at least one cycle.
pub(crate) fn mem_cycles(bytes: u64, cfg: &SimConfig) -> u64 {
    bytes.div_ceil(cfg.onchip_bytes_per_cycle.max(1)).max(1)
}

/// Roofline compute cost for `flops` at `compute_bw` FLOPs/cycle, at
/// least one cycle per element (II = 1).
pub(crate) fn compute_cycles(flops: u64, compute_bw: u64) -> u64 {
    flops.div_ceil(compute_bw.max(1)).max(1)
}

/// Emits separator stops between consecutive blocks and shifts incoming
/// stops by the added rank — the shared structural rule of every
/// block-expanding operator (`LinearOffChipLoad`, `Streamify`, `FlatMap`,
/// `AddrGen`).
#[derive(Debug, Default, Clone)]
pub(crate) struct BlockEmitter {
    pending: bool,
}

impl BlockEmitter {
    /// Restores the just-built state (pooled run reset).
    pub fn reset(&mut self) {
        self.pending = false;
    }

    /// Call before emitting a new block: flushes the pending separator.
    pub fn before_block(&mut self, io: &mut Io, port: usize, added_rank: u8) {
        if self.pending {
            io.push(port, Token::Stop(added_rank));
        }
        self.pending = true;
    }

    /// Call on an incoming stop: emits the shifted stop, absorbing any
    /// pending separator.
    pub fn on_stop(&mut self, io: &mut Io, port: usize, level: u8, added_rank: u8) {
        io.push(port, Token::Stop(level + added_rank));
        self.pending = false;
    }

    /// Call on `Done`: closes the final block if one is pending.
    pub fn on_done(&mut self, io: &mut Io, port: usize, added_rank: u8) {
        if self.pending {
            io.push(port, Token::Stop(added_rank));
            self.pending = false;
        }
    }
}

/// Builds the executor for a graph node. Executors are `Send` so shards
/// can run on worker threads.
///
/// # Errors
///
/// Returns [`StepError::Config`] for operators whose configuration cannot
/// be executed.
pub fn build_node(graph: &Graph, index: usize) -> Result<Box<dyn SimNode + Send>> {
    build_node_bound(graph, index, None)
}

/// Builds the executor for a graph node, optionally overriding a
/// `Source` node's token stream with a per-run binding (source
/// rebinding: the plan's topology stays fixed while the played stream
/// changes between runs). The override is ignored for non-source
/// operators — the engine validates binding targets before building.
///
/// # Errors
///
/// Returns [`StepError::Config`] for operators whose configuration cannot
/// be executed.
pub fn build_node_bound(
    graph: &Graph,
    index: usize,
    source_tokens: Option<Vec<Token>>,
) -> Result<Box<dyn SimNode + Send>> {
    Ok(compile_node_bound(graph, index, source_tokens)?.into_dyn())
}

/// Lowers a graph node into its [`CompiledNode`] variant, optionally
/// binding a `Source` node's played stream. This is the single lowering
/// the boxed path re-boxes from, so both executors share one
/// construction.
///
/// # Errors
///
/// Returns [`StepError::Config`] for operators whose configuration cannot
/// be executed.
pub(crate) fn compile_node_bound(
    graph: &Graph,
    index: usize,
    source_tokens: Option<Vec<Token>>,
) -> Result<CompiledNode> {
    let node = &graph.nodes()[index];
    let rank_of = |e: EdgeId| graph.edge(e).shape.rank();
    Ok(match &node.op {
        OpKind::Source(cfg) => {
            let mut n = basic::SourceNode::new(node, cfg.clone());
            if let Some(tokens) = source_tokens {
                n.bind(tokens);
            }
            CompiledNode::Source(n)
        }
        OpKind::Sink(cfg) => CompiledNode::Sink(basic::SinkNode::new(node, cfg.record)),
        OpKind::Fork { .. } => CompiledNode::Fork(basic::ForkNode::new(node)),
        OpKind::Zip => CompiledNode::Zip(basic::ZipNode::new(node)),
        OpKind::Flatten { min, max } => {
            CompiledNode::Flatten(basic::FlattenNode::new(node, *min, *max))
        }
        OpKind::Promote => {
            let rank = rank_of(node.inputs[0]);
            CompiledNode::Promote(basic::PromoteNode::new(node, rank))
        }
        OpKind::ExpandStatic { factor } => {
            CompiledNode::ExpandStatic(basic::ExpandStaticNode::new(node, *factor))
        }
        OpKind::Expand { level } => CompiledNode::Expand(basic::ExpandNode::new(node, *level)),
        OpKind::Reshape { level, chunk, pad } => {
            if *level != 0 {
                return Err(StepError::Config(
                    "only innermost (level 0) reshape is executable".into(),
                ));
            }
            CompiledNode::Reshape(basic::ReshapeNode::new(node, *chunk, pad.clone()))
        }
        OpKind::LinearLoad(cfg) => {
            CompiledNode::LinearLoad(offchip::LinearLoadNode::new(node, cfg.clone()))
        }
        OpKind::LinearStore { base_addr } => {
            CompiledNode::LinearStore(offchip::LinearStoreNode::new(node, *base_addr))
        }
        OpKind::RandomLoad(cfg) => {
            CompiledNode::RandomLoad(offchip::RandomLoadNode::new(node, cfg.clone()))
        }
        OpKind::RandomStore(cfg) => {
            CompiledNode::RandomStore(offchip::RandomStoreNode::new(node, cfg.clone()))
        }
        OpKind::Bufferize { rank } => {
            CompiledNode::Bufferize(onchip::BufferizeNode::new(node, *rank))
        }
        OpKind::Streamify(cfg) => {
            let buf_rank = rank_of(node.inputs[0]);
            let ref_rank = rank_of(node.inputs[1]);
            CompiledNode::Streamify(onchip::StreamifyNode::new(
                node,
                cfg.clone(),
                ref_rank - buf_rank,
            ))
        }
        OpKind::Partition {
            rank,
            num_consumers,
        } => CompiledNode::Partition(routing_partition::PartitionNode::new(
            node,
            *rank,
            *num_consumers,
        )),
        OpKind::Reassemble {
            rank,
            num_producers,
        } => CompiledNode::Reassemble(routing::ReassembleNode::new(node, *rank, *num_producers)),
        OpKind::EagerMerge { num_producers } => {
            let rank = rank_of(node.inputs[0]);
            CompiledNode::EagerMerge(routing::EagerMergeNode::new(node, *num_producers, rank))
        }
        OpKind::Map { func, compute_bw } => {
            CompiledNode::Map(compute::MapNode::new(node, *func, *compute_bw))
        }
        OpKind::Accum {
            rank,
            func,
            compute_bw,
        } => CompiledNode::Accum(compute::AccumNode::new(node, *rank, *func, *compute_bw)),
        OpKind::Scan {
            rank,
            func,
            compute_bw,
        } => CompiledNode::Scan(compute::ScanNode::new(node, *rank, *func, *compute_bw)),
        OpKind::FlatMap { func } => CompiledNode::FlatMap(compute::FlatMapNode::new(node, *func)),
        OpKind::AddrGen {
            count,
            stride,
            base,
        } => CompiledNode::AddrGen(compute::AddrGenNode::new(node, *count, *stride, *base)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::Hbm;
    use step_core::elem::Elem;
    use step_core::graph::EdgeId;
    use step_core::ops::OpKind;

    /// Test fixture owning everything a `Ctx` borrows.
    pub(crate) struct Fixture {
        pub channels: Vec<Channel>,
        pub hbm: Hbm,
        pub arena: Arena,
        pub store: SharedStore,
        pub cfg: SimConfig,
        pub seq: u64,
        pub responses: VecDeque<RespRun>,
    }

    impl Fixture {
        pub fn new(capacities: &[usize]) -> Fixture {
            let cfg = SimConfig::default();
            Fixture {
                channels: capacities.iter().map(|&c| Channel::new(c, 0)).collect(),
                hbm: Hbm::new(cfg.hbm.clone()),
                arena: Arena::new(),
                store: SharedStore::new(),
                cfg,
                seq: 0,
                responses: VecDeque::new(),
            }
        }

        pub fn ctx(&mut self, horizon: u64) -> Ctx<'_> {
            Ctx {
                chans: Chans::identity(&mut self.channels),
                hbm: HbmPort::new(
                    HbmSink::Immediate(&mut self.hbm),
                    0,
                    &mut self.seq,
                    &mut self.responses,
                ),
                arena: &mut self.arena,
                store: &self.store,
                cfg: &self.cfg,
                horizon,
            }
        }
    }

    fn out_node(ports: u32) -> Node {
        Node {
            op: OpKind::Zip,
            inputs: vec![],
            outputs: (0..ports).map(EdgeId).collect(),
            label: String::new(),
        }
    }

    fn val(x: u64) -> Token {
        Token::Val(Elem::Addr(x))
    }

    #[test]
    fn full_port_does_not_block_other_ports() {
        // Port 0's channel holds one token; port 1's holds plenty. Port 1
        // must drain fully even while port 0 is backed up.
        let mut fx = Fixture::new(&[1, 8]);
        let mut io = Io::new(&out_node(2));
        for k in 0..5 {
            io.push(0, val(k));
            io.push(1, val(k));
        }
        let mut ctx = fx.ctx(u64::MAX);
        let (progress, may_step) = io.flush(&mut ctx);
        assert!(progress);
        // Port 0 staged 4 tokens, beyond PORT_STAGING: the node stalls.
        assert!(!may_step);
        assert_eq!(fx.channels[0].len(), 1);
        assert_eq!(fx.channels[1].len(), 5);
        assert_eq!(io.blocked, Some(Blocked::Output(EdgeId(0))));
    }

    #[test]
    fn staging_allowance_lets_a_port_run_slightly_ahead() {
        // With exactly PORT_STAGING tokens staged beyond the channel, the
        // node may still step; one more and it stalls.
        let mut fx = Fixture::new(&[1]);
        let mut io = Io::new(&out_node(1));
        for k in 0..(1 + PORT_STAGING) {
            io.push(0, val(k));
        }
        let mut ctx = fx.ctx(u64::MAX);
        let (_, may_step) = io.flush(&mut ctx);
        assert!(may_step, "PORT_STAGING staged tokens must not stall");
        io.push(0, val(99));
        let (_, may_step) = io.flush(&mut ctx);
        assert!(!may_step, "beyond the staging allowance the node stalls");
        // Draining the channel lets the staged tokens through again.
        fx.channels[0].pop(0);
        let mut ctx = fx.ctx(u64::MAX);
        let (progress, _) = io.flush(&mut ctx);
        assert!(progress);
        assert_eq!(fx.channels[0].len(), 1);
    }

    #[test]
    fn allowance_mirrors_the_staging_gate() {
        // out_allowance = free slots + staging allowance + 1: exactly the
        // number of tokens the per-token loop would process before the
        // post-flush staging gate stalls the node.
        let mut fx = Fixture::new(&[4]);
        let mut io = Io::new(&out_node(1));
        let ctx = fx.ctx(u64::MAX);
        assert_eq!(io.out_allowance(&ctx, 0), 4 + PORT_STAGING + 1);
        io.push(0, val(1));
        let ctx = fx.ctx(u64::MAX);
        assert_eq!(io.out_allowance(&ctx, 0), 4 + PORT_STAGING);
    }

    #[test]
    fn identical_pushes_stage_as_one_run() {
        // A burst of the same token at one local time stages as a single
        // run entry; flushing sends it as one bulk channel op that the
        // port rule spreads over consecutive cycles.
        let mut fx = Fixture::new(&[8]);
        let mut io = Io::new(&out_node(1));
        io.push_run(0, TimeRun::new(0, 0, 5), val(7));
        assert_eq!(io.stats.values_out, 5);
        let mut ctx = fx.ctx(u64::MAX);
        let (progress, may_step) = io.flush(&mut ctx);
        assert!(progress && may_step);
        assert_eq!(fx.channels[0].len(), 5);
        assert_eq!(fx.channels[0].runs(), 1);
        assert_eq!(fx.channels[0].sent_runs(), 1);
    }

    #[test]
    fn pop_run_advances_clock_and_counts_values() {
        let node = Node {
            op: OpKind::Zip,
            inputs: vec![EdgeId(0)],
            outputs: vec![],
            label: String::new(),
        };
        let mut io = Io::new(&node);
        let mut fx = Fixture::new(&[8]);
        fx.channels[0].send_run(TimeRun::new(3, 0, 4), val(1)); // ready 3..6
        let mut ctx = fx.ctx(u64::MAX);
        let (tok, k) = io.pop_run(&mut ctx, 0, 0, 16).unwrap();
        assert_eq!((tok, k), (val(1), 4));
        assert_eq!(io.popped, vec![TimeRun::new(3, 1, 4)]);
        assert_eq!(io.time, 6);
        assert_eq!(io.stats.values_in, 4);
    }

    #[test]
    fn peek_records_the_blocking_edge() {
        let node = Node {
            op: OpKind::Zip,
            inputs: vec![EdgeId(0), EdgeId(1)],
            outputs: vec![],
            label: String::new(),
        };
        let mut io = Io::new(&node);
        let mut fx = Fixture::new(&[2, 2]);
        // A token beyond the horizon is invisible and counts as blocking.
        fx.channels[1].send(500, val(1));
        let ctx = fx.ctx(64);
        assert!(io.peek(&ctx, 0).is_none());
        assert_eq!(io.blocked, Some(Blocked::Input(EdgeId(0))));
        assert!(io.peek(&ctx, 1).is_none(), "head beyond horizon");
        assert_eq!(io.blocked, Some(Blocked::Input(EdgeId(1))));
    }
}
