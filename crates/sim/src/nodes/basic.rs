//! Sources, sinks, fan-out, zip, and the shape operators (Table 7).

use super::{BUDGET, Ctx, Io, SimNode};
use crate::stats::NodeStats;
use step_core::elem::Elem;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::ops::SourceCfg;
use step_core::token::Token;

macro_rules! impl_simnode_common {
    ($ty:ty) => {
        impl_simnode_common!($ty,);
    };
    ($ty:ty, $($extra:item)*) => {
        impl SimNode for $ty {
            fn fire(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
                self.io.stats.fires += 1;
                self.io.blocked = None;
                let mut progress = false;
                for _ in 0..BUDGET {
                    let (sent, drained) = self.io.flush(ctx);
                    progress |= sent;
                    if !drained || self.io.done || self.io.finishing {
                        if !progress {
                            self.io.stats.idle_fires += 1;
                        }
                        return Ok(progress);
                    }
                    match self.step(ctx)? {
                        true => progress = true,
                        false => {
                            if !progress {
                                self.io.stats.idle_fires += 1;
                            }
                            return Ok(progress);
                        }
                    }
                }
                Ok(progress)
            }

            fn done(&self) -> bool {
                self.io.done
            }

            fn stats(&self) -> &NodeStats {
                &self.io.stats
            }

            fn local_time(&self) -> u64 {
                self.io.time
            }

            fn blocked_on(&self) -> Option<super::Blocked> {
                self.io.blocked
            }

            $($extra)*
        }
    };
}
pub(crate) use impl_simnode_common;

/// Plays a pre-materialized token stream.
pub struct SourceNode {
    io: Io,
    tokens: std::vec::IntoIter<Token>,
}

impl SourceNode {
    pub fn new(node: &Node, cfg: SourceCfg) -> SourceNode {
        SourceNode {
            io: Io::new(node),
            tokens: cfg.tokens.into_iter(),
        }
    }

    fn step(&mut self, _ctx: &mut Ctx<'_>) -> Result<bool> {
        match self.tokens.next() {
            Some(Token::Done) => {
                self.io.push_done_all();
                Ok(true)
            }
            Some(tok) => {
                self.io.push(0, tok);
                Ok(true)
            }
            None => {
                self.io.finishing = true;
                Ok(true)
            }
        }
    }
}

impl_simnode_common!(SourceNode);

/// Consumes a stream, optionally recording it.
pub struct SinkNode {
    io: Io,
    record: bool,
    recorded: Vec<Token>,
}

impl SinkNode {
    pub fn new(node: &Node, record: bool) -> SinkNode {
        SinkNode {
            io: Io::new(node),
            record,
            recorded: Vec::new(),
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        let tok = self.io.pop(ctx, 0);
        let done = matches!(tok, Token::Done);
        if self.record {
            self.recorded.push(tok);
        }
        if done {
            self.io.finishing = true;
        }
        Ok(true)
    }
}

impl_simnode_common!(
    SinkNode,
    fn recorded(&self) -> Option<&[Token]> {
        self.record.then_some(self.recorded.as_slice())
    }
);

/// Replicates the input stream to every output.
pub struct ForkNode {
    io: Io,
}

impl ForkNode {
    pub fn new(node: &Node) -> ForkNode {
        ForkNode { io: Io::new(node) }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        let tok = self.io.pop(ctx, 0);
        match tok {
            Token::Done => self.io.push_done_all(),
            t => {
                for port in 0..self.io.outs.len() {
                    self.io.push(port, t.clone());
                }
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(ForkNode);

/// Groups two equal-shaped streams into tuples.
pub struct ZipNode {
    io: Io,
}

impl ZipNode {
    pub fn new(node: &Node) -> ZipNode {
        ZipNode { io: Io::new(node) }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() || self.io.peek(ctx, 1).is_none() {
            return Ok(false);
        }
        let a = self.io.pop(ctx, 0);
        let b = self.io.pop(ctx, 1);
        match (a, b) {
            (Token::Val(x), Token::Val(y)) => {
                self.io.push(0, Token::Val(Elem::Tuple(vec![x, y])));
            }
            (Token::Stop(s1), Token::Stop(s2)) if s1 == s2 => {
                self.io.push(0, Token::Stop(s1));
            }
            (Token::Done, Token::Done) => self.io.push_done_all(),
            (x, y) => return Err(StepError::Exec(format!("zip misalignment: {x} vs {y}"))),
        }
        Ok(true)
    }
}

impl_simnode_common!(ZipNode);

/// `Flatten`: merges dims between stop levels `min..=max` (Table 7).
pub struct FlattenNode {
    io: Io,
    min: u8,
    max: u8,
}

impl FlattenNode {
    pub fn new(node: &Node, min: u8, max: u8) -> FlattenNode {
        FlattenNode {
            io: Io::new(node),
            min,
            max,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => self.io.push(0, Token::Val(e)),
            Token::Stop(k) => {
                let width = self.max - self.min;
                if k <= self.min {
                    self.io.push(0, Token::Stop(k));
                } else if k <= self.max {
                    // Boundary internal to the merged dim: it survives only
                    // as a level-`min` stop (vanishes when min == 0).
                    if self.min > 0 {
                        self.io.push(0, Token::Stop(self.min));
                    }
                } else {
                    self.io.push(0, Token::Stop(k - width));
                }
            }
            Token::Done => self.io.push_done_all(),
        }
        Ok(true)
    }
}

impl_simnode_common!(FlattenNode);

/// `Promote`: adds an outermost dimension of extent 1 (Table 7). The final
/// top-level stop is upgraded by one level; an empty stream stays empty.
pub struct PromoteNode {
    io: Io,
    rank: u8,
    held: Option<Token>,
}

impl PromoteNode {
    pub fn new(node: &Node, input_rank: u8) -> PromoteNode {
        PromoteNode {
            io: Io::new(node),
            rank: input_rank,
            held: None,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        let tok = self.io.pop(ctx, 0);
        match tok {
            Token::Done => {
                match self.held.take() {
                    Some(Token::Stop(s)) if s == self.rank => {
                        self.io.push(0, Token::Stop(s + 1));
                    }
                    Some(t) => {
                        // Rank-0 inputs have no closing stop of their own;
                        // the promoted dimension supplies one.
                        self.io.push(0, t);
                        self.io.push(0, Token::Stop(self.rank + 1));
                    }
                    None => {}
                }
                self.io.push_done_all();
            }
            t => {
                if let Some(prev) = self.held.replace(t) {
                    self.io.push(0, prev);
                }
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(PromoteNode);

/// Static `Expand`: repeats each value `factor` times.
pub struct ExpandStaticNode {
    io: Io,
    factor: u64,
}

impl ExpandStaticNode {
    pub fn new(node: &Node, factor: u64) -> ExpandStaticNode {
        ExpandStaticNode {
            io: Io::new(node),
            factor,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                for _ in 0..self.factor {
                    self.io.push(0, Token::Val(e.clone()));
                }
                if let Elem::Tile(t) = &e {
                    self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(t.bytes());
                }
            }
            Token::Stop(s) => self.io.push(0, Token::Stop(s)),
            Token::Done => self.io.push_done_all(),
        }
        Ok(true)
    }
}

impl_simnode_common!(ExpandStaticNode);

/// Reference-driven `Expand` (Fig 5): repeats input elements per the
/// reference stream's structure below `level`.
pub struct ExpandNode {
    io: Io,
    level: u8,
    current: Option<Elem>,
}

impl ExpandNode {
    pub fn new(node: &Node, level: u8) -> ExpandNode {
        ExpandNode {
            io: Io::new(node),
            level,
            current: None,
        }
    }

    /// Consumes input tokens up to and including the stop closing the
    /// current element's block.
    fn advance_input(&mut self, ctx: &mut Ctx<'_>, expect_level: u8) -> Result<bool> {
        // The input mirrors the reference structure at levels >= `level`:
        // after each value it carries the same stop the reference carries.
        match self.io.peek(ctx, 0) {
            None => Ok(false),
            Some(_) => match self.io.pop(ctx, 0) {
                Token::Stop(s) if s == expect_level => {
                    self.current = None;
                    Ok(true)
                }
                other => Err(StepError::Exec(format!(
                    "expand: input out of sync, expected Stop({expect_level}), got {other}"
                ))),
            },
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        match self.io.peek(ctx, 1) {
            None => Ok(false),
            Some((_, Token::Val(_))) => {
                if self.current.is_none() {
                    match self.io.peek(ctx, 0) {
                        Some((_, Token::Val(_))) => {
                            if let Token::Val(e) = self.io.pop(ctx, 0) {
                                if let Elem::Tile(t) = &e {
                                    self.io.stats.onchip_bytes =
                                        self.io.stats.onchip_bytes.max(t.bytes());
                                }
                                self.current = Some(e);
                            }
                        }
                        Some((_, other)) => {
                            return Err(StepError::Exec(format!(
                                "expand: expected input value, got {other}"
                            )));
                        }
                        None => return Ok(false),
                    }
                }
                let _ = self.io.pop(ctx, 1);
                let e = self.current.clone().expect("loaded above");
                self.io.push(0, Token::Val(e));
                Ok(true)
            }
            Some(&(_, Token::Stop(s))) => {
                if s >= self.level && !self.advance_input(ctx, s)? {
                    return Ok(false);
                }
                let _ = self.io.pop(ctx, 1);
                self.io.push(0, Token::Stop(s));
                Ok(true)
            }
            Some((_, Token::Done)) => {
                // Input should be exhausted up to its Done.
                if let Some((_, Token::Done)) = self.io.peek(ctx, 0) {
                    let _ = self.io.pop(ctx, 0);
                }
                let _ = self.io.pop(ctx, 1);
                self.io.push_done_all();
                Ok(true)
            }
        }
    }
}

impl_simnode_common!(ExpandNode);

/// `Reshape` at level 0: splits the innermost dim into `chunk`-element
/// groups, padding short tails; emits data and padding streams (Table 7).
pub struct ReshapeNode {
    io: Io,
    chunk: u64,
    pad: Option<Elem>,
    count: u64,
    pending_stop: bool,
}

impl ReshapeNode {
    pub fn new(node: &Node, chunk: u64, pad: Option<Elem>) -> ReshapeNode {
        ReshapeNode {
            io: Io::new(node),
            chunk,
            pad,
            count: 0,
            pending_stop: false,
        }
    }

    fn pad_to_boundary(&mut self) -> Result<()> {
        if self.count == 0 {
            return Ok(());
        }
        while self.count < self.chunk {
            let pad = self.pad.clone().ok_or_else(|| {
                StepError::Exec("reshape needs padding but no pad value configured".into())
            })?;
            self.io.push(0, Token::Val(pad));
            self.io.push(1, Token::Val(Elem::Bool(true)));
            self.count += 1;
        }
        self.count = 0;
        self.pending_stop = true;
        Ok(())
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                if self.pending_stop {
                    self.io.push(0, Token::Stop(1));
                    self.io.push(1, Token::Stop(1));
                    self.pending_stop = false;
                }
                self.io.push(0, Token::Val(e));
                self.io.push(1, Token::Val(Elem::Bool(false)));
                self.count += 1;
                if self.count == self.chunk {
                    self.count = 0;
                    self.pending_stop = true;
                }
            }
            Token::Stop(k) => {
                self.pad_to_boundary()?;
                self.io.push(0, Token::Stop(k + 1));
                self.io.push(1, Token::Stop(k + 1));
                self.pending_stop = false;
            }
            Token::Done => {
                self.pad_to_boundary()?;
                if self.pending_stop {
                    self.io.push(0, Token::Stop(1));
                    self.io.push(1, Token::Stop(1));
                    self.pending_stop = false;
                }
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(ReshapeNode);
