//! Sources, sinks, fan-out, zip, and the shape operators (Table 7).
//!
//! Every fire loop is *bulk*: a run of repeated tokens is consumed and
//! produced with O(1) channel traffic and run arithmetic, while the
//! schedule — which fire consumes which token, bounded by [`BUDGET`] and
//! the staging gate — is bit-identical to per-token execution (bulk
//! steps cap their token count at [`Io::out_allowance`] and charge the
//! whole run against the fire budget).

use super::{BUDGET, Ctx, Io, SimNode};
use crate::run::TimeRun;
use crate::stats::NodeStats;
use step_core::elem::Elem;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::ops::SourceCfg;
use step_core::token::Token;

macro_rules! impl_simnode_common {
    ($ty:ty) => {
        impl_simnode_common!($ty,);
    };
    ($ty:ty, $($extra:item)*) => {
        impl $ty {
            /// The embedded I/O harness (freeze-time edge remapping).
            pub(crate) fn io_mut(&mut self) -> &mut Io {
                &mut self.io
            }
        }

        impl SimNode for $ty {
            fn fire(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
                self.io.stats.fires += 1;
                self.io.blocked = None;
                let mut progress = false;
                let mut budget = BUDGET;
                while budget > 0 {
                    let (sent, drained) = self.io.flush(ctx);
                    progress |= sent;
                    if !drained || self.io.done || self.io.finishing {
                        if !progress {
                            self.io.stats.idle_fires += 1;
                        }
                        return Ok(progress);
                    }
                    let used = self.step(ctx, budget)?;
                    if used == 0 {
                        if !progress {
                            self.io.stats.idle_fires += 1;
                        }
                        return Ok(progress);
                    }
                    progress = true;
                    budget -= used.min(budget);
                }
                Ok(progress)
            }

            fn done(&self) -> bool {
                self.io.done
            }

            fn stats(&self) -> &NodeStats {
                &self.io.stats
            }

            fn local_time(&self) -> u64 {
                self.io.time
            }

            fn blocked_on(&self) -> Option<super::Blocked> {
                self.io.blocked
            }

            $($extra)*
        }
    };
}
pub(crate) use impl_simnode_common;

/// Plays a pre-materialized token stream. The baked stream is kept
/// intact behind a cursor so a pooled rerun replays it without
/// rebuilding the node; a per-run binding overrides the played stream
/// without disturbing the baked one.
#[derive(Clone)]
pub struct SourceNode {
    io: Io,
    /// The stream frozen with the plan.
    tokens: Vec<Token>,
    /// Per-run override of the baked stream (source rebinding).
    bound: Option<Vec<Token>>,
    /// Next unplayed token in the active stream.
    cursor: usize,
}

impl SourceNode {
    pub fn new(node: &Node, cfg: SourceCfg) -> SourceNode {
        SourceNode {
            io: Io::new(node),
            tokens: cfg.tokens,
            bound: None,
            cursor: 0,
        }
    }

    /// Overrides the played stream for this run (source rebinding).
    pub(crate) fn bind(&mut self, tokens: Vec<Token>) {
        self.bound = Some(tokens);
        self.cursor = 0;
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.bound = None;
        self.cursor = 0;
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let allow = self.io.out_allowance(ctx, 0).min(budget);
        let stream = self.bound.as_deref().unwrap_or(&self.tokens);
        let rest = &stream[self.cursor.min(stream.len())..];
        match rest.first() {
            None => {
                self.io.finishing = true;
                Ok(1)
            }
            Some(Token::Done) => {
                self.cursor += 1;
                self.io.push_done_all();
                Ok(1)
            }
            Some(head) => {
                // A stretch of repeated values plays out as one run, all
                // produced at the source's (never-advancing) local time.
                let mut k = 1u64;
                while k < allow && rest.get(k as usize).is_some_and(|t| t.coalesces_with(head)) {
                    k += 1;
                }
                let tok = head.clone();
                self.cursor += k as usize;
                let t = self.io.time;
                self.io.push_run(0, TimeRun::new(t, 0, k), tok);
                Ok(k)
            }
        }
    }
}

impl_simnode_common!(SourceNode);

/// Consumes a stream, optionally recording it.
#[derive(Clone)]
pub struct SinkNode {
    io: Io,
    record: bool,
    recorded: Vec<Token>,
}

impl SinkNode {
    pub fn new(node: &Node, record: bool) -> SinkNode {
        SinkNode {
            io: Io::new(node),
            record,
            recorded: Vec::new(),
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.recorded.clear();
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let head_is_val = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, tok)) => tok.is_val(),
        };
        if head_is_val {
            let (tok, k) = self.io.pop_run(ctx, 0, 0, budget).expect("visible head");
            if self.record {
                self.recorded.extend(std::iter::repeat_n(tok, k as usize));
            }
            return Ok(k);
        }
        let tok = self.io.pop(ctx, 0);
        let done = matches!(tok, Token::Done);
        if self.record {
            self.recorded.push(tok);
        }
        if done {
            self.io.finishing = true;
        }
        Ok(1)
    }
}

impl_simnode_common!(
    SinkNode,
    fn recorded(&self) -> Option<&[Token]> {
        self.record.then_some(self.recorded.as_slice())
    }
);

/// Replicates the input stream to every output.
#[derive(Clone)]
pub struct ForkNode {
    io: Io,
}

impl ForkNode {
    pub fn new(node: &Node) -> ForkNode {
        ForkNode { io: Io::new(node) }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let head_is_val = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, tok)) => tok.is_val(),
        };
        if head_is_val {
            let mut allow = budget;
            for port in 0..self.io.outs.len() {
                allow = allow.min(self.io.out_allowance(ctx, port));
            }
            let (tok, k) = self.io.pop_run(ctx, 0, 0, allow).expect("visible head");
            for port in 0..self.io.outs.len() {
                for pi in 0..self.io.popped.len() {
                    let piece = self.io.popped[pi];
                    self.io.push_run(port, piece, tok.clone());
                }
            }
            return Ok(k);
        }
        match self.io.pop(ctx, 0) {
            Token::Done => self.io.push_done_all(),
            t => {
                for port in 0..self.io.outs.len() {
                    self.io.push(port, t.clone());
                }
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(ForkNode);

/// Groups two equal-shaped streams into tuples.
#[derive(Clone)]
pub struct ZipNode {
    io: Io,
    /// Scratch for the coupled bulk pop's dequeue-time pieces.
    a_times: Vec<TimeRun>,
    b_times: Vec<TimeRun>,
}

impl ZipNode {
    pub fn new(node: &Node) -> ZipNode {
        ZipNode {
            io: Io::new(node),
            a_times: Vec::new(),
            b_times: Vec::new(),
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.a_times.clear();
        self.b_times.clear();
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let a_val = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, tok)) => tok.is_val(),
        };
        let b_val = match self.io.peek(ctx, 1) {
            None => return Ok(0),
            Some((_, tok)) => tok.is_val(),
        };
        if a_val && b_val {
            // Bulk pairs: the two pops alternate and feed each other's
            // clocks; the closed-form coupled pop resolves the whole run
            // at once.
            let allow = self.io.out_allowance(ctx, 0).min(budget);
            let horizon = ctx.horizon;
            let now = self.io.time;
            self.a_times.clear();
            self.b_times.clear();
            let (ca, cb) = ctx.chans.get2_mut(self.io.ins[0], self.io.ins[1]);
            let (a, b, k) = crate::channel::pop_zip_runs(
                ca,
                cb,
                now,
                horizon,
                allow,
                &mut self.a_times,
                &mut self.b_times,
            )
            .expect("visible heads");
            self.io.time = self.b_times.last().expect("non-empty pop").last();
            self.io.stats.values_in += 2 * k;
            let tup = Token::Val(Elem::Tuple(vec![a.into_val()?, b.into_val()?]));
            for pi in 0..self.b_times.len() {
                let piece = self.b_times[pi];
                self.io.push_run(0, piece, tup.clone());
            }
            return Ok(k);
        }
        let a = self.io.pop(ctx, 0);
        let b = self.io.pop(ctx, 1);
        match (a, b) {
            (Token::Stop(s1), Token::Stop(s2)) if s1 == s2 => {
                self.io.push(0, Token::Stop(s1));
            }
            (Token::Done, Token::Done) => self.io.push_done_all(),
            (x, y) => return Err(StepError::Exec(format!("zip misalignment: {x} vs {y}"))),
        }
        Ok(1)
    }
}

impl_simnode_common!(ZipNode);

/// `Flatten`: merges dims between stop levels `min..=max` (Table 7).
#[derive(Clone)]
pub struct FlattenNode {
    io: Io,
    min: u8,
    max: u8,
}

impl FlattenNode {
    pub fn new(node: &Node, min: u8, max: u8) -> FlattenNode {
        FlattenNode {
            io: Io::new(node),
            min,
            max,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let head_is_val = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, tok)) => tok.is_val(),
        };
        if head_is_val {
            let allow = self.io.out_allowance(ctx, 0).min(budget);
            let (tok, k) = self.io.pop_run(ctx, 0, 0, allow).expect("visible head");
            for pi in 0..self.io.popped.len() {
                let piece = self.io.popped[pi];
                self.io.push_run(0, piece, tok.clone());
            }
            return Ok(k);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(_) => unreachable!("head checked above"),
            Token::Stop(k) => {
                let width = self.max - self.min;
                if k <= self.min {
                    self.io.push(0, Token::Stop(k));
                } else if k <= self.max {
                    // Boundary internal to the merged dim: it survives only
                    // as a level-`min` stop (vanishes when min == 0).
                    if self.min > 0 {
                        self.io.push(0, Token::Stop(self.min));
                    }
                } else {
                    self.io.push(0, Token::Stop(k - width));
                }
            }
            Token::Done => self.io.push_done_all(),
        }
        Ok(1)
    }
}

impl_simnode_common!(FlattenNode);

/// `Promote`: adds an outermost dimension of extent 1 (Table 7). The final
/// top-level stop is upgraded by one level; an empty stream stays empty.
#[derive(Clone)]
pub struct PromoteNode {
    io: Io,
    rank: u8,
    held: Option<Token>,
}

impl PromoteNode {
    pub fn new(node: &Node, input_rank: u8) -> PromoteNode {
        PromoteNode {
            io: Io::new(node),
            rank: input_rank,
            held: None,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.held = None;
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let bulk = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, tok)) => self.held.as_ref().is_some_and(|h| h.coalesces_with(tok)),
        };
        if bulk {
            // The held token equals the head run's token, so each pop
            // re-emits the held value at the dequeue time and leaves the
            // hold unchanged.
            let allow = self.io.out_allowance(ctx, 0).min(budget);
            let (tok, k) = self.io.pop_run(ctx, 0, 0, allow).expect("visible head");
            for pi in 0..self.io.popped.len() {
                let piece = self.io.popped[pi];
                self.io.push_run(0, piece, tok.clone());
            }
            return Ok(k);
        }
        let tok = self.io.pop(ctx, 0);
        match tok {
            Token::Done => {
                match self.held.take() {
                    Some(Token::Stop(s)) if s == self.rank => {
                        self.io.push(0, Token::Stop(s + 1));
                    }
                    Some(t) => {
                        // Rank-0 inputs have no closing stop of their own;
                        // the promoted dimension supplies one.
                        self.io.push(0, t);
                        self.io.push(0, Token::Stop(self.rank + 1));
                    }
                    None => {}
                }
                self.io.push_done_all();
            }
            t => {
                if let Some(prev) = self.held.replace(t) {
                    self.io.push(0, prev);
                }
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(PromoteNode);

/// Static `Expand`: repeats each value `factor` times.
#[derive(Clone)]
pub struct ExpandStaticNode {
    io: Io,
    factor: u64,
}

impl ExpandStaticNode {
    pub fn new(node: &Node, factor: u64) -> ExpandStaticNode {
        ExpandStaticNode {
            io: Io::new(node),
            factor,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(0);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                // The whole burst is produced at one local instant; the
                // channel port rule spreads it over consecutive cycles.
                let t = self.io.time;
                if let Elem::Tile(tile) = &e {
                    self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(tile.bytes());
                }
                self.io
                    .push_run(0, TimeRun::new(t, 0, self.factor), Token::Val(e));
            }
            Token::Stop(s) => self.io.push(0, Token::Stop(s)),
            Token::Done => self.io.push_done_all(),
        }
        Ok(1)
    }
}

impl_simnode_common!(ExpandStaticNode);

/// Reference-driven `Expand` (Fig 5): repeats input elements per the
/// reference stream's structure below `level`.
#[derive(Clone)]
pub struct ExpandNode {
    io: Io,
    level: u8,
    current: Option<Elem>,
}

impl ExpandNode {
    pub fn new(node: &Node, level: u8) -> ExpandNode {
        ExpandNode {
            io: Io::new(node),
            level,
            current: None,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.current = None;
    }

    /// Consumes input tokens up to and including the stop closing the
    /// current element's block.
    fn advance_input(&mut self, ctx: &mut Ctx<'_>, expect_level: u8) -> Result<bool> {
        // The input mirrors the reference structure at levels >= `level`:
        // after each value it carries the same stop the reference carries.
        match self.io.peek(ctx, 0) {
            None => Ok(false),
            Some(_) => match self.io.pop(ctx, 0) {
                Token::Stop(s) if s == expect_level => {
                    self.current = None;
                    Ok(true)
                }
                other => Err(StepError::Exec(format!(
                    "expand: input out of sync, expected Stop({expect_level}), got {other}"
                ))),
            },
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        match self.io.peek(ctx, 1) {
            None => Ok(0),
            Some((_, Token::Val(_))) => {
                if self.current.is_none() {
                    match self.io.peek(ctx, 0) {
                        Some((_, Token::Val(_))) => {
                            if let Token::Val(e) = self.io.pop(ctx, 0) {
                                if let Elem::Tile(t) = &e {
                                    self.io.stats.onchip_bytes =
                                        self.io.stats.onchip_bytes.max(t.bytes());
                                }
                                self.current = Some(e);
                            }
                        }
                        Some((_, other)) => {
                            return Err(StepError::Exec(format!(
                                "expand: expected input value, got {other}"
                            )));
                        }
                        None => return Ok(0),
                    }
                }
                // Each reference value re-emits the current element at
                // its dequeue time: a whole run of references expands in
                // one bulk step.
                let allow = self.io.out_allowance(ctx, 0).min(budget);
                let Some((_, k)) = self.io.pop_run(ctx, 1, 0, allow) else {
                    return Ok(0);
                };
                let e = self.current.clone().expect("loaded above");
                let out = Token::Val(e);
                for pi in 0..self.io.popped.len() {
                    let piece = self.io.popped[pi];
                    self.io.push_run(0, piece, out.clone());
                }
                Ok(k)
            }
            Some((_, &Token::Stop(s))) => {
                if s >= self.level && !self.advance_input(ctx, s)? {
                    return Ok(0);
                }
                let _ = self.io.pop(ctx, 1);
                self.io.push(0, Token::Stop(s));
                Ok(1)
            }
            Some((_, Token::Done)) => {
                // Input should be exhausted up to its Done.
                if let Some((_, Token::Done)) = self.io.peek(ctx, 0) {
                    let _ = self.io.pop(ctx, 0);
                }
                let _ = self.io.pop(ctx, 1);
                self.io.push_done_all();
                Ok(1)
            }
        }
    }
}

impl_simnode_common!(ExpandNode);

/// `Reshape` at level 0: splits the innermost dim into `chunk`-element
/// groups, padding short tails; emits data and padding streams (Table 7).
#[derive(Clone)]
pub struct ReshapeNode {
    io: Io,
    chunk: u64,
    pad: Option<Elem>,
    count: u64,
    pending_stop: bool,
}

impl ReshapeNode {
    pub fn new(node: &Node, chunk: u64, pad: Option<Elem>) -> ReshapeNode {
        ReshapeNode {
            io: Io::new(node),
            chunk,
            pad,
            count: 0,
            pending_stop: false,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.count = 0;
        self.pending_stop = false;
    }

    fn pad_to_boundary(&mut self) -> Result<()> {
        if self.count == 0 {
            return Ok(());
        }
        while self.count < self.chunk {
            let pad = self.pad.clone().ok_or_else(|| {
                StepError::Exec("reshape needs padding but no pad value configured".into())
            })?;
            self.io.push(0, Token::Val(pad));
            self.io.push(1, Token::Val(Elem::Bool(true)));
            self.count += 1;
        }
        self.count = 0;
        self.pending_stop = true;
        Ok(())
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(0);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                if self.pending_stop {
                    self.io.push(0, Token::Stop(1));
                    self.io.push(1, Token::Stop(1));
                    self.pending_stop = false;
                }
                self.io.push(0, Token::Val(e));
                self.io.push(1, Token::Val(Elem::Bool(false)));
                self.count += 1;
                if self.count == self.chunk {
                    self.count = 0;
                    self.pending_stop = true;
                }
            }
            Token::Stop(k) => {
                self.pad_to_boundary()?;
                self.io.push(0, Token::Stop(k + 1));
                self.io.push(1, Token::Stop(k + 1));
                self.pending_stop = false;
            }
            Token::Done => {
                self.pad_to_boundary()?;
                if self.pending_stop {
                    self.io.push(0, Token::Stop(1));
                    self.io.push(1, Token::Stop(1));
                    self.pending_stop = false;
                }
                self.io.push_done_all();
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(ReshapeNode);
