//! Dynamic routing and merging operators (Table 6, §3.2.3).
//!
//! The arrival-order picks stay per-token (they compare head timestamps
//! across inputs), but once an input is selected its chunk drains in
//! bulk: a run of repeated values forwards as one channel operation.

use super::basic::impl_simnode_common;
use super::{BUDGET, Ctx, Io, SimNode};
use crate::stats::NodeStats;
use step_core::Elem;
use step_core::elem::Selector;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::token::Token;

/// `Reassemble` (Fig 4): per selector element, drains one rank-`rank`
/// tensor from each selected input in arrival order (never interleaving),
/// then raises the stop level, adding a dimension.
#[derive(Clone)]
pub struct ReassembleNode {
    io: Io,
    rank: u8,
    num_producers: u32,
    remaining: Vec<u32>,
    active: Option<u32>,
    /// A group finished and awaits its closing stop (absorbed into the
    /// selector stream's stops).
    pending_group_stop: bool,
}

impl ReassembleNode {
    pub fn new(node: &Node, rank: u8, num_producers: u32) -> ReassembleNode {
        ReassembleNode {
            io: Io::new(node),
            rank,
            num_producers,
            remaining: Vec::new(),
            active: None,
            pending_group_stop: false,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.remaining.clear();
        self.active = None;
        self.pending_group_stop = false;
    }

    fn sel_port(&self) -> usize {
        self.num_producers as usize
    }

    fn pick_input(&mut self, ctx: &mut Ctx<'_>) -> Option<u32> {
        // Arrival order: among the selected inputs, take the one whose
        // head token is ready earliest (ties broken by index).
        let mut best: Option<(u64, u32)> = None;
        for &i in &self.remaining {
            if let Some((t, _)) = self.io.peek(ctx, i as usize)
                && best.is_none_or(|(bt, bi)| t < bt || (t == bt && i < bi))
            {
                best = Some((t, i));
            }
        }
        best.map(|(_, i)| i)
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        // Drain the active chunk first: never interleave.
        if let Some(i) = self.active {
            let head_is_val = match self.io.peek(ctx, i as usize) {
                None => return Ok(0),
                Some((_, tok)) => tok.is_val(),
            };
            if head_is_val {
                let allow = self.io.out_allowance(ctx, 0).min(budget);
                let (tok, k) = self
                    .io
                    .pop_run(ctx, i as usize, 0, allow)
                    .expect("visible head");
                for pi in 0..self.io.popped.len() {
                    let piece = self.io.popped[pi];
                    self.io.push_run(0, piece, tok.clone());
                }
                return Ok(k);
            }
            match self.io.pop(ctx, i as usize) {
                Token::Val(_) => unreachable!("head checked above"),
                Token::Stop(s) if s < self.rank => self.io.push(0, Token::Stop(s)),
                Token::Stop(s) if s == self.rank => {
                    self.remaining.retain(|&x| x != i);
                    self.active = None;
                    if self.remaining.is_empty() {
                        self.pending_group_stop = true;
                    } else {
                        self.io.push(0, Token::Stop(self.rank));
                    }
                }
                other => {
                    return Err(StepError::Exec(format!(
                        "reassemble: input {i} ended mid-chunk with {other}"
                    )));
                }
            }
            return Ok(1);
        }
        if !self.remaining.is_empty() {
            match self.pick_input(ctx) {
                Some(i) => {
                    self.active = Some(i);
                    return Ok(1);
                }
                None => return Ok(0),
            }
        }
        // Need the next selector token.
        let sp = self.sel_port();
        match self.io.peek(ctx, sp) {
            None => Ok(0),
            Some((_, Token::Val(_))) => {
                let sel = self.io.pop(ctx, sp).into_val()?;
                let sel = sel.as_sel()?.clone();
                if sel.targets().iter().any(|&t| t >= self.num_producers) {
                    return Err(StepError::Exec(format!(
                        "reassemble selector {sel} exceeds {} producers",
                        self.num_producers
                    )));
                }
                if self.pending_group_stop {
                    self.io.push(0, Token::Stop(self.rank + 1));
                    self.pending_group_stop = false;
                }
                self.remaining = sel.targets().to_vec();
                Ok(1)
            }
            Some((_, &Token::Stop(k))) => {
                let _ = self.io.pop(ctx, sp);
                self.io.push(0, Token::Stop(k + self.rank + 1));
                self.pending_group_stop = false;
                Ok(1)
            }
            Some((_, Token::Done)) => {
                let _ = self.io.pop(ctx, sp);
                if self.pending_group_stop {
                    self.io.push(0, Token::Stop(self.rank + 1));
                    self.pending_group_stop = false;
                }
                self.io.push_done_all();
                Ok(1)
            }
        }
    }
}

impl_simnode_common!(ReassembleNode);

/// `EagerMerge`: merges whole rank-`rank` tensors in arrival order,
/// emitting the data plus a selector stream recording provenance.
#[derive(Clone)]
pub struct EagerMergeNode {
    io: Io,
    num_producers: u32,
    rank: u8,
    active: Option<u32>,
    finished: Vec<bool>,
}

impl EagerMergeNode {
    pub fn new(node: &Node, num_producers: u32, rank: u8) -> EagerMergeNode {
        EagerMergeNode {
            io: Io::new(node),
            num_producers,
            rank,
            active: None,
            finished: vec![false; num_producers as usize],
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.active = None;
        self.finished.iter_mut().for_each(|f| *f = false);
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        if let Some(i) = self.active {
            let head_is_val = match self.io.peek(ctx, i as usize) {
                None => return Ok(0),
                Some((_, tok)) => tok.is_val(),
            };
            if head_is_val && self.rank > 0 {
                // Rank-0 chunks re-enter arrival-order arbitration after
                // every value; only ranked chunks drain in bulk.
                let allow = self.io.out_allowance(ctx, 0).min(budget);
                let (tok, k) = self
                    .io
                    .pop_run(ctx, i as usize, 0, allow)
                    .expect("visible head");
                for pi in 0..self.io.popped.len() {
                    let piece = self.io.popped[pi];
                    self.io.push_run(0, piece, tok.clone());
                }
                return Ok(k);
            }
            match self.io.pop(ctx, i as usize) {
                Token::Val(v) => {
                    self.io.push(0, Token::Val(v));
                    if self.rank == 0 {
                        self.active = None;
                    }
                }
                Token::Stop(s) if s < self.rank => self.io.push(0, Token::Stop(s)),
                Token::Stop(s) if s == self.rank => {
                    self.io.push(0, Token::Stop(s));
                    self.active = None;
                }
                Token::Done => {
                    return Err(StepError::Exec(format!(
                        "eager-merge: input {i} ended mid-chunk"
                    )));
                }
                Token::Stop(s) => {
                    return Err(StepError::Exec(format!(
                        "eager-merge: stop {s} above chunk rank {}",
                        self.rank
                    )));
                }
            }
            return Ok(1);
        }
        // Pick the earliest-ready input head; retire finished inputs.
        // The engine's horizon-windowed execution keeps host order aligned
        // with simulated time, so competing heads coexist within one
        // window and arrival-order picks are faithful to ±window.
        let mut best: Option<(u64, u32)> = None;
        for i in 0..self.num_producers {
            if self.finished[i as usize] {
                continue;
            }
            if let Some((t, tok)) = self.io.peek(ctx, i as usize) {
                if matches!(tok, Token::Done) {
                    let _ = self.io.pop(ctx, i as usize);
                    self.finished[i as usize] = true;
                    return Ok(1);
                }
                if best.is_none_or(|(bt, bi)| t < bt || (t == bt && i < bi)) {
                    best = Some((t, i));
                }
            }
        }
        match best {
            Some((_, i)) => {
                self.active = Some(i);
                self.io.push(1, Token::Val(Elem::Sel(Selector::one(i))));
                Ok(1)
            }
            None => {
                if self.finished.iter().all(|&f| f) {
                    self.io.push_done_all();
                    Ok(1)
                } else {
                    Ok(0)
                }
            }
        }
    }
}

impl_simnode_common!(EagerMergeNode);
