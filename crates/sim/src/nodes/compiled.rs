//! The compiled executor: a closed enum over every operator node.
//!
//! Freezing a plan lowers each operator into a [`CompiledNode`] variant
//! whose I/O harness carries shard-local dense channel indices, so the
//! engine's inner fire loop dispatches with one `match` (a jump table)
//! instead of a vtable call per fire, and a pooled rerun restores every
//! node in place via [`CompiledNode::reset`] without reallocating. The
//! boxed [`SimNode`] path stays available (`SimConfig::compiled = false`)
//! as the differential-testing reference.

use super::{Blocked, Ctx, Io, NodeExec, SimNode};
use crate::stats::NodeStats;
use step_core::error::Result;
use step_core::ops::OpKind;
use step_core::token::Token;

/// Generates [`CompiledNode`] and its dispatch surface from the variant
/// list. Each method is one exhaustive `match` delegating to the inner
/// node's inherent or [`SimNode`] implementation — the whole operator set
/// is visible to the optimizer at every call site.
macro_rules! compiled {
    ($($variant:ident($ty:ty)),+ $(,)?) => {
        /// A lowered operator executor: static dispatch, shard-local
        /// channel addressing, in-place reset for pooled reruns.
        #[derive(Clone)]
        pub enum CompiledNode {
            $(
                #[doc = concat!("Lowered [`", stringify!($ty), "`].")]
                $variant($ty),
            )+
        }

        impl CompiledNode {
            /// The embedded I/O harness (freeze-time edge remapping).
            pub(crate) fn io_mut(&mut self) -> &mut Io {
                match self {
                    $(CompiledNode::$variant(n) => n.io_mut(),)+
                }
            }

            /// Restores the just-built state in place, keeping every
            /// allocation (pooled run reset).
            pub(crate) fn reset(&mut self) {
                match self {
                    $(CompiledNode::$variant(n) => n.reset(),)+
                }
            }

            /// The compiled kind this executor dispatches as.
            pub fn kind(&self) -> &'static str {
                match self {
                    $(CompiledNode::$variant(_) => stringify!($variant),)+
                }
            }

            /// Re-boxes the executor for the dynamic-dispatch reference
            /// path (`SimConfig::compiled = false`).
            pub(crate) fn into_dyn(self) -> Box<dyn SimNode + Send> {
                match self {
                    $(CompiledNode::$variant(n) => Box::new(n),)+
                }
            }
        }

        impl NodeExec for CompiledNode {
            const IDENTITY_CHANS: bool = true;

            fn fire(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
                match self {
                    $(CompiledNode::$variant(n) => SimNode::fire(n, ctx),)+
                }
            }

            fn done(&self) -> bool {
                match self {
                    $(CompiledNode::$variant(n) => SimNode::done(n),)+
                }
            }

            fn stats(&self) -> &NodeStats {
                match self {
                    $(CompiledNode::$variant(n) => SimNode::stats(n),)+
                }
            }

            fn local_time(&self) -> u64 {
                match self {
                    $(CompiledNode::$variant(n) => SimNode::local_time(n),)+
                }
            }

            fn blocked_on(&self) -> Option<Blocked> {
                match self {
                    $(CompiledNode::$variant(n) => SimNode::blocked_on(n),)+
                }
            }

            fn recorded(&self) -> Option<&[Token]> {
                match self {
                    $(CompiledNode::$variant(n) => SimNode::recorded(n),)+
                }
            }
        }
    };
}

compiled! {
    Source(super::basic::SourceNode),
    Sink(super::basic::SinkNode),
    Fork(super::basic::ForkNode),
    Zip(super::basic::ZipNode),
    Flatten(super::basic::FlattenNode),
    Promote(super::basic::PromoteNode),
    ExpandStatic(super::basic::ExpandStaticNode),
    Expand(super::basic::ExpandNode),
    Reshape(super::basic::ReshapeNode),
    LinearLoad(super::offchip::LinearLoadNode),
    LinearStore(super::offchip::LinearStoreNode),
    RandomLoad(super::offchip::RandomLoadNode),
    RandomStore(super::offchip::RandomStoreNode),
    Bufferize(super::onchip::BufferizeNode),
    Streamify(super::onchip::StreamifyNode),
    Partition(super::routing_partition::PartitionNode),
    Reassemble(super::routing::ReassembleNode),
    EagerMerge(super::routing::EagerMergeNode),
    Map(super::compute::MapNode),
    Accum(super::compute::AccumNode),
    Scan(super::compute::ScanNode),
    FlatMap(super::compute::FlatMapNode),
    AddrGen(super::compute::AddrGenNode),
}

impl CompiledNode {
    /// Overrides a `Source` executor's played stream for this run.
    ///
    /// # Panics
    ///
    /// Panics if the executor is not a `Source`; the engine validates
    /// binding targets against the graph before lowering.
    pub(crate) fn bind_source(&mut self, tokens: Vec<Token>) {
        match self {
            CompiledNode::Source(n) => n.bind(tokens),
            other => unreachable!("binding target {} is not a Source", other.kind()),
        }
    }
}

/// The [`CompiledNode::kind`] an operator lowers to — the `dispatch`
/// attribution key reported by profiling tools.
pub fn compiled_kind(op: &OpKind) -> &'static str {
    match op {
        OpKind::Source(_) => "Source",
        OpKind::Sink(_) => "Sink",
        OpKind::Fork { .. } => "Fork",
        OpKind::Zip => "Zip",
        OpKind::Flatten { .. } => "Flatten",
        OpKind::Promote => "Promote",
        OpKind::ExpandStatic { .. } => "ExpandStatic",
        OpKind::Expand { .. } => "Expand",
        OpKind::Reshape { .. } => "Reshape",
        OpKind::LinearLoad(_) => "LinearLoad",
        OpKind::LinearStore { .. } => "LinearStore",
        OpKind::RandomLoad(_) => "RandomLoad",
        OpKind::RandomStore(_) => "RandomStore",
        OpKind::Bufferize { .. } => "Bufferize",
        OpKind::Streamify(_) => "Streamify",
        OpKind::Partition { .. } => "Partition",
        OpKind::Reassemble { .. } => "Reassemble",
        OpKind::EagerMerge { .. } => "EagerMerge",
        OpKind::Map { .. } => "Map",
        OpKind::Accum { .. } => "Accum",
        OpKind::Scan { .. } => "Scan",
        OpKind::FlatMap { .. } => "FlatMap",
        OpKind::AddrGen { .. } => "AddrGen",
    }
}
