//! On-chip memory operators (Table 4): `Bufferize` and `Streamify`.

use super::basic::impl_simnode_common;
use super::{BUDGET, BlockEmitter, Ctx, Io, SimNode, mem_cycles};
use crate::arena::StoredBuffer;
use crate::stats::NodeStats;
use step_core::Elem;
use step_core::elem::BufRef;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::ops::StreamifyCfg;
use step_core::token::Token;

/// `Bufferize` (Fig 3): captures the `rank` innermost dims into an on-chip
/// buffer, emitting a reference per buffer.
pub struct BufferizeNode {
    io: Io,
    rank: u8,
    elems: Vec<Elem>,
    bytes: u64,
    /// Completed-unit counters per level (index 0 counts values).
    counts: Vec<u64>,
    /// Maximum extent seen per level.
    extents: Vec<u64>,
    max_buffer_bytes: u64,
    max_elem_bytes: u64,
}

impl BufferizeNode {
    pub fn new(node: &Node, rank: u8) -> BufferizeNode {
        BufferizeNode {
            io: Io::new(node),
            rank,
            elems: Vec::new(),
            bytes: 0,
            counts: vec![0; rank as usize + 1],
            extents: vec![0; rank as usize],
            max_buffer_bytes: 0,
            max_elem_bytes: 0,
        }
    }

    fn close_levels(&mut self, upto: u8) {
        for l in 1..=(upto.min(self.rank) as usize) {
            self.extents[l - 1] = self.extents[l - 1].max(self.counts[l - 1]);
            self.counts[l - 1] = 0;
            self.counts[l] += 1;
        }
    }

    fn seal_buffer(&mut self, ctx: &mut Ctx<'_>) {
        let dims: Vec<u64> = self.extents.iter().rev().copied().collect();
        let bytes = self.bytes;
        ctx.arena.set_time(self.io.time);
        let id = ctx.arena.alloc(StoredBuffer {
            elems: std::mem::take(&mut self.elems),
            dims: dims.clone(),
            bytes,
        });
        self.max_buffer_bytes = self.max_buffer_bytes.max(bytes);
        self.io.stats.onchip_bytes = self.max_elem_bytes + 2 * self.max_buffer_bytes;
        self.io.push(0, Token::Val(Elem::Buf(BufRef { id, dims })));
        self.bytes = 0;
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.extents.iter_mut().for_each(|e| *e = 0);
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let bytes = e.bytes();
                self.max_elem_bytes = self.max_elem_bytes.max(bytes);
                self.bytes += bytes;
                self.counts[0] += 1;
                self.elems.push(e);
                let cost = mem_cycles(bytes, ctx.cfg);
                self.io.busy(cost);
            }
            Token::Stop(s) => {
                self.close_levels(s);
                if s >= self.rank {
                    self.seal_buffer(ctx);
                    if s > self.rank {
                        self.io.push(0, Token::Stop(s - self.rank));
                    }
                }
            }
            Token::Done => {
                if !self.elems.is_empty() {
                    return Err(StepError::Malformed(
                        "bufferize input ended without closing stop".into(),
                    ));
                }
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(BufferizeNode);

/// `Streamify` (Fig 3): reads buffers back into a stream, once per
/// reference element. Statically-shaped buffers support affine reads;
/// dynamic buffers stream linearly.
pub struct StreamifyNode {
    io: Io,
    cfg: StreamifyCfg,
    /// Extra reference rank relative to the buffer stream: each rank-`c`
    /// reference block consumes one buffer (c = 0 means one reference
    /// value per buffer).
    c: u8,
    current: Option<StoredBuffer>,
    current_id: Option<u64>,
    emitter: BlockEmitter,
    block_rank: u8,
}

impl StreamifyNode {
    pub fn new(node: &Node, cfg: StreamifyCfg, c: u8) -> StreamifyNode {
        StreamifyNode {
            io: Io::new(node),
            cfg,
            c,
            current: None,
            current_id: None,
            emitter: BlockEmitter::default(),
            block_rank: 0,
        }
    }

    fn load_buffer(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.current.is_some() {
            return Ok(true);
        }
        match self.io.peek(ctx, 0) {
            None => Ok(false),
            Some((_, Token::Val(_))) => {
                let tok = self.io.pop(ctx, 0);
                let e = tok.into_val()?;
                let buf = e.as_buf()?;
                // Reuse of the same reference (e.g. after ExpandStatic)
                // keeps the buffer resident.
                if self.current_id != Some(buf.id)
                    && let Some(prev) = self.current_id.take()
                {
                    ctx.arena.set_time(self.io.time);
                    let _ = ctx.arena.free(prev);
                }
                let stored = ctx.arena.get(buf.id)?.clone();
                self.block_rank = if self.cfg.shape.is_some() {
                    2
                } else {
                    stored.dims.len() as u8
                };
                self.current_id = Some(buf.id);
                self.current = Some(stored);
                Ok(true)
            }
            Some((_, other)) => Err(StepError::Exec(format!(
                "streamify: expected buffer ref, got {other}"
            ))),
        }
    }

    fn emit_block(&mut self, ctx: &mut Ctx<'_>) -> Result<()> {
        let buf = self.current.as_ref().expect("buffer loaded").clone();
        match (self.cfg.shape, self.cfg.stride) {
            (Some((nr, nc)), stride) => {
                let (sr, sc) = stride.unwrap_or((nc, 1));
                for i in 0..nr {
                    for j in 0..nc {
                        let idx = (i * sr + j * sc) as usize;
                        let e = buf.elems.get(idx).ok_or_else(|| {
                            StepError::Exec(format!(
                                "streamify affine read {idx} out of buffer of {}",
                                buf.elems.len()
                            ))
                        })?;
                        let cost = mem_cycles(e.bytes(), ctx.cfg);
                        self.io.busy(cost);
                        self.io.push(0, Token::Val(e.clone()));
                        if j + 1 == nc && i + 1 < nr {
                            self.io.push(0, Token::Stop(1));
                        }
                    }
                }
            }
            (None, _) => {
                // Linear stream of the whole buffer, reconstructing the
                // captured dims.
                let dims = &buf.dims;
                let total: u64 = dims.iter().product::<u64>().max(buf.elems.len() as u64);
                let mut run_lengths = Vec::new();
                let mut acc = 1u64;
                for d in dims.iter().rev() {
                    acc *= (*d).max(1);
                    run_lengths.push(acc);
                }
                for (k, e) in buf.elems.iter().enumerate() {
                    let cost = mem_cycles(e.bytes(), ctx.cfg);
                    self.io.busy(cost);
                    self.io.push(0, Token::Val(e.clone()));
                    let pos = (k + 1) as u64;
                    if pos < total {
                        // Highest level whose run completes here.
                        let mut level = 0u8;
                        for (li, rl) in run_lengths.iter().enumerate() {
                            if pos.is_multiple_of(*rl) {
                                level = li as u8 + 1;
                            }
                        }
                        if level > 0 && level < self.block_rank {
                            self.io.push(0, Token::Stop(level));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        match self.io.peek(ctx, 1) {
            None => Ok(false),
            Some((_, Token::Val(_))) => {
                if !self.load_buffer(ctx)? {
                    return Ok(false);
                }
                let _ = self.io.pop(ctx, 1);
                self.emitter.before_block(&mut self.io, 0, self.block_rank);
                self.emit_block(ctx)?;
                if self.c == 0 {
                    self.current = None;
                }
                Ok(true)
            }
            Some(&(_, Token::Stop(s))) => {
                let _ = self.io.pop(ctx, 1);
                self.emitter.on_stop(&mut self.io, 0, s, self.block_rank);
                if s >= self.c && self.c > 0 {
                    self.current = None;
                    // Consume the aligned buffer-stream stop, if any.
                    if s > self.c {
                        match self.io.peek(ctx, 0) {
                            Some(&(_, Token::Stop(bs))) if bs == s - self.c => {
                                let _ = self.io.pop(ctx, 0);
                            }
                            _ => {
                                return Err(StepError::Exec(
                                    "streamify: buffer stream out of sync".into(),
                                ));
                            }
                        }
                    }
                }
                Ok(true)
            }
            Some((_, Token::Done)) => {
                if let Some((_, Token::Done)) = self.io.peek(ctx, 0) {
                    let _ = self.io.pop(ctx, 0);
                }
                if let Some(prev) = self.current_id.take() {
                    ctx.arena.set_time(self.io.time);
                    let _ = ctx.arena.free(prev);
                }
                let _ = self.io.pop(ctx, 1);
                self.emitter.on_done(&mut self.io, 0, self.block_rank);
                self.io.push_done_all();
                Ok(true)
            }
        }
    }
}

impl_simnode_common!(StreamifyNode);
