//! On-chip memory operators (Table 4): `Bufferize` and `Streamify`.
//!
//! Both move whole runs per step: `Bufferize` absorbs a run of repeated
//! elements with one bulk pop (the per-element memory-port cost paces
//! the dequeues), and `Streamify` emits stretches of equal buffered
//! elements as strided runs (one entry per stretch instead of one per
//! element).

use super::basic::impl_simnode_common;
use super::{BUDGET, BlockEmitter, Ctx, Io, SimNode, mem_cycles};
use crate::arena::StoredBuffer;
use crate::run::TimeRun;
use crate::stats::NodeStats;
use step_core::Elem;
use step_core::elem::BufRef;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::ops::StreamifyCfg;
use step_core::token::Token;

/// `Bufferize` (Fig 3): captures the `rank` innermost dims into an on-chip
/// buffer, emitting a reference per buffer.
#[derive(Clone)]
pub struct BufferizeNode {
    io: Io,
    rank: u8,
    elems: Vec<Elem>,
    bytes: u64,
    /// Completed-unit counters per level (index 0 counts values).
    counts: Vec<u64>,
    /// Maximum extent seen per level.
    extents: Vec<u64>,
    max_buffer_bytes: u64,
    max_elem_bytes: u64,
}

impl BufferizeNode {
    pub fn new(node: &Node, rank: u8) -> BufferizeNode {
        BufferizeNode {
            io: Io::new(node),
            rank,
            elems: Vec::new(),
            bytes: 0,
            counts: vec![0; rank as usize + 1],
            extents: vec![0; rank as usize],
            max_buffer_bytes: 0,
            max_elem_bytes: 0,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.elems.clear();
        self.bytes = 0;
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.extents.iter_mut().for_each(|e| *e = 0);
        self.max_buffer_bytes = 0;
        self.max_elem_bytes = 0;
    }

    fn close_levels(&mut self, upto: u8) {
        for l in 1..=(upto.min(self.rank) as usize) {
            self.extents[l - 1] = self.extents[l - 1].max(self.counts[l - 1]);
            self.counts[l - 1] = 0;
            self.counts[l] += 1;
        }
    }

    fn seal_buffer(&mut self, ctx: &mut Ctx<'_>) {
        let dims: Vec<u64> = self.extents.iter().rev().copied().collect();
        let bytes = self.bytes;
        ctx.arena.set_time(self.io.time);
        let id = ctx.arena.alloc(StoredBuffer {
            elems: std::mem::take(&mut self.elems),
            dims: dims.clone(),
            bytes,
        });
        self.max_buffer_bytes = self.max_buffer_bytes.max(bytes);
        self.io.stats.onchip_bytes = self.max_elem_bytes + 2 * self.max_buffer_bytes;
        self.io.push(0, Token::Val(Elem::Buf(BufRef { id, dims })));
        self.bytes = 0;
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.extents.iter_mut().for_each(|e| *e = 0);
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let cost = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, Token::Val(e))) => {
                let bytes = e.bytes();
                Some((bytes, mem_cycles(bytes, ctx.cfg)))
            }
            Some(_) => None,
        };
        if let Some((bytes, cost)) = cost {
            let (tok, k) = self.io.pop_run(ctx, 0, cost, budget).expect("visible head");
            let e = tok.into_val()?;
            self.max_elem_bytes = self.max_elem_bytes.max(bytes);
            self.bytes += k * bytes;
            self.counts[0] += k;
            self.elems.extend(std::iter::repeat_n(e, k as usize));
            self.io.busy_run(k, cost);
            return Ok(k);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(_) => unreachable!("head checked above"),
            Token::Stop(s) => {
                self.close_levels(s);
                if s >= self.rank {
                    self.seal_buffer(ctx);
                    if s > self.rank {
                        self.io.push(0, Token::Stop(s - self.rank));
                    }
                }
            }
            Token::Done => {
                if !self.elems.is_empty() {
                    return Err(StepError::Malformed(
                        "bufferize input ended without closing stop".into(),
                    ));
                }
                self.io.push_done_all();
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(BufferizeNode);

/// `Streamify` (Fig 3): reads buffers back into a stream, once per
/// reference element. Statically-shaped buffers support affine reads;
/// dynamic buffers stream linearly.
#[derive(Clone)]
pub struct StreamifyNode {
    io: Io,
    cfg: StreamifyCfg,
    /// Extra reference rank relative to the buffer stream: each rank-`c`
    /// reference block consumes one buffer (c = 0 means one reference
    /// value per buffer).
    c: u8,
    current: Option<StoredBuffer>,
    current_id: Option<u64>,
    emitter: BlockEmitter,
    block_rank: u8,
}

/// Accumulates consecutive equal buffered elements into one strided
/// output run: per element, the memory port charges `cost` cycles and
/// emits at the advanced clock, so a stretch of `n` equal elements
/// leaves as `TimeRun { start: t0 + cost, stride: cost, count: n }`.
struct BurstEmit {
    pending: Option<(Elem, u64, u64)>, // (element, cost, count)
}

impl BurstEmit {
    fn new() -> BurstEmit {
        BurstEmit { pending: None }
    }

    fn emit(&mut self, io: &mut Io, elem: &Elem, cost: u64) {
        match &mut self.pending {
            Some((p, c, n)) if *c == cost && p.coalesces_with(elem) => *n += 1,
            _ => {
                self.flush(io);
                self.pending = Some((elem.clone(), cost, 1));
            }
        }
    }

    fn flush(&mut self, io: &mut Io) {
        if let Some((e, cost, n)) = self.pending.take() {
            let start = io.time + cost;
            io.busy(n * cost);
            io.push_run(0, TimeRun::new(start, cost, n), Token::Val(e));
        }
    }
}

impl StreamifyNode {
    pub fn new(node: &Node, cfg: StreamifyCfg, c: u8) -> StreamifyNode {
        StreamifyNode {
            io: Io::new(node),
            cfg,
            c,
            current: None,
            current_id: None,
            emitter: BlockEmitter::default(),
            block_rank: 0,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.current = None;
        self.current_id = None;
        self.emitter.reset();
        self.block_rank = 0;
    }

    fn load_buffer(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.current.is_some() {
            return Ok(true);
        }
        match self.io.peek(ctx, 0) {
            None => Ok(false),
            Some((_, Token::Val(_))) => {
                let tok = self.io.pop(ctx, 0);
                let e = tok.into_val()?;
                let buf = e.as_buf()?;
                // Reuse of the same reference (e.g. after ExpandStatic)
                // keeps the buffer resident.
                if self.current_id != Some(buf.id)
                    && let Some(prev) = self.current_id.take()
                {
                    ctx.arena.set_time(self.io.time);
                    let _ = ctx.arena.free(prev);
                }
                let stored = ctx.arena.get(buf.id)?.clone();
                self.block_rank = if self.cfg.shape.is_some() {
                    2
                } else {
                    stored.dims.len() as u8
                };
                self.current_id = Some(buf.id);
                self.current = Some(stored);
                Ok(true)
            }
            Some((_, other)) => Err(StepError::Exec(format!(
                "streamify: expected buffer ref, got {other}"
            ))),
        }
    }

    fn emit_block(&mut self, ctx: &mut Ctx<'_>) -> Result<()> {
        let buf = self.current.as_ref().expect("buffer loaded").clone();
        let mut burst = BurstEmit::new();
        match (self.cfg.shape, self.cfg.stride) {
            (Some((nr, nc)), stride) => {
                let (sr, sc) = stride.unwrap_or((nc, 1));
                for i in 0..nr {
                    for j in 0..nc {
                        let idx = (i * sr + j * sc) as usize;
                        let e = buf.elems.get(idx).ok_or_else(|| {
                            StepError::Exec(format!(
                                "streamify affine read {idx} out of buffer of {}",
                                buf.elems.len()
                            ))
                        })?;
                        let cost = mem_cycles(e.bytes(), ctx.cfg);
                        burst.emit(&mut self.io, e, cost);
                        if j + 1 == nc && i + 1 < nr {
                            burst.flush(&mut self.io);
                            self.io.push(0, Token::Stop(1));
                        }
                    }
                }
            }
            (None, _) => {
                // Linear stream of the whole buffer, reconstructing the
                // captured dims.
                let dims = &buf.dims;
                let total: u64 = dims.iter().product::<u64>().max(buf.elems.len() as u64);
                let mut run_lengths = Vec::new();
                let mut acc = 1u64;
                for d in dims.iter().rev() {
                    acc *= (*d).max(1);
                    run_lengths.push(acc);
                }
                for (k, e) in buf.elems.iter().enumerate() {
                    let cost = mem_cycles(e.bytes(), ctx.cfg);
                    burst.emit(&mut self.io, e, cost);
                    let pos = (k + 1) as u64;
                    if pos < total {
                        // Highest level whose run completes here.
                        let mut level = 0u8;
                        for (li, rl) in run_lengths.iter().enumerate() {
                            if pos.is_multiple_of(*rl) {
                                level = li as u8 + 1;
                            }
                        }
                        if level > 0 && level < self.block_rank {
                            burst.flush(&mut self.io);
                            self.io.push(0, Token::Stop(level));
                        }
                    }
                }
            }
        }
        burst.flush(&mut self.io);
        Ok(())
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        match self.io.peek(ctx, 1) {
            None => Ok(0),
            Some((_, Token::Val(_))) => {
                if !self.load_buffer(ctx)? {
                    return Ok(0);
                }
                let _ = self.io.pop(ctx, 1);
                self.emitter.before_block(&mut self.io, 0, self.block_rank);
                self.emit_block(ctx)?;
                if self.c == 0 {
                    self.current = None;
                }
                Ok(1)
            }
            Some((_, &Token::Stop(s))) => {
                let _ = self.io.pop(ctx, 1);
                self.emitter.on_stop(&mut self.io, 0, s, self.block_rank);
                if s >= self.c && self.c > 0 {
                    self.current = None;
                    // Consume the aligned buffer-stream stop, if any.
                    if s > self.c {
                        match self.io.peek(ctx, 0) {
                            Some((_, &Token::Stop(bs))) if bs == s - self.c => {
                                let _ = self.io.pop(ctx, 0);
                            }
                            _ => {
                                return Err(StepError::Exec(
                                    "streamify: buffer stream out of sync".into(),
                                ));
                            }
                        }
                    }
                }
                Ok(1)
            }
            Some((_, Token::Done)) => {
                if let Some((_, Token::Done)) = self.io.peek(ctx, 0) {
                    let _ = self.io.pop(ctx, 0);
                }
                if let Some(prev) = self.current_id.take() {
                    ctx.arena.set_time(self.io.time);
                    let _ = ctx.arena.free(prev);
                }
                let _ = self.io.pop(ctx, 1);
                self.emitter.on_done(&mut self.io, 0, self.block_rank);
                self.io.push_done_all();
                Ok(1)
            }
        }
    }
}

impl_simnode_common!(StreamifyNode);
