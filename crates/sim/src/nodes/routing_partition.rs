//! `Partition` executor (split out of `routing` for readability).

use super::basic::impl_simnode_common;
use super::{BUDGET, Ctx, Io, SimNode};
use crate::stats::NodeStats;
use step_core::error::{Result, StepError};
use step_core::graph::Node;
use step_core::token::Token;

/// `Partition`: routes rank-`rank` chunks to the outputs named by each
/// multi-hot selector element (Table 6).
///
/// Chunk-closing stops are emitted eagerly; when a chunk ends exactly at
/// an outer boundary the incoming stream already carries the absorbed
/// higher-level stop, so a one-token lookahead distinguishes "more chunks
/// follow" from "group/stream ends here". A run of values inside a chunk
/// shares one selector, so it replicates to the selected outputs in bulk.
#[derive(Clone)]
pub struct PartitionNode {
    io: Io,
    rank: u8,
    num_consumers: u32,
    targets: Option<Vec<u32>>,
    /// Targets owed a chunk-closing `Stop(rank)` pending lookahead.
    closing: Option<Vec<u32>>,
    /// Outputs that produced content since the last outer boundary.
    had_content: Vec<bool>,
}

impl PartitionNode {
    pub fn new(node: &Node, rank: u8, num_consumers: u32) -> PartitionNode {
        PartitionNode {
            io: Io::new(node),
            rank,
            num_consumers,
            targets: None,
            closing: None,
            had_content: vec![false; num_consumers as usize],
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.targets = None;
        self.closing = None;
        self.had_content.iter_mut().for_each(|h| *h = false);
    }

    fn need_selector(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.targets.is_some() {
            return Ok(true);
        }
        match self.io.peek(ctx, 1) {
            None => Ok(false),
            Some((_, Token::Val(_))) => {
                let sel = self.io.pop(ctx, 1).into_val()?;
                let sel = sel.as_sel()?.clone();
                if sel.targets().iter().any(|&t| t >= self.num_consumers) {
                    return Err(StepError::Exec(format!(
                        "partition selector {sel} exceeds {} consumers",
                        self.num_consumers
                    )));
                }
                self.targets = Some(sel.targets().to_vec());
                Ok(true)
            }
            Some((_, other)) => Err(StepError::Exec(format!(
                "partition: expected selector value, got {other}"
            ))),
        }
    }

    fn consume_selector_stop(&mut self, ctx: &mut Ctx<'_>, level: u8) -> Result<()> {
        match self.io.peek(ctx, 1) {
            Some((_, &Token::Stop(k))) if k == level => {
                let _ = self.io.pop(ctx, 1);
                Ok(())
            }
            _ => Err(StepError::Exec(
                "partition: selector stream out of sync at outer stop".into(),
            )),
        }
    }

    fn emit_outer_stop(&mut self, level: u8) {
        for i in 0..self.had_content.len() {
            if std::mem::take(&mut self.had_content[i]) {
                self.io.push(i, Token::Stop(level));
            }
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        // A chunk just ended: look ahead to decide between an eager
        // Stop(rank) and an absorbed higher-level stop.
        if let Some(closing) = self.closing.clone() {
            match self.io.peek(ctx, 0) {
                None => return Ok(0),
                Some((_, Token::Val(_))) => {
                    for t in closing {
                        self.io.push(t as usize, Token::Stop(self.rank));
                    }
                    self.closing = None;
                    return Ok(1);
                }
                Some((_, &Token::Stop(s))) => {
                    debug_assert!(s > self.rank, "chunk already closed");
                    let _ = self.io.pop(ctx, 0);
                    self.emit_outer_stop(s);
                    self.consume_selector_stop(ctx, s - self.rank)?;
                    self.closing = None;
                    return Ok(1);
                }
                Some((_, Token::Done)) => {
                    let _ = self.io.pop(ctx, 0);
                    for t in closing {
                        self.io.push(t as usize, Token::Stop(self.rank));
                    }
                    self.closing = None;
                    self.io.push_done_all();
                    return Ok(1);
                }
            }
        }
        let head_is_val = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, tok)) => tok.is_val(),
        };
        if head_is_val {
            if !self.need_selector(ctx)? {
                return Ok(0);
            }
            let targets = self.targets.clone().expect("selected above");
            let mut allow = budget;
            for &t in &targets {
                allow = allow.min(self.io.out_allowance(ctx, t as usize));
            }
            let (tok, k) = self.io.pop_run(ctx, 0, 0, allow).expect("visible head");
            for &t in &targets {
                self.had_content[t as usize] = true;
                for pi in 0..self.io.popped.len() {
                    let piece = self.io.popped[pi];
                    self.io.push_run(t as usize, piece, tok.clone());
                }
            }
            return Ok(k);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(_) => unreachable!("head checked above"),
            Token::Stop(s) => {
                if s < self.rank {
                    let targets = self.targets.clone().ok_or_else(|| {
                        StepError::Exec("partition: chunk-internal stop before selector".into())
                    })?;
                    for t in targets {
                        self.io.push(t as usize, Token::Stop(s));
                    }
                } else if s == self.rank {
                    self.closing = self.targets.take();
                } else {
                    // The chunk's close was absorbed into this outer stop.
                    self.targets = None;
                    self.emit_outer_stop(s);
                    self.consume_selector_stop(ctx, s - self.rank)?;
                }
                Ok(1)
            }
            Token::Done => {
                self.io.push_done_all();
                Ok(1)
            }
        }
    }
}

impl_simnode_common!(PartitionNode);
