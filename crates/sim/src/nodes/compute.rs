//! Higher-order operators (Table 5) with the roofline timing model of
//! §4.3: each element costs `max(1, ⌈FLOPs / compute_bw⌉)` cycles; memory
//! terms are charged by the on-chip operators that own the scratchpad
//! ports.

use super::basic::impl_simnode_common;
use super::{BUDGET, BlockEmitter, Ctx, Io, SimNode, compute_cycles};
use crate::stats::NodeStats;
use step_core::error::{Result, StepError};
use step_core::func::{AccumFn, FlatMapFn, MapFn};
use step_core::graph::Node;
use step_core::tile::Tile;
use step_core::token::Token;
use step_core::{DTYPE_BYTES, Elem};

/// `Map`: elementwise application of a hardware function.
pub struct MapNode {
    io: Io,
    func: MapFn,
    compute_bw: u64,
}

impl MapNode {
    pub fn new(node: &Node, func: MapFn, compute_bw: u64) -> MapNode {
        MapNode {
            io: Io::new(node),
            func,
            compute_bw,
        }
    }

    fn track_memory(&mut self, e: &Elem) {
        if matches!(self.func, MapFn::Matmul | MapFn::MatmulBt)
            && let Ok(pair) = e.as_tuple()
            && let (Ok(a), Ok(b)) = (pair[0].as_tile(), pair[1].as_tile())
        {
            // 16 * in_tile_col * bytes + |weight tile| (§4.2).
            let mem = 16 * a.cols() as u64 * DTYPE_BYTES + b.bytes();
            self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(mem);
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let flops = self.func.flops(&e);
                let out = self.func.apply(&e)?;
                self.track_memory(&e);
                self.io.stats.flops += flops;
                self.io.busy(compute_cycles(flops, self.compute_bw));
                self.io.push(0, Token::Val(out));
            }
            Token::Stop(s) => self.io.push(0, Token::Stop(s)),
            Token::Done => self.io.push_done_all(),
        }
        Ok(true)
    }
}

impl_simnode_common!(MapNode);

/// `Accum`: folds the `rank` innermost dims; the accumulator may be
/// dynamically sized (dynamic tiling, §5.2).
pub struct AccumNode {
    io: Io,
    rank: u8,
    func: AccumFn,
    compute_bw: u64,
    acc: Option<Tile>,
}

impl AccumNode {
    pub fn new(node: &Node, rank: u8, func: AccumFn, compute_bw: u64) -> AccumNode {
        AccumNode {
            io: Io::new(node),
            rank,
            func,
            compute_bw,
            acc: None,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let flops = self.func.flops(&e);
                let acc = self.func.update(self.acc.take(), &e)?;
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(acc.bytes());
                self.acc = Some(acc);
                self.io.stats.flops += flops;
                self.io.busy(compute_cycles(flops, self.compute_bw));
            }
            Token::Stop(s) if s < self.rank => {}
            Token::Stop(s) => {
                if let Some(acc) = self.acc.take() {
                    self.io.push(0, Token::Val(Elem::Tile(acc)));
                }
                if s > self.rank {
                    self.io.push(0, Token::Stop(s - self.rank));
                }
            }
            Token::Done => {
                if self.acc.is_some() {
                    return Err(StepError::Malformed(
                        "accum input ended without closing stop".into(),
                    ));
                }
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(AccumNode);

/// `Scan`: like `Accum` but emits the running state per element.
pub struct ScanNode {
    io: Io,
    rank: u8,
    func: AccumFn,
    compute_bw: u64,
    acc: Option<Tile>,
}

impl ScanNode {
    pub fn new(node: &Node, rank: u8, func: AccumFn, compute_bw: u64) -> ScanNode {
        ScanNode {
            io: Io::new(node),
            rank,
            func,
            compute_bw,
            acc: None,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let flops = self.func.flops(&e);
                let acc = self.func.update(self.acc.take(), &e)?;
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(acc.bytes());
                self.io.stats.flops += flops;
                self.io.busy(compute_cycles(flops, self.compute_bw));
                self.io.push(0, Token::Val(Elem::Tile(acc.clone())));
                self.acc = Some(acc);
            }
            Token::Stop(s) => {
                if s >= self.rank {
                    self.acc = None;
                }
                self.io.push(0, Token::Stop(s));
            }
            Token::Done => self.io.push_done_all(),
        }
        Ok(true)
    }
}

impl_simnode_common!(ScanNode);

/// `FlatMap`: expands each element into a rank-1 block; blocks
/// concatenate (Table 5).
pub struct FlatMapNode {
    io: Io,
    func: FlatMapFn,
    emitter: BlockEmitter,
}

impl FlatMapNode {
    pub fn new(node: &Node, func: FlatMapFn) -> FlatMapNode {
        FlatMapNode {
            io: Io::new(node),
            func,
            emitter: BlockEmitter::default(),
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        let b = self.func.block_rank();
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let tensors = self.func.expand(&e)?;
                for tensor in tensors {
                    self.emitter.before_block(&mut self.io, 0, b);
                    for elem in tensor {
                        self.io.busy(1);
                        self.io.push(0, Token::Val(elem));
                    }
                }
            }
            Token::Stop(s) => self.emitter.on_stop(&mut self.io, 0, s, b),
            Token::Done => {
                self.emitter.on_done(&mut self.io, 0, b);
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(FlatMapNode);

/// Address generator: per target-index element, a rank-1 block of `count`
/// addresses (the `RandomOffChipLoad` feeder under configuration
/// time-multiplexing, Fig 11).
pub struct AddrGenNode {
    io: Io,
    count: u64,
    stride: u64,
    base: u64,
    emitter: BlockEmitter,
}

impl AddrGenNode {
    pub fn new(node: &Node, count: u64, stride: u64, base: u64) -> AddrGenNode {
        AddrGenNode {
            io: Io::new(node),
            count,
            stride,
            base,
            emitter: BlockEmitter::default(),
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) -> Result<bool> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(false);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let index = match &e {
                    Elem::Sel(s) => *s
                        .targets()
                        .first()
                        .ok_or_else(|| StepError::Exec("addr-gen on empty selector".into()))?
                        as u64,
                    Elem::Addr(a) => *a,
                    other => {
                        return Err(StepError::ElemType(format!(
                            "addr-gen needs selector or address, got {other}"
                        )));
                    }
                };
                self.emitter.before_block(&mut self.io, 0, 1);
                for j in 0..self.count {
                    let addr = self.base + (index * self.count + j) * self.stride;
                    self.io.push(0, Token::Val(Elem::Addr(addr)));
                }
            }
            Token::Stop(s) => self.emitter.on_stop(&mut self.io, 0, s, 1),
            Token::Done => {
                self.emitter.on_done(&mut self.io, 0, 1);
                self.io.push_done_all();
            }
        }
        Ok(true)
    }
}

impl_simnode_common!(AddrGenNode);
