//! Higher-order operators (Table 5) with the roofline timing model of
//! §4.3: each element costs `max(1, ⌈FLOPs / compute_bw⌉)` cycles; memory
//! terms are charged by the on-chip operators that own the scratchpad
//! ports.
//!
//! Runs of repeated inputs are processed in bulk: the function is applied
//! once, FLOPs/busy-cycle statistics scale by the run length, and the
//! per-token clock evolution (dequeue at `t_i`, busy `c`, emit at
//! `t_i + c`) is folded into the channel's pop pacing.

use super::basic::impl_simnode_common;
use super::{BUDGET, BlockEmitter, Ctx, Io, SimNode, compute_cycles};
use crate::run::TimeRun;
use crate::stats::NodeStats;
use step_core::error::{Result, StepError};
use step_core::func::{AccumFn, FlatMapFn, MapFn};
use step_core::graph::Node;
use step_core::tile::Tile;
use step_core::token::Token;
use step_core::{DTYPE_BYTES, Elem};

/// `Map`: elementwise application of a hardware function.
#[derive(Clone)]
pub struct MapNode {
    io: Io,
    func: MapFn,
    compute_bw: u64,
}

impl MapNode {
    pub fn new(node: &Node, func: MapFn, compute_bw: u64) -> MapNode {
        MapNode {
            io: Io::new(node),
            func,
            compute_bw,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
    }

    fn track_memory(&mut self, e: &Elem) {
        if matches!(self.func, MapFn::Matmul | MapFn::MatmulBt)
            && let Ok(pair) = e.as_tuple()
            && let (Ok(a), Ok(b)) = (pair[0].as_tile(), pair[1].as_tile())
        {
            // 16 * in_tile_col * bytes + |weight tile| (§4.2).
            let mem = 16 * a.cols() as u64 * DTYPE_BYTES + b.bytes();
            self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(mem);
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let cost = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, Token::Val(e))) => {
                let flops = self.func.flops(e);
                Some((flops, compute_cycles(flops, self.compute_bw)))
            }
            Some(_) => None,
        };
        if let Some((flops, c)) = cost {
            let allow = self.io.out_allowance(ctx, 0).min(budget);
            let (tok, k) = self.io.pop_run(ctx, 0, c, allow).expect("visible head");
            let e = tok.into_val()?;
            let out = Token::Val(self.func.apply(&e)?);
            self.track_memory(&e);
            self.io.stats.flops += k * flops;
            self.io.busy_run(k, c);
            for pi in 0..self.io.popped.len() {
                let piece = self.io.popped[pi];
                self.io.push_run(0, piece.offset(c), out.clone());
            }
            return Ok(k);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(_) => unreachable!("head checked above"),
            Token::Stop(s) => self.io.push(0, Token::Stop(s)),
            Token::Done => self.io.push_done_all(),
        }
        Ok(1)
    }
}

impl_simnode_common!(MapNode);

/// `Accum`: folds the `rank` innermost dims; the accumulator may be
/// dynamically sized (dynamic tiling, §5.2).
#[derive(Clone)]
pub struct AccumNode {
    io: Io,
    rank: u8,
    func: AccumFn,
    compute_bw: u64,
    acc: Option<Tile>,
}

impl AccumNode {
    pub fn new(node: &Node, rank: u8, func: AccumFn, compute_bw: u64) -> AccumNode {
        AccumNode {
            io: Io::new(node),
            rank,
            func,
            compute_bw,
            acc: None,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.acc = None;
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, budget: u64) -> Result<u64> {
        let cost = match self.io.peek(ctx, 0) {
            None => return Ok(0),
            Some((_, Token::Val(e))) => {
                let flops = self.func.flops(e);
                Some((flops, compute_cycles(flops, self.compute_bw)))
            }
            Some(_) => None,
        };
        if let Some((flops, c)) = cost {
            // No output per value: only the fire budget bounds the run.
            let (tok, k) = self.io.pop_run(ctx, 0, c, budget).expect("visible head");
            let e = tok.into_val()?;
            let mut applied = 0;
            while applied < k {
                let prev = self.acc.clone(); // O(1): phantom or shared payload
                let acc = self.func.update(self.acc.take(), &e)?;
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(acc.bytes());
                applied += 1;
                // Fixed point: `update` is pure, so once the state maps
                // to itself (phantom reductions) every remaining update
                // of this run is the identity.
                let fixed = prev.as_ref() == Some(&acc);
                self.acc = Some(acc);
                if fixed {
                    break;
                }
            }
            self.io.stats.flops += k * flops;
            self.io.busy_run(k, c);
            return Ok(k);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(_) => unreachable!("head checked above"),
            Token::Stop(s) if s < self.rank => {}
            Token::Stop(s) => {
                if let Some(acc) = self.acc.take() {
                    self.io.push(0, Token::Val(Elem::Tile(acc)));
                }
                if s > self.rank {
                    self.io.push(0, Token::Stop(s - self.rank));
                }
            }
            Token::Done => {
                if self.acc.is_some() {
                    return Err(StepError::Malformed(
                        "accum input ended without closing stop".into(),
                    ));
                }
                self.io.push_done_all();
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(AccumNode);

/// `Scan`: like `Accum` but emits the running state per element. The
/// running state changes token to token, so emission stays per-token
/// (the outbox still coalesces shape-stable phantom states into runs).
#[derive(Clone)]
pub struct ScanNode {
    io: Io,
    rank: u8,
    func: AccumFn,
    compute_bw: u64,
    acc: Option<Tile>,
}

impl ScanNode {
    pub fn new(node: &Node, rank: u8, func: AccumFn, compute_bw: u64) -> ScanNode {
        ScanNode {
            io: Io::new(node),
            rank,
            func,
            compute_bw,
            acc: None,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.acc = None;
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(0);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let flops = self.func.flops(&e);
                let acc = self.func.update(self.acc.take(), &e)?;
                self.io.stats.onchip_bytes = self.io.stats.onchip_bytes.max(acc.bytes());
                self.io.stats.flops += flops;
                self.io.busy(compute_cycles(flops, self.compute_bw));
                self.io.push(0, Token::Val(Elem::Tile(acc.clone())));
                self.acc = Some(acc);
            }
            Token::Stop(s) => {
                if s >= self.rank {
                    self.acc = None;
                }
                self.io.push(0, Token::Stop(s));
            }
            Token::Done => self.io.push_done_all(),
        }
        Ok(1)
    }
}

impl_simnode_common!(ScanNode);

/// `FlatMap`: expands each element into a rank-1 block; blocks
/// concatenate (Table 5). One input token per step (the block is the
/// step granularity); the emitted block's equal elements leave as
/// consecutive-cycle runs.
#[derive(Clone)]
pub struct FlatMapNode {
    io: Io,
    func: FlatMapFn,
    emitter: BlockEmitter,
    /// Memoized expansion of the most recent input: repeated inputs
    /// (broadcast tiles split into chunks) re-emit the cached block
    /// instead of re-running the function. Interchangeable inputs
    /// (`Elem::coalesces_with`) expand identically, so this is purely a
    /// cost optimization.
    cached: Option<(Elem, Vec<Vec<Elem>>)>,
}

impl FlatMapNode {
    pub fn new(node: &Node, func: FlatMapFn) -> FlatMapNode {
        FlatMapNode {
            io: Io::new(node),
            func,
            emitter: BlockEmitter::default(),
            cached: None,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.emitter.reset();
        self.cached = None;
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(0);
        }
        let b = self.func.block_rank();
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                if !self
                    .cached
                    .as_ref()
                    .is_some_and(|(prev, _)| prev.coalesces_with(&e))
                {
                    let tensors = self.func.expand(&e)?;
                    self.cached = Some((e, tensors));
                }
                let cached = self.cached.take().expect("cached above");
                for tensor in &cached.1 {
                    self.emitter.before_block(&mut self.io, 0, b);
                    // Per element: one busy cycle, then emit — a stretch
                    // of equal elements forms one consecutive-cycle run.
                    let mut pending: Option<(&Elem, u64)> = None;
                    for elem in tensor {
                        match &mut pending {
                            Some((p, n)) if p.coalesces_with(elem) => *n += 1,
                            _ => {
                                if let Some((p, n)) = pending.take() {
                                    let start = self.io.time + 1;
                                    self.io.busy(n);
                                    self.io.push_run(
                                        0,
                                        TimeRun::new(start, 1, n),
                                        Token::Val(p.clone()),
                                    );
                                }
                                pending = Some((elem, 1));
                            }
                        }
                    }
                    if let Some((p, n)) = pending.take() {
                        let start = self.io.time + 1;
                        self.io.busy(n);
                        self.io
                            .push_run(0, TimeRun::new(start, 1, n), Token::Val(p.clone()));
                    }
                }
                self.cached = Some(cached);
            }
            Token::Stop(s) => self.emitter.on_stop(&mut self.io, 0, s, b),
            Token::Done => {
                self.emitter.on_done(&mut self.io, 0, b);
                self.io.push_done_all();
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(FlatMapNode);

/// Address generator: per target-index element, a rank-1 block of `count`
/// addresses (the `RandomOffChipLoad` feeder under configuration
/// time-multiplexing, Fig 11).
#[derive(Clone)]
pub struct AddrGenNode {
    io: Io,
    count: u64,
    stride: u64,
    base: u64,
    emitter: BlockEmitter,
}

impl AddrGenNode {
    pub fn new(node: &Node, count: u64, stride: u64, base: u64) -> AddrGenNode {
        AddrGenNode {
            io: Io::new(node),
            count,
            stride,
            base,
            emitter: BlockEmitter::default(),
        }
    }

    pub(crate) fn reset(&mut self) {
        self.io.reset();
        self.emitter.reset();
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, _budget: u64) -> Result<u64> {
        if self.io.peek(ctx, 0).is_none() {
            return Ok(0);
        }
        match self.io.pop(ctx, 0) {
            Token::Val(e) => {
                let index = match &e {
                    Elem::Sel(s) => *s
                        .targets()
                        .first()
                        .ok_or_else(|| StepError::Exec("addr-gen on empty selector".into()))?
                        as u64,
                    Elem::Addr(a) => *a,
                    other => {
                        return Err(StepError::ElemType(format!(
                            "addr-gen needs selector or address, got {other}"
                        )));
                    }
                };
                self.emitter.before_block(&mut self.io, 0, 1);
                for j in 0..self.count {
                    let addr = self.base + (index * self.count + j) * self.stride;
                    self.io.push(0, Token::Val(Elem::Addr(addr)));
                }
            }
            Token::Stop(s) => self.emitter.on_stop(&mut self.io, 0, s, 1),
            Token::Done => {
                self.emitter.on_done(&mut self.io, 0, 1);
                self.io.push_done_all();
            }
        }
        Ok(1)
    }
}

impl_simnode_common!(AddrGenNode);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodes::tests::Fixture;
    use step_core::func::EwOp;
    use step_core::graph::EdgeId;
    use step_core::ops::OpKind;

    fn map_node() -> Node {
        Node {
            op: OpKind::Map {
                func: MapFn::Elementwise(EwOp::Relu),
                compute_bw: 4,
            },
            inputs: vec![EdgeId(0)],
            outputs: vec![EdgeId(1)],
            label: String::new(),
        }
    }

    #[test]
    fn map_processes_runs_in_bulk_with_per_token_timing() {
        // A run of identical phantom tiles through Map must produce the
        // same timestamps, stats, and output the per-token loop did:
        // dequeue at t_i (paced by the compute cost), emit at t_i + c.
        let mut fx = Fixture::new(&[8, 16]);
        let tile = Tile::phantom(2, 2);
        let flops = MapFn::Elementwise(EwOp::Relu).flops(&Elem::Tile(tile.clone()));
        let c = compute_cycles(flops, 4);
        fx.channels[0].send_run(TimeRun::new(0, 0, 5), Token::Val(Elem::Tile(tile.clone())));
        let mut node = MapNode::new(&map_node(), MapFn::Elementwise(EwOp::Relu), 4);
        let mut ctx = fx.ctx(u64::MAX);
        assert!(node.fire(&mut ctx).unwrap());
        assert_eq!(node.io.stats.values_in, 5);
        assert_eq!(node.io.stats.values_out, 5);
        assert_eq!(node.io.stats.flops, 5 * flops);
        assert_eq!(node.io.stats.busy_cycles, 5 * c);
        // Ready times 0..4; dequeues at 0, c, 2c, ... (pace dominates);
        // emissions at c, 2c, ...; the output channel holds one run.
        assert_eq!(fx.channels[1].len(), 5);
        assert_eq!(fx.channels[1].runs(), 1);
        let (ts, _) = fx.channels[1].peek_run().unwrap();
        assert_eq!(ts.start, c);
        assert_eq!(ts.stride, c.max(1));
    }
}
