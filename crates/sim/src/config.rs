//! Simulator configuration.

/// Timing parameters of the HBM model (standing in for Ramulator 2.0; see
//  DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbmConfig {
    /// Peak data-bus bandwidth in bytes per cycle. The paper's experiments
    /// use 1024 B/cycle (§5.1), matching recent reconfigurable dataflow
    /// accelerators.
    pub bytes_per_cycle: u64,
    /// Number of banks across the stacked channels.
    pub banks: u64,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Column access latency in cycles (row hit).
    pub t_cas: u64,
    /// Additional precharge+activate latency on a row miss.
    pub t_row_miss: u64,
}

impl Default for HbmConfig {
    fn default() -> Self {
        HbmConfig {
            bytes_per_cycle: 1024,
            banks: 128, // HBM2, 8 stacks x 16 banks
            row_bytes: 1024,
            t_cas: 14,
            t_row_miss: 30,
        }
    }
}

/// Global simulation configuration (§5.1 defaults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// On-chip memory unit bandwidth in bytes/cycle (64 B/cycle in §5.1).
    pub onchip_bytes_per_cycle: u64,
    /// Transit latency of every FIFO, in cycles.
    pub channel_latency: u64,
    /// HBM timing model.
    pub hbm: HbmConfig,
    /// Scheduler wave limit (guards against runaway programs). A wave is
    /// one generation of the engine's wake list; the bound plays the same
    /// watchdog role the round-robin engine's round limit did. An
    /// overrun fails the run with `StepError::RoundLimit` carrying the
    /// round and fire counters at the blow — a non-retryable budget
    /// error, distinct from the per-run deadlines a
    /// `RunBinding::deadline_rounds` arms.
    pub max_rounds: u64,
    /// Width of the conservative execution window in cycles: nodes only
    /// consume tokens ready within the window, keeping host execution
    /// order aligned with simulated time (arrival-order operators are
    /// faithful to within one window).
    pub horizon_step: u64,
    /// Worker threads for sharded execution. Results are **independent of
    /// this knob**: it only maps shards onto workers. Default 1.
    pub threads: usize,
    /// Shard plan: `0` = automatic (partition large graphs, keep small
    /// ones monolithic), `1` = force monolithic, `n > 1` = target `n`
    /// shards regardless of graph size. The plan — and therefore every
    /// reported metric — is a pure function of the graph and this value.
    pub shards: usize,
    /// Barrier elision for sharded plans: a shard whose incoming cut
    /// channels all have time floors beyond the global horizon may run
    /// local sub-rounds ahead of it — up to the floor bound, where a
    /// cross-shard token could first arrive — without a coordination
    /// barrier. Purely a plan knob: results stay bit-identical at every
    /// thread count, and arrival-order faithfulness is *tighter* than
    /// barrier-stepped execution (the floor bound is exact, the horizon
    /// window conservative). Default `true`.
    pub elide_barriers: bool,
    /// Off-chip fast path for sharded plans: when a sub-round's schedule
    /// has exactly one runnable shard, that shard is the sole accessor of
    /// the HBM ledger in the window and runs with the monolithic engine's
    /// immediate-commit sink — two-phase request/response collapses back
    /// to single-fire. A plan knob like [`SimConfig::elide_barriers`];
    /// default `true`.
    pub offchip_fast_path: bool,
    /// Compiled execution: run the statically dispatched executor enum
    /// (one `match` per fire, edge ids pre-resolved at plan freeze)
    /// instead of boxed `dyn` nodes, and let
    /// [`crate::SimPlan::pooled_run_bound`] reuse run state across runs.
    /// A host-side plan knob: reported results are bit-identical on both
    /// paths — the differential conformance suite holds them together.
    /// Disable only to isolate a suspected compiled-path bug. Default
    /// `true`.
    pub compiled: bool,
    /// Accumulate host wall-clock per node fire into
    /// [`crate::stats::NodeStats::wall_ns`] (the `fire_profile`
    /// diagnosis tool). Off by default: the timestamp calls cost more
    /// than a cheap fire, and the measured values are host-dependent —
    /// never part of the determinism contract.
    pub profile_fires: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            onchip_bytes_per_cycle: 64,
            channel_latency: 1,
            hbm: HbmConfig::default(),
            max_rounds: 50_000_000,
            horizon_step: 64,
            threads: 1,
            shards: 0,
            elide_barriers: true,
            offchip_fast_path: true,
            compiled: true,
            profile_fires: false,
        }
    }
}

impl SimConfig {
    /// The validation configuration of §4.5: 256 B/cycle on-chip memory
    /// bandwidth paired with a single HBM2 subsystem (256 B/cycle peak),
    /// making the SwiGLU workload memory-bound as in the paper.
    pub fn validation() -> SimConfig {
        SimConfig {
            onchip_bytes_per_cycle: 256,
            hbm: HbmConfig {
                bytes_per_cycle: 256,
                ..HbmConfig::default()
            },
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_5_1() {
        let c = SimConfig::default();
        assert_eq!(c.onchip_bytes_per_cycle, 64);
        assert_eq!(c.hbm.bytes_per_cycle, 1024);
    }

    #[test]
    fn validation_config_uses_wider_onchip_ports() {
        assert_eq!(SimConfig::validation().onchip_bytes_per_cycle, 256);
    }
}
