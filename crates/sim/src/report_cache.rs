//! Binding-keyed memoization of simulation reports.
//!
//! The determinism contract makes every [`SimReport`] a pure function of
//! `(plan, binding)`: a rerun of the same frozen [`crate::SimPlan`] with
//! the same [`RunBinding`] is bit-identical, however many times and on
//! however many threads it runs. [`ReportCache`] exploits that at the
//! *report* level, the way [`crate::SimPlan`] already exploits it at the
//! plan level and [`crate::RunPool`] at the run-state level: iterations
//! whose signature repeats skip the engine entirely and replay a cloned
//! report.
//!
//! # Key contract
//!
//! The cache has two layers with different guarantees:
//!
//! - **Exact layer** — keyed by `(plan content key, binding
//!   fingerprint)` ([`plan_content_key`] × [`RunBinding::fingerprint`]).
//!   A hit replays the exact `(plan, binding)` pair, so the returned
//!   report is **bit-identical** to re-simulation by the determinism
//!   contract — minus the host-side `run_allocs` / `pool_resets`
//!   bookkeeping, which records how the original run materialized its
//!   state, not what it computed.
//! - **Canonical layer** — keyed by `(plan content key, caller-supplied
//!   canonical key)`. The caller nominates an equivalence class whose
//!   members provably share their **aggregate projection**
//!   ([`ReportAggregates`]: cycles, off-chip traffic, on-chip memory,
//!   FLOPs, rounds, channel tokens). The projection deliberately
//!   excludes the engine-execution counters (`total_fires`,
//!   `idle_fires`, `chan_runs`): those depend on how the scheduler
//!   coalesced runs, which depends on token adjacency. A canonical hit
//!   therefore guarantees the projection only, and must only feed
//!   consumers that read it. The safety of a canonical key is never
//!   assumed: [`ReportCache::checked`] re-runs every hit and asserts
//!   the guarantee — full normalized-report equality for exact hits,
//!   projection equality for canonical hits — and the conformance
//!   suites drive that mode across seeds and thread counts. That
//!   differential mode has teeth: it *refuted* the candidate class
//!   "MoE routings with equal expert-set multisets" (run coalescing
//!   drifts with token adjacency, and through scheduling even `cycles`
//!   and `rounds` move), which is why the serving driver canonicalizes
//!   such bindings and lets the exact layer share them instead of
//!   nominating them here.
//!
//! The plan half of the key is **content**, not identity:
//! [`plan_content_key`] folds the builder fingerprint with
//! [`SimConfig::fingerprint`] (which excludes `threads`), so replays hit
//! across plan rebuilds, across a shared plan cache, and across thread
//! counts — the same normalization the sweep service's `PlanCache` key
//! uses.
//!
//! Bindings that arm a host-dependent limit (wall deadline,
//! cancellation) are not pure functions of `(plan, binding)`;
//! [`RunBinding::cache_safe`] reports them and the cache bypasses such
//! runs — simulated, counted as misses, never stored or served.
//!
//! # Counter semantics
//!
//! [`ReportCacheStats`] counts per request, mirroring the sweep
//! service's plan-cache discipline so the counters are
//! scheduler-independent and CI can pin them exactly: concurrent misses
//! on one exact key are **single-flight** (the first requester
//! simulates; coalesced waiters share the result and count as hits), a
//! failed run moves its slot to a sticky `Failed` state that wakes every
//! coalesced waiter with the error, and the next request for the key
//! retakes the claim (a new miss). `hits + misses` always equals the
//! requests made; `canonical_hits` says how many hits came from the
//! canonical layer. [`ReportCache::checked`]'s re-simulations change no
//! counter — the stats are mode-independent.

use crate::config::SimConfig;
use crate::engine::{RunBinding, SimReport};
use crate::fingerprint::Fingerprint;
use std::collections::HashMap;
use std::panic::{AssertUnwindSafe, catch_unwind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use step_core::error::{Result, StepError};
use step_core::sync::{lock, wait};

/// The plan half of a report-cache key: the builder fingerprint folded
/// with [`SimConfig::fingerprint`]. Two plans with equal content keys
/// are interchangeable by the determinism contract (the config
/// fingerprint excludes `threads`), so reports replay across rebuilds,
/// shared plan caches, and thread counts.
pub fn plan_content_key(builder: u64, cfg: &SimConfig) -> u64 {
    let mut fp = Fingerprint::new("ReportCache.plan");
    fp.push_u64(builder).push_u64(cfg.fingerprint());
    fp.finish()
}

/// How a [`ReportCache::replay_or_run`] request was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Served from the exact layer: bit-identical replay of this very
    /// `(plan, binding)` pair.
    Exact,
    /// Served from the canonical layer: a replay of an equivalent
    /// binding ([`ReportAggregates`] guaranteed; per-node attribution
    /// and the engine-execution counters may differ).
    Canonical,
    /// The engine actually ran (cache miss, disabled mode, or a
    /// non-cache-safe binding).
    Simulated,
}

/// A resolved replay: the (shared) report plus how it was obtained.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The report — cloned cheaply via `Arc` on hits.
    pub report: Arc<SimReport>,
    /// How the request resolved.
    pub resolution: Resolution,
}

/// Cumulative [`ReportCache`] counters. Request-scoped and
/// scheduler-independent (single-flight, see the module docs), so CI
/// pins them exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportCacheStats {
    /// Requests served without simulating — exact and canonical hits,
    /// including waiters coalesced behind an in-flight miss.
    pub hits: u64,
    /// Requests that simulated: cache misses, plus bypassed
    /// non-cache-safe bindings.
    pub misses: u64,
    /// The subset of `hits` served from the canonical layer.
    pub canonical_hits: u64,
}

impl ReportCacheStats {
    /// Folds one request's [`Resolution`] into these counters — for
    /// drivers keeping request-scoped stats of their own runs alongside
    /// a shared cache's cumulative ones.
    pub fn absorb(&mut self, resolution: Resolution) {
        match resolution {
            Resolution::Exact => self.hits += 1,
            Resolution::Canonical => {
                self.hits += 1;
                self.canonical_hits += 1;
            }
            Resolution::Simulated => self.misses += 1,
        }
    }
}

/// The aggregate projection of a [`SimReport`] that canonical hits
/// guarantee: the whole-run *performance* scalars. Excluded, and
/// deliberately so:
///
/// - per-node attribution (`node_stats`) and recorded sink streams —
///   they permute across class members by construction;
/// - the host-side pool counters (`run_allocs`, `pool_resets`) — they
///   record how a run materialized state, not what it computed;
/// - the engine-execution counters (`total_fires`, `idle_fires`,
///   `chan_runs`) — run coalescing depends on token *adjacency*, so
///   even bindings whose performance metrics coincide can need
///   different runs and fires to execute.
///
/// [`ReportCache::checked`] asserts equality of this projection on
/// every canonical hit. Note that the projection still contains
/// schedule-derived scalars (`cycles`, `rounds`): a sound canonical
/// class must preserve *those* too, which is a strong demand — checked
/// mode refuted it for order-permuted MoE routings (see
/// `step_models::phases::canonical_routing` for the rebinding approach
/// used instead), and any new class must earn it the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportAggregates {
    /// [`SimReport::cycles`].
    pub cycles: u64,
    /// [`SimReport::offchip_traffic`].
    pub offchip_traffic: u64,
    /// [`SimReport::offchip_read`].
    pub offchip_read: u64,
    /// [`SimReport::offchip_write`].
    pub offchip_write: u64,
    /// [`SimReport::onchip_memory`].
    pub onchip_memory: u64,
    /// [`SimReport::arena_peak`].
    pub arena_peak: u64,
    /// [`SimReport::total_flops`].
    pub total_flops: u64,
    /// [`SimReport::rounds`].
    pub rounds: u64,
    /// [`SimReport::chan_tokens`].
    pub chan_tokens: u64,
}

impl ReportAggregates {
    /// Projects a report onto its canonical-hit guarantee.
    pub fn of(r: &SimReport) -> ReportAggregates {
        ReportAggregates {
            cycles: r.cycles,
            offchip_traffic: r.offchip_traffic,
            offchip_read: r.offchip_read,
            offchip_write: r.offchip_write,
            onchip_memory: r.onchip_memory,
            arena_peak: r.arena_peak,
            total_flops: r.total_flops,
            rounds: r.rounds,
            chan_tokens: r.chan_tokens,
        }
    }
}

/// A report with the host-side run-materialization counters zeroed —
/// what "bit-identical" means for a replay: the original run may have
/// built fresh state (`run_allocs == 1`) while the re-simulation reset a
/// pool in place, without either changing anything the engine computed.
fn normalized(r: &SimReport) -> SimReport {
    SimReport {
        run_allocs: 0,
        pool_resets: 0,
        ..r.clone()
    }
}

/// Cache operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Memoize (the default).
    Enabled,
    /// Memoize, and differentially re-simulate **every** hit, asserting
    /// the layer's guarantee. Conformance-suite mode.
    Checked,
    /// Pure passthrough: always simulate, never store, count nothing.
    Disabled,
}

/// An exact-layer slot: ready, claimed by an in-flight run, or failed.
/// Claims are stamped with a cache-wide epoch exactly like the sweep
/// service's plan cache: a waiter sleeps while the slot is `Building`
/// with its epoch and receives the error iff the slot is `Failed` with
/// that same epoch — otherwise the world moved on and it re-dispatches.
enum Slot {
    Building {
        epoch: u64,
    },
    Ready(Arc<SimReport>),
    /// Sticky until the next request retakes the claim, so waiters that
    /// coalesced on the failed run all observe the error instead of
    /// sleeping forever.
    Failed {
        error: StepError,
        epoch: u64,
    },
}

/// A shared, single-flight, two-layer cache of [`SimReport`]s (see the
/// module docs for the key contract and counter semantics).
pub struct ReportCache {
    mode: Mode,
    slots: Mutex<HashMap<(u64, u64), Slot>>,
    /// Canonical layer: first successful run of each `(plan, canonical
    /// key)` class. Locked strictly after `slots` (never the other way),
    /// so the two mutexes cannot deadlock.
    canon: Mutex<HashMap<(u64, u64), Arc<SimReport>>>,
    ready: Condvar,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    canonical_hits: AtomicU64,
}

impl Default for ReportCache {
    fn default() -> ReportCache {
        ReportCache::new()
    }
}

impl ReportCache {
    fn with_mode(mode: Mode) -> ReportCache {
        ReportCache {
            mode,
            slots: Mutex::new(HashMap::new()),
            canon: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            canonical_hits: AtomicU64::new(0),
        }
    }

    /// An empty memoizing cache.
    pub fn new() -> ReportCache {
        ReportCache::with_mode(Mode::Enabled)
    }

    /// A differential cache: every hit **re-simulates** and asserts its
    /// layer's guarantee — full normalized-report equality for exact
    /// hits, [`ReportAggregates`] equality for canonical hits — then
    /// still serves the cached report. Counters are unchanged by the
    /// re-runs, so pins written against [`ReportCache::new`] hold here
    /// too. A violated guarantee panics with both sides; this is how the
    /// conformance suites *prove* (not assume) canonical-key safety.
    pub fn checked() -> ReportCache {
        ReportCache::with_mode(Mode::Checked)
    }

    /// A passthrough cache: every request simulates, nothing is stored,
    /// no counter moves. The cache-off differential baseline.
    pub fn disabled() -> ReportCache {
        ReportCache::with_mode(Mode::Disabled)
    }

    /// Whether this cache re-simulates hits ([`ReportCache::checked`]).
    pub fn is_checked(&self) -> bool {
        self.mode == Mode::Checked
    }

    /// Resolves one `(plan, binding)` request: replays a cached report
    /// when the exact or canonical layer holds one, otherwise runs
    /// `run` (which must simulate exactly this pair — pooled or fresh,
    /// both are bit-identical) and stores the result under both layers.
    ///
    /// `plan` is the plan's **content** key ([`plan_content_key`]).
    /// `canonical` nominates the binding's equivalence class for the
    /// canonical layer, or `None` to use the exact layer only; the
    /// caller owns the proof that class members share their
    /// [`ReportAggregates`] (drive [`ReportCache::checked`] over the
    /// class in a test to earn it).
    ///
    /// Concurrent requests for one exact key coalesce onto a single
    /// `run` (single-flight); a panicking `run` resolves the slot with a
    /// typed [`StepError::Panicked`] instead of stranding waiters.
    ///
    /// # Errors
    ///
    /// A failed or panicked run propagates to the requester that ran it
    /// and to every coalesced waiter; the next request for the key
    /// retakes the claim and retries.
    pub fn replay_or_run(
        &self,
        plan: u64,
        binding: &RunBinding,
        canonical: Option<u64>,
        run: &mut dyn FnMut() -> Result<SimReport>,
    ) -> Result<Replay> {
        if self.mode == Mode::Disabled {
            return Ok(Replay {
                report: Arc::new(run()?),
                resolution: Resolution::Simulated,
            });
        }
        if !binding.cache_safe() {
            // A wall deadline or cancel token makes the outcome depend
            // on the host: simulate (counted as a miss — the engine
            // really ran), but never store or serve such a run.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(Replay {
                report: Arc::new(run()?),
                resolution: Resolution::Simulated,
            });
        }
        let key = (plan, binding.fingerprint());
        let mut slots = lock(&self.slots);
        // `counted` keeps the counters request-scoped: one hit or miss
        // per call, however many condvar wakeups happen in between.
        let mut counted = false;
        let my_epoch = loop {
            match slots.get(&key) {
                Some(Slot::Ready(report)) => {
                    let report = report.clone();
                    drop(slots);
                    if !counted {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    self.check_exact(&report, run)?;
                    return Ok(Replay {
                        report,
                        resolution: Resolution::Exact,
                    });
                }
                Some(&Slot::Building { epoch }) => {
                    if !counted {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        counted = true;
                    }
                    // Sleep until *this* run resolves (epoch match — a
                    // later retake must not re-capture us)…
                    while matches!(slots.get(&key), Some(Slot::Building { epoch: e }) if *e == epoch)
                    {
                        slots = wait(&self.ready, slots);
                    }
                    // …then propagate its failure to every coalesced
                    // waiter, or re-dispatch on the new slot state.
                    if let Some(Slot::Failed { error, epoch: e }) = slots.get(&key)
                        && *e == epoch
                    {
                        return Err(error.clone());
                    }
                }
                Some(Slot::Failed { .. }) | None => {
                    // Exact miss. The canonical layer is consulted under
                    // the `slots` lock (then `canon`, the fixed order)
                    // so a hit here and a claim below cannot interleave
                    // with another requester's store.
                    if let Some(c) = canonical
                        && let Some(report) = lock(&self.canon).get(&(plan, c)).cloned()
                    {
                        drop(slots);
                        if !counted {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                        }
                        self.canonical_hits.fetch_add(1, Ordering::Relaxed);
                        self.check_canonical(&report, run)?;
                        return Ok(Replay {
                            report,
                            resolution: Resolution::Canonical,
                        });
                    }
                    // Fresh key, or a failure left by a resolved run:
                    // take the claim (a retry counts as a new miss).
                    if !counted {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
                    slots.insert(key, Slot::Building { epoch });
                    break epoch;
                }
            }
        };
        drop(slots);

        // Panic isolation, mirroring the plan cache: a dying run becomes
        // a typed error that resolves the slot instead of leaving
        // waiters asleep forever.
        let ran = catch_unwind(AssertUnwindSafe(run))
            .unwrap_or_else(|p| Err(StepError::Panicked(panic_message(p.as_ref()))));
        let mut slots = lock(&self.slots);
        let result = match ran {
            Ok(report) => {
                let report = Arc::new(report);
                slots.insert(key, Slot::Ready(report.clone()));
                if let Some(c) = canonical {
                    // First writer represents the class; every member
                    // shares the aggregates the layer guarantees.
                    lock(&self.canon)
                        .entry((plan, c))
                        .or_insert_with(|| report.clone());
                }
                Ok(Replay {
                    report,
                    resolution: Resolution::Simulated,
                })
            }
            Err(e) => {
                slots.insert(
                    key,
                    Slot::Failed {
                        error: e.clone(),
                        epoch: my_epoch,
                    },
                );
                Err(e)
            }
        };
        drop(slots);
        self.ready.notify_all();
        result
    }

    /// Checked-mode guarantee for an exact hit: re-simulation is
    /// bit-identical minus the host-side pool counters.
    fn check_exact(
        &self,
        cached: &SimReport,
        run: &mut dyn FnMut() -> Result<SimReport>,
    ) -> Result<()> {
        if self.mode != Mode::Checked {
            return Ok(());
        }
        let fresh = run()?;
        assert_eq!(
            normalized(cached),
            normalized(&fresh),
            "exact report-cache hit diverged from re-simulation — the determinism \
             contract or the binding fingerprint is broken"
        );
        Ok(())
    }

    /// Checked-mode guarantee for a canonical hit: re-simulation agrees
    /// on the whole aggregate projection.
    fn check_canonical(
        &self,
        cached: &SimReport,
        run: &mut dyn FnMut() -> Result<SimReport>,
    ) -> Result<()> {
        if self.mode != Mode::Checked {
            return Ok(());
        }
        let fresh = run()?;
        assert_eq!(
            ReportAggregates::of(cached),
            ReportAggregates::of(&fresh),
            "canonical report-cache hit diverged from re-simulation — the canonical \
             key admits bindings that are not aggregate-equivalent"
        );
        Ok(())
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> ReportCacheStats {
        ReportCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            canonical_hits: self.canonical_hits.load(Ordering::Relaxed),
        }
    }

    /// Distinct exact keys currently held (ready, in flight, or failed).
    pub fn len(&self) -> usize {
        lock(&self.slots).len()
    }

    /// Whether the cache holds no reports.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
