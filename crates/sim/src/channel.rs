//! Timed bounded FIFOs with run-length bulk transport.
//!
//! Channels model the hardware queues connecting SDA units. Each queued
//! entry is a *run*: a repeated token paired with a [`TimeRun`] of ready
//! times, so a burst of identical tokens costs one entry, one payload
//! clone, and O(1) arithmetic instead of per-token queue traffic. Free
//! slots are stored the same way. Backpressure is modeled *in time*: a
//! channel has `capacity` slots; a slot is reclaimed at the moment the
//! receiver dequeues, so a sender that finds the queue full resumes no
//! earlier than that dequeue time. Ports sustain at most one token per
//! cycle in each direction.
//!
//! Every bulk API ([`Channel::send_run`], [`Channel::pop_run`]) is
//! defined as the exact per-token loop it replaces — a run of `n` tokens
//! sent at production time `t` occupies `n` slots with send times
//! `t..t+n` by the one-token-per-cycle port rule, never materialized —
//! and `tests/prop_channel_runs.rs` checks the equivalence against a
//! per-token reference channel.
//!
//! Channels also drive the engine's event-driven scheduler: every
//! mutation records an [`event`] bit (token enqueued, slot freed,
//! receiver closed, producer finished) that the engine drains after each
//! fire to wake exactly the endpoint that can now progress. Floor raises
//! record no event — floors are conservative metadata about *future*
//! tokens, and the tokens themselves generate [`event::ENQUEUED`] when
//! they arrive.

use crate::run::{TimeRun, envelope_range};
use std::collections::VecDeque;
use step_core::token::Token;

/// Channel events accumulated for the engine's wake lists. The engine
/// drains these after every node fire (a node only ever mutates its own
/// channels) and wakes the endpoint that can now make progress.
pub mod event {
    /// A token was enqueued: the reader may progress.
    pub const ENQUEUED: u8 = 1 << 0;
    /// A slot was freed by a dequeue: a blocked writer may progress.
    pub const FREED: u8 = 1 << 1;
    /// The receiver closed the channel: sends now succeed (and drop), so
    /// a blocked writer may progress.
    pub const CLOSED: u8 = 1 << 2;
    /// The producer finished (emitted `Done`).
    pub const SRC_FINISHED: u8 = 1 << 3;
}

/// A bounded FIFO carrying `(ready_times, token)` runs.
#[derive(Debug)]
pub struct Channel {
    latency: u64,
    queue: VecDeque<(TimeRun, Token)>,
    /// Total queued tokens (sum of run counts).
    queued: u64,
    /// Times at which free slots became (or were initially) available,
    /// as runs.
    slots: VecDeque<TimeRun>,
    /// Total free slots (sum of slot-run counts).
    free: u64,
    last_send: Option<u64>,
    last_pop: Option<u64>,
    closed: bool,
    src_finished: bool,
    /// Lower bound on the ready time of any *future* token (producer's
    /// clock plus transit latency); lets arrival-order consumers commit
    /// to a head knowing nothing earlier can still arrive.
    floor: u64,
    /// Total tokens ever enqueued (for edge statistics).
    sent_tokens: u64,
    /// Total run entries ever enqueued — the number of bulk channel
    /// operations actually performed; `sent_tokens / sent_runs` is the
    /// transport compression ratio.
    sent_runs: u64,
    /// Maximum element payload in bytes observed on this channel.
    max_elem_bytes: u64,
    /// Pending [`event`] bits since the engine last drained them.
    events: u8,
}

impl Channel {
    /// Creates a channel with `capacity` slots and `latency` cycles of
    /// transit delay.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: u64) -> Channel {
        assert!(capacity > 0, "channel capacity must be positive");
        Channel {
            latency,
            queue: VecDeque::new(),
            queued: 0,
            slots: VecDeque::from([TimeRun::new(0, 0, capacity as u64)]),
            free: capacity as u64,
            last_send: None,
            last_pop: None,
            closed: false,
            src_finished: false,
            floor: 0,
            sent_tokens: 0,
            sent_runs: 0,
            max_elem_bytes: 0,
            events: 0,
        }
    }

    /// Creates the *reader half* of a cross-shard channel: it starts with
    /// zero free slots because all send credits live on the writer half
    /// (the writer-side [`Channel`] created with [`Channel::new`], whose
    /// queue acts as the in-flight mailbox). The sharded engine shuttles
    /// token runs (writer queue → [`Channel::inject`]) and freed slot
    /// runs ([`Channel::drain_freed_slots`] → [`Channel::grant_slots`])
    /// between the halves at deterministic barriers.
    pub fn cross_reader(capacity: usize, latency: u64) -> Channel {
        let mut c = Channel::new(capacity, latency);
        c.slots.clear();
        c.free = 0;
        c
    }

    /// Restores the just-built state in place, keeping the queue and
    /// slot-run allocations (pooled run reset). `capacity` and
    /// `cross_reader` must match how the channel was built — capacity is
    /// not stored (it lives in the plan's channel specs), and a
    /// cross-shard reader half restarts with zero send credits.
    pub fn reset(&mut self, capacity: usize, cross_reader: bool) {
        self.queue.clear();
        self.queued = 0;
        self.slots.clear();
        if cross_reader {
            self.free = 0;
        } else {
            self.slots.push_back(TimeRun::new(0, 0, capacity as u64));
            self.free = capacity as u64;
        }
        self.last_send = None;
        self.last_pop = None;
        self.closed = false;
        self.src_finished = false;
        self.floor = 0;
        self.sent_tokens = 0;
        self.sent_runs = 0;
        self.max_elem_bytes = 0;
        self.events = 0;
    }

    /// Delivers a run of tokens whose effective send times were already
    /// computed by the writer half (`ready` includes transit latency).
    /// Dropped if the receiver closed.
    pub fn inject(&mut self, ready: TimeRun, token: Token) {
        if self.closed {
            return;
        }
        self.queued += ready.count;
        self.push_queue(ready, token);
        self.events |= event::ENQUEUED;
    }

    /// Returns freed slot runs accumulated by pops since the last drain
    /// (reader half of a cross-shard channel; its own sends never consume
    /// them).
    pub fn drain_freed_slots(&mut self) -> Vec<TimeRun> {
        self.free = 0;
        self.slots.drain(..).collect()
    }

    /// Returns send credits to the writer half. Records
    /// [`event::FREED`] so a blocked writer is woken.
    pub fn grant_slots(&mut self, runs: impl IntoIterator<Item = TimeRun>) {
        let mut granted = 0;
        for r in runs {
            granted += r.count;
            let merged = self.slots.back_mut().is_some_and(|back| back.try_extend(r));
            if !merged {
                self.slots.push_back(r);
            }
        }
        self.free += granted;
        if granted > 0 {
            self.events |= event::FREED;
        }
    }

    /// Drains the queued token runs (writer half of a cross-shard
    /// channel: the in-flight mailbox).
    pub fn drain_queue(&mut self) -> std::collections::vec_deque::Drain<'_, (TimeRun, Token)> {
        self.queued = 0;
        self.queue.drain(..)
    }

    /// Whether any freed slots have accumulated since the last drain
    /// (reader half of a cross-shard channel). Lets the barrier
    /// coordinator skip idle cut edges without draining them.
    pub fn has_freed_slots(&self) -> bool {
        !self.slots.is_empty()
    }

    /// The raw floor value (without transit latency), for mirroring onto
    /// the reader half of a cross-shard channel.
    pub fn floor_raw(&self) -> u64 {
        self.floor
    }

    /// Drains and returns the pending [`event`] bits.
    pub fn take_events(&mut self) -> u8 {
        std::mem::take(&mut self.events)
    }

    /// Whether a send would succeed right now.
    pub fn can_send(&self) -> bool {
        self.closed || self.free > 0
    }

    /// Free send slots available right now (∞-equivalent when closed:
    /// sends into a closed channel always succeed and drop).
    pub fn free_slots(&self) -> u64 {
        if self.closed { u64::MAX } else { self.free }
    }

    /// Consumes the head slot, returning its availability time.
    #[inline]
    fn take_slot(&mut self) -> u64 {
        let head = self.slots.front_mut().expect("send on full channel");
        let t = head.start;
        if head.count == 1 {
            self.slots.pop_front();
        } else {
            *head = head.advance(1);
        }
        self.free -= 1;
        t
    }

    /// Appends a ready-time run to the queue, coalescing with the tail
    /// entry when the token repeats and the times continue arithmetically.
    fn push_queue(&mut self, ready: TimeRun, token: Token) {
        if let Some((ts, tok)) = self.queue.back_mut()
            && tok.coalesces_with(&token)
            && ts.try_extend(ready)
        {
            return;
        }
        self.queue.push_back((ready, token));
    }

    /// Enqueues `token` from a sender whose local clock reads `now`,
    /// returning the effective send time (when the port actually accepted
    /// the token). If the receiver is gone the token is dropped and `now`
    /// is returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the channel is full — call [`Channel::can_send`] first.
    pub fn send(&mut self, now: u64, token: Token) -> u64 {
        if self.closed {
            return now;
        }
        assert!(self.free > 0, "send on full channel; check can_send()");
        self.send_run(TimeRun::single(now), token)
    }

    /// Bulk send: enqueues `prod.count` copies of `token` with production
    /// times `prod` (the sender's local clock per token; stride 0 means
    /// the whole burst was produced at one instant). Each copy occupies
    /// one slot and the one-token-per-cycle port rule applies exactly as
    /// if the tokens were sent one at a time; returns the last effective
    /// send time. If the receiver is gone the run is dropped and the last
    /// production time is returned.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `prod.count` slots are free — check
    /// [`Channel::free_slots`] and split the run first.
    pub fn send_run(&mut self, prod: TimeRun, token: Token) -> u64 {
        if self.closed {
            return prod.last();
        }
        assert!(
            self.free >= prod.count,
            "send_run of {} on channel with {} free slots",
            prod.count,
            self.free
        );
        if let Token::Val(e) = &token {
            self.max_elem_bytes = self.max_elem_bytes.max(e.bytes());
        }
        self.sent_tokens += prod.count;
        self.sent_runs += 1;
        self.queued += prod.count;
        // Chase the per-token send-time recurrence
        //   t_i = max(prod_i, slot_i, t_{i-1} + 1)
        // coalescing the resulting ready times into queue runs on the fly.
        let mut last = self.last_send;
        let mut pending: Option<TimeRun> = None;
        for i in 0..prod.count {
            let slot = self.take_slot();
            let mut t = prod.at(i).max(slot);
            if let Some(l) = last {
                t = t.max(l + 1);
            }
            last = Some(t);
            let ready = TimeRun::single(t + self.latency);
            match &mut pending {
                Some(p) => {
                    if !p.try_extend(ready) {
                        let done = *p;
                        *p = ready;
                        self.push_queue(done, token.clone());
                    }
                }
                None => pending = Some(ready),
            }
        }
        self.last_send = last;
        if let Some(p) = pending {
            self.push_queue(p, token);
        }
        self.events |= event::ENQUEUED;
        last.expect("non-empty run")
    }

    /// The head token's ready time and a reference to it, if any.
    pub fn peek(&self) -> Option<(u64, &Token)> {
        self.queue.front().map(|(ts, tok)| (ts.start, tok))
    }

    /// The head run, if any: `(ready_times, token)`.
    pub fn peek_run(&self) -> Option<(TimeRun, &Token)> {
        self.queue.front().map(|(ts, tok)| (*ts, tok))
    }

    /// Dequeues the head token for a receiver whose clock reads `now`,
    /// returning `(dequeue_time, token)` where `dequeue_time = max(now,
    /// ready, last_pop + 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty — call [`Channel::peek`] first.
    pub fn pop(&mut self, now: u64) -> (u64, Token) {
        let (ts, _) = self.queue.front().expect("pop on empty channel");
        let ready = ts.start;
        let mut t = now.max(ready);
        if let Some(last) = self.last_pop {
            t = t.max(last + 1);
        }
        let token = self.advance_head(1);
        self.last_pop = Some(t);
        self.free_slot(TimeRun::single(t));
        self.queued -= 1;
        self.events |= event::FREED;
        (t, token)
    }

    /// Bulk pop: dequeues up to `max` tokens of the head run whose ready
    /// times are within `horizon`, for a receiver whose clock reads `now`
    /// and advances by `pace` cycles after each dequeue (its per-token
    /// processing cost). Dequeue times follow the exact per-token
    /// recurrence
    ///   `t_i = max(now_i, ready_i, t_{i-1} + 1)`, `now_i = t_{i-1} + pace`,
    /// and are appended to `times` as coalesced runs. Returns the token
    /// and how many copies were popped, or `None` if nothing is visible.
    pub fn pop_run(
        &mut self,
        now: u64,
        pace: u64,
        horizon: u64,
        max: u64,
        times: &mut Vec<TimeRun>,
    ) -> Option<(Token, u64)> {
        let (ts, _) = self.queue.front()?;
        let k = ts.visible_until(horizon).min(max);
        if k == 0 {
            return None;
        }
        let ready = *ts;
        // First dequeue: the receiver's current clock applies; afterwards
        // the clock is the previous dequeue plus the processing pace.
        let mut t = now.max(ready.start);
        if let Some(last) = self.last_pop {
            t = t.max(last + 1);
        }
        let step = pace.max(1);
        let mut piece = TimeRun::single(t);
        for i in 1..k {
            let next = (t + step).max(ready.at(i));
            t = next;
            if !piece.try_extend(TimeRun::single(next)) {
                self.free_slot(piece);
                times.push(piece);
                piece = TimeRun::single(next);
            }
        }
        self.free_slot(piece);
        times.push(piece);
        let token = self.advance_head(k);
        self.last_pop = Some(t);
        self.queued -= k;
        self.events |= event::FREED;
        Some((token, k))
    }

    /// Applies a bulk pop whose dequeue times were computed externally
    /// (`pieces` must be the exact per-token dequeue sequence): frees the
    /// slots, advances the head, and returns the token.
    fn apply_pop(&mut self, pieces: &[TimeRun], k: u64) -> Token {
        debug_assert_eq!(pieces.iter().map(|p| p.count).sum::<u64>(), k);
        for &p in pieces {
            self.free_slot(p);
        }
        self.last_pop = Some(pieces.last().expect("non-empty pop").last());
        let token = self.advance_head(k);
        self.queued -= k;
        self.events |= event::FREED;
        token
    }

    /// Removes `k` tokens from the head run, returning the token (moved
    /// out when the run is exhausted, cloned otherwise).
    fn advance_head(&mut self, k: u64) -> Token {
        let (ts, tok) = self.queue.front_mut().expect("advance on empty channel");
        if ts.count == k {
            self.queue.pop_front().expect("head exists").1
        } else {
            *ts = ts.advance(k);
            tok.clone()
        }
    }

    /// Returns a slot run freed by dequeues, coalescing with the tail.
    #[inline]
    fn free_slot(&mut self, run: TimeRun) {
        self.free += run.count;
        let merged = self
            .slots
            .back_mut()
            .is_some_and(|back| back.try_extend(run));
        if !merged {
            self.slots.push_back(run);
        }
    }

    /// Marks the receiver as gone: pending and future tokens are dropped.
    pub fn close(&mut self) {
        self.closed = true;
        self.queue.clear();
        self.queued = 0;
        // Slots are irrelevant once closed, but keep the invariant simple.
        self.events |= event::CLOSED;
    }

    /// Marks the producer as finished (it has emitted `Done`).
    pub fn finish_src(&mut self) {
        self.src_finished = true;
        self.events |= event::SRC_FINISHED;
    }

    /// Whether the producer has emitted all its tokens.
    pub fn src_finished(&self) -> bool {
        self.src_finished
    }

    /// Raises the future-token time floor to `t` (monotone).
    pub fn raise_floor(&mut self, t: u64) {
        self.floor = self.floor.max(t);
    }

    /// Lower bound on any future token's ready time.
    pub fn time_floor(&self) -> u64 {
        self.floor + self.latency
    }

    /// Whether the receiver has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Queued token count.
    pub fn len(&self) -> usize {
        self.queued as usize
    }

    /// Queued run-entry count (`len() / runs()` ≥ 1 is the coalescing
    /// ratio of what is currently in flight).
    pub fn runs(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Total tokens ever enqueued.
    pub fn sent_tokens(&self) -> u64 {
        self.sent_tokens
    }

    /// Total run entries ever enqueued (bulk channel operations).
    pub fn sent_runs(&self) -> u64 {
        self.sent_runs
    }

    /// Largest element payload observed, in bytes.
    pub fn max_elem_bytes(&self) -> u64 {
        self.max_elem_bytes
    }
}

/// Bulk pop of `max` *pairs* from two channels whose dequeues alternate
/// and feed each other's clocks (`Zip`: pop `a`, then pop `b` at `a`'s
/// dequeue time, then the pair's output time is `b`'s). The per-token
/// recurrences
///
/// ```text
/// ta_i = max(tb_{i-1}, ready_a_i, ta_{i-1} + 1)   (tb_{-1} = now)
/// tb_i = max(ta_i,     ready_b_i, tb_{i-1} + 1)
/// ```
///
/// resolve in closed form — `tb_i = max(tb_0 + i, ready_a_i, ready_b_i)`
/// and `ta_i = max(ta_0 + i, tb_{i-1}, ready_a_i)` — so the whole run
/// costs O(1) envelope arithmetic instead of a scalar chase. Dequeue
/// times are written to `a_times` / `b_times` (cleared first — they are
/// pure out-params, unlike [`Channel::pop_run`]'s appending `times`);
/// returns the two tokens and the pair count, or `None` when either
/// head is missing or beyond `horizon`.
pub fn pop_zip_runs(
    ca: &mut Channel,
    cb: &mut Channel,
    now: u64,
    horizon: u64,
    max: u64,
    a_times: &mut Vec<TimeRun>,
    b_times: &mut Vec<TimeRun>,
) -> Option<(Token, Token, u64)> {
    a_times.clear();
    b_times.clear();
    let ra = ca.queue.front().map(|(ts, _)| *ts)?;
    let rb = cb.queue.front().map(|(ts, _)| *ts)?;
    let k = ra
        .visible_until(horizon)
        .min(rb.visible_until(horizon))
        .min(max);
    if k == 0 {
        return None;
    }
    let mut ta0 = now.max(ra.start);
    if let Some(last) = ca.last_pop {
        ta0 = ta0.max(last + 1);
    }
    let mut tb0 = ta0.max(rb.start);
    if let Some(last) = cb.last_pop {
        tb0 = tb0.max(last + 1);
    }
    let arm_a = (ra.start as i128, ra.stride as i128);
    let arm_b = (rb.start as i128, rb.stride as i128);
    envelope_range(&[(tb0 as i128, 1), arm_a, arm_b], 0, k, b_times);
    // `ta` depends on `tb` shifted one index back: handle index 0
    // exactly, then run the envelope segment-wise per `tb` piece.
    a_times.push(TimeRun::single(ta0));
    let mut idx = 1u64;
    for piece in b_times.iter() {
        // tb indices [idx-1, idx-1+count) feed ta indices [idx, ...).
        let hi = (idx + piece.count).min(k);
        if idx >= hi {
            idx += piece.count;
            continue;
        }
        // Value of tb at index (i - 1), as an affine function of i: the
        // piece covers tb indices starting at `idx - 1` with value
        // `piece.start`, so tb_{i-1} = piece.start + (i - idx) * stride.
        let tb_arm = (
            piece.start as i128 - idx as i128 * piece.stride as i128,
            piece.stride as i128,
        );
        envelope_range(&[(ta0 as i128, 1), tb_arm, arm_a], idx, hi, a_times);
        idx = hi;
        if idx >= k {
            break;
        }
    }
    // Coalesce adjacent a-pieces the segment-wise build left split
    // (in place: read cursor walks ahead of the write cursor).
    let mut w = 0;
    for r in 1..a_times.len() {
        let piece = a_times[r];
        if !a_times[w].try_extend(piece) {
            w += 1;
            a_times[w] = piece;
        }
    }
    a_times.truncate(w + 1);
    let tok_a = ca.apply_pop(a_times, k);
    let tok_b = cb.apply_pop(b_times, k);
    Some((tok_a, tok_b, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_core::elem::Elem;

    fn val(x: u64) -> Token {
        Token::Val(Elem::Addr(x))
    }

    #[test]
    fn send_and_pop_respect_latency() {
        let mut c = Channel::new(4, 3);
        let t = c.send(10, val(1));
        assert_eq!(t, 10);
        let (t, tok) = c.pop(0);
        assert_eq!(t, 13); // ready at send + latency
        assert_eq!(tok, val(1));
    }

    #[test]
    fn port_rate_is_one_token_per_cycle() {
        let mut c = Channel::new(8, 0);
        assert_eq!(c.send(5, val(1)), 5);
        assert_eq!(c.send(5, val(2)), 6);
        assert_eq!(c.send(5, val(3)), 7);
        let (t1, _) = c.pop(0);
        let (t2, _) = c.pop(0);
        assert_eq!(t1, 5);
        assert_eq!(t2, 6);
    }

    #[test]
    fn backpressure_stalls_sender_until_pop_time() {
        let mut c = Channel::new(1, 0);
        assert_eq!(c.send(0, val(1)), 0);
        assert!(!c.can_send());
        // Receiver takes the token at time 100; slot frees then.
        let (t, _) = c.pop(100);
        assert_eq!(t, 100);
        assert!(c.can_send());
        assert_eq!(c.send(1, val(2)), 100);
    }

    #[test]
    fn closed_channel_drops_tokens() {
        let mut c = Channel::new(1, 0);
        c.send(0, val(1));
        c.close();
        assert!(c.is_empty());
        assert!(c.can_send());
        assert_eq!(c.send(7, val(2)), 7);
        assert!(c.is_empty());
    }

    #[test]
    fn tracks_max_elem_bytes() {
        let mut c = Channel::new(4, 0);
        c.send(
            0,
            Token::Val(Elem::Tile(step_core::tile::Tile::phantom(4, 4))),
        );
        c.send(0, Token::Stop(1));
        assert_eq!(c.max_elem_bytes(), 32);
        assert_eq!(c.sent_tokens(), 2);
    }

    #[test]
    #[should_panic(expected = "full channel")]
    fn send_on_full_panics() {
        let mut c = Channel::new(1, 0);
        c.send(0, val(1));
        c.send(0, val(2));
    }

    #[test]
    fn full_queue_resume_time_is_the_dequeue_time() {
        // A sender stalled on a full 2-slot queue resumes exactly at the
        // time the receiver's dequeue freed a slot, even when its own
        // clock is far behind.
        let mut c = Channel::new(2, 0);
        c.send(0, val(1));
        c.send(0, val(2));
        assert!(!c.can_send());
        let (t1, _) = c.pop(50);
        assert_eq!(t1, 50);
        assert_eq!(c.send(3, val(3)), 50); // resumes at the slot's free time
        let (t2, _) = c.pop(0);
        assert_eq!(t2, 51); // one pop per cycle after t1
        assert_eq!(c.send(3, val(4)), 51); // next freed slot
    }

    #[test]
    fn floor_raises_monotonically_and_includes_latency() {
        let mut c = Channel::new(4, 3);
        assert_eq!(c.time_floor(), 3); // floor 0 + latency
        c.raise_floor(10);
        assert_eq!(c.time_floor(), 13);
        // Raising to an earlier time is a no-op (monotone).
        c.raise_floor(5);
        assert_eq!(c.time_floor(), 13);
        c.raise_floor(20);
        assert_eq!(c.time_floor(), 23);
    }

    #[test]
    fn events_record_sends_pops_close_and_finish() {
        let mut c = Channel::new(2, 0);
        assert_eq!(c.take_events(), 0);
        c.send(0, val(1));
        assert_eq!(c.take_events(), event::ENQUEUED);
        assert_eq!(c.take_events(), 0); // draining clears
        c.pop(0);
        assert_eq!(c.take_events(), event::FREED);
        c.send(0, val(2));
        c.pop(0);
        assert_eq!(c.take_events(), event::ENQUEUED | event::FREED);
        c.finish_src();
        assert_eq!(c.take_events(), event::SRC_FINISHED);
        c.close();
        assert_eq!(c.take_events(), event::CLOSED);
        // Sends into a closed channel are dropped and record no event.
        c.send(0, val(3));
        assert_eq!(c.take_events(), 0);
    }

    #[test]
    fn cross_halves_shuttle_tokens_and_credits() {
        // Writer half holds all credits; reader half starts with none.
        let mut w = Channel::new(2, 3);
        let mut r = Channel::cross_reader(2, 3);
        assert_eq!(w.send(10, val(1)), 10);
        assert_eq!(w.send(10, val(2)), 11);
        assert!(!w.can_send());
        // Barrier: token runs move with their precomputed ready times.
        for (ts, tok) in w.drain_queue().collect::<Vec<_>>() {
            r.inject(ts, tok);
        }
        assert_eq!(r.take_events() & event::ENQUEUED, event::ENQUEUED);
        let (t1, tok) = r.pop(0);
        assert_eq!((t1, tok), (13, val(1))); // 10 + latency 3
        // Barrier: freed slots return as credits and wake the writer.
        let freed = r.drain_freed_slots();
        assert_eq!(freed, vec![TimeRun::single(13)]);
        w.grant_slots(freed);
        assert_eq!(w.take_events() & event::FREED, event::FREED);
        assert!(w.can_send());
        assert_eq!(w.send(0, val(3)), 13); // resumes at the credit time
    }

    #[test]
    fn inject_into_closed_reader_drops() {
        let mut r = Channel::cross_reader(2, 0);
        r.close();
        r.inject(TimeRun::single(5), val(1));
        assert!(r.is_empty());
    }

    #[test]
    fn queue_ready_times_are_strictly_increasing() {
        // The calendar's stale-entry rule relies on per-channel head ready
        // times strictly increasing.
        let mut c = Channel::new(8, 2);
        c.send(5, val(1));
        c.send(5, val(2));
        c.send(0, val(3));
        let (r1, _) = c.pop(0);
        let (r2, _) = c.pop(0);
        let (r3, _) = c.pop(0);
        assert!(r1 < r2 && r2 < r3, "{r1} {r2} {r3}");
    }

    #[test]
    fn identical_sends_coalesce_into_one_run() {
        let mut c = Channel::new(8, 1);
        for _ in 0..5 {
            c.send(10, val(7));
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.runs(), 1, "identical back-to-back sends form one run");
        let (ts, tok) = c.peek_run().unwrap();
        assert_eq!(ts, TimeRun::new(11, 1, 5)); // 10..15 + latency 1
        assert_eq!(tok, &val(7));
        // Distinct value breaks the run.
        c.send(10, val(8));
        assert_eq!(c.runs(), 2);
    }

    #[test]
    fn send_run_matches_per_token_sends() {
        // The bulk API must produce exactly the per-token send times,
        // including the port-rate chain and slot constraints.
        let mut a = Channel::new(4, 2);
        let mut b = Channel::new(4, 2);
        for i in 0..4 {
            a.send(20, val(9));
            let _ = i;
        }
        b.send_run(TimeRun::new(20, 0, 4), val(9));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.peek_run().unwrap().0, b.peek_run().unwrap().0);
        for _ in 0..4 {
            assert_eq!(a.pop(0), b.pop(0));
        }
    }

    #[test]
    fn pop_run_respects_horizon_pace_and_port_rate() {
        let mut c = Channel::new(8, 0);
        c.send_run(TimeRun::new(10, 0, 6), val(3)); // ready 10..16
        let mut times = Vec::new();
        // Only the entries ready by 12 are visible: 10, 11, 12.
        let (tok, k) = c.pop_run(0, 4, 12, 8, &mut times).unwrap();
        assert_eq!((tok, k), (val(3), 3));
        // t0 = 10, then +pace(4): 14, 18 — pace dominates readiness,
        // and the whole sequence coalesces into one stride-4 run.
        assert_eq!(times, vec![TimeRun::new(10, 4, 3)]);
        // Remaining head advanced to the first invisible entry.
        assert_eq!(c.peek().unwrap().0, 13);
        assert_eq!(c.len(), 3);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn pop_zip_runs_matches_per_token_alternating_pops() {
        // The closed-form coupled pop must reproduce the exact scalar
        // recurrence: pop a at the running clock, pop b at a's dequeue
        // time, pair time = b's dequeue time.
        let cases: Vec<((u64, u64, u64), (u64, u64, u64), u64)> = vec![
            ((0, 1, 6), (0, 1, 6), 0),    // both ready, lockstep
            ((10, 8, 5), (0, 1, 5), 3),   // slow weights vs fast acts
            ((0, 1, 7), (100, 16, 7), 0), // other side slow
            ((5, 3, 4), (7, 2, 4), 50),   // consumer far ahead
            ((0, 0, 5), (0, 0, 5), 0),    // degenerate stride-0 ready
        ];
        for ((sa, ka, na), (sb, kb, nb), now) in cases {
            let mk = |s, k, n| {
                let mut c = Channel::new(16, 0);
                c.send_run(TimeRun::new(s, k, n), val(1));
                c
            };
            // Scalar reference.
            let (mut ra, mut rb) = (mk(sa, ka, na), mk(sb, kb, nb));
            let mut m = now;
            let mut want = Vec::new();
            for _ in 0..na.min(nb) {
                let (ta, _) = ra.pop(m);
                let (tb, _) = rb.pop(ta);
                m = tb;
                want.push((ta, tb));
            }
            // Closed form.
            let (mut ca, mut cb) = (mk(sa, ka, na), mk(sb, kb, nb));
            let (mut at, mut bt) = (Vec::new(), Vec::new());
            let (_, _, k) =
                pop_zip_runs(&mut ca, &mut cb, now, u64::MAX, u64::MAX, &mut at, &mut bt).unwrap();
            assert_eq!(k, na.min(nb));
            let flat = |v: &Vec<TimeRun>| {
                v.iter()
                    .flat_map(|r| (0..r.count).map(|i| r.at(i)))
                    .collect::<Vec<u64>>()
            };
            let (got_a, got_b) = (flat(&at), flat(&bt));
            let want_a: Vec<u64> = want.iter().map(|&(a, _)| a).collect();
            let want_b: Vec<u64> = want.iter().map(|&(_, b)| b).collect();
            assert_eq!(got_a, want_a, "a times for {:?}", ((sa, ka, na), now));
            assert_eq!(got_b, want_b, "b times for {:?}", ((sb, kb, nb), now));
            // Channel state (slots, last_pop) must match the reference:
            // identical resume times for a subsequent sender burst.
            for _ in 0..3 {
                assert_eq!(ca.send(0, val(2)), ra.send(0, val(2)));
                assert_eq!(cb.send(0, val(2)), rb.send(0, val(2)));
            }
        }
    }

    #[test]
    fn pop_run_matches_per_token_pops() {
        let mk = || {
            let mut c = Channel::new(8, 1);
            c.send_run(TimeRun::new(5, 3, 5), val(1));
            c
        };
        let mut a = mk();
        let mut b = mk();
        // Per-token: pop with the clock advancing by `pace` after each.
        let pace = 2;
        let mut now = 0;
        let mut want = Vec::new();
        for _ in 0..5 {
            let (t, _) = a.pop(now);
            want.push(t);
            now = t + pace;
        }
        let mut times = Vec::new();
        let (_, k) = b.pop_run(0, pace, u64::MAX, u64::MAX, &mut times).unwrap();
        assert_eq!(k, 5);
        let got: Vec<u64> = times
            .iter()
            .flat_map(|r| (0..r.count).map(|i| r.at(i)))
            .collect();
        assert_eq!(got, want);
        // And the freed-slot state matches: a sender sees identical
        // resume times afterwards.
        for _ in 0..5 {
            a.send(0, val(2));
            b.send(0, val(2));
        }
        assert_eq!(a.peek_run().unwrap().0, b.peek_run().unwrap().0);
    }
}
