//! Timed bounded FIFOs.
//!
//! Channels model the hardware queues connecting SDA units. Each entry
//! carries the simulation time at which it becomes visible to the
//! receiver. Backpressure is modeled *in time*: a channel has `capacity`
//! slots; a slot is reclaimed at the moment the receiver dequeues, so a
//! sender that finds the queue full resumes no earlier than that dequeue
//! time. Ports sustain at most one token per cycle in each direction.

use std::collections::VecDeque;
use step_core::token::Token;

/// A bounded FIFO carrying `(ready_time, token)` pairs.
#[derive(Debug)]
pub struct Channel {
    latency: u64,
    queue: VecDeque<(u64, Token)>,
    /// Times at which free slots became (or were initially) available.
    slots: VecDeque<u64>,
    last_send: Option<u64>,
    last_pop: Option<u64>,
    closed: bool,
    src_finished: bool,
    /// Lower bound on the ready time of any *future* token (producer's
    /// clock plus transit latency); lets arrival-order consumers commit
    /// to a head knowing nothing earlier can still arrive.
    floor: u64,
    /// Total tokens ever enqueued (for edge statistics).
    sent_tokens: u64,
    /// Maximum element payload in bytes observed on this channel.
    max_elem_bytes: u64,
}

impl Channel {
    /// Creates a channel with `capacity` slots and `latency` cycles of
    /// transit delay.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: u64) -> Channel {
        assert!(capacity > 0, "channel capacity must be positive");
        Channel {
            latency,
            queue: VecDeque::with_capacity(capacity),
            slots: std::iter::repeat_n(0, capacity).collect(),
            last_send: None,
            last_pop: None,
            closed: false,
            src_finished: false,
            floor: 0,
            sent_tokens: 0,
            max_elem_bytes: 0,
        }
    }

    /// Whether a send would succeed right now.
    pub fn can_send(&self) -> bool {
        self.closed || !self.slots.is_empty()
    }

    /// Enqueues `token` from a sender whose local clock reads `now`,
    /// returning the effective send time (when the port actually accepted
    /// the token). If the receiver is gone the token is dropped and `now`
    /// is returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the channel is full — call [`Channel::can_send`] first.
    pub fn send(&mut self, now: u64, token: Token) -> u64 {
        if self.closed {
            return now;
        }
        let slot = self
            .slots
            .pop_front()
            .expect("send on full channel; check can_send()");
        let mut t = now.max(slot);
        if let Some(last) = self.last_send {
            t = t.max(last + 1); // one token per cycle per port
        }
        self.last_send = Some(t);
        self.sent_tokens += 1;
        if let Token::Val(e) = &token {
            self.max_elem_bytes = self.max_elem_bytes.max(e.bytes());
        }
        self.queue.push_back((t + self.latency, token));
        t
    }

    /// The head entry, if any.
    pub fn peek(&self) -> Option<&(u64, Token)> {
        self.queue.front()
    }

    /// Dequeues the head token for a receiver whose clock reads `now`,
    /// returning `(dequeue_time, token)` where `dequeue_time = max(now,
    /// ready, last_pop + 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty — call [`Channel::peek`] first.
    pub fn pop(&mut self, now: u64) -> (u64, Token) {
        let (ready, token) = self.queue.pop_front().expect("pop on empty channel");
        let mut t = now.max(ready);
        if let Some(last) = self.last_pop {
            t = t.max(last + 1);
        }
        self.last_pop = Some(t);
        self.slots.push_back(t);
        (t, token)
    }

    /// Marks the receiver as gone: pending and future tokens are dropped.
    pub fn close(&mut self) {
        self.closed = true;
        self.queue.clear();
        // Slots are irrelevant once closed, but keep the invariant simple.
    }

    /// Marks the producer as finished (it has emitted `Done`).
    pub fn finish_src(&mut self) {
        self.src_finished = true;
    }

    /// Whether the producer has emitted all its tokens.
    pub fn src_finished(&self) -> bool {
        self.src_finished
    }

    /// Raises the future-token time floor to `t` (monotone).
    pub fn raise_floor(&mut self, t: u64) {
        self.floor = self.floor.max(t);
    }

    /// Lower bound on any future token's ready time.
    pub fn time_floor(&self) -> u64 {
        self.floor + self.latency
    }

    /// Whether the receiver has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Queued token count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total tokens ever enqueued.
    pub fn sent_tokens(&self) -> u64 {
        self.sent_tokens
    }

    /// Largest element payload observed, in bytes.
    pub fn max_elem_bytes(&self) -> u64 {
        self.max_elem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_core::elem::Elem;

    fn val(x: u64) -> Token {
        Token::Val(Elem::Addr(x))
    }

    #[test]
    fn send_and_pop_respect_latency() {
        let mut c = Channel::new(4, 3);
        let t = c.send(10, val(1));
        assert_eq!(t, 10);
        let (t, tok) = c.pop(0);
        assert_eq!(t, 13); // ready at send + latency
        assert_eq!(tok, val(1));
    }

    #[test]
    fn port_rate_is_one_token_per_cycle() {
        let mut c = Channel::new(8, 0);
        assert_eq!(c.send(5, val(1)), 5);
        assert_eq!(c.send(5, val(2)), 6);
        assert_eq!(c.send(5, val(3)), 7);
        let (t1, _) = c.pop(0);
        let (t2, _) = c.pop(0);
        assert_eq!(t1, 5);
        assert_eq!(t2, 6);
    }

    #[test]
    fn backpressure_stalls_sender_until_pop_time() {
        let mut c = Channel::new(1, 0);
        assert_eq!(c.send(0, val(1)), 0);
        assert!(!c.can_send());
        // Receiver takes the token at time 100; slot frees then.
        let (t, _) = c.pop(100);
        assert_eq!(t, 100);
        assert!(c.can_send());
        assert_eq!(c.send(1, val(2)), 100);
    }

    #[test]
    fn closed_channel_drops_tokens() {
        let mut c = Channel::new(1, 0);
        c.send(0, val(1));
        c.close();
        assert!(c.is_empty());
        assert!(c.can_send());
        assert_eq!(c.send(7, val(2)), 7);
        assert!(c.is_empty());
    }

    #[test]
    fn tracks_max_elem_bytes() {
        let mut c = Channel::new(4, 0);
        c.send(0, Token::Val(Elem::Tile(step_core::tile::Tile::phantom(4, 4))));
        c.send(0, Token::Stop(1));
        assert_eq!(c.max_elem_bytes(), 32);
        assert_eq!(c.sent_tokens(), 2);
    }

    #[test]
    #[should_panic(expected = "full channel")]
    fn send_on_full_panics() {
        let mut c = Channel::new(1, 0);
        c.send(0, val(1));
        c.send(0, val(2));
    }
}
