//! Timed bounded FIFOs.
//!
//! Channels model the hardware queues connecting SDA units. Each entry
//! carries the simulation time at which it becomes visible to the
//! receiver. Backpressure is modeled *in time*: a channel has `capacity`
//! slots; a slot is reclaimed at the moment the receiver dequeues, so a
//! sender that finds the queue full resumes no earlier than that dequeue
//! time. Ports sustain at most one token per cycle in each direction.
//!
//! Channels also drive the engine's event-driven scheduler: every
//! mutation records an [`event`] bit (token enqueued, slot freed,
//! receiver closed, producer finished) that the engine drains after each
//! fire to wake exactly the endpoint that can now progress. Floor raises
//! record no event — floors are conservative metadata about *future*
//! tokens, and the tokens themselves generate [`event::ENQUEUED`] when
//! they arrive.

use std::collections::VecDeque;
use step_core::token::Token;

/// Channel events accumulated for the engine's wake lists. The engine
/// drains these after every node fire (a node only ever mutates its own
/// channels) and wakes the endpoint that can now make progress.
pub mod event {
    /// A token was enqueued: the reader may progress.
    pub const ENQUEUED: u8 = 1 << 0;
    /// A slot was freed by a dequeue: a blocked writer may progress.
    pub const FREED: u8 = 1 << 1;
    /// The receiver closed the channel: sends now succeed (and drop), so
    /// a blocked writer may progress.
    pub const CLOSED: u8 = 1 << 2;
    /// The producer finished (emitted `Done`).
    pub const SRC_FINISHED: u8 = 1 << 3;
}

/// A bounded FIFO carrying `(ready_time, token)` pairs.
#[derive(Debug)]
pub struct Channel {
    latency: u64,
    queue: VecDeque<(u64, Token)>,
    /// Times at which free slots became (or were initially) available.
    slots: VecDeque<u64>,
    last_send: Option<u64>,
    last_pop: Option<u64>,
    closed: bool,
    src_finished: bool,
    /// Lower bound on the ready time of any *future* token (producer's
    /// clock plus transit latency); lets arrival-order consumers commit
    /// to a head knowing nothing earlier can still arrive.
    floor: u64,
    /// Total tokens ever enqueued (for edge statistics).
    sent_tokens: u64,
    /// Maximum element payload in bytes observed on this channel.
    max_elem_bytes: u64,
    /// Pending [`event`] bits since the engine last drained them.
    events: u8,
}

impl Channel {
    /// Creates a channel with `capacity` slots and `latency` cycles of
    /// transit delay.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: u64) -> Channel {
        assert!(capacity > 0, "channel capacity must be positive");
        Channel {
            latency,
            queue: VecDeque::with_capacity(capacity),
            slots: std::iter::repeat_n(0, capacity).collect(),
            last_send: None,
            last_pop: None,
            closed: false,
            src_finished: false,
            floor: 0,
            sent_tokens: 0,
            max_elem_bytes: 0,
            events: 0,
        }
    }

    /// Creates the *reader half* of a cross-shard channel: it starts with
    /// zero free slots because all send credits live on the writer half
    /// (the writer-side [`Channel`] created with [`Channel::new`], whose
    /// queue acts as the in-flight mailbox). The sharded engine shuttles
    /// tokens (writer queue → [`Channel::inject`]) and freed slots
    /// ([`Channel::drain_freed_slots`] → [`Channel::grant_slots`]) between
    /// the halves at deterministic barriers.
    pub fn cross_reader(capacity: usize, latency: u64) -> Channel {
        let mut c = Channel::new(capacity, latency);
        c.slots.clear();
        c
    }

    /// Delivers a token whose effective send time was already computed by
    /// the writer half (`ready` includes transit latency). Dropped if the
    /// receiver closed.
    pub fn inject(&mut self, ready: u64, token: Token) {
        if self.closed {
            return;
        }
        self.queue.push_back((ready, token));
        self.events |= event::ENQUEUED;
    }

    /// Returns freed slot times accumulated by pops since the last drain
    /// (reader half of a cross-shard channel; its own sends never consume
    /// them).
    pub fn drain_freed_slots(&mut self) -> Vec<u64> {
        self.slots.drain(..).collect()
    }

    /// Returns send credits to the writer half. Records
    /// [`event::FREED`] so a blocked writer is woken.
    pub fn grant_slots(&mut self, times: impl IntoIterator<Item = u64>) {
        let before = self.slots.len();
        self.slots.extend(times);
        if self.slots.len() > before {
            self.events |= event::FREED;
        }
    }

    /// Drains the queued tokens (writer half of a cross-shard channel:
    /// the in-flight mailbox).
    pub fn drain_queue(&mut self) -> std::collections::vec_deque::Drain<'_, (u64, Token)> {
        self.queue.drain(..)
    }

    /// Whether any freed slots have accumulated since the last drain
    /// (reader half of a cross-shard channel). Lets the barrier
    /// coordinator skip idle cut edges without draining them.
    pub fn has_freed_slots(&self) -> bool {
        !self.slots.is_empty()
    }

    /// The raw floor value (without transit latency), for mirroring onto
    /// the reader half of a cross-shard channel.
    pub fn floor_raw(&self) -> u64 {
        self.floor
    }

    /// Drains and returns the pending [`event`] bits.
    pub fn take_events(&mut self) -> u8 {
        std::mem::take(&mut self.events)
    }

    /// Whether a send would succeed right now.
    pub fn can_send(&self) -> bool {
        self.closed || !self.slots.is_empty()
    }

    /// Enqueues `token` from a sender whose local clock reads `now`,
    /// returning the effective send time (when the port actually accepted
    /// the token). If the receiver is gone the token is dropped and `now`
    /// is returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the channel is full — call [`Channel::can_send`] first.
    pub fn send(&mut self, now: u64, token: Token) -> u64 {
        if self.closed {
            return now;
        }
        let slot = self
            .slots
            .pop_front()
            .expect("send on full channel; check can_send()");
        let mut t = now.max(slot);
        if let Some(last) = self.last_send {
            t = t.max(last + 1); // one token per cycle per port
        }
        self.last_send = Some(t);
        self.sent_tokens += 1;
        if let Token::Val(e) = &token {
            self.max_elem_bytes = self.max_elem_bytes.max(e.bytes());
        }
        self.queue.push_back((t + self.latency, token));
        self.events |= event::ENQUEUED;
        t
    }

    /// The head entry, if any.
    pub fn peek(&self) -> Option<&(u64, Token)> {
        self.queue.front()
    }

    /// Dequeues the head token for a receiver whose clock reads `now`,
    /// returning `(dequeue_time, token)` where `dequeue_time = max(now,
    /// ready, last_pop + 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty — call [`Channel::peek`] first.
    pub fn pop(&mut self, now: u64) -> (u64, Token) {
        let (ready, token) = self.queue.pop_front().expect("pop on empty channel");
        let mut t = now.max(ready);
        if let Some(last) = self.last_pop {
            t = t.max(last + 1);
        }
        self.last_pop = Some(t);
        self.slots.push_back(t);
        self.events |= event::FREED;
        (t, token)
    }

    /// Marks the receiver as gone: pending and future tokens are dropped.
    pub fn close(&mut self) {
        self.closed = true;
        self.queue.clear();
        // Slots are irrelevant once closed, but keep the invariant simple.
        self.events |= event::CLOSED;
    }

    /// Marks the producer as finished (it has emitted `Done`).
    pub fn finish_src(&mut self) {
        self.src_finished = true;
        self.events |= event::SRC_FINISHED;
    }

    /// Whether the producer has emitted all its tokens.
    pub fn src_finished(&self) -> bool {
        self.src_finished
    }

    /// Raises the future-token time floor to `t` (monotone).
    pub fn raise_floor(&mut self, t: u64) {
        self.floor = self.floor.max(t);
    }

    /// Lower bound on any future token's ready time.
    pub fn time_floor(&self) -> u64 {
        self.floor + self.latency
    }

    /// Whether the receiver has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Queued token count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total tokens ever enqueued.
    pub fn sent_tokens(&self) -> u64 {
        self.sent_tokens
    }

    /// Largest element payload observed, in bytes.
    pub fn max_elem_bytes(&self) -> u64 {
        self.max_elem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_core::elem::Elem;

    fn val(x: u64) -> Token {
        Token::Val(Elem::Addr(x))
    }

    #[test]
    fn send_and_pop_respect_latency() {
        let mut c = Channel::new(4, 3);
        let t = c.send(10, val(1));
        assert_eq!(t, 10);
        let (t, tok) = c.pop(0);
        assert_eq!(t, 13); // ready at send + latency
        assert_eq!(tok, val(1));
    }

    #[test]
    fn port_rate_is_one_token_per_cycle() {
        let mut c = Channel::new(8, 0);
        assert_eq!(c.send(5, val(1)), 5);
        assert_eq!(c.send(5, val(2)), 6);
        assert_eq!(c.send(5, val(3)), 7);
        let (t1, _) = c.pop(0);
        let (t2, _) = c.pop(0);
        assert_eq!(t1, 5);
        assert_eq!(t2, 6);
    }

    #[test]
    fn backpressure_stalls_sender_until_pop_time() {
        let mut c = Channel::new(1, 0);
        assert_eq!(c.send(0, val(1)), 0);
        assert!(!c.can_send());
        // Receiver takes the token at time 100; slot frees then.
        let (t, _) = c.pop(100);
        assert_eq!(t, 100);
        assert!(c.can_send());
        assert_eq!(c.send(1, val(2)), 100);
    }

    #[test]
    fn closed_channel_drops_tokens() {
        let mut c = Channel::new(1, 0);
        c.send(0, val(1));
        c.close();
        assert!(c.is_empty());
        assert!(c.can_send());
        assert_eq!(c.send(7, val(2)), 7);
        assert!(c.is_empty());
    }

    #[test]
    fn tracks_max_elem_bytes() {
        let mut c = Channel::new(4, 0);
        c.send(
            0,
            Token::Val(Elem::Tile(step_core::tile::Tile::phantom(4, 4))),
        );
        c.send(0, Token::Stop(1));
        assert_eq!(c.max_elem_bytes(), 32);
        assert_eq!(c.sent_tokens(), 2);
    }

    #[test]
    #[should_panic(expected = "full channel")]
    fn send_on_full_panics() {
        let mut c = Channel::new(1, 0);
        c.send(0, val(1));
        c.send(0, val(2));
    }

    #[test]
    fn full_queue_resume_time_is_the_dequeue_time() {
        // A sender stalled on a full 2-slot queue resumes exactly at the
        // time the receiver's dequeue freed a slot, even when its own
        // clock is far behind.
        let mut c = Channel::new(2, 0);
        c.send(0, val(1));
        c.send(0, val(2));
        assert!(!c.can_send());
        let (t1, _) = c.pop(50);
        assert_eq!(t1, 50);
        assert_eq!(c.send(3, val(3)), 50); // resumes at the slot's free time
        let (t2, _) = c.pop(0);
        assert_eq!(t2, 51); // one pop per cycle after t1
        assert_eq!(c.send(3, val(4)), 51); // next freed slot
    }

    #[test]
    fn floor_raises_monotonically_and_includes_latency() {
        let mut c = Channel::new(4, 3);
        assert_eq!(c.time_floor(), 3); // floor 0 + latency
        c.raise_floor(10);
        assert_eq!(c.time_floor(), 13);
        // Raising to an earlier time is a no-op (monotone).
        c.raise_floor(5);
        assert_eq!(c.time_floor(), 13);
        c.raise_floor(20);
        assert_eq!(c.time_floor(), 23);
    }

    #[test]
    fn events_record_sends_pops_close_and_finish() {
        let mut c = Channel::new(2, 0);
        assert_eq!(c.take_events(), 0);
        c.send(0, val(1));
        assert_eq!(c.take_events(), event::ENQUEUED);
        assert_eq!(c.take_events(), 0); // draining clears
        c.pop(0);
        assert_eq!(c.take_events(), event::FREED);
        c.send(0, val(2));
        c.pop(0);
        assert_eq!(c.take_events(), event::ENQUEUED | event::FREED);
        c.finish_src();
        assert_eq!(c.take_events(), event::SRC_FINISHED);
        c.close();
        assert_eq!(c.take_events(), event::CLOSED);
        // Sends into a closed channel are dropped and record no event.
        c.send(0, val(3));
        assert_eq!(c.take_events(), 0);
    }

    #[test]
    fn cross_halves_shuttle_tokens_and_credits() {
        // Writer half holds all credits; reader half starts with none.
        let mut w = Channel::new(2, 3);
        let mut r = Channel::cross_reader(2, 3);
        assert_eq!(w.send(10, val(1)), 10);
        assert_eq!(w.send(10, val(2)), 11);
        assert!(!w.can_send());
        // Barrier: tokens move with their precomputed ready times.
        for (t, tok) in w.drain_queue().collect::<Vec<_>>() {
            r.inject(t, tok);
        }
        assert_eq!(r.take_events() & event::ENQUEUED, event::ENQUEUED);
        let (t1, tok) = r.pop(0);
        assert_eq!((t1, tok), (13, val(1))); // 10 + latency 3
        // Barrier: freed slots return as credits and wake the writer.
        let freed = r.drain_freed_slots();
        assert_eq!(freed, vec![13]);
        w.grant_slots(freed);
        assert_eq!(w.take_events() & event::FREED, event::FREED);
        assert!(w.can_send());
        assert_eq!(w.send(0, val(3)), 13); // resumes at the credit time
    }

    #[test]
    fn inject_into_closed_reader_drops() {
        let mut r = Channel::cross_reader(2, 0);
        r.close();
        r.inject(5, val(1));
        assert!(r.is_empty());
    }

    #[test]
    fn queue_ready_times_are_strictly_increasing() {
        // The calendar's stale-entry rule relies on per-channel head ready
        // times strictly increasing.
        let mut c = Channel::new(8, 2);
        c.send(5, val(1));
        c.send(5, val(2));
        c.send(0, val(3));
        let (r1, _) = c.pop(0);
        let (r2, _) = c.pop(0);
        let (r3, _) = c.pop(0);
        assert!(r1 < r2 && r2 < r3, "{r1} {r2} {r3}");
    }
}
