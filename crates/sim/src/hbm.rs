//! The HBM timing node.
//!
//! The paper's simulator wires off-chip operators to a node emulating
//! Ramulator 2.0 with an 8-stack HBM2 configuration. We model the
//! first-order DRAM timing effects the experiments are sensitive to:
//!
//! - a shared data bus with a peak bandwidth (bytes/cycle), modeled as a
//!   **windowed capacity ledger**: simulated time is divided into
//!   fixed-size windows each holding `window x bytes_per_cycle` bytes of
//!   transfer capacity; a request consumes capacity from the windows at
//!   and after its start time, so concurrent streams share the bus and a
//!   saturated bus pushes completions into later windows;
//! - per-bank row buffers: a request to an open row pays CAS latency, a
//!   row miss additionally pays precharge+activate.
//!
//! The ledger (unlike a simple `bus_free` ratchet) is robust to requests
//! arriving out of order in *host* execution order, which the
//! conservative round-robin scheduler produces: a request stamped early
//! in simulated time correctly uses leftover early capacity even when
//! issued late. See DESIGN.md for the substitution argument versus
//! Ramulator.

use crate::config::HbmConfig;

/// Bus-ledger window size in cycles.
const WINDOW: u64 = 64;

/// Skip-chain sentinel: window has no skip pointer.
const NO_SKIP: u64 = u64::MAX;

/// One queued off-chip access, issued by a node during a shard sub-round
/// and committed by the engine at the next barrier.
///
/// Ledger outcomes depend on commitment order, so the sharded engine
/// commits each barrier's batch in `(time, node, seq)` order — a total
/// order that is a pure function of the simulation plan, never of worker
/// interleaving. Single-shard plans keep the legacy immediate-commit
/// path, which is the same thing with batches of one; a sharded
/// sub-round with exactly one runnable shard also commits immediately
/// (the off-chip fast path) — the sole accessor's host order is itself
/// a pure function of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmRequest {
    /// Issue time (the requesting node's local clock).
    pub time: u64,
    /// Requesting node (global id; sort tiebreak and response routing).
    pub node: u32,
    /// Per-node issue sequence number (ties requests to responses).
    pub seq: u64,
    /// Byte address.
    pub addr: u64,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Write (`true`) or read.
    pub write: bool,
}

/// The shared off-chip memory timing model.
#[derive(Debug)]
pub struct Hbm {
    cfg: HbmConfig,
    /// Remaining transfer capacity (bytes) per time window, directly
    /// indexed by `window - win_base` (windows outside the vector are
    /// untouched and hold full capacity). Traffic is dense around the
    /// touched span, so a flat vector beats hashing on the hottest path
    /// of the whole simulator (one lookup per access); the base offset
    /// keeps a run whose first access lands at a late simulated time
    /// from materializing every window since zero.
    windows: Vec<u64>,
    /// Skip pointers past exhausted windows (`w -> first window >= w that
    /// may still have capacity`, [`NO_SKIP`] = none), path-compressed and
    /// holding *absolute* window numbers, indexed like `windows`. A
    /// window never regains capacity, so a saturated stretch is crossed
    /// in amortized O(1) instead of rescanned by every access.
    skip: Vec<u64>,
    /// Absolute window number of `windows[0]`/`skip[0]`; set on first
    /// touch, lowered (with a front fill) if an earlier-stamped request
    /// arrives later.
    win_base: u64,
    open_rows: Vec<Option<u64>>,
    /// `log2(row_bytes)` when it is a power of two: replaces the row
    /// division on the hottest arithmetic in the simulator.
    row_shift: Option<u32>,
    /// `banks - 1` when `banks` is a power of two (mask instead of mod).
    bank_mask: Option<u64>,
    /// `log2(bytes_per_cycle)` when it is a power of two.
    bpc_shift: Option<u32>,
    total_bytes: u64,
    read_bytes: u64,
    write_bytes: u64,
    busy_cycles: u64,
    last_completion: u64,
    accesses: u64,
    row_hits: u64,
}

impl Hbm {
    /// Creates the HBM node.
    pub fn new(cfg: HbmConfig) -> Hbm {
        let banks = cfg.banks.max(1) as usize;
        let pow2 = |v: u64| (v > 0 && v.is_power_of_two()).then(|| v.trailing_zeros());
        let row_shift = pow2(cfg.row_bytes.max(1));
        let bank_mask = (cfg.banks.max(1)).is_power_of_two().then(|| cfg.banks - 1);
        let bpc_shift = pow2(cfg.bytes_per_cycle.max(1));
        Hbm {
            cfg,
            windows: Vec::new(),
            skip: Vec::new(),
            win_base: u64::MAX,
            open_rows: vec![None; banks],
            row_shift,
            bank_mask,
            bpc_shift,
            total_bytes: 0,
            read_bytes: 0,
            write_bytes: 0,
            busy_cycles: 0,
            last_completion: 0,
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Resets the ledger to its just-built state in place, keeping the
    /// window and skip vectors' capacity (the run-state pool's
    /// alloc-free rerun contract).
    pub fn reset(&mut self) {
        self.windows.clear();
        self.skip.clear();
        self.win_base = u64::MAX;
        self.open_rows.fill(None);
        self.total_bytes = 0;
        self.read_bytes = 0;
        self.write_bytes = 0;
        self.busy_cycles = 0;
        self.last_completion = 0;
        self.accesses = 0;
        self.row_hits = 0;
    }

    fn window_capacity(&self) -> u64 {
        WINDOW * self.cfg.bytes_per_cycle.max(1)
    }

    /// Index of window `w`, growing (or front-filling) the vectors so it
    /// is valid. Untouched windows materialize at full capacity.
    fn index_of(&mut self, w: u64) -> usize {
        let cap = self.window_capacity();
        if self.win_base == u64::MAX {
            self.win_base = w;
        }
        if w < self.win_base {
            // An earlier-stamped request arrived later (host order is
            // not simulated order): extend downwards. Rare — the base is
            // set by the first access and clocks mostly advance.
            let grow = (self.win_base - w) as usize;
            self.windows.splice(0..0, std::iter::repeat_n(cap, grow));
            self.skip.splice(0..0, std::iter::repeat_n(NO_SKIP, grow));
            self.win_base = w;
        }
        let idx = (w - self.win_base) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, cap);
            self.skip.resize(idx + 1, NO_SKIP);
        }
        idx
    }

    /// Remaining capacity slot for `w`.
    fn window_mut(&mut self, w: u64) -> &mut u64 {
        let idx = self.index_of(w);
        &mut self.windows[idx]
    }

    /// Records that `w` is exhausted: searches resume at `w + 1`.
    fn mark_skip(&mut self, w: u64) {
        let idx = self.index_of(w);
        self.skip[idx] = w + 1;
    }

    /// The skip target of `w`, if one is recorded (no materialization).
    fn skip_of(&self, w: u64) -> Option<u64> {
        if self.win_base == u64::MAX || w < self.win_base {
            return None;
        }
        match self.skip.get((w - self.win_base) as usize) {
            Some(&nxt) if nxt != NO_SKIP => Some(nxt),
            _ => None,
        }
    }

    /// First window at or after `w` that may still hold capacity,
    /// following (and compressing) the skip chain over exhausted windows.
    fn first_open(&mut self, start: u64) -> u64 {
        let mut w = start;
        while let Some(nxt) = self.skip_of(w) {
            w = nxt;
        }
        // Path compression: point the whole chain at the open window.
        let mut c = start;
        while c != w {
            let idx = (c - self.win_base) as usize;
            let nxt = self.skip[idx];
            self.skip[idx] = w;
            c = nxt;
        }
        w
    }

    /// Issues an access of `bytes` at `addr` at time `now`, returning the
    /// completion time. `write` selects the direction for the statistics.
    pub fn access(&mut self, addr: u64, bytes: u64, now: u64, write: bool) -> u64 {
        let bytes = bytes.max(1);
        let row = match self.row_shift {
            Some(s) => addr >> s,
            None => addr / self.cfg.row_bytes.max(1),
        };
        let bank = match self.bank_mask {
            Some(m) => (row & m) as usize,
            None => (row % self.cfg.banks.max(1)) as usize,
        };
        let hit = self.open_rows[bank] == Some(row);
        let latency = if hit {
            self.row_hits += 1;
            self.cfg.t_cas
        } else {
            self.cfg.t_cas + self.cfg.t_row_miss
        };
        self.open_rows[bank] = Some(row);

        let start = now + latency;
        let bpc = self.cfg.bytes_per_cycle.max(1);
        let bpc_shift = self.bpc_shift;
        let div_ceil_bpc = move |v: u64| match bpc_shift {
            Some(s) => (v + bpc - 1) >> s,
            None => v.div_ceil(bpc),
        };
        let cap = self.window_capacity();
        let mut w = self.first_open(start / WINDOW);
        let mut remaining = bytes;
        let mut done = start;
        loop {
            let avail = self.window_mut(w);
            if *avail == 0 {
                self.mark_skip(w);
                w = self.first_open(w + 1);
                continue;
            }
            let take = remaining.min(*avail);
            *avail -= take;
            remaining -= take;
            // Completion within this window: proportional to the capacity
            // already handed out.
            let used = cap - *avail;
            let exhausted = *avail == 0;
            let within = w * WINDOW + div_ceil_bpc(used);
            done = done.max(within.min((w + 1) * WINDOW));
            if remaining == 0 {
                if exhausted {
                    self.mark_skip(w);
                }
                break;
            }
            self.mark_skip(w);
            w = self.first_open(w + 1);
        }
        done = done.max(start + div_ceil_bpc(bytes));

        self.busy_cycles += div_ceil_bpc(bytes);
        self.total_bytes += bytes;
        if write {
            self.write_bytes += bytes;
        } else {
            self.read_bytes += bytes;
        }
        self.accesses += 1;
        self.last_completion = self.last_completion.max(done);
        done
    }

    /// Commits a barrier batch of queued requests in deterministic
    /// `(time, node, seq)` order, returning `(node, seq, completion)` per
    /// request in that order.
    pub fn service_batch(&mut self, batch: Vec<HbmRequest>) -> Vec<(u32, u64, u64)> {
        sort_order(&batch)
            .into_iter()
            .map(|i| {
                let r = batch[i as usize];
                let done = self.access(r.addr, r.bytes, r.time, r.write);
                (r.node, r.seq, done)
            })
            .collect()
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes read from off-chip memory.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes written to off-chip memory.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Cycles' worth of bus transfer performed.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Completion time of the latest access.
    pub fn last_completion(&self) -> u64 {
        self.last_completion
    }

    /// Number of accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// The configured peak bandwidth in bytes/cycle.
    pub fn peak_bytes_per_cycle(&self) -> u64 {
        self.cfg.bytes_per_cycle
    }
}

/// Sorts a barrier batch into `(time, node, seq)` order. Keys are unique
/// per request (`(node, seq)` alone is), so any correct sort yields the
/// one total order.
///
/// Issue times inside a barrier window are *dense* — the window bounds
/// the time span while the batch grows with traffic, so large batches
/// average a handful of requests per distinct cycle. When the span is
/// comparable to the batch size this runs as a counting sort over time
/// buckets (two linear passes) followed by tiny per-bucket `(node, seq)`
/// sorts, instead of paying a full comparison sort on the largest
/// transient allocation in the engine; sparse or small batches fall back
/// to the comparison sort.
fn sort_order(batch: &[HbmRequest]) -> Vec<u32> {
    let n = batch.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let fallback = |order: &mut [u32]| {
        order.sort_unstable_by_key(|&i| {
            let r = &batch[i as usize];
            (r.time, r.node, r.seq)
        });
    };
    if n < 2048 {
        fallback(&mut order);
        return order;
    }
    let (mut lo, mut hi, mut max_node) = (u64::MAX, 0u64, 0u32);
    for r in batch {
        lo = lo.min(r.time);
        hi = hi.max(r.time);
        max_node = max_node.max(r.node);
    }
    let span = (hi - lo) as usize + 1;
    let nodes = max_node as usize + 1;
    if span > 4 * n || nodes > n {
        fallback(&mut order);
        return order;
    }
    // Producers append each node's requests in increasing `seq` order
    // (`hbm_seq` is a per-node counter and every node lives on exactly one
    // shard), so a stable counting sort by node alone yields (node, seq)
    // order. Verify the invariant with a linear pass rather than trusting
    // it: a violation downgrades to the comparison sort, never misorders.
    let mut last = vec![u64::MAX; nodes];
    for r in batch {
        let l = &mut last[r.node as usize];
        if *l != u64::MAX && r.seq <= *l {
            fallback(&mut order);
            return order;
        }
        *l = r.seq;
    }
    // Pass 1 — stable counting sort by node: `counts[k+1]` accumulates
    // bucket sizes, the prefix sum turns them into scatter cursors.
    let mut counts = vec![0u32; nodes + 1];
    for r in batch {
        counts[r.node as usize + 1] += 1;
    }
    for i in 1..=nodes {
        counts[i] += counts[i - 1];
    }
    let mut by_node = vec![0u32; n];
    for (i, r) in batch.iter().enumerate() {
        let c = &mut counts[r.node as usize];
        by_node[*c as usize] = i as u32;
        *c += 1;
    }
    // Pass 2 — stable counting sort by time over the (node, seq)-ordered
    // indices: equal-time ties keep their (node, seq) order, producing the
    // full (time, node, seq) key without any comparison sort.
    let mut counts = vec![0u32; span + 1];
    for r in batch {
        counts[(r.time - lo) as usize + 1] += 1;
    }
    for i in 1..=span {
        counts[i] += counts[i - 1];
    }
    for &i in &by_node {
        let c = &mut counts[(batch[i as usize].time - lo) as usize];
        order[*c as usize] = i;
        *c += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_order_matches_comparison_sort() {
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let sorted_by = |batch: &[HbmRequest]| {
            let mut want: Vec<u32> = (0..batch.len() as u32).collect();
            want.sort_unstable_by_key(|&i| {
                let r = &batch[i as usize];
                (r.time, r.node, r.seq)
            });
            want
        };

        // Dense times with globally increasing seq (hence per-node
        // increasing): takes the two-pass radix path, with plenty of
        // duplicate times to exercise the stability tie-break.
        let dense: Vec<HbmRequest> = (0..4096)
            .map(|i| HbmRequest {
                time: 1000 + next() % 2048,
                node: (next() % 37) as u32,
                seq: i,
                addr: next(),
                bytes: 64,
                write: i % 3 == 0,
            })
            .collect();
        assert_eq!(sort_order(&dense), sorted_by(&dense));

        // Sparse times overflow the span bound: comparison-sort fallback.
        let sparse: Vec<HbmRequest> = (0..4096)
            .map(|i| HbmRequest {
                time: next() << 20,
                node: (next() % 7) as u32,
                seq: i,
                addr: next(),
                bytes: 64,
                write: false,
            })
            .collect();
        assert_eq!(sort_order(&sparse), sorted_by(&sparse));

        // Scrambled (but unique) seq breaks the per-node monotonicity the
        // radix path depends on: the verify pass must catch it and fall
        // back rather than misorder.
        let scrambled: Vec<HbmRequest> = (0..4096u64)
            .map(|i| HbmRequest {
                time: 500 + next() % 1024,
                node: (next() % 5) as u32,
                seq: (i * 2654435761) % 4096,
                addr: next(),
                bytes: 64,
                write: false,
            })
            .collect();
        assert_eq!(sort_order(&scrambled), sorted_by(&scrambled));
    }

    fn hbm() -> Hbm {
        Hbm::new(HbmConfig {
            bytes_per_cycle: 64,
            banks: 4,
            row_bytes: 1024,
            t_cas: 10,
            t_row_miss: 20,
        })
    }

    #[test]
    fn single_access_pays_latency_plus_transfer() {
        let mut h = hbm();
        let done = h.access(0, 64, 0, false);
        // t_cas + t_row_miss + 1 transfer cycle.
        assert_eq!(done, 31);
        assert_eq!(h.total_bytes(), 64);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut h = hbm();
        let d1 = h.access(0, 64, 1000, false);
        let d2 = h.access(64, 64, 2000, false);
        // Same row: CAS only.
        assert_eq!(d2 - 2000, d1 - 1000 - 20);
        assert!(h.row_hit_rate() > 0.4);
    }

    #[test]
    fn saturated_bus_pushes_completions_out() {
        let mut h = hbm();
        // 100 requests of a full window's capacity each, all at t=0: the
        // last must finish no earlier than total/bandwidth.
        let cap = 64 * WINDOW;
        let mut last = 0;
        for i in 0..100u64 {
            last = last.max(h.access(i * 4096, cap, 0, false));
        }
        assert!(last >= 100 * WINDOW, "last={last}");
        assert_eq!(h.busy_cycles(), 100 * WINDOW);
    }

    #[test]
    fn late_first_access_does_not_materialize_early_windows() {
        // The ledger's flat window vectors are base-offset: a run whose
        // first off-chip access lands deep into simulated time touches
        // O(1) windows, not one per window since zero.
        let mut h = hbm();
        let far = 1 << 40;
        let d = h.access(0, 64, far, false);
        assert!(d >= far);
        assert!(h.windows.len() < 8, "windows: {}", h.windows.len());
        // An earlier-stamped access arriving later extends downwards
        // (memory stays O(access-time span / window), never O(absolute
        // time)) and still lands in its own window's capacity.
        let d_early = h.access(4096, 64, far - 100_000, false);
        assert!(d_early <= far - 100_000 + 64, "d_early={d_early}");
        assert!(h.windows.len() < 100_000 / 64 + 8);
        assert_eq!(h.total_bytes(), 128);
    }

    #[test]
    fn late_fired_early_request_uses_leftover_capacity() {
        let mut h = hbm();
        // A request issued (host-order) late but stamped early must not
        // be pushed behind one stamped much later.
        let d_late_time = h.access(0, 64, 100_000, false);
        let d_early_time = h.access(4096, 64, 0, false);
        assert!(d_early_time < d_late_time);
        assert!(d_early_time <= 64);
    }

    #[test]
    fn concurrent_streams_share_bandwidth() {
        let mut h = hbm();
        // Two interleaved streams at the same times: joint completion is
        // bounded by aggregate bytes / bandwidth.
        let mut last = 0;
        for k in 0..64u64 {
            last = last.max(h.access(k * 8192, 2048, k * 16, false));
            last = last.max(h.access(1 << 20 | (k * 8192), 2048, k * 16, false));
        }
        let total_bytes = 64 * 2 * 2048u64;
        assert!(last >= total_bytes / 64, "last={last}");
        // ...but not pathologically serialized (within 2x of ideal).
        assert!(last <= 2 * (total_bytes / 64) + 200, "last={last}");
    }

    #[test]
    fn batch_service_is_order_independent() {
        // The same request multiset in two different arrival orders must
        // produce identical completion times per (node, seq).
        let reqs = |shuffle: bool| {
            let mut v = vec![
                HbmRequest {
                    time: 0,
                    node: 2,
                    seq: 0,
                    addr: 0,
                    bytes: 4096,
                    write: false,
                },
                HbmRequest {
                    time: 0,
                    node: 1,
                    seq: 0,
                    addr: 8192,
                    bytes: 4096,
                    write: false,
                },
                HbmRequest {
                    time: 5,
                    node: 1,
                    seq: 1,
                    addr: 16384,
                    bytes: 2048,
                    write: true,
                },
            ];
            if shuffle {
                v.reverse();
            }
            v
        };
        let mut h1 = hbm();
        let mut out1 = h1.service_batch(reqs(false));
        let mut h2 = hbm();
        let mut out2 = h2.service_batch(reqs(true));
        out1.sort();
        out2.sort();
        assert_eq!(out1, out2);
        assert_eq!(h1.total_bytes(), h2.total_bytes());
        assert_eq!(h1.last_completion(), h2.last_completion());
    }

    #[test]
    fn read_write_split_tracked() {
        let mut h = hbm();
        h.access(0, 100, 0, false);
        h.access(0, 50, 0, true);
        assert_eq!(h.read_bytes(), 100);
        assert_eq!(h.write_bytes(), 50);
        assert_eq!(h.total_bytes(), 150);
    }
}
