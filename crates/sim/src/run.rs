//! Arithmetic time runs: the core of the bulk token-transport layer.
//!
//! A [`TimeRun`] is a finite arithmetic sequence of simulation times —
//! `start, start + stride, start + 2*stride, …` — standing in for a list
//! of per-token timestamps that is never materialized. Channels store
//! their queued tokens and free slots as runs, nodes exchange runs with
//! their channels, and every per-token timestamp the old transport layer
//! computed one `VecDeque` entry at a time is now derived from run
//! arithmetic. The *semantics* are unchanged: each API that accepts or
//! returns a run is defined as the exact per-token loop it replaces, and
//! the differential property suite (`tests/prop_channel_runs.rs`) checks
//! the equivalence token by token.

/// A finite arithmetic sequence of times: `count` entries
/// `start + i * stride` for `i in 0..count`.
///
/// `stride == 0` is allowed (all entries coincide) — producers such as
/// `ExpandStatic` emit whole bursts at one local time and the channel
/// port model spaces them out on send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRun {
    /// Time of the first entry.
    pub start: u64,
    /// Increment between consecutive entries.
    pub stride: u64,
    /// Number of entries (callers never construct empty runs).
    pub count: u64,
}

impl TimeRun {
    /// A run of one entry (stride is irrelevant; normalized to 1).
    pub fn single(t: u64) -> TimeRun {
        TimeRun {
            start: t,
            stride: 1,
            count: 1,
        }
    }

    /// A run of `count` entries starting at `start` with `stride`.
    pub fn new(start: u64, stride: u64, count: u64) -> TimeRun {
        TimeRun {
            start,
            stride,
            count,
        }
    }

    /// The `i`-th entry.
    #[inline]
    pub fn at(&self, i: u64) -> u64 {
        self.start + i * self.stride
    }

    /// The last entry.
    #[inline]
    pub fn last(&self) -> u64 {
        self.at(self.count - 1)
    }

    /// The time one stride past the last entry (where a continuation of
    /// this sequence would fall).
    #[inline]
    pub fn next(&self) -> u64 {
        self.start + self.count * self.stride
    }

    /// Shifts every entry by `delta` (e.g. adding transit latency or a
    /// per-token processing cost).
    #[inline]
    pub fn offset(&self, delta: u64) -> TimeRun {
        TimeRun {
            start: self.start + delta,
            ..*self
        }
    }

    /// Drops the first `k` entries (`k < count`).
    #[inline]
    pub fn advance(&self, k: u64) -> TimeRun {
        TimeRun {
            start: self.at(k),
            stride: self.stride,
            count: self.count - k,
        }
    }

    /// The first `k` entries (`0 < k <= count`).
    #[inline]
    pub fn prefix(&self, k: u64) -> TimeRun {
        TimeRun {
            start: self.start,
            stride: self.stride,
            count: k,
        }
    }

    /// How many leading entries are `<= bound` (the horizon-visibility
    /// count of a queued run).
    pub fn visible_until(&self, bound: u64) -> u64 {
        if self.start > bound {
            return 0;
        }
        if self.stride == 0 {
            return self.count;
        }
        ((bound - self.start) / self.stride)
            .saturating_add(1)
            .min(self.count)
    }

    /// Tries to append `other` so the combined entries still form one
    /// arithmetic sequence; returns whether it succeeded. Singleton runs
    /// adopt whatever stride the continuation implies.
    pub fn try_extend(&mut self, other: TimeRun) -> bool {
        debug_assert!(self.count > 0 && other.count > 0);
        if self.count == 1 {
            // Our stride is free: any non-negative gap to `other` works,
            // as long as `other` itself continues at that same gap.
            let gap = match other.start.checked_sub(self.start) {
                Some(g) => g,
                None => return false,
            };
            if other.count > 1 && other.stride != gap {
                return false;
            }
            self.stride = gap;
            self.count += other.count;
            return true;
        }
        if other.start != self.next() {
            return false;
        }
        if other.count > 1 && other.stride != self.stride {
            return false;
        }
        self.count += other.count;
        true
    }
}

/// Upper envelope of affine sequences: appends `t_i = max_j (base_j +
/// i * stride_j)` for `i in lo..hi` to `out` as coalesced runs. Arms use
/// `i128` so callers may extrapolate a piece backwards past zero;
/// every in-range value must be non-negative. The closed form behind
/// bulk pops with coupled clocks (`Zip`): each `max(chain, ready_a,
/// ready_b)` recurrence resolves to an envelope of at most three arms,
/// so the whole run is computed in O(arms²) instead of per token.
pub(crate) fn envelope_range(arms: &[(i128, i128)], lo: u64, hi: u64, out: &mut Vec<TimeRun>) {
    debug_assert!(!arms.is_empty());
    let mut i = lo;
    let mut builder = RunBuilder::new();
    while i < hi {
        // Dominant arm at i: the largest value, ties to the largest
        // stride so the piece extends as far as possible.
        let (vb, sb) = arms
            .iter()
            .map(|&(b, s)| (b + i as i128 * s, s))
            .max()
            .expect("non-empty arms");
        // First index where a steeper arm overtakes the dominant one.
        let mut nxt = hi;
        let c = vb - i as i128 * sb; // dominant arm extrapolated to 0
        for &(b, s) in arms {
            if s > sb {
                // smallest j with b + j*s > c + j*sb
                let j = (c - b).div_euclid(s - sb) + 1;
                let j = j.max(i as i128 + 1) as u64;
                nxt = nxt.min(j);
            }
        }
        let count = nxt - i;
        debug_assert!(vb >= 0 && sb >= 0);
        builder.push_run(TimeRun::new(vb as u64, sb as u64, count), out);
        i = nxt;
    }
    builder.finish(out);
}

/// Builds a minimal list of [`TimeRun`]s from a stream of individual
/// times, coalescing arithmetic continuations on the fly. Used by the
/// scalar "chase" loops that replay per-token timestamp recurrences
/// without touching per-token storage.
#[derive(Debug, Default)]
pub struct RunBuilder {
    cur: Option<TimeRun>,
}

impl RunBuilder {
    /// A fresh builder.
    pub fn new() -> RunBuilder {
        RunBuilder::default()
    }

    /// Feeds the next time; pushes the previous run to `out` when the
    /// sequence breaks.
    #[inline]
    pub fn push(&mut self, t: u64, out: &mut Vec<TimeRun>) {
        match &mut self.cur {
            None => self.cur = Some(TimeRun::single(t)),
            Some(run) => {
                if !run.try_extend(TimeRun::single(t)) {
                    out.push(*run);
                    self.cur = Some(TimeRun::single(t));
                }
            }
        }
    }

    /// Feeds a whole run (must be non-empty).
    #[inline]
    pub fn push_run(&mut self, r: TimeRun, out: &mut Vec<TimeRun>) {
        match &mut self.cur {
            None => self.cur = Some(r),
            Some(run) => {
                if !run.try_extend(r) {
                    out.push(*run);
                    self.cur = Some(r);
                }
            }
        }
    }

    /// Flushes the trailing run into `out`.
    pub fn finish(self, out: &mut Vec<TimeRun>) {
        if let Some(run) = self.cur {
            out.push(run);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_last_next() {
        let r = TimeRun::new(10, 3, 4); // 10 13 16 19
        assert_eq!(r.at(2), 16);
        assert_eq!(r.last(), 19);
        assert_eq!(r.next(), 22);
        assert_eq!(r.advance(2), TimeRun::new(16, 3, 2));
        assert_eq!(r.prefix(1), TimeRun::new(10, 3, 1));
        assert_eq!(r.offset(5).start, 15);
    }

    #[test]
    fn visibility_counts_leading_entries() {
        let r = TimeRun::new(10, 3, 4); // 10 13 16 19
        assert_eq!(r.visible_until(9), 0);
        assert_eq!(r.visible_until(10), 1);
        assert_eq!(r.visible_until(16), 3);
        assert_eq!(r.visible_until(100), 4);
        let z = TimeRun::new(7, 0, 5);
        assert_eq!(z.visible_until(6), 0);
        assert_eq!(z.visible_until(7), 5);
    }

    #[test]
    fn extend_rules() {
        // Singleton adopts any stride.
        let mut r = TimeRun::single(5);
        assert!(r.try_extend(TimeRun::single(9)));
        assert_eq!(r, TimeRun::new(5, 4, 2));
        // Continuation must match the stride.
        assert!(r.try_extend(TimeRun::single(13)));
        assert!(!r.try_extend(TimeRun::single(18)));
        assert_eq!(r.count, 3);
        // Runs merge when contiguous and stride-compatible.
        let mut a = TimeRun::new(0, 2, 3); // 0 2 4
        assert!(a.try_extend(TimeRun::new(6, 2, 2)));
        assert_eq!(a, TimeRun::new(0, 2, 5));
        assert!(!a.try_extend(TimeRun::new(11, 2, 2)));
        // Equal-time continuation: singleton + same time = stride 0.
        let mut z = TimeRun::single(4);
        assert!(z.try_extend(TimeRun::single(4)));
        assert_eq!(z, TimeRun::new(4, 0, 2));
        // A singleton cannot extend backwards in time.
        let mut b = TimeRun::single(10);
        assert!(!b.try_extend(TimeRun::single(9)));
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn envelope_matches_scalar_max() {
        let cases: Vec<(Vec<(i128, i128)>, u64, u64)> = vec![
            (vec![(10, 1), (0, 3)], 0, 12),
            (vec![(5, 1), (5, 8), (20, 0)], 0, 9),
            (vec![(-6, 8), (3, 1)], 1, 10), // extrapolated arm
            (vec![(7, 0)], 0, 4),
            (vec![(0, 2), (0, 2), (1, 1)], 0, 6),
        ];
        for (arms, lo, hi) in cases {
            let mut out = Vec::new();
            envelope_range(&arms, lo, hi, &mut out);
            let got: Vec<u64> = out
                .iter()
                .flat_map(|r| (0..r.count).map(|i| r.at(i)))
                .collect();
            let want: Vec<u64> = (lo..hi)
                .map(|i| {
                    arms.iter()
                        .map(|&(b, s)| (b + i as i128 * s) as u64)
                        .max()
                        .unwrap()
                })
                .collect();
            assert_eq!(got, want, "arms {arms:?} range {lo}..{hi}");
        }
    }

    #[test]
    fn builder_coalesces() {
        let mut out = Vec::new();
        let mut b = RunBuilder::new();
        for t in [3u64, 4, 5, 9, 12, 15, 15] {
            b.push(t, &mut out);
        }
        b.finish(&mut out);
        assert_eq!(
            out,
            vec![
                TimeRun::new(3, 1, 3),
                TimeRun::new(9, 3, 3),
                TimeRun::single(15),
            ]
        );
    }
}
