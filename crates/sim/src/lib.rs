//! Cycle-approximate simulator for STeP programs (§4.3).
//!
//! The paper implements its simulator on the Dataflow Abstract Machine
//! (DAM) framework: every operator executes asynchronously with a local
//! clock, communicating over bounded, latency-carrying FIFOs; off-chip
//! accesses go through an HBM timing node and higher-order operators charge
//! a roofline cost `max(in_bytes/mem_bw, flops/compute_bw,
//! out_bytes/mem_bw)` per element. This crate reproduces those semantics
//! with a deterministic conservative event model that runs **sharded and
//! in parallel**:
//!
//! - [`channel::Channel`] — bounded FIFOs carrying **runs**: a repeated
//!   token paired with a [`run::TimeRun`] of ready times (`start`,
//!   `stride`, `count`), so a burst of identical tokens is one queue
//!   entry, one payload clone, and O(1) arithmetic. Backpressure is
//!   modelled *in time* (a sender blocked on a full queue resumes at
//!   the receiver's dequeue time) and the one-token-per-cycle port rate
//!   is kept by arithmetic: a run of `n` sent at `t` occupies `n` slots
//!   with send times `t..t+n` under the exact per-token recurrence,
//!   never materialized. Bulk APIs ([`channel::Channel::send_run`],
//!   [`channel::Channel::pop_run`], [`channel::pop_zip_runs`]) are each
//!   defined as the per-token loop they replace —
//!   `tests/prop_channel_runs.rs` checks the equivalence against a
//!   per-token reference channel. Runs coalesce only provably
//!   interchangeable tokens (`Token::coalesces_with`: phantom tiles of
//!   one shape, payload-aliased dense tiles — dense payloads sit behind
//!   an `Arc`, making every fan-out clone O(1)). A cross-shard edge is
//!   a pair of halves: the writer half holds send credits and an
//!   in-flight mailbox, the reader half the receiving FIFO; the engine
//!   shuttles token runs and freed-slot credit runs between them at
//!   coordination barriers;
//! - [`hbm::Hbm`] — a bank/row/bus DRAM timing model standing in for
//!   Ramulator 2.0 (see DESIGN.md for the substitution argument). Sharded
//!   runs issue [`hbm::HbmRequest`]s that the engine commits at each
//!   barrier in `(time, node, seq)` order — a total order independent of
//!   worker scheduling;
//! - [`arena::Arena`] — the (shard-local) on-chip scratchpad backing
//!   `Bufferize` / `Streamify`; sharded runs log timestamped alloc/free
//!   events and the report merges them in simulated-time order, so the
//!   whole-accelerator peak is host-order-independent;
//! - [`arena::SharedStore`] — optional dense off-chip contents so that
//!   loads return real data in functional tests (phantom otherwise,
//!   lock-free for timing runs);
//! - [`nodes`] — an executor per STeP operator implementing both the
//!   functional token semantics of §3.2 and the timing model of §4.3,
//!   with a readiness surface ([`nodes::SimNode::blocked_on`]) reporting
//!   what blocked a stalled node. Fire loops are *bulk*: a step consumes
//!   and produces whole runs (per-token costs folded into the pop
//!   pacing), capped by the fire budget and port-staging allowance so
//!   the schedule — which fire consumes which token — is bit-identical
//!   to per-token execution. Off-chip operators are two-phase
//!   request/response state machines driven through [`nodes::HbmPort`];
//!   completions coalesce into [`nodes::RespRun`]s, and a pipelined
//!   burst of tile reads emits as one run;
//! - [`engine::SimPlan`] — the immutable, reusable execution plan, and
//!   the sharded event-driven scheduler that runs it. The lifecycle is
//!   **freeze → compile → pooled-run**. [`engine::SimPlan::new`] does
//!   everything that depends only on `(graph, SimConfig)`:
//!   [`step_core::partition`] cuts the graph at high-slack channels
//!   into connected shards (small graphs stay monolithic), every
//!   shard's channel topology is laid out, and each operator is
//!   *compiled* into a static-dispatch executor variant
//!   ([`nodes::CompiledNode`]) with its `Io` edge ids pre-resolved to
//!   shard-local channel slots — the inner fire loop dispatches with
//!   one `match` instead of a vtable call, and per-run setup clones
//!   prototypes instead of walking the graph. [`engine::SimPlan::run`]
//!   / [`engine::SimPlan::run_bound`] materialize the per-run state
//!   (executors, channel queues, arenas, ready-sets, HBM ledger) fresh;
//!   [`engine::SimPlan::pooled_run`] /
//!   [`engine::SimPlan::pooled_run_bound`] instead reuse the state
//!   parked in an [`engine::RunPool`], resetting every queue, outbox,
//!   ready set, and ledger *in place* so steady-state reruns and sweep
//!   points are allocation-free — the pool owns the buffers between
//!   runs; the report's [`engine::SimReport::run_allocs`] /
//!   [`engine::SimReport::pool_resets`] counters say which path ran,
//!   and CI pins `run_allocs == 0` on reused runs. Both paths are
//!   bit-identical; `SimConfig::compiled` (default on) can force the
//!   boxed `dyn` executors for differential debugging — the only
//!   reason to disable it — at which point pooled runs degrade to
//!   fresh builds. **Sharing contract:** a plan is read-only during
//!   execution, so `Arc<SimPlan>` can be run from many threads
//!   concurrently, each run bit-identical to a fresh build (a
//!   `RunPool` is per-driver, not shared). [`engine::RunBinding`]
//!   carries per-run inputs — **source rebinding** (replacement token
//!   streams for `Source` nodes, validated against the declared stream
//!   rank) and functional preloads — so sweeps and decode loops drive
//!   one plan with many trace iterations instead of paying graph +
//!   partition + topology per point. [`engine::Simulation`] remains
//!   the one-shot wrapper (`Simulation::new(graph, cfg)?.run()`).
//!
//!   At run time, each shard runs a wake-list wave scheduler over its
//!   nodes, and shards synchronize at deterministic barriers that
//!   exchange cross-shard tokens, commit the off-chip batch, and
//!   advance the conservative execution horizon.
//!   `SimConfig::threads` maps shards onto worker threads.
//!
//!   The barrier protocol stays off the hot path. **Barrier elision**
//!   (`SimConfig::elide_barriers`): each shard owns an effective horizon
//!   that the coordinator raises to the shard's *cut-slack allowance* —
//!   one cycle below the minimum time floor of its incoming cut
//!   channels, the earliest instant a cross-shard token could still
//!   arrive — so shards whose cut channels all have slack run many
//!   horizon windows back-to-back between barriers (within the
//!   allowance, arrival-order execution is *exact*, tighter than the
//!   ±`horizon_step` faithfulness of barrier stepping). **Wake
//!   deduplication**: sharded shards use a generation-stamped ready set
//!   — every wake targets the next wave and a node is queued at most
//!   once per wave however many channel events it receives. **Off-chip
//!   fast path** (`SimConfig::offchip_fast_path`): a sub-round with
//!   exactly one runnable shard runs on the coordinator with the
//!   monolithic immediate-commit HBM sink — single-fire off-chip
//!   operators, no barrier waits. [`stats::SchedCounters`] reports
//!   sub-rounds, elided and solo runs, and absorbed wakes; `sched_bench
//!   --json` asserts a fire budget on them in CI.
//!
//!   **Determinism contract:** every reported metric is a pure function
//!   of `(graph, SimConfig minus threads, RunBinding)`. Shard sub-rounds
//!   see no external mutation; every barrier action is ordered by stable
//!   keys; and the elision allowances, solo-shard schedule, and wake
//!   stamps are computed from barrier-time shard state in the
//!   coordinator's exclusive window — so parallel runs are bit-identical
//!   to the same plan on one thread at any worker count
//!   (`crates/sim/tests/conformance.rs` checks this across every model
//!   builder, plus the full elision/fast-path flag matrix on the most
//!   arrival-order-sensitive builders), and re-running or concurrently
//!   running a plan is bit-identical to rebuilding it
//!   (`crates/sim/tests/plan_reuse.rs`), and the compiled executors and
//!   pooled reruns are bit-identical to the boxed `dyn` path
//!   (`crates/sim/tests/compiled_conformance.rs`). Single-shard
//!   plans take the legacy immediate-commitment path bit for bit.
//!   Deadlocks are detected and reported with each blocked node's
//!   blocking edge. [`engine::SimReport`] carries cycles, off-chip
//!   traffic, measured on-chip memory, utilization,
//!   scheduler-efficiency counters
//!   ([`engine::SimReport::total_fires`]), the bulk-transport
//!   compression ratio ([`engine::SimReport::chan_tokens`] /
//!   [`engine::SimReport::chan_runs`]), and recorded sink streams.
//!   `SimConfig::profile_fires` additionally attributes host wall-clock
//!   per node (`fire_profile` consumes it) — host-dependent and never
//!   part of any determinism check.
//!
//! The determinism contract is also what makes reports *memoizable*:
//! [`report_cache::ReportCache`] keys a shared cache by
//! `(plan content key, RunBinding::fingerprint)` and replays a cloned
//! [`engine::SimReport`] instead of running the engine when an
//! iteration's signature repeats — single-flight under concurrency,
//! with an optional caller-proved canonical layer and a differential
//! [`report_cache::ReportCache::checked`] mode that re-simulates every
//! hit to assert the replay guarantee. The serving driver in
//! `step-models` routes its QKV and MoE phases through it.
//!
//! # Example
//!
//! ```
//! use step_core::graph::GraphBuilder;
//! use step_core::ops::LinearLoadCfg;
//! use step_sim::{RunPool, SimConfig, SimPlan};
//!
//! let mut g = GraphBuilder::new();
//! let trigger = g.unit_source(1);
//! let tiles = g.linear_offchip_load(
//!     &trigger,
//!     LinearLoadCfg::new(0, (64, 256), (64, 64)),
//! ).unwrap();
//! g.linear_offchip_store(&tiles, 0x10_0000).unwrap();
//! // Freeze + compile the plan once (graph analysis, partition,
//! // channel topology, executor compilation)…
//! let plan = SimPlan::new(g.finish(), SimConfig::default()).unwrap();
//! // …then run it as many times as needed; every run is bit-identical,
//! // and pooled reruns reset the parked state in place instead of
//! // allocating it again.
//! let mut pool = RunPool::new();
//! let report = plan.pooled_run(&mut pool).unwrap();
//! let again = plan.pooled_run(&mut pool).unwrap();
//! assert_eq!(report.offchip_traffic, 2 * 64 * 256 * 2); // load + store
//! assert_eq!(report.cycles, again.cycles);
//! assert_eq!((report.run_allocs, report.pool_resets), (1, 0));
//! assert_eq!((again.run_allocs, again.pool_resets), (0, 1));
//! assert!(report.cycles > 0);
//! ```

pub mod arena;
pub mod cancel;
pub mod channel;
pub mod config;
pub mod engine;
pub mod fingerprint;
pub mod hbm;
pub mod nodes;
pub mod report_cache;
pub mod run;
pub mod stats;

pub use cancel::CancelToken;
pub use config::{HbmConfig, SimConfig};
pub use engine::{RunBinding, RunLimits, RunPool, SimPlan, SimReport, Simulation};
pub use fingerprint::Fingerprint;
pub use report_cache::{
    Replay, ReportAggregates, ReportCache, ReportCacheStats, Resolution, plan_content_key,
};
pub use stats::NodeStats;
