//! Cycle-approximate simulator for STeP programs (§4.3).
//!
//! The paper implements its simulator on the Dataflow Abstract Machine
//! (DAM) framework: every operator executes asynchronously with a local
//! clock, communicating over bounded, latency-carrying FIFOs; off-chip
//! accesses go through an HBM timing node and higher-order operators charge
//! a roofline cost `max(in_bytes/mem_bw, flops/compute_bw,
//! out_bytes/mem_bw)` per element. This crate reproduces those semantics
//! with a deterministic, single-threaded conservative event model:
//!
//! - [`channel::Channel`] — bounded FIFOs carrying `(ready_time, token)`
//!   pairs, modelling backpressure *in time* (a sender blocked on a full
//!   queue resumes at the receiver's dequeue time) and a one-token-per-
//!   cycle port rate;
//! - [`hbm::Hbm`] — a bank/row/bus DRAM timing model standing in for
//!   Ramulator 2.0 (see DESIGN.md for the substitution argument);
//! - [`arena::Arena`] — the on-chip scratchpad backing `Bufferize` /
//!   `Streamify`, tracking peak usage for dynamic buffers;
//! - [`arena::BackingStore`] — optional dense off-chip contents so that
//!   loads return real data in functional tests (phantom otherwise);
//! - [`nodes`] — an executor per STeP operator implementing both the
//!   functional token semantics of §3.2 and the timing model of §4.3,
//!   with a readiness surface ([`nodes::SimNode::blocked_on`]) reporting
//!   which edge blocked a stalled node;
//! - [`engine::Simulation`] — the event-driven scheduler: channels
//!   record wake events (token arrivals, freed slots, closes) that the
//!   engine drains into a ready set, so only nodes that can progress are
//!   fired, and a time calendar advances the execution horizon directly
//!   to the next pending channel event instead of probing every node for
//!   quiescence. Host execution order (and therefore every cycle and
//!   traffic figure) is identical to the earlier round-robin poller —
//!   waves fire in node-index order, minus the no-op fires. Deadlocks
//!   are detected and reported with each blocked node's blocking edge.
//!   [`engine::SimReport`] carries cycles, off-chip traffic, measured
//!   on-chip memory, utilization, scheduler-efficiency counters
//!   ([`engine::SimReport::total_fires`]), and recorded sink streams.
//!
//! # Example
//!
//! ```
//! use step_core::graph::GraphBuilder;
//! use step_core::ops::LinearLoadCfg;
//! use step_sim::{SimConfig, Simulation};
//!
//! let mut g = GraphBuilder::new();
//! let trigger = g.unit_source(1);
//! let tiles = g.linear_offchip_load(
//!     &trigger,
//!     LinearLoadCfg::new(0, (64, 256), (64, 64)),
//! ).unwrap();
//! g.linear_offchip_store(&tiles, 0x10_0000).unwrap();
//! let report = Simulation::new(g.finish(), SimConfig::default())
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert_eq!(report.offchip_traffic, 2 * 64 * 256 * 2); // load + store
//! assert!(report.cycles > 0);
//! ```

pub mod arena;
pub mod channel;
pub mod config;
pub mod engine;
pub mod hbm;
pub mod nodes;
pub mod stats;

pub use config::{HbmConfig, SimConfig};
pub use engine::{SimReport, Simulation};
pub use stats::NodeStats;
