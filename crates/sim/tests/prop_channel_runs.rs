//! Differential property suite for the run-length channel.
//!
//! A *reference channel* reimplements the pre-run-length transport —
//! one `VecDeque` entry per token, one `send`/`pop` per token — and a
//! seeded generator drives random interleaved operation sequences
//! (single and bulk sends/pops with random paces and horizons, closes,
//! producer finishes, floor raises, and cross-shard credit shuttles)
//! against both implementations. After every operation the observable
//! state must agree exactly: dequeue `(time, token)` sequences, event
//! bits, floors, lengths, backpressure (`can_send`, and the effective
//! send times of a follow-up burst), and the coupled `Zip` pop.
//!
//! Cases come from a seeded local PRNG (the build container has no
//! crates.io access, so `proptest` is unavailable); failures print the
//! case seed for replay.

use std::collections::VecDeque;
use step_core::elem::Elem;
use step_core::token::Token;
use step_sim::channel::{Channel, event, pop_zip_runs};
use step_sim::run::TimeRun;

const CASES: u64 = 64;
const OPS_PER_CASE: u64 = 120;

/// SplitMix64-based case generator.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.range(0, 100) < percent
    }
}

/// The pre-run-length transport, one queue entry per token: the
/// executable specification every bulk API is tested against.
struct RefChannel {
    latency: u64,
    queue: VecDeque<(u64, Token)>,
    slots: VecDeque<u64>,
    last_send: Option<u64>,
    last_pop: Option<u64>,
    closed: bool,
    floor: u64,
    events: u8,
}

impl RefChannel {
    fn new(capacity: usize, latency: u64) -> RefChannel {
        RefChannel {
            latency,
            queue: VecDeque::new(),
            slots: std::iter::repeat_n(0, capacity).collect(),
            last_send: None,
            last_pop: None,
            closed: false,
            floor: 0,
            events: 0,
        }
    }

    fn can_send(&self) -> bool {
        self.closed || !self.slots.is_empty()
    }

    fn send(&mut self, now: u64, token: Token) -> u64 {
        if self.closed {
            return now;
        }
        let slot = self.slots.pop_front().expect("send on full ref channel");
        let mut t = now.max(slot);
        if let Some(last) = self.last_send {
            t = t.max(last + 1);
        }
        self.last_send = Some(t);
        self.queue.push_back((t + self.latency, token));
        self.events |= event::ENQUEUED;
        t
    }

    fn pop(&mut self, now: u64) -> (u64, Token) {
        let (ready, token) = self.queue.pop_front().expect("pop on empty ref channel");
        let mut t = now.max(ready);
        if let Some(last) = self.last_pop {
            t = t.max(last + 1);
        }
        self.last_pop = Some(t);
        self.slots.push_back(t);
        self.events |= event::FREED;
        (t, token)
    }

    /// Per-token replay of a bulk pop of `k` tokens with consumer pace
    /// `pace`: the executable specification `Channel::pop_run` must
    /// reproduce.
    fn pop_k(&mut self, now: u64, pace: u64, k: u64) -> Vec<(u64, Token)> {
        let mut out = Vec::new();
        let mut clock = now;
        for _ in 0..k {
            let (t, tok) = self.pop(clock);
            clock = t + pace;
            out.push((t, tok));
        }
        out
    }

    fn close(&mut self) {
        self.closed = true;
        self.queue.clear();
        self.events |= event::CLOSED;
    }

    fn take_events(&mut self) -> u8 {
        std::mem::take(&mut self.events)
    }
}

fn val(x: u64) -> Token {
    Token::Val(Elem::Addr(x))
}

fn flatten(pieces: &[TimeRun]) -> Vec<u64> {
    pieces
        .iter()
        .flat_map(|r| (0..r.count).map(|i| r.at(i)))
        .collect()
}

/// One random interleaved case over a (dut, reference) pair.
fn run_case(seed: u64) {
    let mut g = Gen(seed);
    let capacity = g.range(1, 9) as usize;
    let latency = g.range(0, 4);
    let mut dut = Channel::new(capacity, latency);
    let mut reference = RefChannel::new(capacity, latency);
    let mut send_clock = 0u64;
    let mut pop_clock = 0u64;
    let mut next_distinct = 1000u64;

    for op in 0..OPS_PER_CASE {
        let ctx = || format!("seed {seed} op {op}");
        match g.range(0, 100) {
            // Bulk send of a repeated value (sometimes a stop/distinct).
            0..40 => {
                let n = g.range(1, 6);
                let n = n.min(dut.free_slots());
                if n == 0 || dut.is_closed() {
                    continue;
                }
                send_clock += g.range(0, 5);
                let stride = g.range(0, 3);
                let tok = if g.chance(70) {
                    val(7)
                } else if g.chance(50) {
                    next_distinct += 1;
                    val(next_distinct)
                } else {
                    Token::Stop(1)
                };
                let prod = TimeRun::new(send_clock, stride, n);
                dut.send_run(prod, tok.clone());
                for i in 0..n {
                    reference.send(prod.at(i), tok.clone());
                }
            }
            // Single send.
            40..50 => {
                if dut.free_slots() == 0 || dut.is_closed() {
                    continue;
                }
                send_clock += g.range(0, 3);
                dut.send(send_clock, val(7));
                reference.send(send_clock, val(7));
            }
            // Bulk pop with random pace/horizon/max: the reference
            // replays exactly the tokens the bulk pop consumed, one at a
            // time, and every dequeue time must match.
            50..75 => {
                let pace = g.range(0, 4);
                let max = g.range(1, 8);
                let horizon = if g.chance(30) {
                    pop_clock + g.range(0, 16)
                } else {
                    u64::MAX
                };
                let mut times = Vec::new();
                match dut.pop_run(pop_clock, pace, horizon, max, &mut times) {
                    None => {
                        let head = reference.queue.front();
                        assert!(
                            head.is_none_or(|&(t, _)| t > horizon),
                            "{}: dut refused a visible head",
                            ctx()
                        );
                    }
                    Some((tok, k)) => {
                        let want = reference.pop_k(pop_clock, pace, k);
                        let got_times = flatten(&times);
                        let want_times: Vec<u64> = want.iter().map(|&(t, _)| t).collect();
                        assert_eq!(got_times, want_times, "{}: pop times", ctx());
                        for (_, w) in &want {
                            assert!(w.coalesces_with(&tok) || *w == tok, "{}: token", ctx());
                        }
                        pop_clock = got_times.last().unwrap() + pace;
                    }
                }
            }
            // Single pop.
            75..85 => {
                if dut.is_empty() {
                    assert!(reference.queue.is_empty(), "{}: emptiness", ctx());
                    continue;
                }
                let got = dut.pop(pop_clock);
                let want = reference.pop(pop_clock);
                assert_eq!(got, want, "{}: single pop", ctx());
                pop_clock = got.0;
            }
            // Floor raise.
            85..92 => {
                let f = g.range(0, 200);
                dut.raise_floor(f);
                reference.floor = reference.floor.max(f);
            }
            // Producer finish.
            92..96 => {
                dut.finish_src();
                reference.events |= event::SRC_FINISHED;
            }
            // Receiver close (rare: ends most interactions).
            _ => {
                if g.chance(20) {
                    dut.close();
                    reference.close();
                }
            }
        }
        // Observable state agrees after every step.
        assert_eq!(dut.len(), reference.queue.len(), "seed {seed} op {op}: len");
        assert_eq!(
            dut.can_send(),
            reference.can_send(),
            "seed {seed} op {op}: can_send"
        );
        assert_eq!(
            dut.time_floor(),
            reference.floor + latency,
            "seed {seed} op {op}: floor"
        );
        assert_eq!(
            dut.take_events(),
            reference.take_events(),
            "seed {seed} op {op}: events"
        );
        assert_eq!(
            dut.peek().map(|(t, _)| t),
            reference.queue.front().map(|(t, _)| *t),
            "seed {seed} op {op}: head ready"
        );
    }
    // Backpressure epilogue: a draining burst must observe identical
    // effective send times (slot bookkeeping agrees exactly).
    if !dut.is_closed() {
        while dut.free_slots() > 0 && dut.len() < 64 {
            assert_eq!(
                dut.send(send_clock, val(9)),
                reference.send(send_clock, val(9)),
                "seed {seed}: epilogue send"
            );
        }
    }
}

#[test]
fn run_channel_matches_per_token_reference() {
    for seed in 0..CASES {
        run_case(seed);
    }
}

/// The coupled `Zip` pop against an alternating per-token reference.
#[test]
fn zip_pop_matches_per_token_reference() {
    for seed in 0..CASES {
        let mut g = Gen(seed ^ 0xABCD);
        let cap = 16;
        let latency = g.range(0, 3);
        let mk = |g: &mut Gen, latency| {
            let mut dut = Channel::new(cap, latency);
            let mut reference = RefChannel::new(cap, latency);
            let n = g.range(1, 10);
            let start = g.range(0, 20);
            let stride = g.range(0, 9);
            let prod = TimeRun::new(start, stride, n);
            dut.send_run(prod, val(7));
            for i in 0..n {
                reference.send(prod.at(i), val(7));
            }
            (dut, reference, n)
        };
        let (mut da, mut ra, na) = mk(&mut g, latency);
        let (mut db, mut rb, nb) = mk(&mut g, latency);
        let now = g.range(0, 30);
        let horizon = if g.chance(30) {
            now + g.range(0, 40)
        } else {
            u64::MAX
        };
        let max = g.range(1, 12);

        // Reference: alternate single pops while both heads are visible.
        let mut m = now;
        let mut want = Vec::new();
        while (want.len() as u64) < max
            && ra.queue.front().is_some_and(|&(t, _)| t <= horizon)
            && rb.queue.front().is_some_and(|&(t, _)| t <= horizon)
        {
            let (ta, _) = ra.pop(m);
            let (tb, _) = rb.pop(ta);
            m = tb;
            want.push((ta, tb));
        }

        let (mut at, mut bt) = (Vec::new(), Vec::new());
        let got = pop_zip_runs(&mut da, &mut db, now, horizon, max, &mut at, &mut bt);
        match got {
            None => assert!(want.is_empty(), "seed {seed}: zip popped nothing"),
            Some((_, _, k)) => {
                assert_eq!(k as usize, want.len(), "seed {seed}: zip count");
                assert_eq!(
                    flatten(&at),
                    want.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
                    "seed {seed}: a times"
                );
                assert_eq!(
                    flatten(&bt),
                    want.iter().map(|&(_, b)| b).collect::<Vec<_>>(),
                    "seed {seed}: b times"
                );
            }
        }
        // Slot state must agree: drain both with follow-up sends.
        let _ = (na, nb);
        for _ in 0..3 {
            if da.free_slots() > 0 {
                assert_eq!(
                    da.send(0, val(1)),
                    ra.send(0, val(1)),
                    "seed {seed}: a slots"
                );
            }
            if db.free_slots() > 0 {
                assert_eq!(
                    db.send(0, val(1)),
                    rb.send(0, val(1)),
                    "seed {seed}: b slots"
                );
            }
        }
    }
}

/// Cross-shard halves: token runs and freed-slot credits shuttle between
/// writer and reader halves with per-token-identical times.
#[test]
fn cross_shard_shuttle_matches_reference() {
    for seed in 0..CASES {
        let mut g = Gen(seed ^ 0x5EED);
        let cap = g.range(1, 6) as usize;
        let latency = g.range(0, 4);
        let mut w = Channel::new(cap, latency);
        let mut r = Channel::cross_reader(cap, latency);
        let mut reference = RefChannel::new(cap, latency);
        let mut pop_clock = 0u64;
        for _ in 0..30 {
            // Writer sends while credits allow.
            let n = g.range(1, 4).min(w.free_slots());
            if n > 0 {
                let t0 = g.range(0, 10);
                let prod = TimeRun::new(t0, g.range(0, 3), n);
                w.send_run(prod, val(3));
                for i in 0..n {
                    reference.send(prod.at(i), val(3));
                }
            }
            // Barrier: shuttle tokens and credits.
            let moved: Vec<(TimeRun, Token)> = w.drain_queue().collect();
            for (ts, tok) in moved {
                r.inject(ts, tok);
            }
            // Reader pops a few.
            let max = g.range(0, 4);
            if max > 0 {
                let mut times = Vec::new();
                if let Some((_, k)) = r.pop_run(pop_clock, 0, u64::MAX, max, &mut times) {
                    let want = reference.pop_k(pop_clock, 0, k);
                    let got_times = flatten(&times);
                    assert_eq!(
                        got_times,
                        want.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
                        "seed {seed}: shuttle times"
                    );
                    pop_clock = got_times.last().unwrap() + 1;
                }
            }
            // Credits return to the writer; the reference frees slots
            // inline, so only the totals must agree.
            let freed = r.drain_freed_slots();
            w.grant_slots(freed);
            assert_eq!(
                w.free_slots() + w.len() as u64 + r.len() as u64,
                cap as u64,
                "seed {seed}: credit conservation"
            );
            assert_eq!(
                w.len() + r.len(),
                reference.queue.len(),
                "seed {seed}: queue totals"
            );
        }
    }
}
