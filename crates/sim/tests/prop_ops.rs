//! Property tests on operator semantics: well-formedness is preserved by
//! every shape operator, routing roundtrips preserve values, and phantom
//! payloads are timing-identical to dense ones.

use proptest::prelude::*;
use step_core::elem::{Elem, ElemKind, Selector};
use step_core::func::{EwOp, MapFn};
use step_core::graph::GraphBuilder;
use step_core::shape::StreamShape;
use step_core::tile::Tile;
use step_core::token::{self, Token};
use step_sim::{SimConfig, Simulation};

/// Random rank-1 stream content: groups of scalar tiles with value tags.
fn arb_groups() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..100).prop_map(|v| v as f32), 1..6),
        1..6,
    )
}

fn tile_groups(groups: &[Vec<f32>]) -> Vec<Vec<Elem>> {
    groups
        .iter()
        .map(|g| {
            g.iter()
                .map(|&v| Elem::Tile(Tile::splat(1, 1, v)))
                .collect()
        })
        .collect()
}

fn source_rank1(g: &mut GraphBuilder, groups: &[Vec<f32>]) -> step_core::graph::StreamRef {
    let n = groups.len() as u64;
    let max = groups.iter().map(Vec::len).max().unwrap_or(1) as u64;
    g.source(
        token::rank1_from_groups(&tile_groups(groups)),
        StreamShape::fixed(&[n, max]),
        ElemKind::tile(1, 1),
    )
    .expect("well-formed source")
}

fn values_of(tokens: &[Token]) -> Vec<f32> {
    tokens
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Tile(t)) => t.get(0, 0),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flatten_preserves_values_and_wellformedness(groups in arb_groups()) {
        let mut g = GraphBuilder::new();
        let s = source_rank1(&mut g, &groups);
        let f = g.flatten(&s, 0, 1).unwrap();
        let sink = g.sink(&f).unwrap();
        let report = Simulation::new(g.finish(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let toks = report.sink_tokens(sink).unwrap();
        token::validate(toks, 0).unwrap();
        let expect: Vec<f32> = groups.iter().flatten().copied().collect();
        prop_assert_eq!(values_of(toks), expect);
    }

    #[test]
    fn promote_preserves_values_and_raises_rank(groups in arb_groups()) {
        let mut g = GraphBuilder::new();
        let s = source_rank1(&mut g, &groups);
        let p = g.promote(&s).unwrap();
        let sink = g.sink(&p).unwrap();
        let report = Simulation::new(g.finish(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let toks = report.sink_tokens(sink).unwrap();
        token::validate(toks, 2).unwrap();
        let expect: Vec<f32> = groups.iter().flatten().copied().collect();
        prop_assert_eq!(values_of(toks), expect);
    }

    #[test]
    fn reshape_pads_to_chunk_multiples(
        groups in arb_groups(),
        chunk in 1u64..5,
    ) {
        let mut g = GraphBuilder::new();
        let s = source_rank1(&mut g, &groups);
        let flat = g.flatten(&s, 0, 1).unwrap();
        let (data, padding) = g
            .reshape(&flat, chunk, Some(Elem::Tile(Tile::splat(1, 1, -1.0))))
            .unwrap();
        let dsink = g.sink(&data).unwrap();
        let psink = g.sink(&padding).unwrap();
        let report = Simulation::new(g.finish(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let toks = report.sink_tokens(dsink).unwrap();
        token::validate(toks, 1).unwrap();
        let vals = values_of(toks);
        let n: usize = groups.iter().map(Vec::len).sum();
        // Padded to the next chunk multiple; real values come first.
        prop_assert_eq!(vals.len(), n.div_ceil(chunk as usize) * chunk as usize);
        let expect: Vec<f32> = groups.iter().flatten().copied().collect();
        prop_assert_eq!(&vals[..n], expect.as_slice());
        prop_assert!(vals[n..].iter().all(|&v| v == -1.0));
        // Padding flags agree with positions.
        let flags: Vec<bool> = report
            .sink_tokens(psink)
            .unwrap()
            .iter()
            .filter_map(|t| match t {
                Token::Val(Elem::Bool(b)) => Some(*b),
                _ => None,
            })
            .collect();
        prop_assert_eq!(flags.iter().filter(|&&b| b).count(), vals.len() - n);
    }

    #[test]
    fn partition_reassemble_roundtrip_preserves_order(
        groups in arb_groups(),
        targets in prop::collection::vec(0u32..3, 1..6),
    ) {
        let mut g = GraphBuilder::new();
        let s = source_rank1(&mut g, &groups);
        let sels: Vec<Selector> = (0..groups.len())
            .map(|i| Selector::one(targets[i % targets.len()]))
            .collect();
        let sel = g.selector_source(sels, 3).unwrap();
        let self2 = g.fork(&sel, 2).unwrap();
        let outs = g.partition(&s, &self2[0], 1, 3).unwrap();
        let refs: Vec<&_> = outs.iter().collect();
        let merged = g.reassemble(&refs, &self2[1], 1).unwrap();
        let sink = g.sink(&merged).unwrap();
        let report = Simulation::new(g.finish(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let toks = report.sink_tokens(sink).unwrap();
        token::validate(toks, 2).unwrap();
        let expect: Vec<f32> = groups.iter().flatten().copied().collect();
        prop_assert_eq!(values_of(toks), expect);
    }

    #[test]
    fn expand_static_repeats_each_value(
        groups in arb_groups(),
        factor in 1u64..4,
    ) {
        let mut g = GraphBuilder::new();
        let s = source_rank1(&mut g, &groups);
        let e = g.expand_static(&s, factor).unwrap();
        let sink = g.sink(&e).unwrap();
        let report = Simulation::new(g.finish(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let toks = report.sink_tokens(sink).unwrap();
        token::validate(toks, 1).unwrap();
        let expect: Vec<f32> = groups
            .iter()
            .flatten()
            .flat_map(|&v| std::iter::repeat_n(v, factor as usize))
            .collect();
        prop_assert_eq!(values_of(toks), expect);
    }

    #[test]
    fn phantom_and_dense_runs_are_timing_identical(groups in arb_groups()) {
        let build = |dense: bool| {
            let mut g = GraphBuilder::new();
            let elems: Vec<Vec<Elem>> = groups
                .iter()
                .map(|grp| {
                    grp.iter()
                        .map(|&v| {
                            Elem::Tile(if dense {
                                Tile::splat(4, 8, v)
                            } else {
                                Tile::phantom(4, 8)
                            })
                        })
                        .collect()
                })
                .collect();
            let n = groups.len() as u64;
            let max = groups.iter().map(Vec::len).max().unwrap_or(1) as u64;
            let s = g
                .source(
                    token::rank1_from_groups(&elems),
                    StreamShape::fixed(&[n, max]),
                    ElemKind::tile(4, 8),
                )
                .unwrap();
            let m = g.map(&s, MapFn::Elementwise(EwOp::Silu), 16).unwrap();
            g.linear_offchip_store(&m, 0x10_0000).unwrap();
            Simulation::new(g.finish(), SimConfig::default())
                .unwrap()
                .run()
                .unwrap()
        };
        let dense = build(true);
        let phantom = build(false);
        prop_assert_eq!(dense.cycles, phantom.cycles);
        prop_assert_eq!(dense.offchip_traffic, phantom.offchip_traffic);
        prop_assert_eq!(dense.total_flops, phantom.total_flops);
        prop_assert_eq!(dense.onchip_memory, phantom.onchip_memory);
    }
}
