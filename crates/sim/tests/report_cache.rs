//! Conformance suite for binding fingerprints and the report cache.
//!
//! Two families of properties:
//!
//! 1. **Fingerprint soundness** ([`RunBinding::fingerprint`]): equal
//!    bindings fingerprint equal (including across source insertion
//!    order — sources live in a `BTreeMap`), and any perturbation that
//!    can change a run's outcome — a token's value, a stream's order or
//!    length, a preload's address/shape/data, a deterministic deadline —
//!    changes the fingerprint. Host-dependent limits (wall deadline,
//!    cancellation) are deliberately *not* part of the identity; they
//!    make the binding non-cache-safe instead.
//! 2. **Cache semantics** ([`ReportCache`]): exact hits are
//!    bit-identical `Arc` replays, concurrent misses on one key
//!    coalesce onto a single engine run, failed and panicked runs
//!    resolve their slot (waiters observe the error, the next request
//!    retries), disabled mode is a pure passthrough, non-cache-safe
//!    bindings bypass storage, and [`ReportCache::checked`] actually
//!    enforces the canonical layer's [`ReportAggregates`] guarantee — a
//!    deliberately unsound canonical key panics instead of serving a
//!    wrong replay.

use std::panic::{AssertUnwindSafe, catch_unwind};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use step_core::Graph;
use step_core::elem::{Elem, ElemKind};
use step_core::error::StepError;
use step_core::graph::{GraphBuilder, NodeId};
use step_core::shape::StreamShape;
use step_core::tile::Tile;
use step_core::token::{self, Token};
use step_sim::{
    CancelToken, ReportAggregates, ReportCache, ReportCacheStats, Resolution, RunBinding,
    SimConfig, SimPlan, SimReport,
};

/// A tiny rebindable workload: `source -> map(relu) -> sink` over 1x1
/// tiles, the same shape the plan-reuse suite uses.
fn bindable_graph(values: &[f32]) -> (Graph, NodeId) {
    use step_core::func::{EwOp, MapFn};
    let mut g = GraphBuilder::new();
    let tokens = source_tokens(values);
    let n = values.len() as u64;
    let src = g
        .source(tokens, StreamShape::fixed(&[n]), ElemKind::tile(1, 1))
        .unwrap();
    let src_id = g.node_of(&src);
    let relu = g.map(&src, MapFn::Elementwise(EwOp::Relu), 64).unwrap();
    g.sink(&relu).unwrap();
    (g.finish(), src_id)
}

fn source_tokens(values: &[f32]) -> Vec<Token> {
    token::rank0_from_values(values.iter().map(|&v| Elem::Tile(Tile::splat(1, 1, v))))
}

fn bind(src: NodeId, values: &[f32]) -> RunBinding {
    let mut b = RunBinding::new();
    b.bind_source(src, source_tokens(values));
    b
}

/// A deterministic xorshift64* stream — the suite's only entropy
/// source, so every "random" perturbation replays exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f32(&mut self) -> f32 {
        (self.next() % 1000) as f32 / 10.0 - 50.0
    }
}

#[test]
fn equal_bindings_fingerprint_equal_across_insertion_order() {
    for seed in 1..=8u64 {
        let mut rng = Rng(seed);
        let a_vals: Vec<f32> = (0..6).map(|_| rng.f32()).collect();
        let b_vals: Vec<f32> = (0..4).map(|_| rng.f32()).collect();
        let data: Vec<f32> = (0..8).map(|_| rng.f32()).collect();
        let build = |first_a: bool| {
            let mut b = RunBinding::new();
            if first_a {
                b.bind_source(NodeId(1), source_tokens(&a_vals));
                b.bind_source(NodeId(2), source_tokens(&b_vals));
            } else {
                b.bind_source(NodeId(2), source_tokens(&b_vals));
                b.bind_source(NodeId(1), source_tokens(&a_vals));
            }
            b.preload(0x1000, 2, 4, data.clone());
            b.deadline_cycles(1_000_000);
            b
        };
        assert_eq!(
            build(true).fingerprint(),
            build(false).fingerprint(),
            "seed {seed}: source insertion order leaked into the fingerprint"
        );
        // And the fingerprint is stable across repeated computation.
        let b = build(true);
        assert_eq!(b.fingerprint(), b.fingerprint());
    }
}

#[test]
fn any_outcome_relevant_perturbation_changes_the_fingerprint() {
    for seed in 1..=16u64 {
        let mut rng = Rng(seed);
        let vals: Vec<f32> = (0..8).map(|_| rng.f32()).collect();
        let data: Vec<f32> = (0..6).map(|_| rng.f32()).collect();
        let base = {
            let mut b = RunBinding::new();
            b.bind_source(NodeId(3), source_tokens(&vals));
            b.preload(0x2000, 3, 2, data.clone());
            b
        };
        let fp = base.fingerprint();
        // Single token value.
        let mut v = vals.clone();
        let i = (rng.next() as usize) % v.len();
        v[i] += 1.0;
        let mut b = RunBinding::new();
        b.bind_source(NodeId(3), source_tokens(&v));
        b.preload(0x2000, 3, 2, data.clone());
        assert_ne!(b.fingerprint(), fp, "seed {seed}: token value perturbation");
        // Token order (swap two distinct values).
        let mut v = vals.clone();
        let (i, j) = (0usize, 1 + (rng.next() as usize) % (v.len() - 1));
        if v[i].to_bits() != v[j].to_bits() {
            v.swap(i, j);
            let mut b = RunBinding::new();
            b.bind_source(NodeId(3), source_tokens(&v));
            b.preload(0x2000, 3, 2, data.clone());
            assert_ne!(b.fingerprint(), fp, "seed {seed}: token order perturbation");
        }
        // Stream length.
        let mut b = RunBinding::new();
        b.bind_source(NodeId(3), source_tokens(&vals[..vals.len() - 1]));
        b.preload(0x2000, 3, 2, data.clone());
        assert_ne!(
            b.fingerprint(),
            fp,
            "seed {seed}: stream length perturbation"
        );
        // Bound node identity.
        let mut b = RunBinding::new();
        b.bind_source(NodeId(4), source_tokens(&vals));
        b.preload(0x2000, 3, 2, data.clone());
        assert_ne!(b.fingerprint(), fp, "seed {seed}: bound node perturbation");
        // Preload data bit, address, and shape.
        let mut d = data.clone();
        let flip = (rng.next() as usize) % d.len();
        d[flip] *= -1.0;
        for (addr, rows, cols, pd) in [
            (0x2000u64, 3usize, 2usize, d),
            (0x2004, 3, 2, data.clone()),
            (0x2000, 2, 3, data.clone()),
        ] {
            let mut b = RunBinding::new();
            b.bind_source(NodeId(3), source_tokens(&vals));
            b.preload(addr, rows, cols, pd);
            assert_ne!(b.fingerprint(), fp, "seed {seed}: preload perturbation");
        }
        // Deterministic limits are identity; host-dependent ones are not.
        let mut b = base.clone();
        b.deadline_cycles(10);
        assert_ne!(b.fingerprint(), fp, "seed {seed}: cycle deadline ignored");
        let mut b = base.clone();
        b.deadline_rounds(10);
        assert_ne!(b.fingerprint(), fp, "seed {seed}: round deadline ignored");
        let mut b = base.clone();
        b.wall_deadline_ms(5);
        assert_eq!(
            b.fingerprint(),
            fp,
            "seed {seed}: wall deadline folded into the identity — it is \
             host-dependent and must gate caching via cache_safe instead"
        );
        assert!(!b.cache_safe());
        let mut b = base.clone();
        b.cancel_token(CancelToken::new());
        assert_eq!(b.fingerprint(), fp);
        assert!(!b.cache_safe());
        assert!(base.cache_safe());
    }
}

/// Host-side pool counters aside, a replay must be the same report.
fn assert_bit_identical(a: &SimReport, b: &SimReport) {
    let norm = |r: &SimReport| SimReport {
        run_allocs: 0,
        pool_resets: 0,
        ..r.clone()
    };
    assert_eq!(norm(a), norm(b));
}

#[test]
fn exact_hits_replay_bit_identical_and_counters_pin() {
    let (graph, src) = bindable_graph(&[1.0, -2.0, 3.0, -4.0]);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let cache = ReportCache::new();
    let key = 0x51;
    let binding = bind(src, &[5.0, -6.0, 7.0, -8.0]);
    let mut run = || plan.run_bound(&binding);
    let first = cache.replay_or_run(key, &binding, None, &mut run).unwrap();
    assert_eq!(first.resolution, Resolution::Simulated);
    let second = cache.replay_or_run(key, &binding, None, &mut run).unwrap();
    assert_eq!(second.resolution, Resolution::Exact);
    // The hit is the *same* stored report, not a re-run.
    assert!(Arc::ptr_eq(&first.report, &second.report));
    assert_bit_identical(&first.report, &plan.run_bound(&binding).unwrap());
    // A different binding under the same plan key is its own entry.
    let other = bind(src, &[9.0, -1.0, 2.0, -3.0]);
    let got = cache
        .replay_or_run(key, &other, None, &mut || plan.run_bound(&other))
        .unwrap();
    assert_eq!(got.resolution, Resolution::Simulated);
    // A different *plan* key never aliases: same binding, fresh miss.
    let got = cache.replay_or_run(0x52, &binding, None, &mut run).unwrap();
    assert_eq!(got.resolution, Resolution::Simulated);
    assert_eq!(
        cache.stats(),
        ReportCacheStats {
            hits: 1,
            misses: 3,
            canonical_hits: 0
        }
    );
    assert_eq!(cache.len(), 3);
}

#[test]
fn concurrent_misses_coalesce_onto_one_engine_run() {
    let (graph, src) = bindable_graph(&[1.0, 2.0]);
    let plan = Arc::new(SimPlan::new(graph, SimConfig::default()).unwrap());
    let cache = Arc::new(ReportCache::new());
    let binding = Arc::new(bind(src, &[3.0, -4.0]));
    let runs = Arc::new(AtomicU64::new(0));
    const REQUESTERS: usize = 8;
    std::thread::scope(|sc| {
        for _ in 0..REQUESTERS {
            let (cache, plan, binding, runs) = (
                Arc::clone(&cache),
                Arc::clone(&plan),
                Arc::clone(&binding),
                Arc::clone(&runs),
            );
            sc.spawn(move || {
                let got = cache
                    .replay_or_run(0x7, &binding, None, &mut || {
                        runs.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window so waiters actually
                        // coalesce instead of arriving after resolution.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        plan.run_bound(&binding)
                    })
                    .unwrap();
                assert!(matches!(
                    got.resolution,
                    Resolution::Exact | Resolution::Simulated
                ));
            });
        }
    });
    // However the scheduler interleaved the eight requests, exactly one
    // of them ran the engine, and every request resolved as one hit or
    // one miss.
    let stats = cache.stats();
    assert_eq!(runs.load(Ordering::Relaxed), stats.misses);
    assert_eq!(stats.hits + stats.misses, REQUESTERS as u64);
    assert_eq!(stats.canonical_hits, 0);
}

#[test]
fn failures_propagate_and_the_next_request_retries() {
    let (graph, src) = bindable_graph(&[1.0]);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let cache = ReportCache::new();
    let binding = bind(src, &[2.0]);
    let err = cache.replay_or_run(0x9, &binding, None, &mut || {
        Err(StepError::Config("injected".into()))
    });
    assert!(matches!(err, Err(StepError::Config(_))));
    // The failure is not sticky for new requests: the retry simulates.
    let got = cache
        .replay_or_run(0x9, &binding, None, &mut || plan.run_bound(&binding))
        .unwrap();
    assert_eq!(got.resolution, Resolution::Simulated);
    // And the recovered slot serves hits again.
    let hit = cache
        .replay_or_run(0x9, &binding, None, &mut || plan.run_bound(&binding))
        .unwrap();
    assert_eq!(hit.resolution, Resolution::Exact);
    assert_eq!(
        cache.stats(),
        ReportCacheStats {
            hits: 1,
            misses: 2,
            canonical_hits: 0
        }
    );
}

#[test]
fn panicking_runs_become_typed_errors_not_hangs() {
    let (graph, src) = bindable_graph(&[1.0]);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let cache = ReportCache::new();
    let binding = bind(src, &[2.0]);
    let err = cache.replay_or_run(0xA, &binding, None, &mut || {
        panic!("injected panic in engine run")
    });
    match err {
        Err(StepError::Panicked(msg)) => assert!(msg.contains("injected panic")),
        other => panic!("expected Panicked, got {other:?}"),
    }
    let got = cache
        .replay_or_run(0xA, &binding, None, &mut || plan.run_bound(&binding))
        .unwrap();
    assert_eq!(got.resolution, Resolution::Simulated);
}

#[test]
fn disabled_mode_is_a_pure_passthrough() {
    let (graph, src) = bindable_graph(&[1.0, 2.0]);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let cache = ReportCache::disabled();
    let binding = bind(src, &[3.0, 4.0]);
    for _ in 0..3 {
        let got = cache
            .replay_or_run(0xB, &binding, Some(0xC), &mut || plan.run_bound(&binding))
            .unwrap();
        assert_eq!(got.resolution, Resolution::Simulated);
    }
    assert_eq!(cache.stats(), ReportCacheStats::default());
    assert!(cache.is_empty());
}

#[test]
fn non_cache_safe_bindings_bypass_storage() {
    let (graph, src) = bindable_graph(&[1.0]);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let cache = ReportCache::new();
    let mut binding = bind(src, &[2.0]);
    binding.wall_deadline_ms(60_000);
    for _ in 0..2 {
        let got = cache
            .replay_or_run(0xD, &binding, Some(0xE), &mut || plan.run_bound(&binding))
            .unwrap();
        assert_eq!(got.resolution, Resolution::Simulated);
    }
    assert!(cache.is_empty(), "host-dependent binding was stored");
    assert_eq!(
        cache.stats(),
        ReportCacheStats {
            hits: 0,
            misses: 2,
            canonical_hits: 0
        }
    );
}

#[test]
fn canonical_layer_serves_aggregate_equivalent_bindings() {
    // Permuting the values through an elementwise map changes the sink
    // stream but no whole-run aggregate — a sound canonical class.
    let (graph, src) = bindable_graph(&[1.0, 2.0, 3.0, 4.0]);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    for cache in [ReportCache::new(), ReportCache::checked()] {
        let canonical = Some(0xF00D);
        let a = bind(src, &[1.0, -2.0, 3.0, -4.0]);
        let b = bind(src, &[-4.0, 3.0, -2.0, 1.0]);
        let first = cache
            .replay_or_run(0x10, &a, canonical, &mut || plan.run_bound(&a))
            .unwrap();
        assert_eq!(first.resolution, Resolution::Simulated);
        // Different exact fingerprint, same canonical class: a canonical
        // hit — in checked mode, re-simulated and the projection
        // asserted.
        let second = cache
            .replay_or_run(0x10, &b, canonical, &mut || plan.run_bound(&b))
            .unwrap();
        assert_eq!(second.resolution, Resolution::Canonical);
        assert_eq!(
            ReportAggregates::of(&second.report),
            ReportAggregates::of(&plan.run_bound(&b).unwrap())
        );
        assert_eq!(
            cache.stats(),
            ReportCacheStats {
                hits: 1,
                misses: 1,
                canonical_hits: 1
            },
            "checked-mode re-simulation must not move the counters"
        );
    }
}

#[test]
fn checked_mode_refutes_an_unsound_canonical_key() {
    // Two bindings with *different* aggregates (different stream
    // lengths) crammed into one canonical class: Enabled mode would
    // happily serve the wrong replay — checked mode must panic instead.
    let (graph, src) = bindable_graph(&[1.0, 2.0, 3.0, 4.0]);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let a = bind(src, &[1.0, 2.0, 3.0, 4.0]);
    let b = bind(src, &[1.0, 2.0]);
    assert_ne!(
        ReportAggregates::of(&plan.run_bound(&a).unwrap()),
        ReportAggregates::of(&plan.run_bound(&b).unwrap()),
        "perturbation too weak to distinguish the classes"
    );
    let cache = ReportCache::checked();
    assert!(cache.is_checked());
    cache
        .replay_or_run(0x11, &a, Some(0xBAD), &mut || plan.run_bound(&a))
        .unwrap();
    let refuted = catch_unwind(AssertUnwindSafe(|| {
        cache.replay_or_run(0x11, &b, Some(0xBAD), &mut || plan.run_bound(&b))
    }));
    assert!(
        refuted.is_err(),
        "checked mode served an aggregate-divergent canonical hit"
    );
}
