//! Conformance suite for the plan/run lifecycle split.
//!
//! The contract under test: a [`SimPlan`] is immutable — running it is a
//! pure function of `(plan, RunBinding)`. Concretely:
//!
//! 1. one plan run N times produces bit-identical [`SimReport`]s
//!    (including the `sched` counters — the *schedule* must not leak
//!    state between runs);
//! 2. a reused plan is bit-identical to a fresh
//!    `Simulation::new(graph, cfg)?.run()?` of the same graph, at
//!    worker counts 1, 2, and 4;
//! 3. an `Arc<SimPlan>` run concurrently from several threads yields
//!    the same bits as running it sequentially;
//! 4. source rebinding changes exactly the bound stream: binding the
//!    plan's own baked-in tokens reproduces the unbound run bit for
//!    bit, binding different tokens is bit-identical to building a
//!    fresh graph around those tokens, and invalid bindings
//!    (non-source targets, rank-violating streams) fail fast.

use std::sync::Arc;
use step_core::Graph;
use step_core::elem::{Elem, ElemKind};
use step_core::graph::{GraphBuilder, NodeId};
use step_core::shape::StreamShape;
use step_core::tile::Tile;
use step_core::token::{self, Token};
use step_models::ModelConfig;
use step_models::attention::{AttentionCfg, ParallelStrategy, attention_graph};
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_models::swiglu::{SwigluCfg, swiglu_graph};
use step_sim::{RunBinding, SimConfig, SimPlan, SimReport, Simulation};
use step_traces::{KvTraceConfig, RoutingConfig, Variability, expert_routing, kv_lengths};

fn small_model() -> ModelConfig {
    ModelConfig {
        name: "reuse-small",
        hidden: 128,
        moe_intermediate: 256,
        experts: 8,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 2,
    }
}

/// The conformance workloads: every model-builder family, small enough
/// to run the whole matrix quickly.
fn workloads() -> Vec<(String, Graph)> {
    let model = small_model();
    let mut out: Vec<(String, Graph)> = Vec::new();
    out.push((
        "swiglu(16,64)".into(),
        swiglu_graph(&SwigluCfg::validation(16, 64)).unwrap(),
    ));
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 24,
        skew: 0.8,
        seed: 7,
    });
    for (name, tiling) in [
        ("moe-static4", Tiling::Static { tile: 4 }),
        ("moe-dynamic", Tiling::Dynamic),
    ] {
        out.push((
            name.to_string(),
            moe_graph(&MoeCfg::new(model.clone(), tiling), &trace).unwrap(),
        ));
    }
    out.push((
        "moe-regions2".to_string(),
        moe_graph(
            &MoeCfg::new(model.clone(), Tiling::Static { tile: 4 }).with_regions(2),
            &trace,
        )
        .unwrap(),
    ));
    let kv = kv_lengths(&KvTraceConfig {
        batch: 12,
        variability: Variability::Medium,
        median_len: 256.0,
        max_len: 1024,
        seed: 11,
        ..KvTraceConfig::default()
    });
    out.push((
        "attn-dynamic".to_string(),
        attention_graph(&AttentionCfg::new(model, ParallelStrategy::Dynamic), &kv).unwrap(),
    ));
    out
}

fn cfg(threads: usize) -> SimConfig {
    SimConfig {
        threads,
        shards: 6,
        ..SimConfig::default()
    }
}

/// The bit-identity fields of a report (the conformance fingerprint:
/// results, sinks, and the full coordination schedule).
#[allow(clippy::type_complexity)]
fn fingerprint(
    r: &SimReport,
) -> (
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    usize,
    String,
    String,
) {
    (
        r.cycles,
        r.offchip_traffic,
        r.offchip_read,
        r.offchip_write,
        r.onchip_memory,
        r.arena_peak,
        r.total_flops,
        r.rounds,
        r.shards,
        format!("{:?}", r.sinks),
        format!("{:?}", r.sched),
    )
}

#[test]
fn reused_plan_matches_fresh_build_at_every_thread_count() {
    for (name, graph) in workloads() {
        for threads in [1usize, 2, 4] {
            let fresh = Simulation::new(graph.clone(), cfg(threads))
                .unwrap()
                .run()
                .unwrap();
            let want = fingerprint(&fresh);
            let plan = SimPlan::new(graph.clone(), cfg(threads)).unwrap();
            for rerun in 0..3 {
                let got = fingerprint(&plan.run().unwrap());
                assert_eq!(
                    got, want,
                    "{name}: threads={threads} reused run {rerun} diverged from fresh build"
                );
            }
        }
    }
}

#[test]
fn arc_shared_plan_runs_concurrently_bit_identical() {
    let (name, graph) = workloads().remove(1); // moe-static4
    let plan = Arc::new(SimPlan::new(graph, cfg(1)).unwrap());
    let want = fingerprint(&plan.run().unwrap());
    std::thread::scope(|sc| {
        for _ in 0..3 {
            let plan = Arc::clone(&plan);
            let want = want.clone();
            let name = name.clone();
            sc.spawn(move || {
                let got = fingerprint(&plan.run().unwrap());
                assert_eq!(got, want, "{name}: concurrent Arc<SimPlan> run diverged");
            });
        }
    });
}

/// A tiny graph with a known rebindable source: `source -> map(relu) ->
/// sink` over 1x1 tiles.
fn bindable_graph(values: &[f32]) -> (Graph, NodeId, NodeId) {
    use step_core::func::{EwOp, MapFn};
    let mut g = GraphBuilder::new();
    let tokens = token::rank0_from_values(values.iter().map(|&v| Elem::Tile(Tile::splat(1, 1, v))));
    let n = values.len() as u64;
    let src = g
        .source(tokens, StreamShape::fixed(&[n]), ElemKind::tile(1, 1))
        .unwrap();
    let src_id = g.node_of(&src);
    let relu = g.map(&src, MapFn::Elementwise(EwOp::Relu), 64).unwrap();
    let sink = g.sink(&relu).unwrap();
    (g.finish(), src_id, sink)
}

fn source_tokens(values: &[f32]) -> Vec<Token> {
    token::rank0_from_values(values.iter().map(|&v| Elem::Tile(Tile::splat(1, 1, v))))
}

fn sink_values(r: &SimReport, sink: NodeId) -> Vec<f32> {
    r.sink_tokens(sink)
        .unwrap()
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Tile(t)) => t.get(0, 0),
            _ => None,
        })
        .collect()
}

#[test]
fn rebinding_baked_tokens_reproduces_unbound_run() {
    let vals = [-1.0f32, 2.0, -3.0, 4.0];
    let (graph, src, sink) = bindable_graph(&vals);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let unbound = plan.run().unwrap();
    let mut binding = RunBinding::new();
    binding.bind_source(src, source_tokens(&vals));
    let bound = plan.run_bound(&binding).unwrap();
    assert_eq!(fingerprint(&unbound), fingerprint(&bound));
    assert_eq!(sink_values(&bound, sink), vec![0.0, 2.0, 0.0, 4.0]);
}

#[test]
fn rebinding_matches_fresh_build_of_the_bound_stream() {
    let build_vals = [-1.0f32, 2.0, -3.0, 4.0];
    let run_vals = [5.0f32, -6.0, 7.0, -8.0];
    let (graph, src, sink) = bindable_graph(&build_vals);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let mut binding = RunBinding::new();
    binding.bind_source(src, source_tokens(&run_vals));
    let bound = plan.run_bound(&binding).unwrap();
    assert_eq!(sink_values(&bound, sink), vec![5.0, 0.0, 7.0, 0.0]);
    // Bit-identical to building the graph fresh around the bound stream.
    let (fresh_graph, _, fresh_sink) = bindable_graph(&run_vals);
    let fresh = SimPlan::new(fresh_graph, SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(fingerprint(&fresh), fingerprint(&bound));
    assert_eq!(sink_values(&fresh, fresh_sink), sink_values(&bound, sink));
    // And the plan is not poisoned: an unbound run still plays the
    // baked-in stream.
    let unbound = plan.run().unwrap();
    assert_eq!(sink_values(&unbound, sink), vec![0.0, 2.0, 0.0, 4.0]);
}

#[test]
fn invalid_bindings_fail_fast() {
    let (graph, src, sink) = bindable_graph(&[1.0, 2.0]);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    // Not a source.
    let mut b = RunBinding::new();
    b.bind_source(sink, source_tokens(&[1.0]));
    assert!(plan.run_bound(&b).is_err(), "sink accepted as bind target");
    // Unknown node.
    let mut b = RunBinding::new();
    b.bind_source(NodeId(10_000), source_tokens(&[1.0]));
    assert!(plan.run_bound(&b).is_err(), "out-of-range node accepted");
    // Rank-violating stream (rank-1 stops into a rank-0 source).
    let mut b = RunBinding::new();
    b.bind_source(
        src,
        vec![
            Token::Val(Elem::Tile(Tile::splat(1, 1, 1.0))),
            Token::Stop(1),
            Token::Done,
        ],
    );
    assert!(
        plan.run_bound(&b).is_err(),
        "rank-violating stream accepted"
    );
}

#[test]
fn preload_binding_matches_simulation_preload() {
    use step_core::ops::LinearLoadCfg;
    let build = |_: ()| {
        let mut g = GraphBuilder::new();
        let r = g.unit_source(1);
        let tiles = g
            .linear_offchip_load(&r, LinearLoadCfg::new(0x1000, (2, 4), (2, 2)))
            .unwrap();
        let sink = g.sink(&tiles).unwrap();
        (g.finish(), sink)
    };
    let data: Vec<f32> = (0..8).map(|x| x as f32).collect();
    let (graph, sink) = build(());
    let mut sim = Simulation::new(graph, SimConfig::default()).unwrap();
    sim.preload(0x1000, 2, 4, data.clone());
    let via_sim = sim.run().unwrap();
    let (graph, sink2) = build(());
    assert_eq!(sink, sink2);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let mut b = RunBinding::new();
    b.preload(0x1000, 2, 4, data);
    let via_plan = plan.run_bound(&b).unwrap();
    assert_eq!(fingerprint(&via_sim), fingerprint(&via_plan));
    assert_eq!(
        via_sim.sink_tokens(sink).unwrap(),
        via_plan.sink_tokens(sink).unwrap()
    );
}
