//! Functional semantics tests: every operator's token behaviour, plus the
//! paper's §3.3 simplified-MoE walkthrough executed end-to-end with dense
//! data.

use step_core::StepError;
use step_core::elem::{Elem, ElemKind, Selector};
use step_core::func::{AccumFn, EwOp, FlatMapFn, MapFn};
use step_core::graph::GraphBuilder;
use step_core::ops::{LinearLoadCfg, StreamifyCfg};
use step_core::shape::{Dim, StreamShape};
use step_core::tile::Tile;
use step_core::token::{self, Token};
use step_sim::{SimConfig, Simulation};

fn tile1(v: f32) -> Elem {
    Elem::Tile(Tile::splat(1, 1, v))
}

fn values_of(tokens: &[Token]) -> Vec<f32> {
    tokens
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Tile(t)) => t.get(0, 0),
            _ => None,
        })
        .collect()
}

fn stops_of(tokens: &[Token]) -> Vec<u8> {
    tokens.iter().filter_map(Token::stop_level).collect()
}

#[test]
fn source_to_sink_passthrough() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank1_from_groups(&[vec![tile1(1.0), tile1(2.0)], vec![tile1(3.0)]]),
            StreamShape::fixed(&[2, 2]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let sink = g.sink(&s).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    assert_eq!(values_of(toks), vec![1.0, 2.0, 3.0]);
    assert_eq!(stops_of(toks), vec![1, 1]);
    token::validate(toks, 1).unwrap();
}

#[test]
fn linear_load_reads_preloaded_tensor() {
    let mut g = GraphBuilder::new();
    let r = g.unit_source(1);
    let tiles = g
        .linear_offchip_load(&r, LinearLoadCfg::new(0x1000, (2, 4), (2, 2)))
        .unwrap();
    let sink = g.sink(&tiles).unwrap();
    let mut sim = Simulation::new(g.finish(), SimConfig::default()).unwrap();
    sim.preload(0x1000, 2, 4, (0..8).map(|x| x as f32).collect());
    let report = sim.run().unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 2).unwrap();
    // Two 2x2 tiles: left [[0,1],[4,5]] and right [[2,3],[6,7]].
    let tiles: Vec<&Tile> = toks
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Tile(t)) => Some(t),
            _ => None,
        })
        .collect();
    assert_eq!(tiles.len(), 2);
    assert_eq!(tiles[0].values().unwrap(), &[0.0, 1.0, 4.0, 5.0]);
    assert_eq!(tiles[1].values().unwrap(), &[2.0, 3.0, 6.0, 7.0]);
    assert_eq!(report.offchip_read, 2 * 4 * 2);
}

#[test]
fn linear_load_repeats_per_reference_and_shifts_stops() {
    let mut g = GraphBuilder::new();
    // Rank-1 reference: two groups of sizes 2 and 1.
    let r = g
        .source(
            token::rank1_from_groups(&[vec![Elem::Unit, Elem::Unit], vec![Elem::Unit]]),
            StreamShape::fixed(&[2, 2]),
            ElemKind::Unit,
        )
        .unwrap();
    let tiles = g
        .linear_offchip_load(&r, LinearLoadCfg::new(0, (2, 4), (2, 2)))
        .unwrap();
    let sink = g.sink(&tiles).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 3).unwrap();
    // Each trigger emits a [1,2] block; block separators are Stop(2) and
    // the reference's Stop(1)s become Stop(3)s.
    assert_eq!(stops_of(toks), vec![2, 3, 3]);
    assert_eq!(report.offchip_read, 3 * 2 * 4 * 2);
}

#[test]
fn map_matmul_computes_dense_values() {
    let mut g = GraphBuilder::new();
    let a = g
        .source(
            token::rank0_from_values([Elem::Tile(Tile::from_rows(&[&[1.0, 2.0]]))]),
            StreamShape::fixed(&[1]),
            ElemKind::tile(1, 2),
        )
        .unwrap();
    let b = g
        .source(
            token::rank0_from_values([Elem::Tile(Tile::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]))]),
            StreamShape::fixed(&[1]),
            ElemKind::tile(2, 2),
        )
        .unwrap();
    let out = g.map2(&a, &b, MapFn::Matmul, 1024).unwrap();
    let sink = g.sink(&out).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    let t = toks[0].clone().into_val().unwrap();
    assert_eq!(t.as_tile().unwrap().values().unwrap(), &[1.0, 4.0]);
    assert_eq!(report.total_flops, 2 * 2 * 2);
}

#[test]
fn partition_routes_chunks_per_selector() {
    let mut g = GraphBuilder::new();
    let groups: Vec<Vec<Elem>> = (0..4).map(|i| vec![tile1(i as f32)]).collect();
    let s = g
        .source(
            token::rank1_from_groups(&groups),
            StreamShape::fixed(&[4, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let sels = vec![
        Selector::one(0),
        Selector::one(1),
        Selector::one(0),
        Selector::multi(&[0, 1]),
    ];
    let sel = g.selector_source(sels, 2).unwrap();
    let outs = g.partition(&s, &sel, 1, 2).unwrap();
    let sink0 = g.sink(&outs[0]).unwrap();
    let sink1 = g.sink(&outs[1]).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let t0 = report.sink_tokens(sink0).unwrap();
    let t1 = report.sink_tokens(sink1).unwrap();
    token::validate(t0, 1).unwrap();
    token::validate(t1, 1).unwrap();
    // Multi-hot selector 3 duplicates row 3 to both outputs.
    assert_eq!(values_of(t0), vec![0.0, 2.0, 3.0]);
    assert_eq!(values_of(t1), vec![1.0, 3.0]);
}

#[test]
fn partition_reassemble_roundtrip() {
    let mut g = GraphBuilder::new();
    let n = 6;
    let groups: Vec<Vec<Elem>> = (0..n).map(|i| vec![tile1(i as f32)]).collect();
    let s = g
        .source(
            token::rank1_from_groups(&groups),
            StreamShape::fixed(&[n as u64, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let sels: Vec<Selector> = (0..n).map(|i| Selector::one((i % 3) as u32)).collect();
    let sel = g.selector_source(sels, 3).unwrap();
    let sel2 = g.fork(&sel, 2).unwrap();
    let outs = g.partition(&s, &sel2[0], 1, 3).unwrap();
    let refs: Vec<&_> = outs.iter().collect();
    let merged = g.reassemble(&refs, &sel2[1], 1).unwrap();
    let sink = g.sink(&merged).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    // Chunks come back in the original order.
    assert_eq!(
        values_of(toks),
        (0..n).map(|i| i as f32).collect::<Vec<_>>()
    );
    token::validate(toks, 2).unwrap();
}

#[test]
fn reassemble_selector_out_of_range_errors() {
    let mut g = GraphBuilder::new();
    let groups: Vec<Vec<Elem>> = vec![vec![tile1(0.0)]];
    let a = g
        .source(
            token::rank1_from_groups(&groups),
            StreamShape::fixed(&[1, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    // Build a selector source with 2 targets but connect a 1-input
    // reassemble — caught at build time.
    let sel = g.selector_source(vec![Selector::one(1)], 2).unwrap();
    assert!(matches!(
        g.reassemble(&[&a], &sel, 1),
        Err(StepError::Config(_))
    ));
}

#[test]
fn eager_merge_collects_all_and_reports_provenance() {
    let mut g = GraphBuilder::new();
    let mk = |g: &mut GraphBuilder, vals: &[f32]| {
        let groups: Vec<Vec<Elem>> = vals.iter().map(|&v| vec![tile1(v)]).collect();
        g.source(
            token::rank1_from_groups(&groups),
            StreamShape::fixed(&[vals.len() as u64, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap()
    };
    let a = mk(&mut g, &[1.0, 2.0]);
    let b = mk(&mut g, &[10.0]);
    let (data, sel) = g.eager_merge(&[&a, &b]).unwrap();
    let dsink = g.sink(&data).unwrap();
    let ssink = g.sink(&sel).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let data = report.sink_tokens(dsink).unwrap();
    let sels = report.sink_tokens(ssink).unwrap();
    let mut vals = values_of(data);
    vals.sort_by(f32::total_cmp);
    assert_eq!(vals, vec![1.0, 2.0, 10.0]);
    token::validate(data, 1).unwrap();
    let sel_count = sels.iter().filter(|t| t.is_val()).count();
    assert_eq!(sel_count, 3);
}

#[test]
fn bufferize_streamify_rereads_buffers() {
    let mut g = GraphBuilder::new();
    // Two rank-1 groups of 2 tiles each -> 2 buffers.
    let s = g
        .source(
            token::rank1_from_groups(&[vec![tile1(1.0), tile1(2.0)], vec![tile1(3.0), tile1(4.0)]]),
            StreamShape::fixed(&[2, 2]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let bufs = g.bufferize(&s, 1).unwrap();
    // Reference rank 1 (c = 1): read each buffer 3 times.
    let r = g
        .source(
            token::rank1_from_groups(&[vec![Elem::Unit; 3], vec![Elem::Unit; 3]]),
            StreamShape::fixed(&[2, 3]),
            ElemKind::Unit,
        )
        .unwrap();
    let out = g.streamify(&bufs, &r, StreamifyCfg::default()).unwrap();
    let sink = g.sink(&out).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 2).unwrap();
    assert_eq!(
        values_of(toks),
        vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 3.0, 4.0, 3.0, 4.0, 3.0, 4.0]
    );
    // Buffers are freed after their reads: peak is one buffer + the next.
    assert!(report.arena_peak <= 2 * 2 * 2);
}

#[test]
fn reshape_pads_and_flags() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank0_from_values((0..5).map(|i| tile1(i as f32))),
            StreamShape::fixed(&[5]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let (data, padding) = g.reshape(&s, 2, Some(tile1(-1.0))).unwrap();
    let dsink = g.sink(&data).unwrap();
    let psink = g.sink(&padding).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let d = report.sink_tokens(dsink).unwrap();
    token::validate(d, 1).unwrap();
    assert_eq!(values_of(d), vec![0.0, 1.0, 2.0, 3.0, 4.0, -1.0]);
    let p = report.sink_tokens(psink).unwrap();
    let flags: Vec<bool> = p
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Bool(b)) => Some(*b),
            _ => None,
        })
        .collect();
    assert_eq!(flags, vec![false, false, false, false, false, true]);
}

#[test]
fn promote_wraps_stream_once() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank1_from_groups(&[vec![tile1(1.0)], vec![tile1(2.0)]]),
            StreamShape::fixed(&[2, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let p = g.promote(&s).unwrap();
    let sink = g.sink(&p).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 2).unwrap();
    assert_eq!(stops_of(toks), vec![1, 2]);
}

#[test]
fn promote_on_empty_stream_stays_empty() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            vec![Token::Done],
            StreamShape::fixed(&[0, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let p = g.promote(&s).unwrap();
    let sink = g.sink(&p).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.sink_tokens(sink).unwrap(), &[Token::Done]);
}

#[test]
fn flatten_merges_levels() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank2_from_tensors(&[
                vec![vec![tile1(1.0), tile1(2.0)], vec![tile1(3.0)]],
                vec![vec![tile1(4.0)]],
            ]),
            StreamShape::fixed(&[2, 2, 2]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let f = g.flatten(&s, 0, 1).unwrap();
    let sink = g.sink(&f).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 1).unwrap();
    // S1 dropped, S2 -> S1.
    assert_eq!(stops_of(toks), vec![1, 1]);
    assert_eq!(values_of(toks), vec![1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn accum_retile_row_packs_dynamic_groups() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank1_from_groups(&[vec![tile1(1.0), tile1(2.0), tile1(3.0)], vec![tile1(4.0)]]),
            StreamShape::fixed(&[2, 3]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let a = g.accum(&s, 1, AccumFn::RetileRow, 64).unwrap();
    let sink = g.sink(&a).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    let tiles: Vec<&Tile> = toks
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Tile(t)) => Some(t),
            _ => None,
        })
        .collect();
    assert_eq!(tiles.len(), 2);
    // Dynamically-sized accumulators: 3x1 then 1x1.
    assert_eq!(tiles[0].rows(), 3);
    assert_eq!(tiles[1].rows(), 1);
    // Measured accumulator memory follows the larger group.
    assert!(report.onchip_memory >= 3 * 2);
}

#[test]
fn scan_emits_running_state_and_resets() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank1_from_groups(&[vec![tile1(1.0), tile1(2.0)], vec![tile1(5.0)]]),
            StreamShape::fixed(&[2, 2]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let sc = g.scan(&s, 1, AccumFn::AddTiles, 64).unwrap();
    let sink = g.sink(&sc).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    assert_eq!(values_of(toks), vec![1.0, 3.0, 5.0]);
}

#[test]
fn flat_map_splits_rows() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank0_from_values([Elem::Tile(Tile::from_rows(&[&[1.0], &[2.0], &[3.0]]))]),
            StreamShape::fixed(&[1]),
            ElemKind::tile(3, 1),
        )
        .unwrap();
    let fm = g.flat_map(&s, FlatMapFn::SplitRows { chunk: 2 }).unwrap();
    let sink = g.sink(&fm).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 1).unwrap();
    let tiles: Vec<usize> = toks
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Tile(t)) => Some(t.rows()),
            _ => None,
        })
        .collect();
    assert_eq!(tiles, vec![2, 1]);
}

#[test]
fn expand_static_repeats_elements() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank1_from_groups(&[vec![tile1(7.0)]]),
            StreamShape::fixed(&[1, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let e = g.expand_static(&s, 3).unwrap();
    let sink = g.sink(&e).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        values_of(report.sink_tokens(sink).unwrap()),
        vec![7.0, 7.0, 7.0]
    );
}

#[test]
fn expand_with_reference_follows_fig5() {
    let mut g = GraphBuilder::new();
    // Input [2,1,1]: one value per rank-2 block.
    let input = g
        .source(
            vec![
                Token::Val(tile1(1.0)),
                Token::Stop(2),
                Token::Val(tile1(2.0)),
                Token::Stop(2),
                Token::Done,
            ],
            StreamShape::fixed(&[2, 1, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    // Reference [2, ragged, 2].
    let reference = g
        .source(
            token::rank2_from_tensors(&[
                vec![vec![Elem::Unit, Elem::Unit], vec![Elem::Unit, Elem::Unit]],
                vec![vec![Elem::Unit, Elem::Unit]],
            ]),
            StreamShape::fixed(&[2, 2, 2]),
            ElemKind::Unit,
        )
        .unwrap();
    let e = g.expand(&input, &reference, 2).unwrap();
    let sink = g.sink(&e).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 2).unwrap();
    assert_eq!(values_of(toks), vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0]);
}

#[test]
fn zip_misalignment_is_an_error() {
    let mut g = GraphBuilder::new();
    let a = g
        .source(
            token::rank0_from_values([tile1(1.0), tile1(2.0)]),
            StreamShape::fixed(&[2]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let b = g
        .source(
            token::rank0_from_values([tile1(3.0)]),
            StreamShape::new(vec![Dim::fixed(2)]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let z = g.zip(&a, &b).unwrap();
    g.sink(&z).unwrap();
    let err = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run();
    assert!(err.is_err());
}

#[test]
fn streamify_starved_of_buffers_fails() {
    let mut g = GraphBuilder::new();
    let s = g
        .source(
            token::rank1_from_groups(&[vec![tile1(1.0)]]),
            StreamShape::fixed(&[1, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let bufs = g.bufferize(&s, 1).unwrap();
    // c = 0 reference demanding two buffers when only one exists.
    let r = g.unit_source(2);
    let out = g.streamify(&bufs, &r, StreamifyCfg::default()).unwrap();
    g.sink(&out).unwrap();
    let err = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run();
    // The reference demands a second buffer that never arrives; the
    // Streamify node reports the malformed pairing explicitly.
    assert!(err.is_err(), "{err:?}");
}

#[test]
fn simulation_is_deterministic() {
    let build = || {
        let mut g = GraphBuilder::new();
        let groups: Vec<Vec<Elem>> = (0..8).map(|i| vec![tile1(i as f32)]).collect();
        let s = g
            .source(
                token::rank1_from_groups(&groups),
                StreamShape::fixed(&[8, 1]),
                ElemKind::tile(1, 1),
            )
            .unwrap();
        let sels: Vec<Selector> = (0..8).map(|i| Selector::one(i % 2)).collect();
        let sel = g.selector_source(sels, 2).unwrap();
        let outs = g.partition(&s, &sel, 1, 2).unwrap();
        let (m, _) = g.eager_merge(&[&outs[0], &outs[1]]).unwrap();
        let mapped = g.map(&m, MapFn::Elementwise(EwOp::Relu), 64).unwrap();
        g.sink(&mapped).unwrap();
        g.finish()
    };
    let r1 = Simulation::new(build(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let r2 = Simulation::new(build(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.offchip_traffic, r2.offchip_traffic);
    assert_eq!(r1.rounds, r2.rounds);
}

/// The §3.3 walkthrough: a two-expert MoE where each expert is a single
/// matmul, built exactly as Fig 7 (route, pack-to-tile, broadcast, load
/// weight, compute, pack/unpack tile, merge), executed with dense data and
/// checked against a direct tensor-level reference.
#[test]
fn simplified_moe_matches_reference() {
    const BATCH: usize = 8;
    const HIDDEN: usize = 16;
    const OUT: usize = 32;
    const TILE: usize = 4; // pack 4 rows per tile
    const COL_TILE: usize = 16; // weight column tile

    // Deterministic input and weights.
    let xs: Vec<Vec<f32>> = (0..BATCH)
        .map(|i| {
            (0..HIDDEN)
                .map(|j| ((i * 7 + j * 3) % 5) as f32 - 2.0)
                .collect()
        })
        .collect();
    let w = |e: usize| -> Vec<f32> {
        (0..HIDDEN * OUT)
            .map(|k| (((k + e * 13) % 7) as f32 - 3.0) * 0.5)
            .collect()
    };
    // Rows alternate between experts so each expert gets exactly 4 rows
    // (no padding; value-exact roundtrip).
    let expert_of = |i: usize| i % 2;

    let mut g = GraphBuilder::new();
    let groups: Vec<Vec<Elem>> = xs
        .iter()
        .map(|row| vec![Elem::Tile(Tile::dense(1, HIDDEN, row.clone()))])
        .collect();
    let input = g
        .source(
            token::rank1_from_groups(&groups),
            StreamShape::fixed(&[BATCH as u64, 1]),
            ElemKind::tile(1, HIDDEN as u64),
        )
        .unwrap();
    let sels: Vec<Selector> = (0..BATCH)
        .map(|i| Selector::one(expert_of(i) as u32))
        .collect();
    let sel = g.selector_source(sels, 2).unwrap();
    let sel2 = g.fork(&sel, 2).unwrap();
    let routed = g.partition(&input, &sel2[0], 1, 2).unwrap();

    let mut expert_outs = Vec::new();
    for (e, stream) in routed.iter().enumerate() {
        let base = 0x10_000 * (e as u64 + 1);
        // Pack to tile: [D,1] -> [D] -> [ceil(D/TILE), TILE] -> packed tiles.
        let flat = g.flatten(stream, 0, 1).unwrap();
        let (chunks, _pad) = g
            .reshape(&flat, TILE as u64, Some(Elem::Tile(Tile::zeros(1, HIDDEN))))
            .unwrap();
        let packed = g.accum(&chunks, 1, AccumFn::RetileRow, 64).unwrap();
        let fk = g.fork(&packed, 2).unwrap();
        // Broadcast each packed tile across the weight's column tiles.
        let (ones, _) = g.reshape(&fk[0], 1, None).unwrap();
        let bcast = g.expand_static(&ones, (OUT / COL_TILE) as u64).unwrap();
        // Load the expert weight once per packed tile.
        let wtiles = g
            .linear_offchip_load(
                &fk[1],
                LinearLoadCfg::new(
                    base,
                    (HIDDEN as u64, OUT as u64),
                    (HIDDEN as u64, COL_TILE as u64),
                ),
            )
            .unwrap();
        let wflat = g.flatten(&wtiles, 0, 1).unwrap();
        // Compute and repack: [ceil(D/T), OUT/CT] partials -> row tiles.
        let prod = g.map2(&bcast, &wflat, MapFn::Matmul, 1024).unwrap();
        let full = g.accum(&prod, 1, AccumFn::RetileCol, 1024).unwrap();
        let rows = g
            .flat_map(&full, FlatMapFn::SplitRows { chunk: 1 })
            .unwrap();
        // Rechunk to single-row rank-1 tensors for per-row reassembly.
        let rows_flat = g.flatten(&rows, 0, 1).unwrap();
        let (row_chunks, _) = g.reshape(&rows_flat, 1, None).unwrap();
        expert_outs.push(row_chunks);
    }
    let refs: Vec<&_> = expert_outs.iter().collect();
    let merged = g.reassemble(&refs, &sel2[1], 1).unwrap();
    let sink = g.sink(&merged).unwrap();

    let mut sim = Simulation::new(g.finish(), SimConfig::default()).unwrap();
    sim.preload(0x10_000, HIDDEN, OUT, w(0));
    sim.preload(0x20_000, HIDDEN, OUT, w(1));
    let report = sim.run().unwrap();

    // Reference: per row, x_i x W_{expert(i)}.
    let toks = report.sink_tokens(sink).unwrap();
    let out_tiles: Vec<&Tile> = toks
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Tile(t)) => Some(t),
            _ => None,
        })
        .collect();
    assert_eq!(out_tiles.len(), BATCH);
    for (i, tile) in out_tiles.iter().enumerate() {
        let e = expert_of(i);
        let x = Tile::dense(1, HIDDEN, xs[i].clone());
        let wt = Tile::dense(HIDDEN, OUT, w(e));
        let expect = x.matmul(&wt).unwrap();
        let got = tile.values().unwrap();
        let want = expect.values().unwrap();
        assert_eq!(got.len(), want.len(), "row {i}");
        for (a, b) in got.iter().zip(want) {
            assert!((a - b).abs() < 1e-3, "row {i}: {a} vs {b}");
        }
    }
    // Each expert loads its weight ceil(4/4) = 1 time.
    assert_eq!(report.offchip_read, 2 * (HIDDEN * OUT * 2) as u64);
    assert!(report.compute_utilization() > 0.0);
}
