//! Conformance suite for the compiled executor and the run-state pool.
//!
//! The contract under test: `SimConfig::compiled` and
//! [`SimPlan::pooled_run_bound`] are *host-side* choices — static
//! dispatch versus boxed `dyn` nodes, pooled reset-in-place state versus
//! freshly built state — and must never reach a reported bit. Concretely:
//!
//! 1. the compiled path is bit-identical to the dynamic-dispatch path
//!    (`compiled: false`) on every model-builder family, at worker
//!    counts 1, 2, 4, and 8 — results, sinks, and the full coordination
//!    schedule (`sched` counters);
//! 2. a pooled rerun (state reset in place) is bit-identical to a fresh
//!    `RunState`, for three consecutive reruns;
//! 3. the pool actually pools: after the warmup run, every rerun
//!    reports `run_allocs == 0` and `pool_resets == 1`;
//! 4. pooled source rebinding resets cleanly — a rerun with a different
//!    bound stream matches a fresh build around that stream, and a
//!    subsequent unbound rerun plays the baked-in tokens again.

use step_core::Graph;
use step_core::elem::{Elem, ElemKind};
use step_core::graph::{GraphBuilder, NodeId};
use step_core::shape::StreamShape;
use step_core::tile::Tile;
use step_core::token::{self, Token};
use step_models::ModelConfig;
use step_models::attention::{AttentionCfg, ParallelStrategy, attention_graph};
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_models::swiglu::{SwigluCfg, swiglu_graph};
use step_sim::{RunBinding, RunPool, SimConfig, SimPlan, SimReport};
use step_traces::{KvTraceConfig, RoutingConfig, Variability, expert_routing, kv_lengths};

fn small_model() -> ModelConfig {
    ModelConfig {
        name: "compiled-small",
        hidden: 128,
        moe_intermediate: 256,
        experts: 8,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 2,
    }
}

/// The conformance workloads: every model-builder family, small enough
/// to run the whole matrix quickly.
fn workloads() -> Vec<(String, Graph)> {
    let model = small_model();
    let mut out: Vec<(String, Graph)> = Vec::new();
    out.push((
        "swiglu(16,64)".into(),
        swiglu_graph(&SwigluCfg::validation(16, 64)).unwrap(),
    ));
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 24,
        skew: 0.8,
        seed: 7,
    });
    for (name, tiling) in [
        ("moe-static4", Tiling::Static { tile: 4 }),
        ("moe-dynamic", Tiling::Dynamic),
    ] {
        out.push((
            name.to_string(),
            moe_graph(&MoeCfg::new(model.clone(), tiling), &trace).unwrap(),
        ));
    }
    out.push((
        "moe-regions2".to_string(),
        moe_graph(
            &MoeCfg::new(model.clone(), Tiling::Static { tile: 4 }).with_regions(2),
            &trace,
        )
        .unwrap(),
    ));
    let kv = kv_lengths(&KvTraceConfig {
        batch: 12,
        variability: Variability::Medium,
        median_len: 256.0,
        max_len: 1024,
        seed: 11,
        ..KvTraceConfig::default()
    });
    out.push((
        "attn-dynamic".to_string(),
        attention_graph(&AttentionCfg::new(model, ParallelStrategy::Dynamic), &kv).unwrap(),
    ));
    out
}

fn cfg(threads: usize, compiled: bool) -> SimConfig {
    SimConfig {
        threads,
        shards: 6,
        compiled,
        ..SimConfig::default()
    }
}

/// The bit-identity fields of a report (the conformance fingerprint:
/// results, fires, sinks, and the full coordination schedule). The
/// pool-bookkeeping fields `run_allocs` / `pool_resets` are *excluded*
/// by design — they report which host path ran, not what was simulated.
#[allow(clippy::type_complexity)]
fn fingerprint(
    r: &SimReport,
) -> (
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    usize,
    u64,
    String,
    String,
) {
    (
        r.cycles,
        r.offchip_traffic,
        r.offchip_read,
        r.offchip_write,
        r.onchip_memory,
        r.arena_peak,
        r.total_flops,
        r.rounds,
        r.shards,
        r.total_fires(),
        format!("{:?}", r.sinks),
        format!("{:?}", r.sched),
    )
}

#[test]
fn compiled_matches_dyn_at_every_thread_count() {
    for (name, graph) in workloads() {
        for threads in [1usize, 2, 4, 8] {
            let dyn_plan = SimPlan::new(graph.clone(), cfg(threads, false)).unwrap();
            let want = fingerprint(&dyn_plan.run().unwrap());
            let plan = SimPlan::new(graph.clone(), cfg(threads, true)).unwrap();
            let got = fingerprint(&plan.run().unwrap());
            assert_eq!(
                got, want,
                "{name}: threads={threads} compiled run diverged from dyn run"
            );
        }
    }
}

#[test]
fn pooled_reruns_match_dyn_and_stay_alloc_free() {
    for (name, graph) in workloads() {
        for threads in [1usize, 2, 4, 8] {
            let dyn_plan = SimPlan::new(graph.clone(), cfg(threads, false)).unwrap();
            let want = fingerprint(&dyn_plan.run().unwrap());
            let plan = SimPlan::new(graph.clone(), cfg(threads, true)).unwrap();
            let mut pool = RunPool::new();
            let warmup = plan.pooled_run(&mut pool).unwrap();
            assert_eq!(
                (warmup.run_allocs, warmup.pool_resets),
                (1, 0),
                "{name}: threads={threads} warmup should build state"
            );
            assert_eq!(
                fingerprint(&warmup),
                want,
                "{name}: threads={threads} pooled warmup diverged from dyn run"
            );
            for rerun in 0..3 {
                let r = plan.pooled_run(&mut pool).unwrap();
                assert_eq!(
                    (r.run_allocs, r.pool_resets),
                    (0, 1),
                    "{name}: threads={threads} rerun {rerun} rebuilt state instead of pooling"
                );
                assert_eq!(
                    fingerprint(&r),
                    want,
                    "{name}: threads={threads} pooled rerun {rerun} diverged"
                );
            }
        }
    }
}

#[test]
fn pool_reset_is_identical_to_fresh_state() {
    // A reset-in-place pooled rerun must equal a fresh `RunState` built
    // by a plain (non-pooled) compiled run — same plan, same binding.
    let (name, graph) = workloads().remove(2); // moe-dynamic
    let plan = SimPlan::new(graph, cfg(2, true)).unwrap();
    let fresh = fingerprint(&plan.run().unwrap());
    let mut pool = RunPool::new();
    plan.pooled_run(&mut pool).unwrap();
    let pooled = plan.pooled_run(&mut pool).unwrap();
    assert_eq!((pooled.run_allocs, pooled.pool_resets), (0, 1));
    assert_eq!(
        fingerprint(&pooled),
        fresh,
        "{name}: reset-in-place state diverged from fresh state"
    );
}

#[test]
fn pool_migrates_across_plans_by_rebuilding() {
    // Handing a pool parked by one plan to another must rebuild (never
    // reinterpret foreign state), then pool normally.
    let mut w = workloads();
    let (_, g2) = w.remove(1);
    let (_, g1) = w.remove(0);
    let p1 = SimPlan::new(g1, cfg(1, true)).unwrap();
    let p2 = SimPlan::new(g2, cfg(1, true)).unwrap();
    let mut pool = RunPool::new();
    assert_eq!(p1.pooled_run(&mut pool).unwrap().run_allocs, 1);
    assert_eq!(p1.pooled_run(&mut pool).unwrap().run_allocs, 0);
    let migrated = p2.pooled_run(&mut pool).unwrap();
    assert_eq!((migrated.run_allocs, migrated.pool_resets), (1, 0));
    assert_eq!(p2.pooled_run(&mut pool).unwrap().run_allocs, 0);
    assert_eq!(fingerprint(&migrated), fingerprint(&p2.run().unwrap()));
}

#[test]
fn disabling_compiled_degrades_pooling_to_fresh_runs() {
    let (_, graph) = workloads().remove(0);
    let plan = SimPlan::new(graph, cfg(1, false)).unwrap();
    let mut pool = RunPool::new();
    for _ in 0..2 {
        let r = plan.pooled_run(&mut pool).unwrap();
        assert_eq!((r.run_allocs, r.pool_resets), (1, 0));
    }
}

/// A tiny graph with a known rebindable source: `source -> map(relu) ->
/// sink` over 1x1 tiles.
fn bindable_graph(values: &[f32]) -> (Graph, NodeId, NodeId) {
    use step_core::func::{EwOp, MapFn};
    let mut g = GraphBuilder::new();
    let tokens = token::rank0_from_values(values.iter().map(|&v| Elem::Tile(Tile::splat(1, 1, v))));
    let n = values.len() as u64;
    let src = g
        .source(tokens, StreamShape::fixed(&[n]), ElemKind::tile(1, 1))
        .unwrap();
    let src_id = g.node_of(&src);
    let relu = g.map(&src, MapFn::Elementwise(EwOp::Relu), 64).unwrap();
    let sink = g.sink(&relu).unwrap();
    (g.finish(), src_id, sink)
}

fn source_tokens(values: &[f32]) -> Vec<Token> {
    token::rank0_from_values(values.iter().map(|&v| Elem::Tile(Tile::splat(1, 1, v))))
}

fn sink_values(r: &SimReport, sink: NodeId) -> Vec<f32> {
    r.sink_tokens(sink)
        .unwrap()
        .iter()
        .filter_map(|t| match t {
            Token::Val(Elem::Tile(t)) => t.get(0, 0),
            _ => None,
        })
        .collect()
}

#[test]
fn pooled_rebinding_resets_cleanly() {
    let build_vals = [-1.0f32, 2.0, -3.0, 4.0];
    let run_vals = [5.0f32, -6.0, 7.0, -8.0];
    let (graph, src, sink) = bindable_graph(&build_vals);
    let plan = SimPlan::new(graph, SimConfig::default()).unwrap();
    let mut pool = RunPool::new();
    // Warmup with the baked-in stream.
    let warm = plan.pooled_run(&mut pool).unwrap();
    assert_eq!(sink_values(&warm, sink), vec![0.0, 2.0, 0.0, 4.0]);
    // Pooled rerun with a rebound stream matches a fresh build around
    // that stream.
    let mut binding = RunBinding::new();
    binding.bind_source(src, source_tokens(&run_vals));
    let bound = plan.pooled_run_bound(&binding, &mut pool).unwrap();
    assert_eq!((bound.run_allocs, bound.pool_resets), (0, 1));
    assert_eq!(sink_values(&bound, sink), vec![5.0, 0.0, 7.0, 0.0]);
    let (fresh_graph, _, fresh_sink) = bindable_graph(&run_vals);
    let fresh = SimPlan::new(fresh_graph, SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(sink_values(&fresh, fresh_sink), sink_values(&bound, sink));
    // The reset clears the binding: an unbound pooled rerun plays the
    // baked-in stream again.
    let unbound = plan.pooled_run(&mut pool).unwrap();
    assert_eq!((unbound.run_allocs, unbound.pool_resets), (0, 1));
    assert_eq!(sink_values(&unbound, sink), vec![0.0, 2.0, 0.0, 4.0]);
    // And an invalid binding fails fast without poisoning the pool.
    let mut bad = RunBinding::new();
    bad.bind_source(sink, source_tokens(&[1.0]));
    assert!(plan.pooled_run_bound(&bad, &mut pool).is_err());
    let after = plan.pooled_run(&mut pool).unwrap();
    assert_eq!(
        (after.run_allocs, after.pool_resets),
        (0, 1),
        "rejected binding should not cost the pool its state"
    );
    assert_eq!(sink_values(&after, sink), vec![0.0, 2.0, 0.0, 4.0]);
}
