//! Run limits: deterministic cycle/round deadlines, cancellation, and
//! the opt-in wall-clock deadline.
//!
//! The contract under test (see README "Failure semantics"): deadlines
//! denominated in simulated quantities (`cycles`, `rounds`) produce the
//! **identical** [`StepError::Deadline`] on every rerun and at every
//! thread count mapping the same shard plan — they are pure functions
//! of the schedule, so CI can match on them exactly. Wall-clock
//! deadlines and [`CancelToken`] are host-dependent escape hatches and
//! are only asserted for their *kind*, never their payload.

use step_core::graph::GraphBuilder;
use step_core::ops::LinearLoadCfg;
use step_core::{DeadlineKind, StepError};
use step_sim::{CancelToken, RunBinding, RunPool, SimConfig, SimPlan};

fn cfg(threads: usize, shards: usize) -> SimConfig {
    SimConfig {
        threads,
        shards,
        max_rounds: 200_000,
        ..SimConfig::default()
    }
}

/// A fan-out load/store graph big enough to cross several horizon
/// windows (so mid-run deadline checks get exercised) and to shard.
fn fanout_graph(ways: u32, rows: u64) -> step_core::Graph {
    let mut g = GraphBuilder::new();
    let trig = g.unit_source(1);
    let forks = g.fork(&trig, ways).unwrap();
    for (k, f) in forks.iter().enumerate() {
        let tiles = g
            .linear_offchip_load(
                f,
                LinearLoadCfg::new(k as u64 * 0x100000, (64, rows), (64, 64)),
            )
            .unwrap();
        g.linear_offchip_store(&tiles, 0x10_000_000 + k as u64 * 0x100000)
            .unwrap();
    }
    g.finish()
}

#[test]
fn cycle_deadline_fails_identically_across_reruns_and_threads() {
    let baseline = SimPlan::new(fanout_graph(4, 1024), cfg(1, 4))
        .unwrap()
        .run()
        .unwrap();
    let mut binding = RunBinding::new();
    binding.deadline_cycles(baseline.cycles / 2);
    // Same shard plan, threads 1 vs 4, plus a same-config rerun: the
    // error must be bit-identical (kind, limit, and blow point).
    let mut errs = Vec::new();
    for threads in [1usize, 4, 1] {
        let plan = SimPlan::new(fanout_graph(4, 1024), cfg(threads, 4)).unwrap();
        let err = plan.run_bound(&binding).unwrap_err();
        assert!(
            matches!(
                err,
                StepError::Deadline {
                    kind: DeadlineKind::Cycles,
                    ..
                }
            ),
            "got: {err}"
        );
        errs.push(err);
    }
    assert_eq!(errs[0], errs[1], "threads changed the deadline error");
    assert_eq!(errs[0], errs[2], "rerun changed the deadline error");
    // The monolithic plan of the same graph also blows a Cycles
    // deadline (its blow point may differ — different schedule).
    let err = SimPlan::new(fanout_graph(4, 1024), cfg(1, 1))
        .unwrap()
        .run_bound(&binding)
        .unwrap_err();
    assert!(matches!(
        err,
        StepError::Deadline {
            kind: DeadlineKind::Cycles,
            ..
        }
    ));
}

#[test]
fn round_deadline_fails_identically_across_reruns_and_threads() {
    let mut binding = RunBinding::new();
    binding.deadline_rounds(1);
    let mut errs = Vec::new();
    for threads in [1usize, 4, 1] {
        let plan = SimPlan::new(fanout_graph(4, 512), cfg(threads, 4)).unwrap();
        let err = plan.run_bound(&binding).unwrap_err();
        assert!(
            matches!(
                err,
                StepError::Deadline {
                    kind: DeadlineKind::Rounds,
                    limit: 1,
                    ..
                }
            ),
            "got: {err}"
        );
        errs.push(err);
    }
    assert_eq!(errs[0], errs[1], "threads changed the deadline error");
    assert_eq!(errs[0], errs[2], "rerun changed the deadline error");
}

#[test]
fn unarmed_and_unreachable_limits_change_nothing() {
    let baseline = SimPlan::new(fanout_graph(2, 512), cfg(1, 2))
        .unwrap()
        .run()
        .unwrap();
    let mut binding = RunBinding::new();
    binding
        .deadline_cycles(u64::MAX)
        .deadline_rounds(u64::MAX)
        .cancel_token(CancelToken::new());
    let bounded = SimPlan::new(fanout_graph(2, 512), cfg(1, 2))
        .unwrap()
        .run_bound(&binding)
        .unwrap();
    assert_eq!(
        (baseline.cycles, baseline.offchip_traffic, baseline.rounds),
        (bounded.cycles, bounded.offchip_traffic, bounded.rounds),
        "an unreachable limit must not perturb the run"
    );
}

#[test]
fn pre_cancelled_token_stops_the_run_at_any_thread_count() {
    let token = CancelToken::new();
    token.cancel();
    let mut binding = RunBinding::new();
    binding.cancel_token(token);
    for (threads, shards) in [(1usize, 1usize), (1, 4), (4, 4)] {
        let err = SimPlan::new(fanout_graph(4, 256), cfg(threads, shards))
            .unwrap()
            .run_bound(&binding)
            .unwrap_err();
        assert_eq!(
            err,
            StepError::Cancelled,
            "threads={threads} shards={shards}"
        );
    }
}

#[test]
fn round_budget_overrun_is_a_typed_error_with_counters() {
    let tight = SimConfig {
        max_rounds: 1,
        ..cfg(1, 1)
    };
    let err = SimPlan::new(fanout_graph(2, 256), tight)
        .unwrap()
        .run()
        .unwrap_err();
    match err {
        StepError::RoundLimit {
            limit,
            rounds,
            fires,
        } => {
            assert_eq!(limit, 1);
            assert!(rounds > limit, "the blow must carry the overrun round");
            assert!(fires > 0, "the blow must carry the fire counter");
        }
        other => panic!("expected RoundLimit, got: {other}"),
    }
}

#[test]
fn wall_deadline_zero_blows_on_a_long_run() {
    // Wall deadlines are nondeterministic by nature; only the kind is
    // asserted. A 0 ms limit trips at the first mid-run checkpoint on
    // any host (elapsed durations are compared exactly, not floored to
    // whole milliseconds), so the graph only needs enough rounds to
    // reach one.
    let mut binding = RunBinding::new();
    binding.wall_deadline_ms(0);
    let err = SimPlan::new(fanout_graph(4, 4096), cfg(1, 1))
        .unwrap()
        .run_bound(&binding)
        .unwrap_err();
    assert!(
        matches!(
            err,
            StepError::Deadline {
                kind: DeadlineKind::WallMs,
                limit: 0,
                ..
            }
        ),
        "got: {err}"
    );
}

#[test]
fn deadline_blow_drops_pooled_state_and_the_pool_recovers() {
    let plan = SimPlan::new(fanout_graph(2, 512), cfg(1, 1)).unwrap();
    let mut pool = RunPool::default();
    let mut doomed = RunBinding::new();
    doomed.deadline_cycles(1);
    assert!(plan.pooled_run_bound(&doomed, &mut pool).is_err());
    // The failed run dropped its state instead of parking it; the next
    // run rebuilds cleanly and parks as usual.
    let first = plan.pooled_run(&mut pool).unwrap();
    assert_eq!(first.run_allocs, 1, "failed runs must not park state");
    let second = plan.pooled_run(&mut pool).unwrap();
    assert_eq!(second.run_allocs, 0, "recovered pool must reuse state");
    assert_eq!(first.cycles, second.cycles);
}
