//! Minimal sharded-engine smoke tests (small graphs, forced shards).

use step_core::graph::GraphBuilder;
use step_core::ops::LinearLoadCfg;
use step_sim::{SimConfig, Simulation};

fn cfg(threads: usize, shards: usize) -> SimConfig {
    SimConfig {
        threads,
        shards,
        max_rounds: 200_000,
        ..SimConfig::default()
    }
}

fn fanout_graph(ways: u32) -> step_core::Graph {
    let mut g = GraphBuilder::new();
    let trig = g.unit_source(1);
    let forks = g.fork(&trig, ways).unwrap();
    for (k, f) in forks.iter().enumerate() {
        let tiles = g
            .linear_offchip_load(
                f,
                LinearLoadCfg::new(k as u64 * 0x100000, (64, 256), (64, 64)),
            )
            .unwrap();
        g.linear_offchip_store(&tiles, 0x10_000_000 + k as u64 * 0x100000)
            .unwrap();
    }
    g.finish()
}

#[test]
fn sharded_fanout_completes_and_matches_across_threads() {
    let mono = Simulation::new(fanout_graph(8), cfg(1, 1))
        .unwrap()
        .run()
        .unwrap();
    let seq = Simulation::new(fanout_graph(8), cfg(1, 4))
        .unwrap()
        .run()
        .unwrap();
    assert!(seq.shards > 1, "shards {}", seq.shards);
    let par = Simulation::new(fanout_graph(8), cfg(4, 4))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(seq.cycles, par.cycles);
    assert_eq!(seq.offchip_traffic, par.offchip_traffic);
    assert_eq!(mono.offchip_traffic, seq.offchip_traffic);
}
