//! Minimal sharded-engine smoke tests (small graphs, forced shards).

use step_core::graph::GraphBuilder;
use step_core::ops::LinearLoadCfg;
use step_sim::{SimConfig, Simulation};

fn cfg(threads: usize, shards: usize) -> SimConfig {
    SimConfig {
        threads,
        shards,
        max_rounds: 200_000,
        ..SimConfig::default()
    }
}

fn fanout_graph(ways: u32) -> step_core::Graph {
    let mut g = GraphBuilder::new();
    let trig = g.unit_source(1);
    let forks = g.fork(&trig, ways).unwrap();
    for (k, f) in forks.iter().enumerate() {
        let tiles = g
            .linear_offchip_load(
                f,
                LinearLoadCfg::new(k as u64 * 0x100000, (64, 256), (64, 64)),
            )
            .unwrap();
        g.linear_offchip_store(&tiles, 0x10_000_000 + k as u64 * 0x100000)
            .unwrap();
    }
    g.finish()
}

/// A feedback dispatch loop with no initial selector: the `Partition`
/// waits on the fed-back selector, the merge waits on the regions, the
/// regions wait on the `Partition` — a genuine startup deadlock.
fn starved_feedback_graph() -> step_core::Graph {
    use step_core::elem::ElemKind;
    use step_core::shape::{Dim, StreamShape};
    let mut g = GraphBuilder::new();
    let requests = g.unit_source(4);
    let requests = g.promote(&requests).unwrap();
    let avail = Dim::dyn_regular(g.symbols().fresh("Avail"));
    let (fb, key) = g.feedback(
        StreamShape::new(vec![avail]),
        ElemKind::Selector { num_targets: 2 },
    );
    let routed = g.partition(&requests, &fb, 1, 2).unwrap();
    let refs: Vec<&step_core::StreamRef> = routed.iter().collect();
    let (_junk, prov) = g.eager_merge(&refs).unwrap();
    g.fulfill_feedback(key, &prov).unwrap();
    g.finish()
}

#[test]
fn deadlock_is_detected_not_hung_at_any_thread_count() {
    // The barrier-elision/fast-path engine must still diagnose a stuck
    // graph — inline and with parked workers — rather than spin or hang.
    for (threads, shards) in [(1, 1), (1, 4), (4, 4)] {
        let err = Simulation::new(starved_feedback_graph(), cfg(threads, shards))
            .unwrap()
            .run()
            .unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("blocked"),
            "threads={threads} shards={shards}: expected deadlock diagnostics, got: {msg}"
        );
    }
}

#[test]
fn sharded_fanout_completes_and_matches_across_threads() {
    let mono = Simulation::new(fanout_graph(8), cfg(1, 1))
        .unwrap()
        .run()
        .unwrap();
    let seq = Simulation::new(fanout_graph(8), cfg(1, 4))
        .unwrap()
        .run()
        .unwrap();
    assert!(seq.shards > 1, "shards {}", seq.shards);
    let par = Simulation::new(fanout_graph(8), cfg(4, 4))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(seq.cycles, par.cycles);
    assert_eq!(seq.offchip_traffic, par.offchip_traffic);
    assert_eq!(mono.offchip_traffic, seq.offchip_traffic);
}
