//! Property tests for the token-stream algebra: seeded generators build
//! random nested `Stop(k)`/`Done` streams and assert that
//!
//! - `Promote` then `Flatten` over the added dimension is the identity on
//!   token streams (the shape-operator round-trip of Table 7),
//! - the round-trip survives capacity-1 channels (backpressure, port
//!   staging) and sharded parallel execution unchanged, and
//! - an early consumer close (a `Reassemble` whose selector never picks
//!   an input) drops undelivered tokens without corrupting the stream.
//!
//! Cases come from a seeded local PRNG (the build container has no
//! crates.io access, so `proptest` is unavailable); failures print the
//! case seed for replay.

use step_core::elem::{Elem, ElemKind, Selector};
use step_core::graph::GraphBuilder;
use step_core::shape::{Dim, StreamShape};
use step_core::token::{self, Token};
use step_sim::{SimConfig, Simulation};

const CASES: u64 = 32;

/// SplitMix64-based case generator.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// Emits one rank-`rank` tensor's worth of tokens (values and stops
/// strictly below `rank`).
fn gen_tensor(g: &mut Gen, rank: u8, out: &mut Vec<Token>, next_val: &mut u64) {
    if rank == 0 {
        out.push(Token::Val(Elem::Addr(*next_val)));
        *next_val += 1;
        return;
    }
    let slices = g.range(1, 4);
    for s in 0..slices {
        gen_tensor(g, rank - 1, out, next_val);
        // Slices below level 1 concatenate without separators (values
        // inside a rank-1 tensor carry no stops).
        if s + 1 < slices && rank >= 2 {
            out.push(Token::Stop(rank - 1));
        }
    }
}

/// A random well-formed rank-`rank` stream: tensors separated by
/// `Stop(rank)`, terminated by `Done`.
fn gen_stream(g: &mut Gen, rank: u8) -> Vec<Token> {
    let mut out = Vec::new();
    let mut next_val = 0;
    let tensors = g.range(1, 5);
    for _ in 0..tensors {
        gen_tensor(g, rank, &mut out, &mut next_val);
        // Top-level stops terminate every tensor (eq. 1: `…,S2,D`);
        // only the levels below separate.
        if rank > 0 {
            out.push(Token::Stop(rank));
        }
    }
    out.push(Token::Done);
    token::validate(&out, rank).expect("generator emits well-formed streams");
    out
}

/// A rank-`rank` shape of all-ragged dimensions (nothing checked
/// statically; contents carry the structure).
fn ragged_shape(g: &mut GraphBuilder, rank: u8) -> StreamShape {
    let dims = (0..=rank)
        .map(|_| Dim::ragged(g.symbols().fresh("P")))
        .collect();
    StreamShape::new(dims)
}

fn for_each_case(f: impl Fn(&mut Gen, u64)) {
    for seed in 0..CASES {
        let mut g = Gen(seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
        f(&mut g, seed);
    }
}

/// Builds source → promote → flatten(rank, rank+1) → sink and returns the
/// recorded stream.
fn promote_flatten_roundtrip(
    tokens: Vec<Token>,
    rank: u8,
    tight_channels: bool,
    sim_cfg: SimConfig,
) -> Vec<Token> {
    let mut g = GraphBuilder::new();
    let shape = ragged_shape(&mut g, rank);
    let s = g.source(tokens, shape, ElemKind::Addr).unwrap();
    if tight_channels {
        g.set_capacity(&s, 1);
    }
    let p = g.promote(&s).unwrap();
    if tight_channels {
        g.set_capacity(&p, 1);
    }
    let f = g.flatten(&p, rank, rank + 1).unwrap();
    if tight_channels {
        g.set_capacity(&f, 1);
    }
    let sink = g.sink(&f).unwrap();
    let report = Simulation::new(g.finish(), sim_cfg).unwrap().run().unwrap();
    report.sink_tokens(sink).unwrap().to_vec()
}

#[test]
fn promote_flatten_is_identity_on_streams() {
    for_each_case(|g, seed| {
        let rank = g.range(0, 3) as u8;
        let tokens = gen_stream(g, rank);
        let out = promote_flatten_roundtrip(tokens.clone(), rank, false, SimConfig::default());
        assert_eq!(out, tokens, "seed {seed} rank {rank}");
    });
}

#[test]
fn roundtrip_survives_backpressure_and_sharding() {
    for_each_case(|g, seed| {
        let rank = g.range(0, 3) as u8;
        let tokens = gen_stream(g, rank);
        // Capacity-1 channels force every backpressure/staging path; the
        // forced 3-shard plan on 2 threads adds cross-shard credits.
        let cfg = SimConfig {
            threads: 2,
            shards: 3,
            ..SimConfig::default()
        };
        let out = promote_flatten_roundtrip(tokens.clone(), rank, true, cfg);
        assert_eq!(out, tokens, "seed {seed} rank {rank}");
        token::validate(&out, rank).unwrap();
    });
}

#[test]
fn early_consumer_close_preserves_well_formedness() {
    // A Reassemble whose selector only ever picks input 0 finishes while
    // input 1 still holds (and keeps producing) tokens; the close must
    // drop them without disturbing the committed output stream.
    for_each_case(|g, seed| {
        let chunks = g.range(1, 4) as usize;
        let groups_a: Vec<Vec<Elem>> = (0..chunks)
            .map(|c| {
                (0..g.range(1, 4))
                    .map(|v| Elem::Addr((c as u64) << 8 | v))
                    .collect()
            })
            .collect();
        let groups_b: Vec<Vec<Elem>> = vec![vec![Elem::Addr(0xdead); 3]; chunks + 2];
        let mut gb = GraphBuilder::new();
        let shape_a = StreamShape::new(vec![
            Dim::ragged(gb.symbols().fresh("A")),
            Dim::ragged(gb.symbols().fresh("A")),
        ]);
        let shape_b = StreamShape::new(vec![
            Dim::ragged(gb.symbols().fresh("B")),
            Dim::ragged(gb.symbols().fresh("B")),
        ]);
        let a = gb
            .source(token::rank1_from_groups(&groups_a), shape_a, ElemKind::Addr)
            .unwrap();
        let b = gb
            .source(token::rank1_from_groups(&groups_b), shape_b, ElemKind::Addr)
            .unwrap();
        gb.set_capacity(&b, 1);
        let sel = gb
            .selector_source(vec![Selector::one(0); chunks], 2)
            .unwrap();
        let out = gb.reassemble(&[&a, &b], &sel, 1).unwrap();
        let sink = gb.sink(&out).unwrap();
        let report = Simulation::new(gb.finish(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let toks = report.sink_tokens(sink).unwrap();
        token::validate(toks, 2)
            .unwrap_or_else(|e| panic!("seed {seed}: malformed output after early close: {e}"));
        let vals: Vec<&Elem> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Val(e) => Some(e),
                _ => None,
            })
            .collect();
        let expect: Vec<&Elem> = groups_a.iter().flatten().collect();
        assert_eq!(vals, expect, "seed {seed}: committed values disturbed");
    });
}
