//! Differential conformance suite for the sharded parallel engine.
//!
//! The determinism contract under test: every [`SimReport`] metric is a
//! pure function of `(graph, SimConfig minus threads)`. For each workload
//! we run
//!
//! 1. the **sequential reference** — the sharded plan executed on one
//!    thread — and the same plan on 2, 4, and 8 worker threads, asserting
//!    **bit-identical** cycles, traffic, flops, arena peak, rounds, and
//!    recorded sink streams; and
//! 2. the **monolithic engine** (`shards = 1`, the legacy immediate-commit
//!    path) against the sharded plan, asserting the order-independent
//!    functional metrics (off-chip read/write/total traffic, FLOPs,
//!    on-chip memory equations, value counts) agree exactly — the two
//!    plans commit the same token flow, differing only in conservative
//!    synchronization timing.
//!
//! Workloads cover every `step-models` graph builder (SwiGLU validation
//! sizes, MoE spatial static/dynamic, MoE time-multiplexed regions with
//! `EagerMerge` + `RandomOffChipLoad`, and attention across
//! parallelization strategies) — the graphs behind the paper's figure
//! experiments.

use step_core::Graph;
use step_models::ModelConfig;
use step_models::attention::{AttentionCfg, ParallelStrategy, attention_graph};
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_models::swiglu::{SwigluCfg, swiglu_graph};
use step_sim::{SimConfig, SimReport, Simulation};
use step_traces::{KvTraceConfig, RoutingConfig, Variability, expert_routing, kv_lengths};

fn small_model() -> ModelConfig {
    ModelConfig {
        name: "conf-small",
        hidden: 128,
        moe_intermediate: 256,
        experts: 8,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 2,
    }
}

fn workloads() -> Vec<(String, Graph)> {
    let model = small_model();
    let mut out: Vec<(String, Graph)> = Vec::new();
    for (tb, ti) in [(16u64, 64u64), (32, 256)] {
        out.push((
            format!("swiglu({tb},{ti})"),
            swiglu_graph(&SwigluCfg::validation(tb, ti)).unwrap(),
        ));
    }
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 24,
        skew: 0.8,
        seed: 7,
    });
    for (name, tiling) in [
        ("moe-static4", Tiling::Static { tile: 4 }),
        ("moe-dynamic", Tiling::Dynamic),
    ] {
        out.push((
            name.to_string(),
            moe_graph(&MoeCfg::new(model.clone(), tiling), &trace).unwrap(),
        ));
    }
    out.push((
        "moe-regions2".to_string(),
        moe_graph(
            &MoeCfg::new(model.clone(), Tiling::Static { tile: 4 }).with_regions(2),
            &trace,
        )
        .unwrap(),
    ));
    let kv = kv_lengths(&KvTraceConfig {
        batch: 12,
        variability: Variability::Medium,
        median_len: 256.0,
        max_len: 1024,
        seed: 11,
        ..KvTraceConfig::default()
    });
    for (name, strategy) in [
        ("attn-interleaved", ParallelStrategy::StaticInterleaved),
        ("attn-dynamic", ParallelStrategy::Dynamic),
    ] {
        out.push((
            name.to_string(),
            attention_graph(&AttentionCfg::new(model.clone(), strategy), &kv).unwrap(),
        ));
    }
    out
}

fn run(graph: &Graph, threads: usize, shards: usize) -> SimReport {
    Simulation::new(
        graph.clone(),
        SimConfig {
            threads,
            shards,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run()
    .unwrap()
}

/// The bit-identity fields of a report, including functional sink output
/// and the coordination counters (sub-rounds, elisions, wake dedup) —
/// the whole schedule, not just its outcomes, must be worker-independent.
#[allow(clippy::type_complexity)]
fn fingerprint(
    r: &SimReport,
) -> (
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    usize,
    String,
    String,
) {
    let sinks = format!("{:?}", r.sinks);
    let sched = format!("{:?}", r.sched);
    (
        r.cycles,
        r.offchip_traffic,
        r.offchip_read,
        r.offchip_write,
        r.onchip_memory,
        r.arena_peak,
        r.total_flops,
        r.rounds,
        r.shards,
        sinks,
        sched,
    )
}

#[test]
fn parallel_runs_are_bit_identical_to_sequential() {
    for (name, graph) in workloads() {
        // Force a multi-shard plan even on these small graphs.
        let reference = run(&graph, 1, 6);
        assert!(
            reference.shards > 1,
            "{name}: expected a sharded plan, got {}",
            reference.shards
        );
        let want = fingerprint(&reference);
        for threads in [2, 4, 8] {
            let got = fingerprint(&run(&graph, threads, 6));
            assert_eq!(got, want, "{name}: threads={threads} diverged");
        }
    }
}

#[test]
fn auto_plan_is_thread_independent() {
    for (name, graph) in workloads() {
        let want = fingerprint(&run(&graph, 1, 0));
        for threads in [2, 8] {
            let got = fingerprint(&run(&graph, threads, 0));
            assert_eq!(got, want, "{name}: auto plan, threads={threads} diverged");
        }
    }
}

#[test]
fn sharded_plan_agrees_with_monolithic_on_functional_metrics() {
    for (name, graph) in workloads() {
        let mono = run(&graph, 1, 1);
        let sharded = run(&graph, 2, 6);
        assert_eq!(mono.shards, 1, "{name}");
        assert_eq!(
            (mono.offchip_traffic, mono.offchip_read, mono.offchip_write),
            (
                sharded.offchip_traffic,
                sharded.offchip_read,
                sharded.offchip_write
            ),
            "{name}: traffic diverged between monolithic and sharded plans"
        );
        assert_eq!(mono.total_flops, sharded.total_flops, "{name}: flops");
        assert_eq!(
            mono.onchip_memory, sharded.onchip_memory,
            "{name}: onchip memory"
        );
        let values = |r: &SimReport| {
            (
                r.node_stats.iter().map(|s| s.values_in).sum::<u64>(),
                r.node_stats.iter().map(|s| s.values_out).sum::<u64>(),
            )
        };
        assert_eq!(values(&mono), values(&sharded), "{name}: token counts");
        // Conservative cross-shard synchronization may defer commits and
        // timestamp-ordered off-chip commitment may re-rank same-window
        // completions, but neither changes what executes; cycle counts
        // stay within a band of the monolithic schedule.
        let (lo, hi) = (
            mono.cycles.min(sharded.cycles),
            mono.cycles.max(sharded.cycles),
        );
        eprintln!(
            "{name}: mono {} vs sharded {} ({:+.1}%)",
            mono.cycles,
            sharded.cycles,
            (sharded.cycles as f64 / mono.cycles as f64 - 1.0) * 100.0
        );
        assert!(
            hi as f64 <= lo as f64 * 1.5,
            "{name}: cycles diverged beyond the conservative band: mono {} vs sharded {}",
            mono.cycles,
            sharded.cycles
        );
    }
}

#[test]
fn elision_and_fast_path_are_plan_knobs_not_result_knobs() {
    // Barrier elision and the off-chip fast path change the sharded
    // schedule (they are plan knobs, free to move timing within the
    // conservative band) but may never introduce worker-order
    // sensitivity: every flag combination must stay bit-identical across
    // thread counts.
    // moe-regions2 (EagerMerge + RandomOffChipLoad) and attn-dynamic
    // (feedback-driven dispatch): the workloads most sensitive to
    // arrival-order scheduling.
    for (name, graph) in [workloads().remove(4), workloads().remove(6)] {
        for (elide, fast) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = |threads| SimConfig {
                threads,
                shards: 6,
                elide_barriers: elide,
                offchip_fast_path: fast,
                ..SimConfig::default()
            };
            let run = |threads| {
                Simulation::new(graph.clone(), cfg(threads))
                    .unwrap()
                    .run()
                    .unwrap()
            };
            let want = fingerprint(&run(1));
            for threads in [2, 8] {
                let got = fingerprint(&run(threads));
                assert_eq!(
                    got, want,
                    "{name}: elide={elide} fast={fast} threads={threads} diverged"
                );
            }
        }
    }
}

/// Pins the swiglu(16,64) mono-vs-sharded cycle divergence so engine
/// changes cannot silently move it.
///
/// The monolithic engine commits off-chip accesses in host (wake-list)
/// order: the two weight loaders' request streams interleave by
/// scheduler accident, so consecutive ledger commits ping-pong between
/// the W1 and W3 address ranges and most accesses open a fresh DRAM row
/// (row-miss latency `t_cas + t_row_miss`). The sharded engine commits
/// each barrier batch in `(time, node, seq)` order, which groups one
/// loader's same-row tile bursts back-to-back; the extra row-buffer hits
/// shorten the memory-bound critical path, so the *sharded* plan is
/// faster. On the paper's memory-bound swiglu(16,64) validation point
/// the gap was widest: ~30% under PR-2's per-window barrier stepping,
/// whose small per-barrier commit batches reordered most aggressively
/// relative to issue order; barrier elision merges those into a few
/// large, nearly issue-ordered batches, closing the gap to ~6.5%.
#[test]
fn swiglu_16_64_row_buffer_divergence_is_pinned() {
    let graph = swiglu_graph(&SwigluCfg::validation(16, 64)).unwrap();
    let mono = run(&graph, 1, 1);
    let sharded = run(&graph, 1, 6);
    assert_eq!(mono.cycles, 5789, "monolithic schedule moved");
    assert_eq!(sharded.cycles, 5411, "sharded schedule moved");
    // Same token flow, same traffic — the divergence is purely DRAM row
    // locality of the commit order.
    assert_eq!(mono.offchip_traffic, sharded.offchip_traffic);
    assert_eq!(mono.total_flops, sharded.total_flops);
}

#[test]
fn shard_count_is_a_plan_knob_not_a_result_knob_for_thread_axis() {
    // Different forced shard counts are different plans (allowed to have
    // different timing), but each must be internally thread-independent.
    let (_, graph) = workloads().remove(2); // moe-static4
    for shards in [2, 4, 8] {
        let want = fingerprint(&run(&graph, 1, shards));
        let got = fingerprint(&run(&graph, 4, shards));
        assert_eq!(got, want, "shards={shards}");
    }
}
