//! Chaos conformance: the sweep service under deterministic fault
//! injection.
//!
//! A seeded [`FaultPlan`] assigns four fault classes (builder panic,
//! builder error, mid-run engine error via a one-round budget, cycle-
//! deadline blow) to distinct units of a batch. The suite replays the
//! same plan at 1/2/8 workers on fresh services and asserts the full
//! failure contract (README "Failure semantics"):
//!
//! - the stream **always yields all N results, in submission order** —
//!   no fault loses, reorders, or hangs a unit;
//! - faulted units resolve to exactly the planned typed [`UnitError`];
//! - non-faulted units are **bit-identical** to serial `SimPlan`
//!   baselines (everything but the host-side pool counters);
//! - the [`CacheStats`] counters — including `failures` — are pinned
//!   exactly, cold and warm, at every worker count;
//! - the cache never deadlocks: coalesced waiters on a failing build
//!   wake with the error, and termination needs no watchdog (CI wraps
//!   the suite in a hard `timeout`, which a hang would trip).

use step_bench::{
    CacheStats, FaultKind, FaultPlan, PointResult, SimPoint, SweepService, SweepUnit, UnitError,
    UnitFailure,
};
use step_core::graph::GraphBuilder;
use step_core::ops::LinearLoadCfg;
use step_core::{DeadlineKind, Graph, Result, StepError};
use step_sim::{RunBinding, SimConfig, SimPlan, SimReport};

const UNITS: usize = 12;
const FAULTS: usize = 4;
const SEED: u64 = 0xC4A05;
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A tiny off-chip load/store graph whose traffic scales with `tiles`;
/// units use distinct `tiles`, so every unit is its own plan key and
/// the cache counters below are exact at any worker count.
fn tiny_graph(tiles: u64) -> Result<Graph> {
    let mut g = GraphBuilder::new();
    let trigger = g.unit_source(1);
    let loaded =
        g.linear_offchip_load(&trigger, LinearLoadCfg::new(0, (64, 64 * tiles), (64, 64)))?;
    g.linear_offchip_store(&loaded, 0x10_0000)?;
    Ok(g.finish())
}

/// The unit for batch index `i`, faulted per the plan. Every unit keeps
/// a distinct plan key (distinct `tiles`, and the one-round budget of
/// `RunError` changes the config fingerprint), so cold-batch counters
/// are exactly one miss per unit with zero coalescing.
fn unit_for(i: usize, fault: Option<FaultKind>) -> SweepUnit {
    let mut tiles = i as u64 + 1;
    let label = format!("unit{i}");
    let mut cfg = SimConfig::default();
    let mut binding = None;
    let build: Box<dyn FnMut() -> Result<Graph> + Send> = match fault {
        Some(FaultKind::BuilderPanic) => Box::new(|| panic!("chaos: injected builder panic")),
        Some(FaultKind::BuilderErr) => {
            Box::new(|| Err(StepError::Config("chaos: injected builder error".into())))
        }
        Some(FaultKind::RunError) => {
            // Builds fine, then blows the round budget mid-run. Graphs
            // of <= 7 tiles quiesce in a single scheduler round, so the
            // faulted unit runs a batch-disjoint larger graph that is
            // guaranteed to need several.
            cfg.max_rounds = 1;
            tiles += 16;
            Box::new(move || tiny_graph(tiles))
        }
        Some(FaultKind::DeadlineBlow) => {
            let mut b = RunBinding::new();
            b.deadline_cycles(1);
            binding = Some(b);
            Box::new(move || tiny_graph(tiles))
        }
        None => Box::new(move || tiny_graph(tiles)),
    };
    SweepUnit::Sim(SimPoint {
        label,
        builder: tiles,
        cfg,
        build,
        binding,
    })
}

/// Asserts one resolved unit against the plan: the planned typed error
/// for faulted units, `Ok` for clean ones.
fn assert_outcome(
    i: usize,
    fault: Option<FaultKind>,
    res: &std::result::Result<PointResult, UnitFailure>,
) {
    let want_label = format!("unit{i}");
    match (fault, res) {
        (None, Ok(r)) => assert_eq!(r.label, want_label),
        (Some(kind), Err(UnitFailure { label, error })) => {
            assert_eq!(*label, want_label, "faulted unit lost its label");
            match kind {
                FaultKind::BuilderPanic => assert!(
                    matches!(error, UnitError::Panicked(m) if m.contains("chaos")),
                    "unit{i}: {error}"
                ),
                FaultKind::BuilderErr => assert!(
                    matches!(error, UnitError::Build(StepError::Config(m)) if m.contains("chaos")),
                    "unit{i}: {error}"
                ),
                FaultKind::RunError => assert!(
                    matches!(
                        error,
                        UnitError::Run(StepError::RoundLimit { limit: 1, .. })
                    ),
                    "unit{i}: {error}"
                ),
                FaultKind::DeadlineBlow => assert!(
                    matches!(
                        error,
                        UnitError::DeadlineExceeded(StepError::Deadline {
                            kind: DeadlineKind::Cycles,
                            limit: 1,
                            ..
                        })
                    ),
                    "unit{i}: {error}"
                ),
            }
        }
        (None, Err(e)) => panic!("clean unit{i} failed: {e}"),
        (Some(k), Ok(_)) => panic!("unit{i} should have faulted with {k:?}"),
    }
}

/// A report with the host-side pool counters cleared, so serial
/// baselines (fresh state) compare bit-identically against service
/// workers (pooled state).
fn sans_pooling(report: &SimReport) -> SimReport {
    SimReport {
        run_allocs: 0,
        pool_resets: 0,
        ..report.clone()
    }
}

#[test]
fn chaos_batch_resolves_every_unit_identically_at_any_worker_count() {
    let plan = FaultPlan::seeded(SEED, UNITS, FAULTS);
    assert_eq!(plan.slots().len(), FAULTS, "plan must fault {FAULTS} units");
    // Serial baselines for the clean units: one fresh SimPlan each.
    let baselines: Vec<Option<SimReport>> = (0..UNITS)
        .map(|i| {
            plan.fault_for(i).is_none().then(|| {
                SimPlan::new(tiny_graph(i as u64 + 1).unwrap(), SimConfig::default())
                    .unwrap()
                    .run()
                    .unwrap()
            })
        })
        .collect();
    // Build-faulted units never freeze a plan; the others build once.
    let build_faults = plan
        .slots()
        .iter()
        .filter(|(_, k)| matches!(k, FaultKind::BuilderPanic | FaultKind::BuilderErr))
        .count() as u64;
    let n = UNITS as u64;

    for workers in WORKER_COUNTS {
        let svc = SweepService::new(workers);
        let units: Vec<SweepUnit> = (0..UNITS).map(|i| unit_for(i, plan.fault_for(i))).collect();
        let cold: Vec<_> = svc.submit(units).collect();
        assert_eq!(cold.len(), UNITS, "workers={workers}: lost results");
        for (i, res) in cold.iter().enumerate() {
            assert_outcome(i, plan.fault_for(i), res);
            if let (Some(base), Ok(r)) = (&baselines[i], res) {
                let sim = r.report.sim().expect("sim unit");
                assert_eq!(
                    sans_pooling(sim),
                    sans_pooling(base),
                    "workers={workers}: clean unit{i} diverged from its serial baseline"
                );
            }
        }
        // Distinct keys, zero coalescing: the cold pin is exact.
        assert_eq!(
            svc.cache().stats(),
            CacheStats {
                hits: 0,
                misses: n,
                builds: n - build_faults,
                failures: build_faults
            },
            "workers={workers}: cold cache counters moved"
        );

        // Warm replay on the same service: successful plans are hits;
        // failed builds are sticky-but-retryable, so each build-faulted
        // key re-misses and re-fails. Still exact.
        let units: Vec<SweepUnit> = (0..UNITS).map(|i| unit_for(i, plan.fault_for(i))).collect();
        let warm: Vec<_> = svc.submit(units).collect();
        assert_eq!(warm.len(), UNITS);
        for (i, res) in warm.iter().enumerate() {
            assert_outcome(i, plan.fault_for(i), res);
        }
        for (c, w) in cold.iter().zip(&warm) {
            if let (Ok(c), Ok(w)) = (c, w) {
                let (c, w) = (c.report.sim().unwrap(), w.report.sim().unwrap());
                assert_eq!(
                    sans_pooling(c),
                    sans_pooling(w),
                    "workers={workers}: warm rerun diverged"
                );
            }
        }
        assert_eq!(
            svc.cache().stats(),
            CacheStats {
                hits: n - build_faults,
                misses: n + build_faults,
                builds: n - build_faults,
                failures: 2 * build_faults
            },
            "workers={workers}: warm cache counters moved"
        );
    }
}

/// Coalesced checkouts of one key whose builder always panics: every
/// unit resolves with the typed panic error — as the claimant that ran
/// the build or as a waiter woken by the `Failed` slot — and nothing
/// hangs, at every worker count.
#[test]
fn same_key_builder_panics_never_strand_waiters() {
    for workers in WORKER_COUNTS {
        let svc = SweepService::new(workers);
        let units: Vec<SweepUnit> = (0..8)
            .map(|i| {
                SweepUnit::Sim(SimPoint {
                    label: format!("shared{i}"),
                    builder: 777, // one shared key for the whole batch
                    cfg: SimConfig::default(),
                    build: Box::new(|| panic!("chaos: shared build panics")),
                    binding: None,
                })
            })
            .collect();
        let results: Vec<_> = svc.submit(units).collect();
        assert_eq!(results.len(), 8, "workers={workers}: lost results");
        for (i, res) in results.iter().enumerate() {
            match res {
                Err(UnitFailure { label, error }) => {
                    assert_eq!(*label, format!("shared{i}"));
                    assert!(
                        matches!(error, UnitError::Panicked(m) if m.contains("chaos")),
                        "workers={workers} unit{i}: {error}"
                    );
                }
                Ok(_) => panic!("workers={workers}: a panicking build produced a plan"),
            }
        }
        // How many of the 8 claimed the build is scheduler-dependent
        // (waiters coalesce), but the counter *relations* are not:
        // every claim is a miss that fails, every waiter a hit, and
        // nothing ever builds.
        let stats = svc.cache().stats();
        assert_eq!(stats.builds, 0);
        assert_eq!(stats.misses, stats.failures);
        assert!(stats.failures >= 1 && stats.failures <= 8);
        assert_eq!(stats.hits + stats.misses, 8);
    }
}

/// Faults must not wedge a bounded queue: a depth-1 queue with panicking
/// and failing units still drains the whole batch in order.
#[test]
fn bounded_queue_stays_live_under_faults() {
    let plan = FaultPlan::seeded(SEED ^ 1, 8, 3);
    let svc = SweepService::with_queue_depth(2, 1);
    let units: Vec<SweepUnit> = (0..8).map(|i| unit_for(i, plan.fault_for(i))).collect();
    let results: Vec<_> = svc.submit(units).collect();
    assert_eq!(results.len(), 8);
    for (i, res) in results.iter().enumerate() {
        assert_outcome(i, plan.fault_for(i), res);
    }
}

/// Graceful drain under chaos: shutdown after a faulted batch completes
/// cleanly, is idempotent, and later submissions resolve — with the
/// typed `Shutdown` error and their real labels — instead of hanging.
#[test]
fn shutdown_after_chaos_drains_then_rejects() {
    let plan = FaultPlan::seeded(SEED ^ 2, 6, 2);
    let mut svc = SweepService::new(2);
    let units: Vec<SweepUnit> = (0..6).map(|i| unit_for(i, plan.fault_for(i))).collect();
    let results: Vec<_> = svc.submit(units).collect();
    assert_eq!(results.len(), 6);
    for (i, res) in results.iter().enumerate() {
        assert_outcome(i, plan.fault_for(i), res);
    }
    svc.shutdown();
    svc.shutdown(); // idempotent
    let rejected: Vec<_> = svc
        .submit((0..3).map(|i| unit_for(i, None)).collect::<Vec<_>>())
        .collect();
    assert_eq!(rejected.len(), 3, "rejected batches still resolve all N");
    for (i, res) in rejected.iter().enumerate() {
        match res {
            Err(UnitFailure { label, error }) => {
                assert_eq!(*label, format!("unit{i}"));
                assert_eq!(*error, UnitError::Shutdown);
            }
            Ok(_) => panic!("post-shutdown unit{i} ran"),
        }
    }
}
