//! Differential conformance for the sweep service: every sweep that was
//! rewired onto [`step_bench::SweepService`] is held **bit-identical**
//! to the serial loop it replaced — at 1/2/4/8 workers, and across
//! warm-cache reruns — and the [`step_bench::CacheStats`] counters are
//! pinned exactly (their semantics are scheduler-independent, so the
//! pins hold at any worker count; see the service module docs).
//!
//! Wall-clock is never asserted. Pool-reuse counters (`run_allocs`,
//! `pool_resets`) are deliberately *not* part of any comparison here:
//! the serial baseline builds fresh run state (`run_allocs == 1`) while
//! a warm service worker resets in place (`run_allocs == 0`) — that
//! split is asserted by the service's own unit tests and by
//! `sched_bench --reuse`, not by row conformance. The sweep rows only
//! carry derived metrics, which the determinism contract makes pure
//! functions of (graph, config, binding).

use step_bench::experiments::{
    serve_cfg, serve_sweep_on, serve_sweep_serial, serve_trace, tiling_sweep_on,
    tiling_sweep_serial, timeshare_sweep_on, timeshare_sweep_serial,
};
use step_bench::{CacheStats, SimPoint, SweepService, SweepUnit};
use step_models::ModelConfig;
use step_models::e2e::E2eVariant;
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_models::serving::ServeJob;
use step_sim::{Fingerprint, SimConfig};
use step_traces::{RoutingConfig, expert_routing};

/// Fig 9's Mixtral cells (trimmed to two static tiles to stay
/// CI-affordable) must come back from the service bit-identical to the
/// serial loop at every worker count, with one build per distinct plan.
#[test]
fn tiling_sweep_matches_serial_at_every_worker_count() {
    let tiles = [8u64, 16];
    let serial = tiling_sweep_serial(ModelConfig::mixtral_8x7b(), 64, &tiles, 7);
    for workers in [1usize, 2, 4, 8] {
        let svc = SweepService::new(workers);
        let rows = tiling_sweep_on(&svc, ModelConfig::mixtral_8x7b(), 64, &tiles, 7)
            .expect("tiling sweep runs");
        assert_eq!(rows.len(), serial.len());
        for (s, r) in serial.iter().zip(&rows) {
            assert_eq!(s.schedule, r.schedule, "workers={workers} reordered");
            assert_eq!(
                (s.cycles, s.onchip, s.traffic),
                (r.cycles, r.onchip, r.traffic),
                "workers={workers} diverged from the serial loop on {}",
                s.schedule
            );
        }
        // Three distinct plans (static 8, static 16, dynamic), each
        // requested exactly once: all misses, no coalescing possible.
        assert_eq!(
            svc.cache().stats(),
            CacheStats {
                hits: 0,
                misses: 3,
                builds: 3,
                failures: 0
            },
            "workers={workers} cache counters moved"
        );
    }
}

/// The Fig 12/13 region sweep must match its serial loop, and — because
/// Fig 12's static(32) column and Fig 13 submit identical cells — a
/// second submission on the same service must be served entirely from
/// the warm cache: identical rows, zero further builds.
#[test]
fn timeshare_sweep_matches_serial_and_warm_rerun_builds_nothing() {
    let serial = timeshare_sweep_serial(Tiling::Static { tile: 32 }, 7);
    let svc = SweepService::new(4);
    let cold =
        timeshare_sweep_on(&svc, Tiling::Static { tile: 32 }, 7).expect("timeshare sweep runs");
    assert_eq!(cold.len(), serial.len());
    for (s, r) in serial.iter().zip(&cold) {
        assert_eq!(s.regions, r.regions, "service reordered the region axis");
        assert_eq!(
            (s.cycles, s.allocated_compute, s.onchip),
            (r.cycles, r.allocated_compute, r.onchip),
            "service diverged from the serial loop at regions={}",
            s.regions
        );
        // Utilizations are ratios of counters — bit-equal, not approx.
        assert_eq!(s.compute_util.to_bits(), r.compute_util.to_bits());
        assert_eq!(s.bw_util.to_bits(), r.bw_util.to_bits());
    }
    assert_eq!(
        svc.cache().stats(),
        CacheStats {
            hits: 0,
            misses: 6,
            builds: 6,
            failures: 0
        }
    );
    let warm =
        timeshare_sweep_on(&svc, Tiling::Static { tile: 32 }, 7).expect("timeshare sweep runs");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            (c.regions, c.cycles, c.allocated_compute, c.onchip),
            (w.regions, w.cycles, w.allocated_compute, w.onchip),
            "warm-cache rerun diverged at regions={}",
            c.regions
        );
        assert_eq!(c.compute_util.to_bits(), w.compute_util.to_bits());
        assert_eq!(c.bw_util.to_bits(), w.bw_util.to_bits());
    }
    assert_eq!(
        svc.cache().stats(),
        CacheStats {
            hits: 6,
            misses: 6,
            builds: 6,
            failures: 0
        },
        "warm rerun must be all hits and build nothing"
    );
}

/// The quick serving cell through the service must reproduce the serial
/// `run_serve` report bit-for-bit ([`step_models::serving::ServeReport`]
/// is `PartialEq` over every metric and counter), with the two phase
/// plans (attention + MoE) built exactly once and the warm rerun served
/// entirely from cache.
#[test]
fn serve_sweep_quick_matches_serial_and_pins_cache_counters() {
    let serial = serve_sweep_serial(true);
    for workers in [1usize, 2] {
        let svc = SweepService::new(workers);
        let rows = serve_sweep_on(&svc, true).expect("serve sweep runs");
        assert_eq!(rows.len(), serial.len());
        for (s, r) in serial.iter().zip(&rows) {
            assert_eq!(
                s.report, r.report,
                "workers={workers} serve cell (interarrival {:.0}, chunk {:?}) diverged",
                s.mean_interarrival, s.prefill_chunk
            );
        }
        assert_eq!(
            svc.cache().stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                builds: 2,
                failures: 0
            },
            "workers={workers}: quick cell must build exactly its two phase plans"
        );
        let warm = serve_sweep_on(&svc, true).expect("serve sweep runs");
        for (c, w) in rows.iter().zip(&warm) {
            assert_eq!(c.report, w.report, "workers={workers} warm rerun diverged");
        }
        assert_eq!(
            svc.cache().stats(),
            CacheStats {
                hits: 2,
                misses: 2,
                builds: 2,
                failures: 0
            },
            "workers={workers}: warm rerun must be all hits"
        );
    }
}

/// Sim points and serve jobs interleaved in one batch stream back in
/// submission order with the right report types, and the serve job's
/// report equals a direct serial [`ServeJob::run`].
#[test]
fn mixed_sim_and_serve_batches_stream_in_submission_order() {
    let model = ModelConfig::mixtral_8x7b();
    let routing = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 16,
        skew: 0.8,
        seed: 7,
    });
    let sim_point = |label: &str, tile: u64| {
        let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile });
        let routing = routing.clone();
        let mut fp = Fingerprint::new("bench.moe");
        fp.push_debug(&cfg).push_debug(&routing);
        SweepUnit::Sim(SimPoint {
            label: label.to_owned(),
            builder: fp.finish(),
            cfg: SimConfig::default(),
            build: Box::new(move || moe_graph(&cfg, &routing)),
            binding: None,
        })
    };
    let serve_job = ServeJob {
        label: "serve".to_owned(),
        model: model.clone(),
        variant: E2eVariant::static_schedule("Static (Perf-matched)", 32),
        trace: serve_trace(300_000_000.0, true),
        cfg: serve_cfg(Some(16)),
    };
    let baseline = serve_job.run().expect("serial serve run");

    let svc = SweepService::new(4);
    let results = svc
        .run_all(vec![
            sim_point("moe8", 8),
            SweepUnit::Serve(serve_job),
            sim_point("moe16", 16),
        ])
        .expect("mixed batch runs");
    assert_eq!(
        results.iter().map(|r| r.label.as_str()).collect::<Vec<_>>(),
        ["moe8", "serve", "moe16"],
        "results must stream in submission order"
    );
    assert!(results[0].report.sim().is_some());
    assert!(results[2].report.sim().is_some());
    let served = results[1].report.serve().expect("serve unit");
    assert_eq!(
        *served, baseline,
        "service-run serve job diverged from the serial ServeJob::run"
    );
}
