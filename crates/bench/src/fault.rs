//! Deterministic fault injection for the sweep service.
//!
//! A [`FaultPlan`] is a seeded assignment of faults to unit indices:
//! which units of a batch fail, and how. It is a pure function of
//! `(seed, units, faults)` — the chaos conformance suite
//! (`crates/bench/tests/chaos_conformance.rs`) replays one plan at
//! several worker counts and asserts the service resolves every unit
//! identically, faulted ones with the planned typed error and clean
//! ones bit-identical to their serial baselines.
//!
//! Sampling uses the workspace-local xoshiro256++ generator
//! ([`step_traces::rng::StdRng`]); no external dependencies, per the
//! workspace convention.

use step_traces::rng::StdRng;

/// The injectable fault classes, mirroring the service's failure routes
/// (see `UnitError` in [`crate::service`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The unit's graph builder panics mid-build
    /// (`UnitError::Panicked`).
    BuilderPanic,
    /// The unit's graph builder returns an error
    /// (`UnitError::Build`).
    BuilderErr,
    /// The unit's engine run fails mid-flight — injected by arming a
    /// one-round budget so the run blows `StepError::RoundLimit`
    /// (`UnitError::Run`; budget overruns are non-retryable).
    RunError,
    /// The unit's simulated-cycle deadline blows
    /// (`UnitError::DeadlineExceeded`).
    DeadlineBlow,
}

impl FaultKind {
    const ALL: [FaultKind; 4] = [
        FaultKind::BuilderPanic,
        FaultKind::BuilderErr,
        FaultKind::RunError,
        FaultKind::DeadlineBlow,
    ];
}

/// A seeded assignment of faults to the unit indices of one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(unit index, fault)` pairs, sorted by index; every index is
    /// distinct and `< units`.
    slots: Vec<(usize, FaultKind)>,
    units: usize,
}

impl FaultPlan {
    /// Samples a plan faulting `faults` distinct units out of `units`,
    /// cycling through every [`FaultKind`] so each replay exercises all
    /// four failure routes when `faults >= 4`. Pure in `(seed, units,
    /// faults)`.
    ///
    /// # Panics
    ///
    /// Panics if `faults > units`.
    pub fn seeded(seed: u64, units: usize, faults: usize) -> FaultPlan {
        assert!(faults <= units, "cannot fault {faults} of {units} units");
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates over the index set: the first `faults`
        // entries are a uniform sample without replacement.
        let mut idx: Vec<usize> = (0..units).collect();
        for k in 0..faults {
            let j = k + (rng.next_u64() as usize) % (units - k);
            idx.swap(k, j);
        }
        let mut slots: Vec<(usize, FaultKind)> = idx[..faults]
            .iter()
            .enumerate()
            .map(|(k, &i)| (i, FaultKind::ALL[k % FaultKind::ALL.len()]))
            .collect();
        slots.sort_unstable_by_key(|&(i, _)| i);
        FaultPlan { slots, units }
    }

    /// The fault planned for unit `idx`, if any.
    pub fn fault_for(&self, idx: usize) -> Option<FaultKind> {
        self.slots
            .binary_search_by_key(&idx, |&(i, _)| i)
            .ok()
            .map(|k| self.slots[k].1)
    }

    /// The planned `(index, fault)` pairs, sorted by index.
    pub fn slots(&self) -> &[(usize, FaultKind)] {
        &self.slots
    }

    /// The batch size this plan was sampled for.
    pub fn units(&self) -> usize {
        self.units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::seeded(7, 12, 4);
        let b = FaultPlan::seeded(7, 12, 4);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(8, 12, 4);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn slots_are_distinct_in_range_and_cover_all_kinds() {
        let plan = FaultPlan::seeded(3, 10, 4);
        assert_eq!(plan.slots().len(), 4);
        let mut seen = std::collections::HashSet::new();
        let mut kinds = std::collections::HashSet::new();
        for &(i, k) in plan.slots() {
            assert!(i < plan.units());
            assert!(seen.insert(i), "index {i} faulted twice");
            kinds.insert(format!("{k:?}"));
        }
        assert_eq!(kinds.len(), 4, "4 faults must span all 4 kinds");
    }

    #[test]
    fn fault_for_agrees_with_slots() {
        let plan = FaultPlan::seeded(11, 20, 6);
        for i in 0..plan.units() {
            let planned = plan.slots().iter().find(|&&(j, _)| j == i).map(|&(_, k)| k);
            assert_eq!(plan.fault_for(i), planned);
        }
    }

    #[test]
    fn full_fault_saturation_is_allowed() {
        let plan = FaultPlan::seeded(1, 4, 4);
        assert!((0..4).all(|i| plan.fault_for(i).is_some()));
    }
}
