//! Fig 1's effective-bandwidth arithmetic.
//!
//! Fig 1 is background material comparing SDAs and GPUs using numbers
//! published in prior work \[19\]: effective bandwidth is derived by
//! roofline modeling from each platform's peak HBM bandwidth and its
//! reported fraction of peak throughput on memory-bound token
//! generation. We reproduce the arithmetic and the published inputs; we
//! obviously cannot re-measure GPUs or SN40L hardware here.

/// One platform/workload bar of Fig 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthBar {
    /// Workload label.
    pub workload: &'static str,
    /// Platform label.
    pub platform: &'static str,
    /// Peak HBM bandwidth in TB/s.
    pub peak_tbps: f64,
    /// Fraction of peak throughput reported by prior work \[19\].
    pub fraction: f64,
}

impl BandwidthBar {
    /// Effective bandwidth: `peak x fraction` (roofline model on a
    /// memory-bound phase).
    pub fn effective_tbps(&self) -> f64 {
        self.peak_tbps * self.fraction
    }
}

/// The published inputs behind Fig 1 (peak bandwidths are public specs;
/// fractions are the percent-of-peak figures reported by \[19\]).
pub fn fig1_bars() -> Vec<BandwidthBar> {
    vec![
        BandwidthBar {
            workload: "Llama-3.1-8B b=1",
            platform: "8xH100",
            peak_tbps: 26.8,
            fraction: 0.21,
        },
        BandwidthBar {
            workload: "Llama-3.1-8B b=1",
            platform: "SN40L-8",
            peak_tbps: 12.8,
            fraction: 0.86,
        },
        BandwidthBar {
            workload: "Llama-3.1-8B b=8",
            platform: "8xH100",
            peak_tbps: 26.8,
            fraction: 0.33,
        },
        BandwidthBar {
            workload: "Llama-3.1-8B b=8",
            platform: "SN40L-16",
            peak_tbps: 25.6,
            fraction: 0.85,
        },
        BandwidthBar {
            workload: "Llama-3.1-70B b=1",
            platform: "8xH100",
            peak_tbps: 26.8,
            fraction: 0.39,
        },
        BandwidthBar {
            workload: "Llama-3.1-70B b=1",
            platform: "SN40L-16",
            peak_tbps: 25.6,
            fraction: 0.83,
        },
        BandwidthBar {
            workload: "Llama-3.1-70B b=8",
            platform: "8xH100",
            peak_tbps: 26.8,
            fraction: 0.45,
        },
        BandwidthBar {
            workload: "Llama-3.1-70B b=8",
            platform: "SN40L-16",
            peak_tbps: 25.6,
            fraction: 0.84,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bandwidth_is_fraction_of_peak() {
        let b = BandwidthBar {
            workload: "w",
            platform: "p",
            peak_tbps: 10.0,
            fraction: 0.5,
        };
        assert!((b.effective_tbps() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sdas_attain_higher_fraction_than_gpus() {
        // The qualitative claim of Fig 1: SN40L bars use a larger share of
        // peak than the GPU bars on the same workload.
        for pair in fig1_bars().chunks(2) {
            assert!(pair[1].fraction > pair[0].fraction);
        }
    }
}
