//! The experiment suite: one function per paper figure.
//!
//! Every function is deterministic (seeded traces), prints an aligned
//! table, writes a CSV under `results/`, and returns its rows so
//! integration tests can assert the paper's qualitative claims.

use crate::pareto::{Point, pareto_front, pid};
use crate::roofline::fig1_bars;
use crate::service::{SimPoint, SweepService, SweepUnit, UnitFailure};
use crate::table::{f2, f3, print_table, write_csv};
use step_hdl::{RefConfig, pearson, simulate_swiglu};
use step_models::ModelConfig;
use step_models::attention::{AttentionCfg, ParallelStrategy, attention_graph};
use step_models::e2e::{E2eVariant, run_e2e};
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_models::serving::{Percentiles, ServeCfg, ServeJob, ServeReport, run_serve};
use step_models::swiglu::{SwigluCfg, swiglu_graph};
use step_sim::{Fingerprint, SimConfig, SimPlan, SimReport};
use step_traces::{
    ArrivalConfig, ArrivalPattern, KvTraceConfig, LenDist, RoutingConfig, RoutingTrace,
    Variability, arrival_trace, expert_routing, kv_lengths,
};

fn run(graph: step_core::Graph, cfg: SimConfig) -> SimReport {
    SimPlan::new(graph, cfg)
        .expect("graph is executable")
        .run()
        .expect("simulation completes")
}

/// Unwraps a sweep result for the figure binaries: a failed unit exits
/// the process nonzero with a one-line error naming the failing sweep
/// point, instead of a panic backtrace.
fn sweep_or_exit<T>(rows: std::result::Result<T, UnitFailure>) -> T {
    rows.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// One MoE sweep cell as a schedulable [`SweepUnit`]. The builder
/// fingerprint covers everything `moe_graph` consumes — the full
/// `MoeCfg` (model, tiling, regions) and the routing trace — so equal
/// fingerprints really are interchangeable plans, and e.g. Fig 12's
/// static(32) column and Fig 13 resolve to the *same* cached plans.
fn moe_point(label: String, cfg: MoeCfg, trace: RoutingTrace) -> SweepUnit {
    let mut fp = Fingerprint::new("bench.moe");
    fp.push_debug(&cfg).push_debug(&trace);
    let builder = fp.finish();
    SweepUnit::Sim(SimPoint {
        label,
        builder,
        cfg: moe_sim_config(),
        build: Box::new(move || moe_graph(&cfg, &trace)),
        binding: None,
    })
}

/// A coarser execution window for the large MoE sweeps (ordering
/// fidelity of ±512 cycles is immaterial against multi-million-cycle
/// runs and speeds the scheduler up).
fn moe_sim_config() -> SimConfig {
    SimConfig {
        horizon_step: 512,
        ..SimConfig::default()
    }
}

// ---------------------------------------------------------------------
// Fig 1
// ---------------------------------------------------------------------

/// Fig 1: effective bandwidth of GPUs vs SDAs (published inputs, roofline
/// arithmetic).
pub fn fig1() -> Vec<Vec<String>> {
    let rows: Vec<Vec<String>> = fig1_bars()
        .iter()
        .map(|b| {
            vec![
                b.workload.to_string(),
                b.platform.to_string(),
                f2(b.peak_tbps),
                f2(b.fraction * 100.0),
                f2(b.effective_tbps()),
            ]
        })
        .collect();
    let header = [
        "workload",
        "platform",
        "peak TB/s",
        "% of peak",
        "effective TB/s",
    ];
    print_table("Fig 1: SDA vs GPU effective bandwidth", &header, &rows);
    write_csv("fig1", &header, &rows);
    rows
}

// ---------------------------------------------------------------------
// Fig 8
// ---------------------------------------------------------------------

/// One Fig 8 sweep point.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// (batch tile, hidden, intermediate tile).
    pub tiles: (u64, u64, u64),
    /// Cycle-approximate STeP simulator cycles.
    pub step_cycles: u64,
    /// Fine-grained reference simulator cycles.
    pub ref_cycles: u64,
    /// Off-chip traffic measured by the STeP simulator (bytes).
    pub step_traffic: u64,
    /// Off-chip traffic measured by the reference (bytes).
    pub ref_traffic: u64,
}

/// Fig 8: simulator validation — SwiGLU tile sweep, STeP simulator vs the
/// fine-grained reference, with the Pearson correlation of cycle counts.
pub fn fig8() -> (Vec<Fig8Row>, f64) {
    let mut rows = Vec::new();
    for tb in [16u64, 32, 64] {
        for ti in [16u64, 32, 64, 128, 256] {
            let cfg = SwigluCfg::validation(tb, ti);
            let report = run(
                swiglu_graph(&cfg).expect("valid tiles"),
                SimConfig::validation(),
            );
            let reference = simulate_swiglu(&cfg, &RefConfig::default());
            rows.push(Fig8Row {
                tiles: (tb, 256, ti),
                step_cycles: report.cycles,
                ref_cycles: reference.cycles,
                step_traffic: report.offchip_traffic,
                ref_traffic: reference.offchip_bytes,
            });
        }
    }
    let xs: Vec<f64> = rows.iter().map(|r| r.step_cycles as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.ref_cycles as f64).collect();
    let r = pearson(&xs, &ys);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|x| {
            vec![
                format!("({},{},{})", x.tiles.0, x.tiles.1, x.tiles.2),
                x.step_cycles.to_string(),
                x.ref_cycles.to_string(),
                f2(x.step_traffic as f64 / 1e6),
                f2(x.ref_traffic as f64 / 1e6),
            ]
        })
        .collect();
    let header = ["tile", "step cycles", "ref cycles", "step MB", "ref MB"];
    print_table("Fig 8: simulator validation (SwiGLU)", &header, &table);
    println!("Pearson r (cycles) = {}", f3(r));
    write_csv("fig8", &header, &table);
    (rows, r)
}

// ---------------------------------------------------------------------
// Fig 9 / 10 / 19 / 20: dynamic tiling
// ---------------------------------------------------------------------

/// One tiling design point.
#[derive(Debug, Clone)]
pub struct TilingRow {
    /// Model name.
    pub model: &'static str,
    /// Schedule label ("static(8)", "dynamic").
    pub schedule: String,
    /// Latency in cycles.
    pub cycles: u64,
    /// Measured on-chip memory (bytes).
    pub onchip: u64,
    /// Off-chip traffic (bytes).
    pub traffic: u64,
}

/// The schedule axis of one tiling sweep: the static tile sizes plus
/// dynamic tiling.
fn tiling_schedules(tiles: &[u64]) -> Vec<Tiling> {
    let mut schedules: Vec<Tiling> = tiles.iter().map(|&t| Tiling::Static { tile: t }).collect();
    schedules.push(Tiling::Dynamic);
    schedules
}

/// Runs the static-tile sweep plus dynamic tiling for one model and
/// batch (Figs 9/10 use batch 64/1024; Figs 19/20 read the traffic
/// column of the same runs), on the process-wide [`SweepService`]:
/// points run concurrently and their plans land in the shared cache.
pub fn tiling_sweep(
    model: ModelConfig,
    batch: usize,
    tiles: &[u64],
    seed: u64,
) -> std::result::Result<Vec<TilingRow>, UnitFailure> {
    tiling_sweep_on(SweepService::global(), model, batch, tiles, seed)
}

/// [`tiling_sweep`] on an explicit service (conformance tests pass
/// fixed-worker services).
///
/// # Errors
///
/// The first failed sweep unit, labelled with its point.
pub fn tiling_sweep_on(
    svc: &SweepService,
    model: ModelConfig,
    batch: usize,
    tiles: &[u64],
    seed: u64,
) -> std::result::Result<Vec<TilingRow>, UnitFailure> {
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch,
        skew: 0.8,
        seed,
    });
    let units: Vec<SweepUnit> = tiling_schedules(tiles)
        .into_iter()
        .map(|tiling| {
            moe_point(
                tiling.to_string(),
                MoeCfg::new(model.clone(), tiling),
                trace.clone(),
            )
        })
        .collect();
    let results = svc.run_all(units)?;
    Ok(results
        .into_iter()
        .map(|r| {
            let report = r.report.sim().expect("tiling points are sim units");
            TilingRow {
                model: model.name,
                schedule: r.label,
                cycles: report.cycles,
                onchip: report.onchip_memory,
                traffic: report.offchip_traffic,
            }
        })
        .collect())
}

/// The serial loop [`tiling_sweep`] replaced: one fresh plan per point,
/// in submission order. Kept as the differential baseline the service
/// path is held bit-identical to (`tests/service_conformance.rs`).
pub fn tiling_sweep_serial(
    model: ModelConfig,
    batch: usize,
    tiles: &[u64],
    seed: u64,
) -> Vec<TilingRow> {
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch,
        skew: 0.8,
        seed,
    });
    let mut rows = Vec::new();
    for tiling in tiling_schedules(tiles) {
        let cfg = MoeCfg::new(model.clone(), tiling);
        let report = run(
            moe_graph(&cfg, &trace).expect("valid MoE"),
            moe_sim_config(),
        );
        rows.push(TilingRow {
            model: model.name,
            schedule: tiling.to_string(),
            cycles: report.cycles,
            onchip: report.onchip_memory,
            traffic: report.offchip_traffic,
        });
    }
    rows
}

/// Prints/writes one tiling figure and returns the dynamic point's PID
/// versus the static frontier.
pub fn report_tiling(figname: &str, rows: &[TilingRow]) -> f64 {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.schedule.clone(),
                r.cycles.to_string(),
                r.onchip.to_string(),
                r.traffic.to_string(),
            ]
        })
        .collect();
    let header = ["model", "schedule", "cycles", "onchip B", "traffic B"];
    print_table(figname, &header, &table);
    write_csv(figname, &header, &table);
    let static_points: Vec<Point> = rows
        .iter()
        .filter(|r| r.schedule.starts_with("static"))
        .map(|r| Point::new(r.cycles as f64, r.onchip as f64))
        .collect();
    let front = pareto_front(&static_points);
    let dynamic = rows
        .iter()
        .find(|r| r.schedule == "dynamic")
        .expect("dynamic row present");
    let v = pid(
        Point::new(dynamic.cycles as f64, dynamic.onchip as f64),
        &front,
    );
    println!("PID(dynamic vs static frontier) = {}", f2(v));
    v
}

// ---------------------------------------------------------------------
// Fig 12 / 13: configuration time-multiplexing
// ---------------------------------------------------------------------

/// One time-multiplexing design point.
#[derive(Debug, Clone)]
pub struct TimeshareRow {
    /// Parallel regions (experts/region = experts / regions).
    pub regions: u32,
    /// Latency in cycles.
    pub cycles: u64,
    /// Compute utilization (fraction).
    pub compute_util: f64,
    /// Allocated compute (FLOPs/cycle).
    pub allocated_compute: u64,
    /// Measured on-chip memory (bytes).
    pub onchip: u64,
    /// Off-chip bandwidth utilization (fraction).
    pub bw_util: f64,
}

/// The Fig 12/13 region axis.
const TIMESHARE_REGIONS: [u32; 6] = [128, 64, 32, 16, 8, 4];

/// One Fig 12/13 cell's `MoeCfg` (`regions == experts` is the untimed
/// baseline and takes no region override).
fn timeshare_cfg(model: &ModelConfig, tiling: Tiling, regions: u32) -> MoeCfg {
    if regions == model.experts {
        MoeCfg::new(model.clone(), tiling)
    } else {
        MoeCfg::new(model.clone(), tiling).with_regions(regions)
    }
}

fn timeshare_row(regions: u32, report: &SimReport) -> TimeshareRow {
    TimeshareRow {
        regions,
        cycles: report.cycles,
        compute_util: report.compute_utilization(),
        allocated_compute: report.allocated_compute,
        onchip: report.onchip_memory,
        bw_util: report.offchip_bw_utilization(),
    }
}

/// Figs 12/13: sweep the number of regions sharing a configuration for
/// the Qwen3-30B-A3B MoE layer (batch 64), on the process-wide
/// [`SweepService`]. Fig 12's static(32) column and Fig 13 submit
/// identical cells, so whichever runs second is served entirely from
/// the warm plan cache.
pub fn timeshare_sweep(
    tiling: Tiling,
    seed: u64,
) -> std::result::Result<Vec<TimeshareRow>, UnitFailure> {
    timeshare_sweep_on(SweepService::global(), tiling, seed)
}

/// [`timeshare_sweep`] on an explicit service.
///
/// # Errors
///
/// The first failed sweep unit, labelled with its point.
pub fn timeshare_sweep_on(
    svc: &SweepService,
    tiling: Tiling,
    seed: u64,
) -> std::result::Result<Vec<TimeshareRow>, UnitFailure> {
    let model = ModelConfig::qwen3_30b_a3b();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 64,
        skew: 0.8,
        seed,
    });
    let units: Vec<SweepUnit> = TIMESHARE_REGIONS
        .iter()
        .map(|&regions| {
            moe_point(
                format!("regions({regions})"),
                timeshare_cfg(&model, tiling, regions),
                trace.clone(),
            )
        })
        .collect();
    let results = svc.run_all(units)?;
    Ok(TIMESHARE_REGIONS
        .iter()
        .zip(&results)
        .map(|(&regions, r)| {
            timeshare_row(
                regions,
                r.report.sim().expect("timeshare points are sim units"),
            )
        })
        .collect())
}

/// The serial loop [`timeshare_sweep`] replaced; the differential
/// baseline for `tests/service_conformance.rs`.
pub fn timeshare_sweep_serial(tiling: Tiling, seed: u64) -> Vec<TimeshareRow> {
    let model = ModelConfig::qwen3_30b_a3b();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 64,
        skew: 0.8,
        seed,
    });
    TIMESHARE_REGIONS
        .iter()
        .map(|&regions| {
            let cfg = timeshare_cfg(&model, tiling, regions);
            let report = run(
                moe_graph(&cfg, &trace).expect("valid MoE"),
                moe_sim_config(),
            );
            timeshare_row(regions, &report)
        })
        .collect()
}

/// Prints/writes Fig 12 (utilization + cycles) or Fig 13 (resources).
pub fn report_timeshare(figname: &str, rows: &[TimeshareRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.regions.to_string(),
                (128 / r.regions).to_string(),
                r.cycles.to_string(),
                f3(r.compute_util * 100.0),
                r.allocated_compute.to_string(),
                r.onchip.to_string(),
                f3(r.bw_util * 100.0),
            ]
        })
        .collect();
    let header = [
        "regions",
        "experts/region",
        "cycles",
        "compute util %",
        "alloc FLOPs/cyc",
        "onchip B",
        "offchip BW %",
    ];
    print_table(figname, &header, &table);
    write_csv(figname, &header, &table);
}

// ---------------------------------------------------------------------
// Figure entry points (single home for each figure's sweep parameters;
// the `fig*` binaries and `fig_all` all call these)
// ---------------------------------------------------------------------

/// Fig 9 (+ the traffic view of Fig 19): dynamic-tiling Pareto at batch
/// 64 for both models. Returns the two models' rows.
pub fn fig9() -> (Vec<TilingRow>, Vec<TilingRow>) {
    let mixtral = sweep_or_exit(tiling_sweep(
        ModelConfig::mixtral_8x7b(),
        64,
        &[8, 16, 32, 64],
        7,
    ));
    report_tiling("fig9_mixtral_b64", &mixtral);
    let qwen = sweep_or_exit(tiling_sweep(
        ModelConfig::qwen3_30b_a3b(),
        64,
        &[8, 16, 32, 64],
        7,
    ));
    report_tiling("fig9_qwen_b64", &qwen);
    (mixtral, qwen)
}

/// Fig 10 (+ the traffic view of Fig 20): dynamic-tiling Pareto at batch
/// 1024 for both models.
pub fn fig10() -> (Vec<TilingRow>, Vec<TilingRow>) {
    let mixtral = sweep_or_exit(tiling_sweep(
        ModelConfig::mixtral_8x7b(),
        1024,
        &[16, 64, 256, 1024],
        7,
    ));
    report_tiling("fig10_mixtral_b1024", &mixtral);
    let qwen = sweep_or_exit(tiling_sweep(
        ModelConfig::qwen3_30b_a3b(),
        1024,
        &[16, 64, 256, 1024],
        7,
    ));
    report_tiling("fig10_qwen_b1024", &qwen);
    (mixtral, qwen)
}

/// Fig 12: configuration time-multiplexing under static(32) and dynamic
/// tiling.
pub fn fig12() -> (Vec<TimeshareRow>, Vec<TimeshareRow>) {
    let stat = sweep_or_exit(timeshare_sweep(Tiling::Static { tile: 32 }, 7));
    report_timeshare("fig12_static_tiling", &stat);
    let dynamic = sweep_or_exit(timeshare_sweep(Tiling::Dynamic, 7));
    report_timeshare("fig12_dynamic_tiling", &dynamic);
    (stat, dynamic)
}

/// Fig 13: time-multiplexing resource usage (static(32) tiling).
pub fn fig13() -> Vec<TimeshareRow> {
    let rows = sweep_or_exit(timeshare_sweep(Tiling::Static { tile: 32 }, 7));
    report_timeshare("fig13", &rows);
    rows
}

// ---------------------------------------------------------------------
// Fig 14 / 15 / 21: dynamic parallelization
// ---------------------------------------------------------------------

/// Latency of one attention configuration.
pub fn attention_latency(
    model: &ModelConfig,
    strategy: ParallelStrategy,
    batch: usize,
    variability: Variability,
    seed: u64,
) -> u64 {
    let kv = kv_lengths(&KvTraceConfig {
        batch,
        variability,
        median_len: 1024.0,
        seed,
        ..KvTraceConfig::default()
    });
    let cfg = AttentionCfg::new(model.clone(), strategy);
    run(
        attention_graph(&cfg, &kv).expect("valid attention"),
        SimConfig::default(),
    )
    .cycles
}

/// Fig 14: dynamic vs static interleaved across KV-length variability
/// (batch 64, geometric mean of three sampled batches per class).
pub fn fig14() -> Vec<(Variability, f64)> {
    let model = ModelConfig::qwen3_30b_a3b();
    let mut out = Vec::new();
    for v in Variability::all() {
        let mut ratio = 1.0f64;
        let seeds = [11u64, 23, 37];
        for &s in &seeds {
            let inter = attention_latency(&model, ParallelStrategy::StaticInterleaved, 64, v, s);
            let dynamic = attention_latency(&model, ParallelStrategy::Dynamic, 64, v, s);
            ratio *= inter as f64 / dynamic as f64;
        }
        out.push((v, ratio.powf(1.0 / seeds.len() as f64)));
    }
    let table: Vec<Vec<String>> = out
        .iter()
        .map(|(v, s)| vec![v.to_string(), f2(*s)])
        .collect();
    let header = ["KV var", "dyn speedup vs interleaved"];
    print_table(
        "Fig 14: dynamic parallelization vs interleaved",
        &header,
        &table,
    );
    write_csv("fig14", &header, &table);
    out
}

/// Fig 15: dynamic vs static coarse-grained (quota 16) across batch
/// sizes.
pub fn fig15() -> Vec<(usize, u64, u64)> {
    let model = ModelConfig::qwen3_30b_a3b();
    let mut out = Vec::new();
    for batch in [16usize, 32, 48, 64] {
        let coarse = attention_latency(
            &model,
            ParallelStrategy::StaticCoarse { quota: 16 },
            batch,
            Variability::Medium,
            42,
        );
        let dynamic = attention_latency(
            &model,
            ParallelStrategy::Dynamic,
            batch,
            Variability::Medium,
            42,
        );
        out.push((batch, coarse, dynamic));
    }
    let table: Vec<Vec<String>> = out
        .iter()
        .map(|(b, c, d)| {
            vec![
                b.to_string(),
                c.to_string(),
                d.to_string(),
                f2(*c as f64 / *d as f64),
            ]
        })
        .collect();
    let header = ["batch", "coarse cycles", "dynamic cycles", "speedup"];
    print_table("Fig 15: coarse vs dynamic across batch", &header, &table);
    write_csv("fig15", &header, &table);
    out
}

/// Fig 21: normalized performance of all three strategies across batch
/// classes and variability (geomean of three batches each, relative to
/// dynamic).
pub fn fig21() -> Vec<Vec<String>> {
    let model = ModelConfig::qwen3_30b_a3b();
    let seeds = [11u64, 23, 37];
    let mut rows = Vec::new();
    for batch in [16usize, 64] {
        for v in Variability::all() {
            let mut coarse = 1.0f64;
            let mut inter = 1.0f64;
            for &s in &seeds {
                let d = attention_latency(&model, ParallelStrategy::Dynamic, batch, v, s) as f64;
                coarse *= attention_latency(
                    &model,
                    ParallelStrategy::StaticCoarse { quota: 16 },
                    batch,
                    v,
                    s,
                ) as f64
                    / d;
                inter *= attention_latency(&model, ParallelStrategy::StaticInterleaved, batch, v, s)
                    as f64
                    / d;
            }
            let n = seeds.len() as f64;
            rows.push(vec![
                format!("B={batch}"),
                v.to_string(),
                f2(coarse.powf(1.0 / n)),
                f2(inter.powf(1.0 / n)),
                "1.00".to_string(),
            ]);
        }
    }
    let header = [
        "batch",
        "KV var",
        "coarse (norm)",
        "interleave (norm)",
        "dynamic",
    ];
    print_table(
        "Fig 21: parallelization ablation (cycles / dynamic)",
        &header,
        &rows,
    );
    write_csv("fig21", &header, &rows);
    rows
}

// ---------------------------------------------------------------------
// Fig 17: end-to-end
// ---------------------------------------------------------------------

/// Fig 17: end-to-end Qwen3-30B-A3B and Mixtral-8x7B under
/// memory-matched static, performance-matched static, and dynamic
/// schedules.
pub fn fig17() -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for (model, mem_tile, perf_tile, dyn_regions) in [
        (ModelConfig::mixtral_8x7b(), 16u64, 32u64, None),
        (ModelConfig::qwen3_30b_a3b(), 8, 64, Some(32u32)),
    ] {
        let variants = [
            E2eVariant::static_schedule("Static (Mem-matched)", mem_tile),
            E2eVariant::static_schedule("Static (Perf-matched)", perf_tile),
            E2eVariant::dynamic_schedule(dyn_regions),
        ];
        let reports: Vec<_> = variants
            .iter()
            .map(|v| run_e2e(&model, 64, v, 7).expect("e2e runs"))
            .collect();
        let base = reports[0].total_cycles as f64;
        for (v, r) in variants.iter().zip(&reports) {
            rows.push(vec![
                model.name.to_string(),
                v.name.clone(),
                r.total_cycles.to_string(),
                f2(base / r.total_cycles as f64),
                f2(r.onchip_bytes as f64 / 1e6),
                (r.allocated_compute / 1000).to_string(),
            ]);
        }
    }
    let header = [
        "model",
        "schedule",
        "total cycles",
        "speedup vs mem-matched",
        "onchip MB",
        "alloc KFLOPs/cyc",
    ];
    print_table("Fig 17: end-to-end models", &header, &rows);
    write_csv("fig17", &header, &rows);
    rows
}

// ---------------------------------------------------------------------
// Serving sweep: continuous batching under offered load
// ---------------------------------------------------------------------

/// One serving design point: an offered load × prefill-chunking cell.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Mean inter-arrival time of the trace, cycles.
    pub mean_interarrival: f64,
    /// Prefill chunk cap (`None` = unchunked).
    pub prefill_chunk: Option<u32>,
    /// The full serving report for this cell.
    pub report: ServeReport,
}

/// The serving sweep's arrival trace: Poisson arrivals with log-normal
/// prompt/output lengths, sized down in `quick` mode so CI can afford
/// the row.
pub fn serve_trace(mean_interarrival: f64, quick: bool) -> step_traces::RequestTrace {
    arrival_trace(&ArrivalConfig {
        requests: if quick { 8 } else { 16 },
        mean_interarrival,
        pattern: ArrivalPattern::Poisson,
        prompt: LenDist::new(192.0, 0.5, 32, 512),
        output: LenDist::new(if quick { 4.0 } else { 12.0 }, 0.5, 2, 24),
        seed: 7,
    })
}

/// The serving sweep's driver configuration.
pub fn serve_cfg(prefill_chunk: Option<u32>) -> ServeCfg {
    ServeCfg {
        slots: 4,
        token_budget: 64,
        prefill_chunk,
        skew: 0.8,
        seed: 7,
        ..ServeCfg::default()
    }
}

/// The serving sweep's cell axis, in row order: offered load (mean
/// inter-arrival, cycles) × prefill chunking.
pub fn serve_axis(quick: bool) -> Vec<(f64, Option<u32>)> {
    let loads: &[f64] = if quick {
        &[300_000_000.0]
    } else {
        &[5_000_000_000.0, 1_200_000_000.0, 300_000_000.0]
    };
    let chunks: &[Option<u32>] = if quick {
        &[Some(16)]
    } else {
        &[None, Some(16)]
    };
    let mut axis = Vec::new();
    for &mean in loads {
        for &chunk in chunks {
            axis.push((mean, chunk));
        }
    }
    axis
}

/// One serving sweep cell as a schedulable [`ServeJob`].
fn serve_job(mean: f64, chunk: Option<u32>, quick: bool) -> ServeJob {
    ServeJob {
        label: format!(
            "serve interarrival {:.0}Mcyc chunk {}",
            mean / 1e6,
            chunk.map_or("none".to_string(), |c| c.to_string())
        ),
        model: ModelConfig::mixtral_8x7b(),
        variant: E2eVariant::static_schedule("Static (Perf-matched)", 32),
        trace: serve_trace(mean, quick),
        cfg: serve_cfg(chunk),
    }
}

/// The serving sweep: Mixtral-8x7B decode served under continuous
/// batching across an offered-load axis, with and without chunked
/// prefill, on the process-wide [`SweepService`] (cells run
/// concurrently; all cells share one cached attention plan and one
/// cached MoE plan per trace envelope). Reports TTFT/TPOT percentiles,
/// goodput vs offered load, and HBM pressure. `quick` shrinks the trace
/// and load axis for CI.
///
/// The load axis straddles the measured serving capacity (~1 request
/// per Gcycle at these slot/length settings): 5 Gcycles mean
/// inter-arrival is comfortably underloaded, 1.2 Gcycles is near
/// capacity, 0.3 Gcycles saturates — so the goodput column tracks the
/// offered column until the knee, then flattens while TTFT blows up
/// (queueing delay), the classic serving curve.
pub fn serve_sweep(quick: bool) -> std::result::Result<Vec<ServeRow>, UnitFailure> {
    serve_sweep_on(SweepService::global(), quick)
}

/// [`serve_sweep`] on an explicit service.
///
/// # Errors
///
/// The first failed sweep unit, labelled with its point.
pub fn serve_sweep_on(
    svc: &SweepService,
    quick: bool,
) -> std::result::Result<Vec<ServeRow>, UnitFailure> {
    let axis = serve_axis(quick);
    let units: Vec<SweepUnit> = axis
        .iter()
        .map(|&(mean, chunk)| SweepUnit::Serve(serve_job(mean, chunk, quick)))
        .collect();
    let results = svc.run_all(units)?;
    Ok(axis
        .into_iter()
        .zip(results)
        .map(|((mean, chunk), r)| {
            let report = r
                .report
                .serve()
                .expect("serve cells are serve units")
                .clone();
            assert!(!report.truncated, "serving sweep cell did not drain");
            ServeRow {
                mean_interarrival: mean,
                prefill_chunk: chunk,
                report,
            }
        })
        .collect())
}

/// The serial loop [`serve_sweep`] replaced (fresh plans per cell); the
/// differential baseline for `tests/service_conformance.rs`.
pub fn serve_sweep_serial(quick: bool) -> Vec<ServeRow> {
    let model = ModelConfig::mixtral_8x7b();
    let variant = E2eVariant::static_schedule("Static (Perf-matched)", 32);
    serve_axis(quick)
        .into_iter()
        .map(|(mean, chunk)| {
            let trace = serve_trace(mean, quick);
            let report = run_serve(&model, &variant, &trace, &serve_cfg(chunk)).expect("serve run");
            assert!(!report.truncated, "serving sweep cell did not drain");
            ServeRow {
                mean_interarrival: mean,
                prefill_chunk: chunk,
                report,
            }
        })
        .collect()
}

/// Prints/writes the serving sweep table.
pub fn report_serve(figname: &str, rows: &[ServeRow]) {
    // Mixtral iterations cost ~150 Mcycles, so latencies print in
    // Mcycles and rates per Gcycle to keep the table readable. An empty
    // percentile population (e.g. no multi-token outputs for TPOT)
    // prints "n/a" — it is not a zero latency.
    let mc = |p: &Option<Percentiles>, get: fn(&Percentiles) -> f64| {
        p.as_ref()
            .map_or_else(|| "n/a".to_string(), |p| f2(get(p) / 1e6))
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let rep = &r.report;
            vec![
                format!("{:.0}", r.mean_interarrival / 1e6),
                r.prefill_chunk
                    .map_or("none".to_string(), |c| c.to_string()),
                f2(rep.offered_per_mcycle * 1e3),
                f2(rep.goodput_per_mcycle * 1e3),
                mc(&rep.ttft, |p| p.p50),
                mc(&rep.ttft, |p| p.p95),
                mc(&rep.ttft, |p| p.p99),
                mc(&rep.tpot, |p| p.p50),
                mc(&rep.tpot, |p| p.p95),
                mc(&rep.tpot, |p| p.p99),
                f2(rep.hbm_bytes_per_cycle),
                f2(rep.hbm_utilization * 100.0),
                rep.iterations.len().to_string(),
                rep.admitted_total.to_string(),
            ]
        })
        .collect();
    let header = [
        "interarrival Mcyc",
        "chunk",
        "offered/Gcyc",
        "goodput/Gcyc",
        "ttft p50 Mcyc",
        "ttft p95 Mcyc",
        "ttft p99 Mcyc",
        "tpot p50 Mcyc",
        "tpot p95 Mcyc",
        "tpot p99 Mcyc",
        "HBM B/cyc",
        "HBM util %",
        "iters",
        "admitted",
    ];
    print_table(figname, &header, &table);
    write_csv(figname, &header, &table);
}

/// Table 1 (qualitative): the abstraction landscape.
pub fn landscape() {
    let rows: Vec<Vec<String>> = [
        ("Spatial", "no", "no", "yes", "no", "no"),
        ("Revet", "no", "no", "yes", "limited", "no"),
        ("StreamIt", "yes", "yes", "no", "no", "no"),
        ("SAM", "yes", "no", "no", "limited", "limited"),
        ("Ripple", "yes", "no", "no", "yes", "no"),
        ("STeP", "yes", "yes", "yes", "yes", "yes"),
    ]
    .iter()
    .map(|(a, b, c, d, e, f)| {
        vec![
            a.to_string(),
            b.to_string(),
            c.to_string(),
            d.to_string(),
            e.to_string(),
            f.to_string(),
        ]
    })
    .collect();
    let header = [
        "abstraction",
        "dataflow",
        "explicit rate",
        "explicit mem hierarchy",
        "dyn routing/merge",
        "dyn on-chip tiling",
    ];
    print_table("Table 1: programming-abstraction landscape", &header, &rows);
    write_csv("table1", &header, &rows);
}
