//! Concurrent sweep service over a shared plan cache.
//!
//! Every sweep in [`crate::experiments`] used to be a serial loop, even
//! though `Arc<SimPlan>` has been thread-safe and bit-identical across
//! concurrent runs since the plan split (`crates/sim/tests/
//! plan_reuse.rs`). This module is the layer that exploits it: a
//! long-lived [`SweepService`] owning
//!
//! - a [`PlanCache`] keyed by **(builder fingerprint,
//!   [`SimConfig::fingerprint`])** — the config fingerprint excludes
//!   `threads`, the one knob the engine's determinism contract excludes,
//!   so sweep points that differ only in worker mapping share one frozen
//!   plan. Concurrent misses on one key are **single-flight**: the first
//!   requester builds, the rest wait on the same build and share the
//!   result;
//! - a `std::thread` worker pool (no external deps, per the workspace
//!   convention). Each worker keeps a private `plan.id() →`[`RunPool`]
//!   map, so once a worker has run a plan, its later points on that plan
//!   reset parked run state in place — steady-state sweep points are
//!   allocation-free (`SimReport::run_allocs == 0`);
//! - in-order result streaming: [`SweepService::submit`] returns a
//!   [`ResultStream`] that yields results in **submission order**
//!   regardless of completion order, by reassembling the workers'
//!   completion messages on a sequence cursor.
//!
//! # Determinism and what CI pins
//!
//! Every unit's report is a pure function of its inputs (the engine's
//! contract plus [`step_models::serving`]'s), so the service is
//! **bit-identical to the serial loop it replaced at any worker count**
//! — `crates/bench/tests/service_conformance.rs` holds every rewired
//! sweep to that, at 1/2/4/8 workers and across warm-cache reruns. Wall
//! clock is never asserted (the 1-CPU CI box makes it meaningless);
//! instead CI pins the [`CacheStats`] counters, whose semantics are
//! deliberately scheduler-independent: the *first* request for a key is
//! the miss (and, once built, the build), and every other request —
//! including waiters coalesced behind an in-flight build — is a hit. A
//! warm cache therefore always shows `builds == distinct keys` and zero
//! further builds on rerun, whatever the worker count.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, mpsc};
use std::thread::JoinHandle;
use std::time::Instant;

use step_core::{Graph, Result, StepError};
use step_models::serving::{PlanSource, ServeJob, ServeReport};
use step_sim::{RunBinding, RunPool, SimConfig, SimPlan, SimReport};

/// Cache key: what a frozen plan is a pure function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Fingerprint of the graph builder and all its inputs.
    pub builder: u64,
    /// [`SimConfig::fingerprint`] — every config field except `threads`.
    pub sim: u64,
}

/// Cumulative [`PlanCache`] counters. Scheduler-independent by
/// construction (see the module docs), so CI pins them exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a present or in-flight plan.
    pub hits: u64,
    /// Requests that found no entry and took on the build.
    pub misses: u64,
    /// Plans actually frozen. Equals `misses` unless a build failed.
    pub builds: u64,
}

/// A plan's cache slot: either ready, or claimed by an in-flight build.
enum Slot {
    /// A requester is building this plan; waiters sleep on the cache
    /// condvar until it lands (or the build fails and the slot clears).
    Building,
    Ready(Arc<SimPlan>),
}

/// A shared, single-flight cache of frozen [`SimPlan`]s.
///
/// Plans are cached with `threads` normalized to 1: the knob is outside
/// the determinism contract (results are identical at any thread count)
/// and the service's parallelism comes from running *points*
/// concurrently, not from sharding single runs.
#[derive(Default)]
pub struct PlanCache {
    slots: Mutex<HashMap<PlanKey, Slot>>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Checks out the plan for `(builder, cfg)`, building it via `build`
    /// on a miss. Concurrent requests for one key coalesce onto a single
    /// build.
    ///
    /// # Errors
    ///
    /// Propagates graph-build and plan-freeze errors to the requester
    /// that ran the build; coalesced waiters retry (and may rebuild) on
    /// failure.
    pub fn checkout(
        &self,
        builder: u64,
        cfg: &SimConfig,
        build: &mut dyn FnMut() -> Result<Graph>,
    ) -> Result<Arc<SimPlan>> {
        let key = PlanKey {
            builder,
            sim: cfg.fingerprint(),
        };
        let mut slots = self.slots.lock().expect("plan cache poisoned");
        // `counted` keeps the counters request-scoped: one hit or miss
        // per call on the success path, however many condvar wakeups or
        // failed-build retakes happen in between.
        let mut counted = false;
        loop {
            match slots.get(&key) {
                Some(Slot::Ready(plan)) => {
                    if !counted {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(plan.clone());
                }
                Some(Slot::Building) => {
                    if !counted {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        counted = true;
                    }
                    slots = self.ready.wait(slots).expect("plan cache poisoned");
                }
                None => {
                    if !counted {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    slots.insert(key, Slot::Building);
                    break;
                }
            }
        }
        drop(slots);

        let built = build().and_then(|graph| {
            let normalized = SimConfig {
                threads: 1,
                ..cfg.clone()
            };
            SimPlan::new(graph, normalized).map(Arc::new)
        });
        let mut slots = self.slots.lock().expect("plan cache poisoned");
        let result = match built {
            Ok(plan) => {
                self.builds.fetch_add(1, Ordering::Relaxed);
                slots.insert(key, Slot::Ready(plan.clone()));
                Ok(plan)
            }
            Err(e) => {
                // Clear the claim so a waiter can retake the build
                // instead of sleeping forever.
                slots.remove(&key);
                Err(e)
            }
        };
        self.ready.notify_all();
        result
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }

    /// Distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PlanSource for PlanCache {
    fn plan(
        &self,
        fingerprint: u64,
        cfg: &SimConfig,
        build: &mut dyn FnMut() -> Result<Graph>,
    ) -> Result<Arc<SimPlan>> {
        self.checkout(fingerprint, cfg, build)
    }
}

/// One simulation sweep point: a graph builder plus the config and
/// optional per-run binding to drive the (cached) plan with.
pub struct SimPoint {
    /// Display label (sweep cell name), carried into the result.
    pub label: String,
    /// Fingerprint of the builder and **all** its inputs — the cache
    /// trusts it completely ([`PlanKey::builder`]).
    pub builder: u64,
    /// Simulation config (cache-keyed minus `threads`).
    pub cfg: SimConfig,
    /// Builds the graph on a cache miss. Must be a pure function of the
    /// fingerprinted inputs; may be invoked any number of times.
    pub build: Box<dyn FnMut() -> Result<Graph> + Send>,
    /// Per-run source rebinding; `None` runs the plan's built-in
    /// sources.
    pub binding: Option<RunBinding>,
}

/// A schedulable unit of sweep work.
pub enum SweepUnit {
    /// A single simulation run over a cached plan.
    Sim(SimPoint),
    /// A whole serving run (its phase plans check out of the cache).
    Serve(ServeJob),
}

impl SweepUnit {
    fn label(&self) -> &str {
        match self {
            SweepUnit::Sim(p) => &p.label,
            SweepUnit::Serve(j) => &j.label,
        }
    }
}

/// A unit's report.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitReport {
    /// Report of a [`SweepUnit::Sim`] point.
    Sim(SimReport),
    /// Report of a [`SweepUnit::Serve`] job.
    Serve(ServeReport),
}

impl UnitReport {
    /// The simulation report, if this unit was a sim point.
    pub fn sim(&self) -> Option<&SimReport> {
        match self {
            UnitReport::Sim(r) => Some(r),
            UnitReport::Serve(_) => None,
        }
    }

    /// The serving report, if this unit was a serve job.
    pub fn serve(&self) -> Option<&ServeReport> {
        match self {
            UnitReport::Serve(r) => Some(r),
            UnitReport::Sim(_) => None,
        }
    }
}

/// One completed sweep point, yielded in submission order.
///
/// Deliberately not `PartialEq`: `wall_ms` is host-dependent, so whole-
/// result equality would silently compare wall clock. Conformance
/// checks compare `label` and `report`.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The unit's label.
    pub label: String,
    /// The unit's report.
    pub report: UnitReport,
    /// Host wall-clock of the unit's run on its worker, milliseconds.
    /// Diagnostic only — never part of any determinism or CI check.
    pub wall_ms: f64,
}

/// A queued unit plus its result route.
struct Task {
    seq: u64,
    unit: SweepUnit,
    tx: mpsc::Sender<Completion>,
}

/// A worker's completion message (out of order; reassembled by seq).
struct Completion {
    seq: u64,
    label: String,
    report: Result<UnitReport>,
    wall_ms: f64,
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct ServiceInner {
    cache: PlanCache,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
}

/// The long-lived sweep service: a plan cache plus a worker pool.
///
/// Submit a batch of [`SweepUnit`]s with [`SweepService::submit`] (an
/// ordered [`ResultStream`] comes back) or [`SweepService::run_all`]
/// (collects the stream). Dropping the service shuts the workers down
/// after the queue drains its in-flight tasks.
pub struct SweepService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl SweepService {
    /// A service with `workers` worker threads (at least one).
    pub fn new(workers: usize) -> SweepService {
        let inner = Arc::new(ServiceInner {
            cache: PlanCache::new(),
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("sweep-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn sweep worker")
            })
            .collect();
        SweepService { inner, workers }
    }

    /// The process-wide shared service. Worker count comes from the
    /// `SWEEP_WORKERS` environment variable when set, else from
    /// [`std::thread::available_parallelism`] — results never depend on
    /// it (only wall clock does).
    pub fn global() -> &'static SweepService {
        static GLOBAL: OnceLock<SweepService> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("SWEEP_WORKERS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
                });
            SweepService::new(workers)
        })
    }

    /// This service's worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared plan cache (counters for CI pins; also usable directly
    /// as a [`PlanSource`]).
    pub fn cache(&self) -> &PlanCache {
        &self.inner.cache
    }

    /// Enqueues `units` and returns a stream yielding one result per
    /// unit **in submission order**, however the workers interleave.
    pub fn submit(&self, units: Vec<SweepUnit>) -> ResultStream {
        let (tx, rx) = mpsc::channel();
        let total = units.len() as u64;
        {
            let mut q = self.inner.queue.lock().expect("sweep queue poisoned");
            for (seq, unit) in units.into_iter().enumerate() {
                q.tasks.push_back(Task {
                    seq: seq as u64,
                    unit,
                    tx: tx.clone(),
                });
            }
        }
        self.inner.work_ready.notify_all();
        ResultStream {
            rx,
            pending: BTreeMap::new(),
            next: 0,
            total,
        }
    }

    /// [`SweepService::submit`], collected: all results in submission
    /// order, or the first error.
    ///
    /// # Errors
    ///
    /// The first failing unit's error, in submission order.
    pub fn run_all(&self, units: Vec<SweepUnit>) -> Result<Vec<PointResult>> {
        self.submit(units).collect()
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("sweep queue poisoned");
            q.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// In-submission-order results of one [`SweepService::submit`] batch.
///
/// Iterating blocks until the next-in-order unit completes; completions
/// that arrive early are parked in a reassembly buffer.
pub struct ResultStream {
    rx: mpsc::Receiver<Completion>,
    pending: BTreeMap<u64, Result<PointResult>>,
    next: u64,
    total: u64,
}

impl Iterator for ResultStream {
    type Item = Result<PointResult>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next == self.total {
            return None;
        }
        loop {
            if let Some(r) = self.pending.remove(&self.next) {
                self.next += 1;
                return Some(r);
            }
            match self.rx.recv() {
                Ok(c) => {
                    self.pending.insert(
                        c.seq,
                        c.report.map(|report| PointResult {
                            label: c.label,
                            report,
                            wall_ms: c.wall_ms,
                        }),
                    );
                }
                Err(_) => {
                    // Workers are gone (service dropped mid-stream).
                    self.next = self.total;
                    return Some(Err(StepError::Exec(
                        "sweep service shut down before the batch completed".into(),
                    )));
                }
            }
        }
    }
}

fn worker_loop(inner: &ServiceInner) {
    // Per-worker pools: after a worker's first run of a plan, its later
    // runs of that plan reset the parked state in place (alloc-free).
    let mut pools: HashMap<u64, RunPool> = HashMap::new();
    loop {
        let task = {
            let mut q = inner.queue.lock().expect("sweep queue poisoned");
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = inner.work_ready.wait(q).expect("sweep queue poisoned");
            }
        };
        let label = task.unit.label().to_owned();
        let start = Instant::now();
        let report = run_unit(&inner.cache, task.unit, &mut pools);
        // A dropped stream just discards results; the worker lives on.
        let _ = task.tx.send(Completion {
            seq: task.seq,
            label,
            report,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        });
    }
}

fn run_unit(
    cache: &PlanCache,
    unit: SweepUnit,
    pools: &mut HashMap<u64, RunPool>,
) -> Result<UnitReport> {
    match unit {
        SweepUnit::Sim(mut point) => {
            let plan = cache.checkout(point.builder, &point.cfg, &mut point.build)?;
            let pool = pools.entry(plan.id()).or_default();
            let report = match &point.binding {
                Some(binding) => plan.pooled_run_bound(binding, pool)?,
                None => plan.pooled_run(pool)?,
            };
            Ok(UnitReport::Sim(report))
        }
        SweepUnit::Serve(job) => Ok(UnitReport::Serve(job.run_with(cache)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_core::graph::GraphBuilder;
    use step_core::ops::LinearLoadCfg;

    /// A tiny off-chip load/store graph whose traffic scales with
    /// `tiles` — distinct `tiles` values are distinct plans.
    fn tiny_graph(tiles: u64) -> Result<Graph> {
        let mut g = GraphBuilder::new();
        let trigger = g.unit_source(1);
        let loaded =
            g.linear_offchip_load(&trigger, LinearLoadCfg::new(0, (64, 64 * tiles), (64, 64)))?;
        g.linear_offchip_store(&loaded, 0x10_0000)?;
        Ok(g.finish())
    }

    fn point(label: &str, tiles: u64) -> SweepUnit {
        SweepUnit::Sim(SimPoint {
            label: label.to_owned(),
            builder: tiles, // the builder's one input is its fingerprint
            cfg: SimConfig::default(),
            build: Box::new(move || tiny_graph(tiles)),
            binding: None,
        })
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let svc = SweepService::new(4);
        let units: Vec<SweepUnit> = (1..=8).map(|t| point(&format!("tiles{t}"), t)).collect();
        let results = svc.run_all(units).unwrap();
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("tiles{}", i + 1));
            let sim = r.report.sim().expect("sim point");
            // Traffic scales with tiles (load + store, f16 elements):
            // order is provably submission order, not completion order.
            assert_eq!(sim.offchip_traffic, 2 * 64 * 64 * (i as u64 + 1) * 2);
        }
    }

    #[test]
    fn identical_points_single_flight_one_build() {
        let svc = SweepService::new(8);
        let units: Vec<SweepUnit> = (0..16).map(|i| point(&format!("p{i}"), 4)).collect();
        let results = svc.run_all(units).unwrap();
        let base = results[0].report.sim().unwrap();
        for r in &results {
            assert_eq!(r.report.sim().unwrap().cycles, base.cycles);
        }
        let stats = svc.cache().stats();
        assert_eq!(stats.builds, 1, "one plan key must build exactly once");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 15);
        assert_eq!(svc.cache().len(), 1);
    }

    #[test]
    fn warm_cache_reruns_are_identical_and_build_nothing() {
        let svc = SweepService::new(2);
        let mk = || {
            (1..=4)
                .map(|t| point(&format!("t{t}"), t))
                .collect::<Vec<_>>()
        };
        let cold = svc.run_all(mk()).unwrap();
        let after_cold = svc.cache().stats();
        assert_eq!(after_cold.builds, 4);
        let warm = svc.run_all(mk()).unwrap();
        let after_warm = svc.cache().stats();
        assert_eq!(after_warm.builds, 4, "warm rerun must build nothing");
        assert_eq!(after_warm.misses, 4);
        assert_eq!(after_warm.hits, after_cold.hits + 4);
        for (c, w) in cold.iter().zip(&warm) {
            let (c, w) = (c.report.sim().unwrap(), w.report.sim().unwrap());
            assert_eq!((c.cycles, c.offchip_traffic), (w.cycles, w.offchip_traffic));
        }
    }

    #[test]
    fn single_worker_warm_points_are_alloc_free() {
        let svc = SweepService::new(1);
        let mk = || vec![point("a", 3), point("a", 3), point("a", 3)];
        let results = svc.run_all(mk()).unwrap();
        let allocs: Vec<u64> = results
            .iter()
            .map(|r| r.report.sim().unwrap().run_allocs)
            .collect();
        // First point builds the worker's pool; later points reset it in
        // place.
        assert_eq!(allocs, vec![1, 0, 0]);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mk = |n: u64| {
            (1..=n)
                .map(|t| point(&format!("t{t}"), t))
                .collect::<Vec<SweepUnit>>()
        };
        let base = SweepService::new(1).run_all(mk(6)).unwrap();
        for workers in [2, 4, 8] {
            let got = SweepService::new(workers).run_all(mk(6)).unwrap();
            assert_eq!(base.len(), got.len());
            for (b, g) in base.iter().zip(&got) {
                assert_eq!(b.label, g.label, "workers={workers} reordered");
                assert_eq!(b.report, g.report, "workers={workers} diverged");
            }
        }
    }

    #[test]
    fn builder_errors_propagate_in_order() {
        let svc = SweepService::new(2);
        let bad = SweepUnit::Sim(SimPoint {
            label: "bad".into(),
            builder: 999,
            cfg: SimConfig::default(),
            build: Box::new(|| Err(StepError::Config("intentionally broken".into()))),
            binding: None,
        });
        let units = vec![point("ok", 2), bad, point("ok2", 3)];
        let results: Vec<Result<PointResult>> = svc.submit(units).collect();
        assert!(results[0].is_ok());
        assert!(matches!(&results[1], Err(StepError::Config(m)) if m.contains("broken")));
        assert!(results[2].is_ok(), "an error must not poison later units");
    }
}
