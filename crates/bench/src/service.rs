//! Concurrent sweep service over a shared plan cache.
//!
//! Every sweep in [`crate::experiments`] used to be a serial loop, even
//! though `Arc<SimPlan>` has been thread-safe and bit-identical across
//! concurrent runs since the plan split (`crates/sim/tests/
//! plan_reuse.rs`). This module is the layer that exploits it: a
//! long-lived [`SweepService`] owning
//!
//! - a [`PlanCache`] keyed by **(builder fingerprint,
//!   [`SimConfig::fingerprint`])** — the config fingerprint excludes
//!   `threads`, the one knob the engine's determinism contract excludes,
//!   so sweep points that differ only in worker mapping share one frozen
//!   plan. Concurrent misses on one key are **single-flight**: the first
//!   requester builds, the rest wait on the same build and share the
//!   result;
//! - a [`step_sim::ReportCache`] shared across serve jobs, next to the
//!   plan cache and under the same single-flight discipline: serving
//!   iterations whose QKV or MoE signature repeats — within a job or
//!   across jobs sharing a cell configuration — replay a cached
//!   [`SimReport`] instead of running the engine
//!   ([`step_models::serving::run_serve_memo`]). Like the plan cache its
//!   counters are request-scoped and scheduler-independent, failed runs
//!   park a sticky `Failed` slot that the next request retakes, and
//!   panics resolve to typed errors instead of stranding waiters;
//! - a `std::thread` worker pool (no external deps, per the workspace
//!   convention). Each worker keeps a private `plan.id() →`[`RunPool`]
//!   map, so once a worker has run a plan, its later points on that plan
//!   reset parked run state in place — steady-state sweep points are
//!   allocation-free (`SimReport::run_allocs == 0`);
//! - in-order result streaming: [`SweepService::submit`] returns a
//!   [`ResultStream`] that yields results in **submission order**
//!   regardless of completion order, by reassembling the workers'
//!   completion messages on a sequence cursor.
//!
//! # Determinism and what CI pins
//!
//! Every unit's report is a pure function of its inputs (the engine's
//! contract plus [`step_models::serving`]'s), so the service is
//! **bit-identical to the serial loop it replaced at any worker count**
//! — `crates/bench/tests/service_conformance.rs` holds every rewired
//! sweep to that, at 1/2/4/8 workers and across warm-cache reruns. Wall
//! clock is never asserted (the 1-CPU CI box makes it meaningless);
//! instead CI pins the [`CacheStats`] counters, whose semantics are
//! deliberately scheduler-independent: the *first* request for a key is
//! the miss (and, once built, the build), and every other request —
//! including waiters coalesced behind an in-flight build — is a hit. A
//! warm cache therefore always shows `builds == distinct keys` and zero
//! further builds on rerun, whatever the worker count.
//!
//! # Failure semantics
//!
//! One bad unit can never hang or kill the fleet (see README "Failure
//! semantics" for the full contract):
//!
//! - **Panic isolation** — unit execution and builder invocation run
//!   under `catch_unwind`; a faulted unit yields a typed
//!   [`UnitError::Panicked`] result and its worker keeps serving. Locks
//!   recover from poisoning ([`step_core::sync`]) instead of
//!   `.expect`-aborting.
//! - **Single-flight failure recovery** — a failed or panicked build
//!   moves its cache slot to a `Failed` state that wakes every
//!   coalesced waiter with the error; the *next* checkout of the key
//!   retakes the build. [`CacheStats::failures`] counts failed builds,
//!   scheduler-independently.
//! - **Typed results** — the stream yields
//!   `Result<PointResult, UnitFailure>`: every error carries its unit's
//!   label and a [`UnitError`] taxonomy
//!   (`Panicked`/`Build`/`Run`/`DeadlineExceeded`/`Shutdown`).
//! - **Bounded queue + graceful drain** —
//!   [`SweepService::with_queue_depth`] makes `submit` backpressure past
//!   a configurable depth; [`SweepService::shutdown`] drains queued
//!   units, rejects new submissions with [`UnitError::Shutdown`], and
//!   joins the workers (as does `Drop`).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::panic::{AssertUnwindSafe, catch_unwind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, mpsc};
use std::thread::JoinHandle;
use std::time::Instant;

use step_core::sync::{lock, wait};
use step_core::{Graph, Result, StepError};
use step_models::serving::{PlanSource, ServeJob, ServeReport};
use step_sim::{ReportCache, RunBinding, RunPool, SimConfig, SimPlan, SimReport};

/// Cache key: what a frozen plan is a pure function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Fingerprint of the graph builder and all its inputs.
    pub builder: u64,
    /// [`SimConfig::fingerprint`] — every config field except `threads`.
    pub sim: u64,
}

/// Cumulative [`PlanCache`] counters. Scheduler-independent by
/// construction (see the module docs), so CI pins them exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a present or in-flight plan.
    pub hits: u64,
    /// Requests that found no entry (or a failed one) and took on the
    /// build.
    pub misses: u64,
    /// Plans actually frozen. Equals `misses` unless a build failed.
    pub builds: u64,
    /// Builds that returned an error or panicked. `misses == builds +
    /// failures` always; like the others, independent of worker
    /// scheduling, so the chaos suite pins it exactly.
    pub failures: u64,
}

/// A plan's cache slot: ready, claimed by an in-flight build, or failed.
///
/// Build claims are stamped with a cache-wide epoch so a waiter can
/// tell *its* build's outcome from a later retake: it sleeps while the
/// slot is `Building` with its epoch, then receives the error iff the
/// slot is `Failed` with that same epoch — otherwise the world moved on
/// and it re-dispatches.
enum Slot {
    /// A requester is building this plan; waiters sleep on the cache
    /// condvar until it lands or fails.
    Building {
        epoch: u64,
    },
    Ready(Arc<SimPlan>),
    /// The claimed build failed. Sticky until the next checkout retakes
    /// the claim, so waiters that coalesced on the failed build all
    /// observe the error instead of sleeping forever.
    Failed {
        error: StepError,
        epoch: u64,
    },
}

/// A shared, single-flight cache of frozen [`SimPlan`]s.
///
/// Plans are cached with `threads` normalized to 1: the knob is outside
/// the determinism contract (results are identical at any thread count)
/// and the service's parallelism comes from running *points*
/// concurrently, not from sharding single runs.
#[derive(Default)]
pub struct PlanCache {
    slots: Mutex<HashMap<PlanKey, Slot>>,
    ready: Condvar,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    failures: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Checks out the plan for `(builder, cfg)`, building it via `build`
    /// on a miss. Concurrent requests for one key coalesce onto a single
    /// build — exactly one `Building` claim exists per key at any
    /// moment, so builder invocations for a key are strictly serialized.
    ///
    /// # Errors
    ///
    /// A failed or panicked build (surfaced as
    /// [`StepError::Panicked`]) propagates to the requester that ran it
    /// **and** to every waiter coalesced on that build; the next
    /// checkout of the key retakes the claim and retries. No waiter
    /// ever blocks past its build's resolution.
    pub fn checkout(
        &self,
        builder: u64,
        cfg: &SimConfig,
        build: &mut dyn FnMut() -> Result<Graph>,
    ) -> Result<Arc<SimPlan>> {
        let key = PlanKey {
            builder,
            sim: cfg.fingerprint(),
        };
        let mut slots = lock(&self.slots);
        // `counted` keeps the counters request-scoped: one hit or miss
        // per call, however many condvar wakeups or failed-build
        // retakes happen in between.
        let mut counted = false;
        let my_epoch = loop {
            match slots.get(&key) {
                Some(Slot::Ready(plan)) => {
                    if !counted {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(plan.clone());
                }
                Some(&Slot::Building { epoch }) => {
                    if !counted {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        counted = true;
                    }
                    // Sleep until *this* build resolves (epoch match —
                    // a later retake must not re-capture us)…
                    while matches!(slots.get(&key), Some(Slot::Building { epoch: e }) if *e == epoch)
                    {
                        slots = wait(&self.ready, slots);
                    }
                    // …then propagate its failure to every coalesced
                    // waiter, or re-dispatch on the new slot state.
                    if let Some(Slot::Failed { error, epoch: e }) = slots.get(&key)
                        && *e == epoch
                    {
                        return Err(error.clone());
                    }
                }
                Some(Slot::Failed { .. }) | None => {
                    // Fresh key, or a failure left by a resolved build:
                    // take the claim (a retry counts as a new miss).
                    if !counted {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
                    slots.insert(key, Slot::Building { epoch });
                    break epoch;
                }
            }
        };
        drop(slots);

        // Builder invocation is panic-isolated: a dying build closure
        // (or plan freeze) becomes a typed error that resolves the slot
        // instead of leaving waiters asleep forever.
        let built = catch_unwind(AssertUnwindSafe(|| {
            build().and_then(|graph| {
                let normalized = SimConfig {
                    threads: 1,
                    ..cfg.clone()
                };
                SimPlan::new(graph, normalized).map(Arc::new)
            })
        }))
        .unwrap_or_else(|p| Err(StepError::Panicked(panic_message(p.as_ref()))));
        let mut slots = lock(&self.slots);
        let result = match built {
            Ok(plan) => {
                self.builds.fetch_add(1, Ordering::Relaxed);
                slots.insert(key, Slot::Ready(plan.clone()));
                Ok(plan)
            }
            Err(e) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                slots.insert(
                    key,
                    Slot::Failed {
                        error: e.clone(),
                        epoch: my_epoch,
                    },
                );
                Err(e)
            }
        };
        drop(slots);
        self.ready.notify_all();
        result
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }

    /// Distinct plans currently cached (ready, building, or failed).
    pub fn len(&self) -> usize {
        lock(&self.slots).len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PlanSource for PlanCache {
    fn plan(
        &self,
        fingerprint: u64,
        cfg: &SimConfig,
        build: &mut dyn FnMut() -> Result<Graph>,
    ) -> Result<Arc<SimPlan>> {
        self.checkout(fingerprint, cfg, build)
    }
}

/// One simulation sweep point: a graph builder plus the config and
/// optional per-run binding to drive the (cached) plan with.
pub struct SimPoint {
    /// Display label (sweep cell name), carried into the result.
    pub label: String,
    /// Fingerprint of the builder and **all** its inputs — the cache
    /// trusts it completely ([`PlanKey::builder`]).
    pub builder: u64,
    /// Simulation config (cache-keyed minus `threads`).
    pub cfg: SimConfig,
    /// Builds the graph on a cache miss. Must be a pure function of the
    /// fingerprinted inputs; may be invoked any number of times.
    pub build: Box<dyn FnMut() -> Result<Graph> + Send>,
    /// Per-run source rebinding; `None` runs the plan's built-in
    /// sources.
    pub binding: Option<RunBinding>,
}

/// A schedulable unit of sweep work.
pub enum SweepUnit {
    /// A single simulation run over a cached plan.
    Sim(SimPoint),
    /// A whole serving run (its phase plans check out of the cache).
    Serve(ServeJob),
}

impl SweepUnit {
    fn label(&self) -> &str {
        match self {
            SweepUnit::Sim(p) => &p.label,
            SweepUnit::Serve(j) => &j.label,
        }
    }
}

/// A unit's report.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitReport {
    /// Report of a [`SweepUnit::Sim`] point.
    Sim(SimReport),
    /// Report of a [`SweepUnit::Serve`] job.
    Serve(ServeReport),
}

impl UnitReport {
    /// The simulation report, if this unit was a sim point.
    pub fn sim(&self) -> Option<&SimReport> {
        match self {
            UnitReport::Sim(r) => Some(r),
            UnitReport::Serve(_) => None,
        }
    }

    /// The serving report, if this unit was a serve job.
    pub fn serve(&self) -> Option<&ServeReport> {
        match self {
            UnitReport::Serve(r) => Some(r),
            UnitReport::Sim(_) => None,
        }
    }
}

/// One completed sweep point, yielded in submission order.
///
/// Deliberately not `PartialEq`: `wall_ms` is host-dependent, so whole-
/// result equality would silently compare wall clock. Conformance
/// checks compare `label` and `report`.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The unit's label.
    pub label: String,
    /// The unit's report.
    pub report: UnitReport,
    /// Host wall-clock of the unit's run on its worker, milliseconds.
    /// Diagnostic only — never part of any determinism or CI check.
    pub wall_ms: f64,
}

/// Why a unit failed — the service's error taxonomy. Every variant is
/// isolated to its unit: the worker, the cache, and the rest of the
/// batch carry on.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// The unit's build closure, plan freeze, or run panicked. The
    /// panic was caught; the payload's message is carried here.
    Panicked(String),
    /// Graph build or plan freeze failed. The cache slot holds the
    /// failure; the next checkout of the key retries the build.
    Build(StepError),
    /// The run itself failed — deadlock, execution error, or a
    /// [`StepError::RoundLimit`] budget blow (non-retryable: the same
    /// inputs deterministically blow the same budget).
    Run(StepError),
    /// A per-unit deadline expired ([`StepError::Deadline`]) or the
    /// unit was cancelled ([`StepError::Cancelled`]).
    DeadlineExceeded(StepError),
    /// The service was shut down before the unit could run.
    Shutdown,
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::Panicked(m) => write!(f, "panicked: {m}"),
            UnitError::Build(e) => write!(f, "build failed: {e}"),
            UnitError::Run(e) => write!(f, "run failed: {e}"),
            UnitError::DeadlineExceeded(e) => write!(f, "{e}"),
            UnitError::Shutdown => write!(f, "service shut down"),
        }
    }
}

/// A failed unit: its label plus the typed [`UnitError`]. What the
/// [`ResultStream`] yields in a faulted unit's submission-order slot.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitFailure {
    /// The failed unit's label (sweep cell name).
    pub label: String,
    /// Why it failed.
    pub error: UnitError,
}

impl fmt::Display for UnitFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep point '{}': {}", self.label, self.error)
    }
}

impl std::error::Error for UnitFailure {}

/// Classifies a build-path error (cache checkout).
fn classify_build(e: StepError) -> UnitError {
    match e {
        StepError::Panicked(m) => UnitError::Panicked(m),
        e => UnitError::Build(e),
    }
}

/// Classifies a run-path error.
fn classify_run(e: StepError) -> UnitError {
    match e {
        StepError::Deadline { .. } | StepError::Cancelled => UnitError::DeadlineExceeded(e),
        StepError::Panicked(m) => UnitError::Panicked(m),
        e => UnitError::Run(e),
    }
}

/// A queued unit plus its result route.
struct Task {
    seq: u64,
    unit: SweepUnit,
    tx: mpsc::Sender<Completion>,
}

/// A worker's completion message (out of order; reassembled by seq).
struct Completion {
    seq: u64,
    label: String,
    report: std::result::Result<UnitReport, UnitError>,
    wall_ms: f64,
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct ServiceInner {
    cache: PlanCache,
    /// Shared report memoization for serve jobs (plans come from
    /// `cache`, steady-state phase *reports* come from here).
    reports: ReportCache,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    /// Wakes submitters blocked on a full queue (bounded-depth mode).
    space: Condvar,
    /// Queue depth `submit` backpressures past. `usize::MAX` =
    /// unbounded (the default).
    depth: usize,
}

/// The long-lived sweep service: a plan cache plus a worker pool.
///
/// Submit a batch of [`SweepUnit`]s with [`SweepService::submit`] (an
/// ordered [`ResultStream`] comes back) or [`SweepService::run_all`]
/// (collects the stream). Dropping the service shuts the workers down
/// after the queue drains its in-flight tasks.
pub struct SweepService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl SweepService {
    /// A service with `workers` worker threads (at least one) and an
    /// unbounded queue.
    pub fn new(workers: usize) -> SweepService {
        SweepService::with_queue_depth(workers, usize::MAX)
    }

    /// A service whose queue holds at most `depth` waiting units
    /// (clamped to at least one): [`SweepService::submit`] blocks per
    /// unit until a worker makes room — backpressure for producers that
    /// enumerate sweeps faster than they simulate.
    pub fn with_queue_depth(workers: usize, depth: usize) -> SweepService {
        let inner = Arc::new(ServiceInner {
            cache: PlanCache::new(),
            reports: ReportCache::new(),
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            space: Condvar::new(),
            depth: depth.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("sweep-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn sweep worker")
            })
            .collect();
        SweepService { inner, workers }
    }

    /// The process-wide shared service. Worker count comes from the
    /// `SWEEP_WORKERS` environment variable when set, else from
    /// [`std::thread::available_parallelism`] — results never depend on
    /// it (only wall clock does).
    pub fn global() -> &'static SweepService {
        static GLOBAL: OnceLock<SweepService> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("SWEEP_WORKERS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
                });
            SweepService::new(workers)
        })
    }

    /// This service's worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared plan cache (counters for CI pins; also usable directly
    /// as a [`PlanSource`]).
    pub fn cache(&self) -> &PlanCache {
        &self.inner.cache
    }

    /// The shared report cache serve jobs memoize their QKV and MoE
    /// phase reports in (cumulative counters for CI pins). Sim points
    /// don't consult it — their reports are one-shot by construction.
    pub fn reports(&self) -> &ReportCache {
        &self.inner.reports
    }

    /// Enqueues `units` and returns a stream yielding one result per
    /// unit **in submission order**, however the workers interleave.
    ///
    /// With a bounded queue ([`SweepService::with_queue_depth`]) this
    /// blocks per unit while the queue is full. After
    /// [`SweepService::shutdown`] every unit is rejected — the stream
    /// still yields all N results, each a typed
    /// [`UnitError::Shutdown`] failure under the unit's real label.
    pub fn submit(&self, units: Vec<SweepUnit>) -> ResultStream {
        let (tx, rx) = mpsc::channel();
        let total = units.len() as u64;
        {
            let mut q = lock(&self.inner.queue);
            for (seq, unit) in units.into_iter().enumerate() {
                let seq = seq as u64;
                while !q.shutdown && q.tasks.len() >= self.inner.depth {
                    q = wait(&self.inner.space, q);
                }
                if q.shutdown {
                    // Typed rejection straight onto the stream: the
                    // batch still resolves all N slots.
                    let _ = tx.send(Completion {
                        seq,
                        label: unit.label().to_owned(),
                        report: Err(UnitError::Shutdown),
                        wall_ms: 0.0,
                    });
                    continue;
                }
                q.tasks.push_back(Task {
                    seq,
                    unit,
                    tx: tx.clone(),
                });
                self.inner.work_ready.notify_one();
            }
        }
        ResultStream {
            rx,
            pending: BTreeMap::new(),
            next: 0,
            total,
        }
    }

    /// [`SweepService::submit`], collected: all results in submission
    /// order, or the first error.
    ///
    /// # Errors
    ///
    /// The first failing unit's [`UnitFailure`], in submission order.
    pub fn run_all(
        &self,
        units: Vec<SweepUnit>,
    ) -> std::result::Result<Vec<PointResult>, UnitFailure> {
        self.submit(units).collect()
    }

    /// Graceful drain: stops accepting new submissions (they resolve to
    /// [`UnitError::Shutdown`]), lets the workers finish everything
    /// already queued, and joins them. Idempotent; `Drop` calls it.
    pub fn shutdown(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        self.inner.space.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// In-submission-order results of one [`SweepService::submit`] batch.
///
/// Iterating blocks until the next-in-order unit completes; completions
/// that arrive early are parked in a reassembly buffer. The stream
/// **always** yields exactly one item per submitted unit: faulted units
/// yield their [`UnitFailure`] in their submission-order slot, and a
/// service torn down mid-batch resolves every unresolved slot with
/// [`UnitError::Shutdown`] instead of hanging or truncating.
pub struct ResultStream {
    rx: mpsc::Receiver<Completion>,
    pending: BTreeMap<u64, std::result::Result<PointResult, UnitFailure>>,
    next: u64,
    total: u64,
}

impl Iterator for ResultStream {
    type Item = std::result::Result<PointResult, UnitFailure>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next == self.total {
            return None;
        }
        loop {
            if let Some(r) = self.pending.remove(&self.next) {
                self.next += 1;
                return Some(r);
            }
            match self.rx.recv() {
                Ok(c) => {
                    self.pending.insert(
                        c.seq,
                        match c.report {
                            Ok(report) => Ok(PointResult {
                                label: c.label,
                                report,
                                wall_ms: c.wall_ms,
                            }),
                            Err(error) => Err(UnitFailure {
                                label: c.label,
                                error,
                            }),
                        },
                    );
                }
                Err(_) => {
                    // Workers are gone (service dropped mid-stream) and
                    // this slot never completed: resolve it as shut
                    // down. Parked later completions still drain in
                    // order on subsequent calls.
                    self.next += 1;
                    return Some(Err(UnitFailure {
                        label: format!("unit #{}", self.next - 1),
                        error: UnitError::Shutdown,
                    }));
                }
            }
        }
    }
}

fn worker_loop(inner: &ServiceInner) {
    // Per-worker pools: after a worker's first run of a plan, its later
    // runs of that plan reset the parked state in place (alloc-free).
    // A panicking run never parks state (pools park on success only),
    // so surviving a caught panic cannot corrupt later runs.
    let mut pools: HashMap<u64, RunPool> = HashMap::new();
    loop {
        let task = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    // Wake one backpressured submitter per slot freed.
                    inner.space.notify_one();
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = wait(&inner.work_ready, q);
            }
        };
        let label = task.unit.label().to_owned();
        let start = Instant::now();
        // Panic isolation: a faulted unit resolves to a typed error and
        // the worker keeps serving the queue.
        let unit = task.unit;
        let report = catch_unwind(AssertUnwindSafe(|| {
            run_unit(&inner.cache, &inner.reports, unit, &mut pools)
        }))
        .unwrap_or_else(|p| Err(UnitError::Panicked(panic_message(p.as_ref()))));
        // A dropped stream just discards results; the worker lives on.
        let _ = task.tx.send(Completion {
            seq: task.seq,
            label,
            report,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        });
    }
}

/// A [`PlanSource`] wrapper that remembers whether a failure came from
/// plan checkout (build path) — the serve driver funnels both build and
/// run errors through one `Result`, and the service wants to classify
/// them apart.
struct TaggedSource<'a> {
    cache: &'a PlanCache,
    build_error: std::cell::Cell<bool>,
}

impl PlanSource for TaggedSource<'_> {
    fn plan(
        &self,
        fingerprint: u64,
        cfg: &SimConfig,
        build: &mut dyn FnMut() -> Result<Graph>,
    ) -> Result<Arc<SimPlan>> {
        let r = self.cache.checkout(fingerprint, cfg, build);
        if r.is_err() {
            self.build_error.set(true);
        }
        r
    }
}

fn run_unit(
    cache: &PlanCache,
    reports: &ReportCache,
    unit: SweepUnit,
    pools: &mut HashMap<u64, RunPool>,
) -> std::result::Result<UnitReport, UnitError> {
    match unit {
        SweepUnit::Sim(mut point) => {
            let plan = cache
                .checkout(point.builder, &point.cfg, &mut point.build)
                .map_err(classify_build)?;
            let pool = pools.entry(plan.id()).or_default();
            let report = match &point.binding {
                Some(binding) => plan.pooled_run_bound(binding, pool),
                None => plan.pooled_run(pool),
            }
            .map_err(classify_run)?;
            Ok(UnitReport::Sim(report))
        }
        SweepUnit::Serve(job) => {
            let src = TaggedSource {
                cache,
                build_error: std::cell::Cell::new(false),
            };
            match job.run_memo(&src, reports) {
                Ok(report) => Ok(UnitReport::Serve(report)),
                Err(e) if src.build_error.get() => Err(classify_build(e)),
                Err(e) => Err(classify_run(e)),
            }
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_core::graph::GraphBuilder;
    use step_core::ops::LinearLoadCfg;

    /// A tiny off-chip load/store graph whose traffic scales with
    /// `tiles` — distinct `tiles` values are distinct plans.
    fn tiny_graph(tiles: u64) -> Result<Graph> {
        let mut g = GraphBuilder::new();
        let trigger = g.unit_source(1);
        let loaded =
            g.linear_offchip_load(&trigger, LinearLoadCfg::new(0, (64, 64 * tiles), (64, 64)))?;
        g.linear_offchip_store(&loaded, 0x10_0000)?;
        Ok(g.finish())
    }

    fn point(label: &str, tiles: u64) -> SweepUnit {
        SweepUnit::Sim(SimPoint {
            label: label.to_owned(),
            builder: tiles, // the builder's one input is its fingerprint
            cfg: SimConfig::default(),
            build: Box::new(move || tiny_graph(tiles)),
            binding: None,
        })
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let svc = SweepService::new(4);
        let units: Vec<SweepUnit> = (1..=8).map(|t| point(&format!("tiles{t}"), t)).collect();
        let results = svc.run_all(units).unwrap();
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("tiles{}", i + 1));
            let sim = r.report.sim().expect("sim point");
            // Traffic scales with tiles (load + store, f16 elements):
            // order is provably submission order, not completion order.
            assert_eq!(sim.offchip_traffic, 2 * 64 * 64 * (i as u64 + 1) * 2);
        }
    }

    #[test]
    fn identical_points_single_flight_one_build() {
        let svc = SweepService::new(8);
        let units: Vec<SweepUnit> = (0..16).map(|i| point(&format!("p{i}"), 4)).collect();
        let results = svc.run_all(units).unwrap();
        let base = results[0].report.sim().unwrap();
        for r in &results {
            assert_eq!(r.report.sim().unwrap().cycles, base.cycles);
        }
        let stats = svc.cache().stats();
        assert_eq!(stats.builds, 1, "one plan key must build exactly once");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 15);
        assert_eq!(svc.cache().len(), 1);
    }

    #[test]
    fn warm_cache_reruns_are_identical_and_build_nothing() {
        let svc = SweepService::new(2);
        let mk = || {
            (1..=4)
                .map(|t| point(&format!("t{t}"), t))
                .collect::<Vec<_>>()
        };
        let cold = svc.run_all(mk()).unwrap();
        let after_cold = svc.cache().stats();
        assert_eq!(after_cold.builds, 4);
        let warm = svc.run_all(mk()).unwrap();
        let after_warm = svc.cache().stats();
        assert_eq!(after_warm.builds, 4, "warm rerun must build nothing");
        assert_eq!(after_warm.misses, 4);
        assert_eq!(after_warm.hits, after_cold.hits + 4);
        for (c, w) in cold.iter().zip(&warm) {
            let (c, w) = (c.report.sim().unwrap(), w.report.sim().unwrap());
            assert_eq!((c.cycles, c.offchip_traffic), (w.cycles, w.offchip_traffic));
        }
    }

    #[test]
    fn single_worker_warm_points_are_alloc_free() {
        let svc = SweepService::new(1);
        let mk = || vec![point("a", 3), point("a", 3), point("a", 3)];
        let results = svc.run_all(mk()).unwrap();
        let allocs: Vec<u64> = results
            .iter()
            .map(|r| r.report.sim().unwrap().run_allocs)
            .collect();
        // First point builds the worker's pool; later points reset it in
        // place.
        assert_eq!(allocs, vec![1, 0, 0]);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mk = |n: u64| {
            (1..=n)
                .map(|t| point(&format!("t{t}"), t))
                .collect::<Vec<SweepUnit>>()
        };
        let base = SweepService::new(1).run_all(mk(6)).unwrap();
        for workers in [2, 4, 8] {
            let got = SweepService::new(workers).run_all(mk(6)).unwrap();
            assert_eq!(base.len(), got.len());
            for (b, g) in base.iter().zip(&got) {
                assert_eq!(b.label, g.label, "workers={workers} reordered");
                assert_eq!(b.report, g.report, "workers={workers} diverged");
            }
        }
    }

    #[test]
    fn builder_errors_propagate_in_order() {
        let svc = SweepService::new(2);
        let bad = SweepUnit::Sim(SimPoint {
            label: "bad".into(),
            builder: 999,
            cfg: SimConfig::default(),
            build: Box::new(|| Err(StepError::Config("intentionally broken".into()))),
            binding: None,
        });
        let units = vec![point("ok", 2), bad, point("ok2", 3)];
        let results: Vec<std::result::Result<PointResult, UnitFailure>> =
            svc.submit(units).collect();
        assert!(results[0].is_ok());
        match &results[1] {
            Err(UnitFailure { label, error }) => {
                assert_eq!(label, "bad");
                assert!(
                    matches!(error, UnitError::Build(StepError::Config(m)) if m.contains("broken"))
                );
            }
            Ok(_) => panic!("broken builder must fail its unit"),
        }
        assert!(results[2].is_ok(), "an error must not poison later units");
    }

    #[test]
    fn failed_build_is_counted_and_next_checkout_retries() {
        let cache = PlanCache::new();
        let err = cache
            .checkout(7, &SimConfig::default(), &mut || {
                Err(StepError::Config("flaky".into()))
            })
            .err()
            .expect("failing builder must fail the checkout");
        assert!(matches!(err, StepError::Config(m) if m.contains("flaky")));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                builds: 0,
                failures: 1
            }
        );
        // The failure is sticky but not fatal: the next checkout of the
        // key retakes the build.
        let plan = cache
            .checkout(7, &SimConfig::default(), &mut || tiny_graph(2))
            .unwrap();
        assert!(plan.id() > 0);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                builds: 1,
                failures: 1
            }
        );
    }

    #[test]
    fn panicking_builder_resolves_as_typed_error_not_a_dead_worker() {
        let svc = SweepService::new(1);
        let boom = SweepUnit::Sim(SimPoint {
            label: "boom".into(),
            builder: 555,
            cfg: SimConfig::default(),
            build: Box::new(|| panic!("builder exploded")),
            binding: None,
        });
        // One worker: if the panic killed it, the second unit would
        // never complete.
        let results: Vec<_> = svc.submit(vec![boom, point("after", 2)]).collect();
        match &results[0] {
            Err(UnitFailure { label, error }) => {
                assert_eq!(label, "boom");
                assert!(
                    matches!(error, UnitError::Panicked(m) if m.contains("exploded")),
                    "got: {error:?}"
                );
            }
            Ok(_) => panic!("panicking builder must fail its unit"),
        }
        assert!(results[1].is_ok(), "the worker must survive the panic");
        assert_eq!(svc.cache().stats().failures, 1);
    }

    #[test]
    fn deadline_blow_classifies_as_deadline_exceeded() {
        let svc = SweepService::new(1);
        let mut binding = RunBinding::new();
        binding.deadline_cycles(1);
        let doomed = SweepUnit::Sim(SimPoint {
            label: "doomed".into(),
            builder: 6,
            cfg: SimConfig::default(),
            build: Box::new(|| tiny_graph(6)),
            binding: Some(binding),
        });
        let results: Vec<_> = svc.submit(vec![doomed, point("clean", 6)]).collect();
        match &results[0] {
            Err(UnitFailure { label, error }) => {
                assert_eq!(label, "doomed");
                assert!(matches!(
                    error,
                    UnitError::DeadlineExceeded(StepError::Deadline {
                        kind: step_core::DeadlineKind::Cycles,
                        limit: 1,
                        ..
                    })
                ));
            }
            Ok(_) => panic!("a 1-cycle deadline must blow"),
        }
        // Same plan key (binding is not part of the key): the clean unit
        // still runs it to completion.
        assert!(results[1].is_ok());
    }

    #[test]
    fn shutdown_drains_queue_then_rejects_with_typed_error() {
        let mut svc = SweepService::new(2);
        let first = svc.run_all(vec![point("a", 2), point("b", 3)]).unwrap();
        assert_eq!(first.len(), 2);
        svc.shutdown();
        svc.shutdown(); // idempotent
        let rejected: Vec<_> = svc
            .submit(vec![point("late", 4), point("later", 5)])
            .collect();
        assert_eq!(rejected.len(), 2, "rejected batches still resolve all N");
        for (r, want) in rejected.iter().zip(["late", "later"]) {
            match r {
                Err(UnitFailure { label, error }) => {
                    assert_eq!(label, want, "rejections keep real labels");
                    assert_eq!(*error, UnitError::Shutdown);
                }
                Ok(_) => panic!("post-shutdown submission must be rejected"),
            }
        }
    }

    #[test]
    fn bounded_queue_backpressures_without_losing_order() {
        let svc = SweepService::with_queue_depth(1, 1);
        let units: Vec<SweepUnit> = (1..=4).map(|t| point(&format!("t{t}"), t)).collect();
        // submit() blocks per unit until the single-slot queue drains;
        // the batch must still complete in submission order.
        let results = svc.run_all(units).unwrap();
        let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["t1", "t2", "t3", "t4"]);
    }

    /// Satellite: concurrent same-key checkouts against a builder that
    /// fails the first F times. Single-flight claims serialize builder
    /// invocations, so however the threads interleave: exactly F
    /// recorded failures, exactly one successful build, exactly F+1
    /// builder invocations — and no waiter blocks forever (the test
    /// terminates without any watchdog).
    #[test]
    fn concurrent_failing_builds_serialize_and_never_strand_waiters() {
        const THREADS: usize = 8;
        const FAILURES: u64 = 3;
        let cache = PlanCache::new();
        let invocations = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    // Retry until the shared build succeeds. Bounded so
                    // a protocol bug fails loudly instead of spinning.
                    for attempt in 0..64 {
                        let got = cache.checkout(42, &SimConfig::default(), &mut || {
                            let n = invocations.fetch_add(1, Ordering::SeqCst) + 1;
                            if n <= FAILURES {
                                Err(StepError::Config(format!("transient #{n}")))
                            } else {
                                tiny_graph(3)
                            }
                        });
                        match got {
                            Ok(_) => return,
                            Err(e) => {
                                assert!(matches!(e, StepError::Config(_)), "unexpected error: {e}");
                                assert!(attempt < 63, "checkout never converged");
                            }
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            invocations.load(Ordering::SeqCst),
            FAILURES + 1,
            "exactly one rebuild per retry round"
        );
        assert_eq!(stats.failures, FAILURES);
        assert_eq!(stats.builds, 1);
        assert!(stats.misses >= 1 && stats.misses <= FAILURES + 1);
        assert_eq!(cache.len(), 1);
    }
}
