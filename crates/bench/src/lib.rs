//! Experiment harness regenerating every table and figure of the STeP
//! paper's evaluation (see DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for the recorded results).
//!
//! Each `fig*` binary is a thin wrapper over a function in
//! [`experiments`] that returns structured rows; rows are printed as
//! aligned tables and written as CSV under `results/`.
//!
//! Sweeps execute on the [`service`] layer: a [`SweepService`] worker
//! pool over a single-flight [`PlanCache`] keyed by (builder
//! fingerprint, config fingerprint minus `threads`), bit-identical to
//! the serial loops it replaced at any worker count
//! (`tests/service_conformance.rs`). The serial `*_serial` variants in
//! [`experiments`] are kept as the differential baselines.

pub mod experiments;
pub mod fault;
pub mod pareto;
pub mod roofline;
pub mod service;
pub mod table;

pub use fault::{FaultKind, FaultPlan};
pub use service::{
    CacheStats, PlanCache, PlanKey, PointResult, ResultStream, SimPoint, SweepService, SweepUnit,
    UnitError, UnitFailure, UnitReport,
};
