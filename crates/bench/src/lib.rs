//! Experiment harness regenerating every table and figure of the STeP
//! paper's evaluation (see DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for the recorded results).
//!
//! Each `fig*` binary is a thin wrapper over a function in
//! [`experiments`] that returns structured rows; rows are printed as
//! aligned tables and written as CSV under `results/`.

pub mod experiments;
pub mod pareto;
pub mod roofline;
pub mod table;
