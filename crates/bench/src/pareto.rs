//! Pareto-frontier utilities and the Pareto Improvement Distance (PID)
//! metric (§5.2, Appendix B.4).

/// A bi-objective design point: both objectives are minimized
/// (cycles and on-chip memory, or traffic and memory).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// First objective (e.g. cycles).
    pub a: f64,
    /// Second objective (e.g. bytes of on-chip memory).
    pub b: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(a: f64, b: f64) -> Point {
        Point { a, b }
    }

    /// Whether `self` dominates `other` (no worse in both, better in
    /// one).
    pub fn dominates(&self, other: &Point) -> bool {
        self.a <= other.a && self.b <= other.b && (self.a < other.a || self.b < other.b)
    }
}

/// The Pareto-optimal subset of `points` (non-dominated configurations).
pub fn pareto_front(points: &[Point]) -> Vec<Point> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .copied()
        .collect()
}

/// Pareto Improvement Distance of `p` with respect to the baseline
/// frontier `front` (Appendix B.4, eq. 2):
///
/// `PID(p) = min_{q in F} max(a(q)/a(p), b(q)/b(p))`
///
/// `PID > 1` means `p` lies strictly beyond the baseline frontier; `= 1`
/// on it; `< 1` dominated by it.
///
/// # Panics
///
/// Panics if `front` is empty or any coordinate is non-positive.
pub fn pid(p: Point, front: &[Point]) -> f64 {
    assert!(!front.is_empty(), "baseline frontier must be non-empty");
    assert!(p.a > 0.0 && p.b > 0.0, "objectives must be positive");
    front
        .iter()
        .map(|q| {
            assert!(q.a > 0.0 && q.b > 0.0, "objectives must be positive");
            (q.a / p.a).max(q.b / p.b)
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_is_strict() {
        let p = Point::new(1.0, 2.0);
        assert!(p.dominates(&Point::new(2.0, 2.0)));
        assert!(p.dominates(&Point::new(1.0, 3.0)));
        assert!(!p.dominates(&Point::new(1.0, 2.0)));
        assert!(!p.dominates(&Point::new(0.5, 3.0)));
    }

    #[test]
    fn front_filters_dominated() {
        let pts = vec![
            Point::new(1.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(4.0, 1.0),
            Point::new(3.0, 3.0), // dominated by (2,2)
        ];
        let f = pareto_front(&pts);
        assert_eq!(f.len(), 3);
        assert!(!f.contains(&Point::new(3.0, 3.0)));
    }

    #[test]
    fn pid_beyond_frontier_exceeds_one() {
        let front = vec![Point::new(2.0, 2.0)];
        // Twice as good in both objectives.
        assert!((pid(Point::new(1.0, 1.0), &front) - 2.0).abs() < 1e-12);
        // On the frontier.
        assert!((pid(Point::new(2.0, 2.0), &front) - 1.0).abs() < 1e-12);
        // Dominated.
        assert!(pid(Point::new(4.0, 4.0), &front) < 1.0);
    }

    #[test]
    fn pid_picks_closest_baseline_point() {
        let front = vec![Point::new(1.0, 8.0), Point::new(8.0, 1.0)];
        // A balanced new point: each baseline point must improve its worse
        // objective to match; the min over the frontier is taken.
        let v = pid(Point::new(2.0, 2.0), &front);
        assert!((v - 4.0).abs() < 1e-12, "{v}");
    }
}
