//! Console tables and CSV output for experiment rows.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Prints an aligned table with a header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Writes rows as CSV under `results/<name>.csv`, returning the path.
///
/// # Panics
///
/// Panics — naming the path — if the file cannot be written: a figure
/// run that silently produces no artifact is worse than a crashed one.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::path::PathBuf {
    let path = Path::new("results").join(format!("{name}.csv"));
    let try_write = || -> std::io::Result<()> {
        fs::create_dir_all(path.parent().expect("results dir"))?;
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    };
    try_write().unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
    path
}

/// Formats a float with limited precision for tables.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let path = write_csv("test_table", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let txt = std::fs::read_to_string(&path).unwrap();
        assert_eq!(txt, "a,b\n1,2\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234");
    }
}
