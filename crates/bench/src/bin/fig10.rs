//! Regenerates Fig 10 (dynamic tiling Pareto, batch 1024) and the traffic
//! view of Fig 20.
use step_bench::experiments::{report_tiling, tiling_sweep};
use step_models::ModelConfig;
fn main() {
    let mixtral = tiling_sweep(ModelConfig::mixtral_8x7b(), 1024, &[16, 64, 256, 1024], 7);
    report_tiling("fig10_mixtral_b1024", &mixtral);
    let qwen = tiling_sweep(ModelConfig::qwen3_30b_a3b(), 1024, &[16, 64, 256, 1024], 7);
    report_tiling("fig10_qwen_b1024", &qwen);
}
