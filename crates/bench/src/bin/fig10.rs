//! Regenerates Fig 10 (dynamic tiling Pareto, batch 1024) and the
//! traffic view of Fig 20. Sweep parameters live in
//! `step_bench::experiments::fig10`.
fn main() {
    step_bench::experiments::fig10();
}
