//! Regenerates Fig 13 (time-multiplexing resource usage: memory,
//! allocated compute, off-chip bandwidth utilization). Sweep parameters
//! live in `step_bench::experiments::fig13`.
fn main() {
    step_bench::experiments::fig13();
}
