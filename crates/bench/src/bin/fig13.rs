//! Regenerates Fig 13 (time-multiplexing resource usage: memory,
//! allocated compute, off-chip bandwidth utilization).
use step_bench::experiments::{report_timeshare, timeshare_sweep};
use step_models::moe::Tiling;
fn main() {
    let rows = timeshare_sweep(Tiling::Static { tile: 32 }, 7);
    report_timeshare("fig13", &rows);
}
