//! Serving sweep: continuous batching under offered load.
//!
//! Runs [`step_bench::experiments::serve_sweep`] — Mixtral-8x7B decode
//! served from a seeded Poisson arrival trace across an offered-load
//! axis, with and without chunked prefill — and reports TTFT/TPOT
//! percentiles (p50/p95/p99, cycles), goodput vs offered load
//! (requests per million cycles), and HBM pressure (off-chip bytes per
//! busy cycle and utilization of peak), as a table plus
//! `results/serve_sweep.csv`.
//!
//! Determinism is asserted, not sampled: the sweep is re-run with the
//! same seeds and must be bit-identical (every cycle count, percentile,
//! and counter), which extends the engine's thread-count-independence
//! contract through the serving scheduler — and, since both sweeps run
//! on the process-wide [`step_bench::SweepService`], the rerun is served
//! from warm plan *and report* caches, making it the warm-vs-cold
//! identity check too. With `--quick` the sweep shrinks to one
//! CI-affordable cell whose scheduling counters (iterations, admitted,
//! evicted — exact), engine counters (fires, channel run ops — pinned
//! ~5% above measured), plan-cache counters (2 misses + 2 builds cold,
//! 2 hits warm — exact), and report-cache counters (exact hit/miss
//! split cold and warm, plus an engine-fires elision floor — the memo
//! layer must skip ≥40% of the two passes' logical fire work) are
//! guarded; like sched_bench, the guards are pure functions of the plan
//! and can never flake on a noisy runner. Wall-clock is never asserted.
//!
//! Run with: `cargo run --release -p step-bench --bin serve_sweep`
//! (`--quick` for the CI cell, `--json` to append one JSON row per cell
//! to `BENCH_sched.json` — path override: `BENCH_SCHED_OUT` — the perf
//! artifact CI uploads).

use step_bench::experiments::{ServeRow, report_serve, serve_sweep};
use step_bench::{CacheStats, SweepService};
use step_models::serving::Percentiles;

/// Counters-only budgets for the `--quick` cell (8 requests, mean
/// inter-arrival 300 Mcycles, chunk 16): scheduling counters are exact
/// (pure functions of trace + config), engine counters are pinned ~5%
/// above the measured 11,980,447 fires / 4,957,268 channel run ops.
const QUICK_ITERATIONS: usize = 56;
const QUICK_ADMITTED: u32 = 8;
const QUICK_FIRE_BUDGET: u64 = 12_600_000;
const QUICK_CHAN_RUN_BUDGET: u64 = 5_210_000;
/// Report-memoization guards for the quick cell. Each pass issues
/// `2 × QUICK_ITERATIONS` phase requests (QKV + MoE per iteration);
/// the cold pass resolves some from intra-run repeats, the warm rerun
/// resolves all of them from the shared service cache, leaving only
/// attention on the engine (measured 8,638 fires — pinned ~5% above).
/// Across both passes the cache must elide at least 40% of the logical
/// fire work (two passes × the committed 12.0M-fire baseline).
const QUICK_PHASE_REQUESTS: u64 = 2 * QUICK_ITERATIONS as u64;
const QUICK_WARM_ENGINE_FIRE_BUDGET: u64 = 9_100;
const QUICK_LOGICAL_FIRE_BASELINE: u64 = 12_000_000;

fn json_line(r: &ServeRow) -> String {
    let rep = &r.report;
    // An empty percentile population (e.g. no multi-token outputs for
    // TPOT) serializes as JSON null — it is not a zero latency.
    let pc = |p: &Option<Percentiles>, get: fn(&Percentiles) -> f64| {
        p.as_ref()
            .map_or("null".to_string(), |p| format!("{:.0}", get(p)))
    };
    format!(
        "{{\"mode\":\"serve\",\"mean_interarrival\":{:.0},\"prefill_chunk\":{},\
         \"offered_per_mcycle\":{:.3},\"goodput_per_mcycle\":{:.3},\
         \"ttft_p50\":{},\"ttft_p95\":{},\"ttft_p99\":{},\
         \"tpot_p50\":{},\"tpot_p95\":{},\"tpot_p99\":{},\
         \"hbm_bytes_per_cycle\":{:.2},\"hbm_utilization\":{:.4},\
         \"iterations\":{},\"admitted\":{},\"evicted\":{},\"shed\":{},\"completed\":{},\
         \"total_cycles\":{},\"busy_cycles\":{},\"fires\":{},\"chan_runs\":{},\
         \"engine_fires\":{},\"report_cache\":{{\"hits\":{},\"misses\":{},\
         \"canonical_hits\":{}}}}}",
        r.mean_interarrival,
        r.prefill_chunk
            .map_or("null".to_string(), |c| c.to_string()),
        rep.offered_per_mcycle,
        rep.goodput_per_mcycle,
        pc(&rep.ttft, |p| p.p50),
        pc(&rep.ttft, |p| p.p95),
        pc(&rep.ttft, |p| p.p99),
        pc(&rep.tpot, |p| p.p50),
        pc(&rep.tpot, |p| p.p95),
        pc(&rep.tpot, |p| p.p99),
        rep.hbm_bytes_per_cycle,
        rep.hbm_utilization,
        rep.iterations.len(),
        rep.admitted_total,
        rep.evicted_total,
        rep.shed_total,
        rep.outcomes.len(),
        rep.total_cycles,
        rep.busy_cycles,
        rep.total_fires,
        rep.chan_runs,
        rep.engine_fires,
        rep.report_cache.hits,
        rep.report_cache.misses,
        rep.report_cache.canonical_hits,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");

    // A failed sweep unit exits nonzero naming the failing point.
    let die = |e: step_bench::UnitFailure| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let rows = serve_sweep(quick).unwrap_or_else(|e| die(e));
    // Same-seed rerun must be bit-identical: the serving scheduler adds
    // no nondeterminism on top of the engine's contract. Both sweeps run
    // on the process-wide sweep service, so the rerun is also the
    // warm-plan-cache check: identical reports off cached plans.
    let rerun = serve_sweep(quick).unwrap_or_else(|e| die(e));
    assert_eq!(rows.len(), rerun.len());
    for (a, b) in rows.iter().zip(&rerun) {
        assert_eq!(
            a.report, b.report,
            "serving sweep cell (interarrival {:.0}, chunk {:?}) not deterministic",
            a.mean_interarrival, a.prefill_chunk
        );
    }

    if quick {
        // The quick cell checks out two plans (attention + MoE). Cold
        // sweep: 2 misses, 2 builds; warm rerun: 2 hits, zero builds.
        // The counters are scheduler-independent, so the pin is exact.
        assert_eq!(
            SweepService::global().cache().stats(),
            CacheStats {
                hits: 2,
                misses: 2,
                builds: 2,
                failures: 0
            },
            "quick-cell plan-cache counters moved — if intentional, re-pin"
        );
        let rep = &rows[0].report;
        assert_eq!(
            (rep.iterations.len(), rep.admitted_total, rep.evicted_total),
            (QUICK_ITERATIONS, QUICK_ADMITTED, QUICK_ADMITTED),
            "quick-cell scheduling counters moved — if intentional, re-pin the budgets"
        );
        assert!(
            rep.total_fires <= QUICK_FIRE_BUDGET,
            "quick-cell fires regressed: {} > budget {QUICK_FIRE_BUDGET}",
            rep.total_fires,
        );
        assert!(
            rep.chan_runs <= QUICK_CHAN_RUN_BUDGET,
            "quick-cell channel run ops regressed: {} > budget {QUICK_CHAN_RUN_BUDGET}",
            rep.chan_runs,
        );
        // Report-memoization pins. Every iteration issues one QKV and
        // one MoE request; the split between hits and misses is a pure
        // function of the trace (which token counts and routings
        // repeat), so the cold pin is exact. The warm rerun replays
        // every phase from the shared service cache: zero misses, only
        // attention still reaches the engine.
        let warm = &rerun[0].report;
        for (label, r) in [("cold", rep), ("warm", warm)] {
            assert_eq!(
                r.report_cache.hits + r.report_cache.misses,
                QUICK_PHASE_REQUESTS,
                "{label} pass: phase-request accounting moved — if intentional, re-pin"
            );
            assert_eq!(
                r.report_cache.canonical_hits, 0,
                "{label} pass: canonical hits without moe_canonical on"
            );
        }
        assert_eq!(
            (rep.report_cache.hits, rep.report_cache.misses),
            (42, 70),
            "cold-pass report-cache split moved — if intentional, re-pin"
        );
        assert_eq!(
            (warm.report_cache.hits, warm.report_cache.misses),
            (QUICK_PHASE_REQUESTS, 0),
            "warm rerun missed the shared report cache"
        );
        assert!(
            warm.engine_fires <= QUICK_WARM_ENGINE_FIRE_BUDGET,
            "warm-pass engine fires regressed: {} > budget {QUICK_WARM_ENGINE_FIRE_BUDGET}",
            warm.engine_fires,
        );
        // The elision floor: across cold + warm the memo layer must
        // skip at least 40% of the logical fire work.
        let executed = rep.engine_fires + warm.engine_fires;
        let logical = 2 * QUICK_LOGICAL_FIRE_BASELINE;
        assert!(
            executed * 10 <= logical * 6,
            "report cache elided <40% of fire work: executed {executed} of {logical} logical",
        );
    }

    if json {
        let path = std::env::var("BENCH_SCHED_OUT").unwrap_or_else(|_| "BENCH_sched.json".into());
        let mut body = String::new();
        for r in &rows {
            let line = json_line(r);
            println!("{line}");
            body.push_str(&line);
            body.push('\n');
        }
        // Appends: sched_bench owns the file's head, the serving rows
        // ride along in the same artifact.
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .expect("append bench artifact");
        eprintln!("appended {} row(s) to {path}", rows.len());
    } else {
        report_serve(
            if quick {
                "serve_sweep_quick"
            } else {
                "serve_sweep"
            },
            &rows,
        );
        println!("\nsame-seed warm-cache rerun bit-identical on every cell: ok");
        if quick {
            println!(
                "quick-cell scheduling, engine, plan-cache, and report-cache counter budgets: ok"
            );
        }
    }
}
