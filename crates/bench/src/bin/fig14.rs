//! Regenerates Fig 14 (dynamic parallelization vs static interleaved
//! across KV-length variability).
fn main() {
    step_bench::experiments::fig14();
}
