//! Regenerates Fig 15 (coarse-grained vs dynamic parallelization across
//! batch sizes).
fn main() {
    step_bench::experiments::fig15();
}
