//! Regenerates Fig 17 (end-to-end Qwen3-30B-A3B and Mixtral-8x7B).
fn main() {
    step_bench::experiments::fig17();
}
