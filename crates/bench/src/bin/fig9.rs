//! Regenerates Fig 9 (dynamic tiling Pareto, batch 64) and the traffic
//! view of Fig 19.
use step_bench::experiments::{report_tiling, tiling_sweep};
use step_models::ModelConfig;
fn main() {
    let mixtral = tiling_sweep(ModelConfig::mixtral_8x7b(), 64, &[8, 16, 32, 64], 7);
    report_tiling("fig9_mixtral_b64", &mixtral);
    let qwen = tiling_sweep(ModelConfig::qwen3_30b_a3b(), 64, &[8, 16, 32, 64], 7);
    report_tiling("fig9_qwen_b64", &qwen);
}
