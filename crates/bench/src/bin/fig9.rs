//! Regenerates Fig 9 (dynamic tiling Pareto, batch 64) and the traffic
//! view of Fig 19. Sweep parameters live in
//! `step_bench::experiments::fig9`.
fn main() {
    step_bench::experiments::fig9();
}
