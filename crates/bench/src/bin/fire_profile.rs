//! Engine-overhead profiler: per-operator fire and wall-clock breakdown,
//! mono vs sharded, across horizon-step settings.
//!
//! The companion tool to `sched_bench` for *diagnosing* scheduler and
//! transport overhead rather than guarding it: it attributes fires, idle
//! fires, and — with `SimConfig::profile_fires` — host wall-clock to
//! operator kinds, so a regression flagged by the fire or channel-op
//! budget can be localized to the operator whose run-length rewrite
//! misbehaves. The horizon-step sweep shows how sensitive the schedule
//! still is to window granularity (with barrier elision it should be
//! nearly flat).
//!
//! Run with: `cargo run --release -p step-bench --bin fire_profile`
//! `--json` emits one JSON object per configuration (run summary plus
//! the per-op table); `TOPK=n` bounds the table to the n operator kinds
//! with the largest wall share (default 10, 0 = all). Each row carries
//! a `dispatch` column: the compiled executor variant
//! ([`step_sim::nodes::CompiledNode`] kind) the operator lowers to, so
//! wall time attributes to the static-dispatch arm that actually runs.
//!
//! `--serve` switches to the per-*phase* profile: a serving-shaped
//! iteration stream (chunked prefill ramp, then steady-state decode) is
//! driven through the QKV / attention / MoE phase plans twice over one
//! shared [`step_sim::ReportCache`] — a cold pass and a warm rerun —
//! attributing engine fires, cache resolutions, and host wall-clock to
//! each phase. This is the diagnostic view behind the serving memo
//! numbers: it shows where the fire work lives (MoE dominates), which
//! phase the report cache elides (QKV within a pass, QKV + MoE across
//! passes), and what attention — never cached, its slot-context vector
//! is effectively unique — costs per iteration.

use std::collections::BTreeMap;
use std::time::Instant;
use step_models::ModelConfig;
use step_models::attention::{AttentionCfg, ParallelStrategy, attention_graph_with_ports};
use step_models::moe::{MoeCfg, Tiling, moe_graph, moe_graph_with_ports};
use step_models::phases::{bind_attention, bind_moe, moe_sim_config, qkv_fingerprint, qkv_graph};
use step_models::serving::{ServeCfg, iteration_routing};
use step_sim::nodes::compiled_kind;
use step_sim::{ReportCache, Resolution, RunBinding, SimConfig, SimPlan, plan_content_key};
use step_traces::{KvTrace, RoutingConfig, RoutingTrace, expert_routing};

#[derive(Default)]
struct OpRow {
    dispatch: &'static str,
    fires: u64,
    idle: u64,
    wall_ns: u64,
    nodes: u64,
    tokens: u64,
}

/// Per-phase accumulator for one pass of the `--serve` profile.
#[derive(Default)]
struct PhaseRow {
    requests: u64,
    hits: u64,
    engine_runs: u64,
    engine_fires: u64,
    logical_fires: u64,
    wall_ns: u64,
}

impl PhaseRow {
    fn absorb(&mut self, fires: u64, resolution: Resolution, wall_ns: u64) {
        self.requests += 1;
        self.logical_fires += fires;
        self.wall_ns += wall_ns;
        if resolution == Resolution::Simulated {
            self.engine_runs += 1;
            self.engine_fires += fires;
        } else {
            self.hits += 1;
        }
    }
}

/// The `--serve` mode: per-phase fire/wall attribution over a
/// serving-shaped iteration stream, cold pass then warm rerun on one
/// shared report cache.
fn serve_profile(json: bool) {
    let model = ModelConfig::qwen3_30b_a3b();
    let cfg = ServeCfg {
        slots: 4,
        token_budget: 16,
        prefill_chunk: Some(16),
        seed: 7,
        ..ServeCfg::default()
    };
    // The iteration stream: a chunked-prefill ramp (full token budget),
    // then steady-state decode (one token per slot). Token counts
    // repeat, so QKV memoizes within a pass; routings re-seed per
    // iteration, so MoE memoizes only across passes — exactly the
    // serving driver's hit profile.
    let iters: Vec<u32> = (0..16u32)
        .map(|i| {
            if i < 4 {
                cfg.token_budget as u32
            } else {
                cfg.slots as u32
            }
        })
        .collect();

    let sim_cfg = SimConfig::default();
    // Attention plan provisioned for the longest bound context.
    let max_ctx = 64 + 4 * iters.len() as u32;
    let attn_cfg = AttentionCfg::new(model.clone(), ParallelStrategy::StaticInterleaved);
    let envelope = KvTrace {
        lengths: vec![max_ctx; cfg.slots],
    };
    let (attn_graph, attn_ports) =
        attention_graph_with_ports(&attn_cfg, &envelope).expect("attention graph");
    let attn_plan = SimPlan::new(attn_graph, sim_cfg.clone()).expect("attention plan");
    // MoE plan provisioned for the full token budget.
    let moe_cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 });
    let build = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: cfg.token_budget,
        skew: cfg.skew,
        seed: cfg.seed,
    });
    let (moe_graph, moe_ports) = moe_graph_with_ports(&moe_cfg, &build).expect("moe graph");
    let moe_sim_cfg = moe_sim_config();
    let moe_plan = SimPlan::new(moe_graph, moe_sim_cfg.clone()).expect("moe plan");
    let moe_key = plan_content_key(0xF19E_5E9F, &moe_sim_cfg);

    let reports = ReportCache::new();
    let phases = ["qkv", "attention", "moe"];
    for pass in ["cold", "warm"] {
        let mut rows: BTreeMap<&str, PhaseRow> = BTreeMap::new();
        for (i, &tokens) in iters.iter().enumerate() {
            // QKV: no rebindable sources — the content key is the whole
            // identity.
            let t0 = Instant::now();
            let key = plan_content_key(qkv_fingerprint(&model, tokens as usize), &sim_cfg);
            let qkv = reports
                .replay_or_run(key, &RunBinding::new(), None, &mut || {
                    SimPlan::new(qkv_graph(&model, tokens as usize)?, sim_cfg.clone())?.run()
                })
                .expect("qkv phase");
            rows.entry("qkv").or_default().absorb(
                qkv.report.total_fires(),
                qkv.resolution,
                t0.elapsed().as_nanos() as u64,
            );
            // Attention: slot contexts grow with the decode — always
            // simulated, never cached.
            let t0 = Instant::now();
            let kv = KvTrace {
                lengths: vec![64 + 4 * i as u32; cfg.slots],
            };
            let attn = attn_plan
                .run_bound(&bind_attention(&attn_cfg, &attn_ports, &kv))
                .expect("attention phase");
            rows.entry("attention").or_default().absorb(
                attn.total_fires(),
                Resolution::Simulated,
                t0.elapsed().as_nanos() as u64,
            );
            // MoE: per-iteration routing through the report cache.
            let t0 = Instant::now();
            let routing: RoutingTrace = iteration_routing(&model, &cfg, i as u32, tokens as usize);
            let moe_bind = bind_moe(&moe_ports, model.hidden, &routing);
            let moe = reports
                .replay_or_run(moe_key, &moe_bind, None, &mut || {
                    moe_plan.run_bound(&moe_bind)
                })
                .expect("moe phase");
            rows.entry("moe").or_default().absorb(
                moe.report.total_fires(),
                moe.resolution,
                t0.elapsed().as_nanos() as u64,
            );
        }
        if json {
            let cells: Vec<String> = phases
                .iter()
                .map(|p| {
                    let r = &rows[p];
                    format!(
                        "{{\"phase\":\"{p}\",\"requests\":{},\"hits\":{},\
                         \"engine_runs\":{},\"engine_fires\":{},\
                         \"logical_fires\":{},\"wall_ms\":{:.2}}}",
                        r.requests,
                        r.hits,
                        r.engine_runs,
                        r.engine_fires,
                        r.logical_fires,
                        r.wall_ns as f64 / 1e6,
                    )
                })
                .collect();
            println!(
                "{{\"mode\":\"serve_profile\",\"pass\":\"{pass}\",\"iterations\":{},\
                 \"phases\":[{}]}}",
                iters.len(),
                cells.join(","),
            );
        } else {
            println!("== serve profile, {pass} pass ({} iterations)", iters.len());
            println!(
                "  {:>10} {:>9} {:>6} {:>12} {:>13} {:>14} {:>9}",
                "phase",
                "requests",
                "hits",
                "engine_runs",
                "engine_fires",
                "logical_fires",
                "wall(ms)"
            );
            for p in phases {
                let r = &rows[p];
                println!(
                    "  {p:>10} {:>9} {:>6} {:>12} {:>13} {:>14} {:>9.2}",
                    r.requests,
                    r.hits,
                    r.engine_runs,
                    r.engine_fires,
                    r.logical_fires,
                    r.wall_ns as f64 / 1e6,
                );
            }
        }
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if std::env::args().any(|a| a == "--serve") {
        serve_profile(json);
        return;
    }
    let topk: usize = std::env::var("TOPK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let model = ModelConfig::qwen3_30b_a3b();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 64,
        skew: 0.8,
        seed: 7,
    });
    let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 });
    for (shards, horizon_step) in [(1usize, 64u64), (0, 64), (0, 1024)] {
        let graph = moe_graph(&cfg, &trace).expect("moe graph");
        let names: Vec<String> = graph
            .nodes()
            .iter()
            .map(|n| n.op.name().to_string())
            .collect();
        // Captured before the graph moves into the plan: which compiled
        // executor variant each operator dispatches to.
        let kinds: Vec<&'static str> = graph.nodes().iter().map(|n| compiled_kind(&n.op)).collect();
        let t0 = Instant::now();
        let report = SimPlan::new(
            graph,
            SimConfig {
                shards,
                horizon_step,
                profile_fires: true,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let mut ops: BTreeMap<&str, OpRow> = BTreeMap::new();
        for (i, s) in report.node_stats.iter().enumerate() {
            let e = ops.entry(names[i].as_str()).or_default();
            e.dispatch = kinds[i];
            e.fires += s.fires;
            e.idle += s.idle_fires;
            e.wall_ns += s.wall_ns;
            e.nodes += 1;
            e.tokens += s.values_in;
        }
        let mut rows: Vec<_> = ops.into_iter().collect();
        // Top K by wall: the measured cost, not the fire count, names the
        // operator to optimize.
        rows.sort_by_key(|(_, r)| std::cmp::Reverse(r.wall_ns));
        let shown = if topk == 0 {
            rows.len()
        } else {
            topk.min(rows.len())
        };
        if json {
            let ops_json: Vec<String> = rows[..shown]
                .iter()
                .map(|(op, r)| {
                    format!(
                        "{{\"op\":\"{op}\",\"dispatch\":\"{}\",\"nodes\":{},\"fires\":{},\
                         \"idle\":{},\"tokens_in\":{},\"wall_ms\":{:.2}}}",
                        r.dispatch,
                        r.nodes,
                        r.fires,
                        r.idle,
                        r.tokens,
                        r.wall_ns as f64 / 1e6,
                    )
                })
                .collect();
            println!(
                "{{\"shards_cfg\":{shards},\"horizon_step\":{horizon_step},\"shards\":{},\
                 \"cycles\":{},\"rounds\":{},\"fires\":{},\"idle_fires\":{},\
                 \"chan_tokens\":{},\"chan_runs\":{},\"wall_ms\":{wall:.1},\"ops\":[{}]}}",
                report.shards,
                report.cycles,
                report.rounds,
                report.total_fires(),
                report.idle_fires(),
                report.chan_tokens,
                report.chan_runs,
                ops_json.join(","),
            );
        } else {
            println!(
                "== shards={shards} hstep={horizon_step} -> {} shards, cycles {}, rounds {}, \
                 fires {}, idle {}, sub_rounds {}, solo {}, elided {}, dedup {}, \
                 chan {} tokens / {} runs ({:.1}x), wall {wall:.0}ms",
                report.shards,
                report.cycles,
                report.rounds,
                report.total_fires(),
                report.idle_fires(),
                report.sched.sub_rounds,
                report.sched.solo_runs,
                report.sched.elided_runs,
                report.sched.wake_dedup,
                report.chan_tokens,
                report.chan_runs,
                report.chan_tokens as f64 / report.chan_runs.max(1) as f64,
            );
            println!(
                "  {:>22} {:>13} {:>6} {:>10} {:>10} {:>11} {:>9}",
                "op (top-K by wall)", "dispatch", "nodes", "fires", "idle", "tokens_in", "wall(ms)"
            );
            for (op, r) in &rows[..shown] {
                println!(
                    "  {op:>22} {:>13} {:>6} {:>10} {:>10} {:>11} {:>9.2}",
                    r.dispatch,
                    r.nodes,
                    r.fires,
                    r.idle,
                    r.tokens,
                    r.wall_ns as f64 / 1e6,
                );
            }
        }
    }
}
