//! Engine-overhead profiler: per-operator fire breakdown, mono vs
//! sharded, across horizon-step settings.
//!
//! The companion tool to `sched_bench` for *diagnosing* scheduler
//! overhead rather than guarding it: it attributes fires and idle fires
//! to operator kinds so a regression flagged by the fire budget can be
//! localized. The horizon-step sweep shows how sensitive the schedule
//! still is to window granularity (with barrier elision it should be
//! nearly flat).
//!
//! Run with: `cargo run --release -p step-bench --bin fire_profile`

use std::collections::BTreeMap;
use std::time::Instant;
use step_models::ModelConfig;
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_sim::{SimConfig, Simulation};
use step_traces::{RoutingConfig, expert_routing};

fn main() {
    let model = ModelConfig::qwen3_30b_a3b();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 64,
        skew: 0.8,
        seed: 7,
    });
    let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 });
    for (shards, horizon_step) in [(1usize, 64u64), (0, 64), (0, 1024)] {
        let graph = moe_graph(&cfg, &trace).expect("moe graph");
        let names: Vec<String> = graph
            .nodes()
            .iter()
            .map(|n| n.op.name().to_string())
            .collect();
        let t0 = Instant::now();
        let report = Simulation::new(
            graph,
            SimConfig {
                shards,
                horizon_step,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let mut fires: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for (i, s) in report.node_stats.iter().enumerate() {
            let e = fires.entry(names[i].as_str()).or_default();
            e.0 += s.fires;
            e.1 += s.idle_fires;
            e.2 += 1;
        }
        println!(
            "== shards={shards} hstep={horizon_step} -> {} shards, cycles {}, rounds {}, \
             fires {}, idle {}, sub_rounds {}, solo {}, elided {}, dedup {}, wall {wall:.0}ms",
            report.shards,
            report.cycles,
            report.rounds,
            report.total_fires(),
            report.idle_fires(),
            report.sched.sub_rounds,
            report.sched.solo_runs,
            report.sched.elided_runs,
            report.sched.wake_dedup,
        );
        let mut rows: Vec<_> = fires.into_iter().collect();
        rows.sort_by_key(|(_, (f, _, _))| std::cmp::Reverse(*f));
        for (op, (f, idle, n)) in rows {
            println!("  {op:>22} x{n:<5} fires {f:>9}  idle {idle:>9}");
        }
    }
}
