//! Engine-overhead profiler: per-operator fire and wall-clock breakdown,
//! mono vs sharded, across horizon-step settings.
//!
//! The companion tool to `sched_bench` for *diagnosing* scheduler and
//! transport overhead rather than guarding it: it attributes fires, idle
//! fires, and — with `SimConfig::profile_fires` — host wall-clock to
//! operator kinds, so a regression flagged by the fire or channel-op
//! budget can be localized to the operator whose run-length rewrite
//! misbehaves. The horizon-step sweep shows how sensitive the schedule
//! still is to window granularity (with barrier elision it should be
//! nearly flat).
//!
//! Run with: `cargo run --release -p step-bench --bin fire_profile`
//! `--json` emits one JSON object per configuration (run summary plus
//! the per-op table); `TOPK=n` bounds the table to the n operator kinds
//! with the largest wall share (default 10, 0 = all). Each row carries
//! a `dispatch` column: the compiled executor variant
//! ([`step_sim::nodes::CompiledNode`] kind) the operator lowers to, so
//! wall time attributes to the static-dispatch arm that actually runs.

use std::collections::BTreeMap;
use std::time::Instant;
use step_models::ModelConfig;
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_sim::nodes::compiled_kind;
use step_sim::{SimConfig, SimPlan};
use step_traces::{RoutingConfig, expert_routing};

#[derive(Default)]
struct OpRow {
    dispatch: &'static str,
    fires: u64,
    idle: u64,
    wall_ns: u64,
    nodes: u64,
    tokens: u64,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let topk: usize = std::env::var("TOPK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let model = ModelConfig::qwen3_30b_a3b();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 64,
        skew: 0.8,
        seed: 7,
    });
    let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 });
    for (shards, horizon_step) in [(1usize, 64u64), (0, 64), (0, 1024)] {
        let graph = moe_graph(&cfg, &trace).expect("moe graph");
        let names: Vec<String> = graph
            .nodes()
            .iter()
            .map(|n| n.op.name().to_string())
            .collect();
        // Captured before the graph moves into the plan: which compiled
        // executor variant each operator dispatches to.
        let kinds: Vec<&'static str> = graph.nodes().iter().map(|n| compiled_kind(&n.op)).collect();
        let t0 = Instant::now();
        let report = SimPlan::new(
            graph,
            SimConfig {
                shards,
                horizon_step,
                profile_fires: true,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let mut ops: BTreeMap<&str, OpRow> = BTreeMap::new();
        for (i, s) in report.node_stats.iter().enumerate() {
            let e = ops.entry(names[i].as_str()).or_default();
            e.dispatch = kinds[i];
            e.fires += s.fires;
            e.idle += s.idle_fires;
            e.wall_ns += s.wall_ns;
            e.nodes += 1;
            e.tokens += s.values_in;
        }
        let mut rows: Vec<_> = ops.into_iter().collect();
        // Top K by wall: the measured cost, not the fire count, names the
        // operator to optimize.
        rows.sort_by_key(|(_, r)| std::cmp::Reverse(r.wall_ns));
        let shown = if topk == 0 {
            rows.len()
        } else {
            topk.min(rows.len())
        };
        if json {
            let ops_json: Vec<String> = rows[..shown]
                .iter()
                .map(|(op, r)| {
                    format!(
                        "{{\"op\":\"{op}\",\"dispatch\":\"{}\",\"nodes\":{},\"fires\":{},\
                         \"idle\":{},\"tokens_in\":{},\"wall_ms\":{:.2}}}",
                        r.dispatch,
                        r.nodes,
                        r.fires,
                        r.idle,
                        r.tokens,
                        r.wall_ns as f64 / 1e6,
                    )
                })
                .collect();
            println!(
                "{{\"shards_cfg\":{shards},\"horizon_step\":{horizon_step},\"shards\":{},\
                 \"cycles\":{},\"rounds\":{},\"fires\":{},\"idle_fires\":{},\
                 \"chan_tokens\":{},\"chan_runs\":{},\"wall_ms\":{wall:.1},\"ops\":[{}]}}",
                report.shards,
                report.cycles,
                report.rounds,
                report.total_fires(),
                report.idle_fires(),
                report.chan_tokens,
                report.chan_runs,
                ops_json.join(","),
            );
        } else {
            println!(
                "== shards={shards} hstep={horizon_step} -> {} shards, cycles {}, rounds {}, \
                 fires {}, idle {}, sub_rounds {}, solo {}, elided {}, dedup {}, \
                 chan {} tokens / {} runs ({:.1}x), wall {wall:.0}ms",
                report.shards,
                report.cycles,
                report.rounds,
                report.total_fires(),
                report.idle_fires(),
                report.sched.sub_rounds,
                report.sched.solo_runs,
                report.sched.elided_runs,
                report.sched.wake_dedup,
                report.chan_tokens,
                report.chan_runs,
                report.chan_tokens as f64 / report.chan_runs.max(1) as f64,
            );
            println!(
                "  {:>22} {:>13} {:>6} {:>10} {:>10} {:>11} {:>9}",
                "op (top-K by wall)", "dispatch", "nodes", "fires", "idle", "tokens_in", "wall(ms)"
            );
            for (op, r) in &rows[..shown] {
                println!(
                    "  {op:>22} {:>13} {:>6} {:>10} {:>10} {:>11} {:>9.2}",
                    r.dispatch,
                    r.nodes,
                    r.fires,
                    r.idle,
                    r.tokens,
                    r.wall_ns as f64 / 1e6,
                );
            }
        }
    }
}
