//! Regenerates Fig 8 (simulator validation against the fine-grained
//! reference).
fn main() {
    let (_, r) = step_bench::experiments::fig8();
    assert!(r > 0.9, "validation correlation regressed: {r}");
}
