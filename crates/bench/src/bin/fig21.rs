//! Regenerates Fig 21 (parallelization ablation).
fn main() {
    step_bench::experiments::fig21();
}
