//! Regenerates Fig 1 (SDA vs GPU effective bandwidth).
fn main() {
    step_bench::experiments::fig1();
}
