//! Regenerates Fig 12 (configuration time-multiplexing: utilization and
//! cycles under static and dynamic tiling). Sweep parameters live in
//! `step_bench::experiments::fig12`.
fn main() {
    step_bench::experiments::fig12();
}
