//! Regenerates Fig 12 (configuration time-multiplexing: utilization and
//! cycles under static and dynamic tiling).
use step_bench::experiments::{report_timeshare, timeshare_sweep};
use step_models::moe::Tiling;
fn main() {
    let stat = timeshare_sweep(Tiling::Static { tile: 32 }, 7);
    report_timeshare("fig12_static_tiling", &stat);
    let dynamic = timeshare_sweep(Tiling::Dynamic, 7);
    report_timeshare("fig12_dynamic_tiling", &dynamic);
}
