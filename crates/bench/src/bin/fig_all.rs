//! Runs the full experiment suite (every table and figure).
use step_bench::experiments as ex;
use step_models::ModelConfig;
use step_models::moe::Tiling;

fn main() {
    ex::landscape();
    ex::fig1();
    ex::fig8();
    let m9 = ex::tiling_sweep(ModelConfig::mixtral_8x7b(), 64, &[8, 16, 32, 64], 7);
    ex::report_tiling("fig9_mixtral_b64", &m9);
    let q9 = ex::tiling_sweep(ModelConfig::qwen3_30b_a3b(), 64, &[8, 16, 32, 64], 7);
    ex::report_tiling("fig9_qwen_b64", &q9);
    let m10 = ex::tiling_sweep(ModelConfig::mixtral_8x7b(), 1024, &[16, 64, 256, 1024], 7);
    ex::report_tiling("fig10_mixtral_b1024", &m10);
    let q10 = ex::tiling_sweep(ModelConfig::qwen3_30b_a3b(), 1024, &[16, 64, 256, 1024], 7);
    ex::report_tiling("fig10_qwen_b1024", &q10);
    ex::report_timeshare(
        "fig12_static_tiling",
        &ex::timeshare_sweep(Tiling::Static { tile: 32 }, 7),
    );
    ex::report_timeshare(
        "fig12_dynamic_tiling",
        &ex::timeshare_sweep(Tiling::Dynamic, 7),
    );
    ex::fig14();
    ex::fig15();
    ex::fig17();
    ex::fig21();
}
