//! Runs the full experiment suite (every table and figure). Each
//! figure's sweep parameters live in exactly one place — its
//! `step_bench::experiments` entry point — shared with the per-figure
//! binaries.
use step_bench::experiments as ex;

fn main() {
    ex::landscape();
    ex::fig1();
    ex::fig8();
    ex::fig9();
    ex::fig10();
    ex::fig12();
    ex::fig14();
    ex::fig15();
    ex::fig17();
    ex::fig21();
}
