//! Scheduler microbenchmark: engine overhead on the MoE graph.
//!
//! Reports scheduler rounds, node fires, and wall-clock for the MoE layer
//! at a few batch sizes — the workload whose many-expert graphs stress
//! the engine most. Used to track the event-driven scheduler against the
//! round-robin baseline recorded in CHANGES.md.
//!
//! Run with: `cargo run --release -p step-bench --bin sched_bench`

use std::time::Instant;
use step_models::ModelConfig;
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_sim::{SimConfig, Simulation};
use step_traces::{RoutingConfig, expert_routing};

fn main() {
    let model = ModelConfig::qwen3_30b_a3b();
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "batch", "tiling", "cycles", "rounds", "fires", "wall (ms)"
    );
    for batch in [16usize, 64] {
        let trace = expert_routing(&RoutingConfig {
            experts: model.experts,
            top_k: model.top_k,
            batch,
            skew: 0.8,
            seed: 7,
        });
        for tiling in [Tiling::Static { tile: 8 }, Tiling::Dynamic] {
            let cfg = MoeCfg::new(model.clone(), tiling);
            let graph = moe_graph(&cfg, &trace).expect("moe graph");
            let t0 = Instant::now();
            let report = Simulation::new(graph, SimConfig::default())
                .expect("simulation")
                .run()
                .expect("run");
            let wall = t0.elapsed().as_secs_f64() * 1e3;
            println!(
                "{batch:>6} {tiling:>10} {:>12} {:>12} {:>12} {wall:>10.1}",
                report.cycles,
                report.rounds,
                report.total_fires()
            );
        }
    }
}
