//! Scheduler microbenchmark: engine overhead and parallel scaling on the
//! MoE graph.
//!
//! Reports cycles, scheduler rounds, node fires, coordination counters,
//! and wall-clock for the MoE layer at a few batch sizes — the workload
//! whose many-expert graphs stress the engine most — first on the
//! monolithic (single-shard) engine, then on the sharded engine across a
//! thread-count axis. The sharded rows must agree bit-for-bit on cycles
//! and off-chip traffic at every thread count (the determinism contract);
//! the bench asserts it.
//!
//! The bench is also the perf-regression guard for the engine: on every
//! config it asserts that sharded single-thread total fires stay within
//! [`FIRE_BUDGET`] of the monolithic engine's, and on the heaviest
//! config (batch 64 / static 8) that fires and channel run operations
//! stay under pinned absolute budgets ([`B64_STATIC_FIRES`],
//! [`B64_STATIC_CHAN_RUNS`]) — the run-length transport's compression
//! cannot silently regress. All of these are pure functions of the plan;
//! unlike wall-clock they can never flake, so CI runs them as hard
//! checks.
//!
//! Run with: `cargo run --release -p step-bench --bin sched_bench`
//! Optionally `THREADS="1 2 4 8"` to pick the thread axis, and `--json`
//! to emit one JSON object per run (machine-readable counters) instead
//! of the table; `--json` also writes the rows to `BENCH_sched.json`
//! (path override: `BENCH_SCHED_OUT`), the perf-trajectory artifact CI
//! uploads.
//!
//! `--reuse N` appends the plan-reuse section: the heaviest config's
//! `SimPlan` is frozen once into a single-worker
//! [`step_bench::SweepService`]'s plan cache and run `N` times through
//! it (compiled executors, the worker's pooled state reset in place),
//! reporting the graph-build / partition+topology / per-run wall split,
//! the amortization ratio (build+run divided by the amortized per-run
//! wall), and the same runs on the dynamic-dispatch path
//! (`compiled: false`, fresh state per run) as `run_ms_*_dyn` — the
//! compiled-vs-dyn split. Counters of every reused run are held to the
//! same pinned budgets as the fresh-build rows, must be bit-identical
//! across runs *and* across dispatch paths, every pooled rerun must
//! report `run_allocs == 0` / `pool_resets == 1` (the alloc-free
//! guard — a counter, so it cannot flake), and the cache counters must
//! end at exactly `{hits: N, misses: 1, builds: 1}` — wall-clock is
//! reported but never asserted.

use std::time::Instant;
use step_bench::{CacheStats, SimPoint, SweepService, SweepUnit};
use step_core::StepError;
use step_models::ModelConfig;
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_sim::{Fingerprint, SimConfig, SimPlan, SimReport};
use step_traces::{RoutingConfig, RoutingTrace, expert_routing};

/// Maximum allowed ratio of sharded single-thread total fires to
/// monolithic total fires, per config. The two-phase off-chip protocol
/// once inflated this to 2.4x; barrier elision and wake dedup hold it
/// well below 1 (the deduped ready set out-schedules the legacy waves).
const FIRE_BUDGET: f64 = 1.5;

/// Counters-only perf budgets for the heaviest config (batch 64, static
/// tile 8), pinned ~5% above the run-length transport's measured values
/// (sharded: 76,202 fires / 162,654 channel run ops for 728,988 tokens;
/// mono: 452,819 / 307,378). Fires and channel ops are pure functions of
/// the plan — unlike wall-clock they cannot flake — so CI fails hard if
/// a regression undoes the bulk-transport or scheduling work.
const B64_STATIC_FIRES: (u64, u64) = (476_000, 80_000); // (mono, sharded)
const B64_STATIC_CHAN_RUNS: (u64, u64) = (323_000, 171_000);

fn run_once(cfg: &MoeCfg, trace: &RoutingTrace, sim_cfg: SimConfig) -> (SimReport, f64) {
    let graph = moe_graph(cfg, trace).expect("moe graph");
    let t0 = Instant::now();
    let report = SimPlan::new(graph, sim_cfg)
        .expect("plan")
        .run()
        .expect("run");
    (report, t0.elapsed().as_secs_f64() * 1e3)
}

/// The plan-reuse section (`--reuse N`): freeze the heaviest config's
/// plan once into a single-worker [`SweepService`]'s cache, run `N`
/// points against it, and report the build-vs-run wall split. Returns
/// the JSON line for the artifact.
///
/// The cache is pre-warmed with an explicit checkout of the pre-built
/// graph (isolating partition/topology/compile time as `plan_ms`), so
/// the `N` submitted points are all hits — their build closures *fail*,
/// which turns "warm points never rebuild" into a hard assertion rather
/// than a counter we merely read. The single worker keeps one `RunPool`
/// per plan, so every rerun must report `run_allocs == 0` /
/// `pool_resets == 1` (the alloc-free guard — a counter, so it cannot
/// flake), and the cache must end at exactly
/// `{hits: N, misses: 1, builds: 1}` — the counters CI pins.
fn reuse_section(json: bool, runs: usize) -> String {
    let model = ModelConfig::qwen3_30b_a3b();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 64,
        skew: 0.8,
        seed: 7,
    });
    let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 });
    let ms = |t0: Instant| t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let graph = moe_graph(&cfg, &trace).expect("moe graph");
    let graph_ms = ms(t0);
    // Same fingerprint scheme as the experiments' sweep points: the
    // builder hash covers everything `moe_graph` consumed.
    let builder = {
        let mut fp = Fingerprint::new("bench.moe");
        fp.push_debug(&cfg).push_debug(&trace);
        fp.finish()
    };
    let svc = SweepService::new(1);
    let sim_cfg = SimConfig::default();
    let t0 = Instant::now();
    let mut prebuilt = Some(graph.clone());
    svc.cache()
        .checkout(builder, &sim_cfg, &mut || {
            Ok(prebuilt.take().expect("pre-warm builds once"))
        })
        .expect("plan");
    let plan_ms = ms(t0);
    // Compiled + pooled, via the service: the steady-state path. Reruns
    // reset the worker's parked state in place; the counters prove it.
    let units: Vec<SweepUnit> = (0..runs)
        .map(|k| {
            SweepUnit::Sim(SimPoint {
                label: format!("reuse run {k}"),
                builder,
                cfg: sim_cfg.clone(),
                build: Box::new(|| {
                    Err(StepError::Exec(
                        "reuse point missed the pre-warmed plan cache".into(),
                    ))
                }),
                binding: None,
            })
        })
        .collect();
    // A failed reuse point exits nonzero naming the failing sweep point.
    let results = svc.run_all(units).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    assert_eq!(
        svc.cache().stats(),
        CacheStats {
            hits: runs as u64,
            misses: 1,
            builds: 1,
            failures: 0
        },
        "reuse section cache counters moved"
    );
    let mut walls: Vec<f64> = Vec::with_capacity(runs);
    let mut first: Option<SimReport> = None;
    let (mut run_allocs, mut pool_resets) = (0u64, 0u64);
    for (k, res) in results.iter().enumerate() {
        let r = res.report.sim().expect("reuse points are sim units");
        walls.push(res.wall_ms);
        run_allocs += r.run_allocs;
        pool_resets += r.pool_resets;
        if k > 0 {
            // The alloc-free guard: after warmup, every rerun reuses the
            // parked state. A counter, not a wall-clock — cannot flake.
            assert_eq!(
                (r.run_allocs, r.pool_resets),
                (0, 1),
                "pooled rerun {k} rebuilt state instead of resetting in place"
            );
        }
        match &first {
            None => {
                // Counters-only budget: a reused run answers to the same
                // pinned budgets as a fresh build of the same config.
                guard_counters("reused", r, B64_STATIC_FIRES.1, B64_STATIC_CHAN_RUNS.1);
                first = Some(r.clone());
            }
            Some(w) => {
                assert_eq!(
                    (r.cycles, r.offchip_traffic, r.total_fires(), r.chan_runs),
                    (w.cycles, w.offchip_traffic, w.total_fires(), w.chan_runs),
                    "reused-plan run {k} diverged from run 0"
                );
            }
        }
    }
    let r = first.expect("at least one run");
    // Dynamic-dispatch reference: same plan semantics, boxed `dyn`
    // executors, fresh state per run — the compiled-vs-dyn wall split.
    let dyn_plan = SimPlan::new(
        graph,
        SimConfig {
            compiled: false,
            ..SimConfig::default()
        },
    )
    .expect("dyn plan");
    let mut dyn_walls: Vec<f64> = Vec::with_capacity(runs);
    for k in 0..runs {
        let t0 = Instant::now();
        let d = dyn_plan.run().expect("dyn run");
        dyn_walls.push(ms(t0));
        assert_eq!(
            (d.cycles, d.offchip_traffic, d.total_fires(), d.chan_runs),
            (r.cycles, r.offchip_traffic, r.total_fires(), r.chan_runs),
            "dyn-dispatch run {k} diverged from the compiled pooled runs"
        );
    }
    let mean = |w: &[f64]| w.iter().sum::<f64>() / w.len() as f64;
    let min = |w: &[f64]| w.iter().cloned().fold(f64::INFINITY, f64::min);
    let (run_mean, run_min) = (mean(&walls), min(&walls));
    let (dyn_mean, dyn_min) = (mean(&dyn_walls), min(&dyn_walls));
    let build_ms = graph_ms + plan_ms;
    let build_plus_run = build_ms + walls[0];
    let amort = build_plus_run / run_mean.max(1e-9);
    let stats = svc.cache().stats();
    let line = format!(
        "{{\"mode\":\"reuse\",\"batch\":64,\"tiling\":\"static(8)\",\"runs\":{runs},\
         \"graph_ms\":{graph_ms:.1},\"plan_ms\":{plan_ms:.1},\"run_ms_first\":{:.1},\
         \"run_ms_mean\":{run_mean:.1},\"run_ms_min\":{run_min:.1},\
         \"run_ms_mean_dyn\":{dyn_mean:.1},\"run_ms_min_dyn\":{dyn_min:.1},\
         \"run_allocs\":{run_allocs},\"pool_resets\":{pool_resets},\
         \"cache_hits\":{},\"cache_misses\":{},\"cache_builds\":{},\
         \"build_plus_run_ms\":{build_plus_run:.1},\"amortization\":{amort:.2},\
         \"cycles\":{},\"fires\":{},\"chan_runs\":{}}}",
        walls[0],
        stats.hits,
        stats.misses,
        stats.builds,
        r.cycles,
        r.total_fires(),
        r.chan_runs,
    );
    if json {
        println!("{line}");
    } else {
        println!(
            "\nplan reuse (batch 64 / static 8, {runs} runs via 1-worker sweep service): graph {graph_ms:.1}ms + partition/topology/compile {plan_ms:.1}ms, pooled runs mean {run_mean:.1}ms (min {run_min:.1}ms)"
        );
        println!(
            "dyn-dispatch reference: mean {dyn_mean:.1}ms (min {dyn_min:.1}ms); \
             pool: {run_allocs} state build(s), {pool_resets} in-place reset(s); \
             cache: {} hit(s), {} miss(es), {} build(s)",
            stats.hits, stats.misses, stats.builds
        );
        println!(
            "build+run {build_plus_run:.1}ms vs amortized per-run {run_mean:.1}ms: {amort:.2}x"
        );
        println!(
            "reused runs bit-identical, alloc-free, cache-served, and within counter budgets: ok"
        );
    }
    line
}

fn json_line(
    batch: usize,
    tiling: &str,
    mode: &str,
    threads: usize,
    r: &SimReport,
    wall: f64,
) -> String {
    format!(
        "{{\"batch\":{batch},\"tiling\":\"{tiling}\",\"mode\":\"{mode}\",\"threads\":{threads},\
         \"shards\":{},\"cycles\":{},\"rounds\":{},\"fires\":{},\"idle_fires\":{},\
         \"sub_rounds\":{},\"shard_runs\":{},\"solo_runs\":{},\"elided_runs\":{},\
         \"wake_dedup\":{},\"chan_tokens\":{},\"chan_runs\":{},\"tokens_per_sec\":{:.0},\
         \"wall_ms\":{wall:.1}}}",
        r.shards,
        r.cycles,
        r.rounds,
        r.total_fires(),
        r.idle_fires(),
        r.sched.sub_rounds,
        r.sched.shard_runs,
        r.sched.solo_runs,
        r.sched.elided_runs,
        r.sched.wake_dedup,
        r.chan_tokens,
        r.chan_runs,
        r.chan_tokens as f64 / (wall / 1e3).max(1e-9),
    )
}

/// Counters-only regression guard on the heaviest config: wall-time-free,
/// so stable in CI.
fn guard_counters(mode: &str, r: &SimReport, fires_budget: u64, chan_budget: u64) {
    assert!(
        r.total_fires() <= fires_budget,
        "{mode} batch64/static8 fires regressed: {} > budget {fires_budget}",
        r.total_fires(),
    );
    assert!(
        r.chan_runs <= chan_budget,
        "{mode} batch64/static8 channel run ops regressed: {} > budget {chan_budget}",
        r.chan_runs,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let reuse: Option<usize> = args
        .iter()
        .position(|a| a == "--reuse")
        .map(|i| args.get(i + 1).and_then(|n| n.parse().ok()).unwrap_or(3));
    let model = ModelConfig::qwen3_30b_a3b();
    let threads_axis: Vec<usize> = std::env::var("THREADS")
        .map(|s| {
            s.split_whitespace()
                .map(|t| t.parse().expect("THREADS entries are integers"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 2, 4, 8]);
    // `--json` also writes the rows to a JSON-lines artifact (the perf
    // trajectory CI uploads; override the path with BENCH_SCHED_OUT).
    let mut artifact: Vec<String> = Vec::new();
    if !json {
        println!(
            "{:>6} {:>10} {:>6} {:>8} {:>12} {:>12} {:>12} {:>11} {:>11} {:>10} {:>8}",
            "batch",
            "tiling",
            "mode",
            "threads",
            "cycles",
            "rounds",
            "fires",
            "sub_rounds",
            "wake_dedup",
            "wall (ms)",
            "speedup"
        );
    }
    for batch in [16usize, 64] {
        let trace = expert_routing(&RoutingConfig {
            experts: model.experts,
            top_k: model.top_k,
            batch,
            skew: 0.8,
            seed: 7,
        });
        for tiling in [Tiling::Static { tile: 8 }, Tiling::Dynamic] {
            let cfg = MoeCfg::new(model.clone(), tiling);
            let tiling_name = format!("{tiling}");
            // Monolithic reference (the legacy engine, bit for bit).
            let (mono, mono_wall) = run_once(
                &cfg,
                &trace,
                SimConfig {
                    shards: 1,
                    ..SimConfig::default()
                },
            );
            if batch == 64 && matches!(tiling, Tiling::Static { .. }) {
                guard_counters("mono", &mono, B64_STATIC_FIRES.0, B64_STATIC_CHAN_RUNS.0);
            }
            if json {
                let line = json_line(batch, &tiling_name, "mono", 1, &mono, mono_wall);
                println!("{line}");
                artifact.push(line);
            } else {
                println!(
                    "{batch:>6} {tiling:>10} {:>6} {:>8} {:>12} {:>12} {:>12} {:>11} {:>11} {mono_wall:>10.1} {:>8}",
                    "mono",
                    1,
                    mono.cycles,
                    mono.rounds,
                    mono.total_fires(),
                    mono.sched.sub_rounds,
                    mono.sched.wake_dedup,
                    "-"
                );
            }
            // Sharded engine across the thread axis: identical results
            // required at every thread count.
            let mut base: Option<(u64, u64, f64)> = None;
            for &threads in &threads_axis {
                let (r, wall) = run_once(
                    &cfg,
                    &trace,
                    SimConfig {
                        threads,
                        ..SimConfig::default()
                    },
                );
                match base {
                    None => {
                        base = Some((r.cycles, r.offchip_traffic, wall));
                        // Perf-regression guard: sharded fire inflation
                        // over the monolithic engine must stay bounded.
                        let ratio = r.total_fires() as f64 / mono.total_fires() as f64;
                        assert!(
                            ratio <= FIRE_BUDGET,
                            "fire budget blown on batch{batch}/{tiling_name}: \
                             sharded {} vs mono {} fires ({ratio:.2}x > {FIRE_BUDGET}x)",
                            r.total_fires(),
                            mono.total_fires(),
                        );
                        if batch == 64 && matches!(tiling, Tiling::Static { .. }) {
                            guard_counters(
                                "sharded",
                                &r,
                                B64_STATIC_FIRES.1,
                                B64_STATIC_CHAN_RUNS.1,
                            );
                        }
                    }
                    Some((c, t, _)) => {
                        assert_eq!(
                            (r.cycles, r.offchip_traffic),
                            (c, t),
                            "thread count changed results at threads={threads}"
                        );
                    }
                }
                let speedup = base.map(|(_, _, w)| w / wall).unwrap_or(1.0);
                if json {
                    let line = json_line(batch, &tiling_name, "sharded", threads, &r, wall);
                    println!("{line}");
                    artifact.push(line);
                } else {
                    println!(
                        "{batch:>6} {tiling:>10} {:>6} {threads:>8} {:>12} {:>12} {:>12} {:>11} {:>11} {wall:>10.1} {speedup:>7.2}x",
                        format!("x{}", r.shards),
                        r.cycles,
                        r.rounds,
                        r.total_fires(),
                        r.sched.sub_rounds,
                        r.sched.wake_dedup,
                    );
                }
            }
        }
    }
    if let Some(runs) = reuse {
        artifact.push(reuse_section(json, runs.max(1)));
    }
    if json {
        let path = std::env::var("BENCH_SCHED_OUT").unwrap_or_else(|_| "BENCH_sched.json".into());
        let mut body = artifact.join("\n");
        body.push('\n');
        std::fs::write(&path, body).expect("write bench artifact");
        eprintln!("wrote {path}");
    } else {
        println!("\nresults identical across all thread counts: ok");
        println!("sharded/mono fire ratio <= {FIRE_BUDGET} on every config: ok");
        println!("batch64/static8 fires and channel-op budgets: ok");
    }
}
