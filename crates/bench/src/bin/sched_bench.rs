//! Scheduler microbenchmark: engine overhead and parallel scaling on the
//! MoE graph.
//!
//! Reports cycles, scheduler rounds, node fires, and wall-clock for the
//! MoE layer at a few batch sizes — the workload whose many-expert graphs
//! stress the engine most — first on the monolithic (single-shard)
//! engine, then on the sharded engine across a thread-count axis. The
//! sharded rows must agree bit-for-bit on cycles and off-chip traffic at
//! every thread count (the determinism contract); the bench asserts it.
//!
//! Run with: `cargo run --release -p step-bench --bin sched_bench`
//! Optionally `THREADS="1 2 4 8"` to pick the thread axis.

use std::time::Instant;
use step_models::ModelConfig;
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_sim::{SimConfig, SimReport, Simulation};
use step_traces::{RoutingConfig, RoutingTrace, expert_routing};

fn run_once(cfg: &MoeCfg, trace: &RoutingTrace, sim_cfg: SimConfig) -> (SimReport, f64) {
    let graph = moe_graph(cfg, trace).expect("moe graph");
    let t0 = Instant::now();
    let report = Simulation::new(graph, sim_cfg)
        .expect("simulation")
        .run()
        .expect("run");
    (report, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let model = ModelConfig::qwen3_30b_a3b();
    let threads_axis: Vec<usize> = std::env::var("THREADS")
        .map(|s| {
            s.split_whitespace()
                .map(|t| t.parse().expect("THREADS entries are integers"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 2, 4, 8]);
    println!(
        "{:>6} {:>10} {:>6} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "batch", "tiling", "mode", "threads", "cycles", "rounds", "fires", "wall (ms)", "speedup"
    );
    for batch in [16usize, 64] {
        let trace = expert_routing(&RoutingConfig {
            experts: model.experts,
            top_k: model.top_k,
            batch,
            skew: 0.8,
            seed: 7,
        });
        for tiling in [Tiling::Static { tile: 8 }, Tiling::Dynamic] {
            let cfg = MoeCfg::new(model.clone(), tiling);
            // Monolithic reference (the legacy engine, bit for bit).
            let (mono, mono_wall) = run_once(
                &cfg,
                &trace,
                SimConfig {
                    shards: 1,
                    ..SimConfig::default()
                },
            );
            println!(
                "{batch:>6} {tiling:>10} {:>6} {:>8} {:>12} {:>12} {:>12} {mono_wall:>10.1} {:>8}",
                "mono",
                1,
                mono.cycles,
                mono.rounds,
                mono.total_fires(),
                "-"
            );
            // Sharded engine across the thread axis: identical results
            // required at every thread count.
            let mut base: Option<(u64, u64, f64)> = None;
            for &threads in &threads_axis {
                let (r, wall) = run_once(
                    &cfg,
                    &trace,
                    SimConfig {
                        threads,
                        ..SimConfig::default()
                    },
                );
                match base {
                    None => base = Some((r.cycles, r.offchip_traffic, wall)),
                    Some((c, t, _)) => {
                        assert_eq!(
                            (r.cycles, r.offchip_traffic),
                            (c, t),
                            "thread count changed results at threads={threads}"
                        );
                    }
                }
                let speedup = base.map(|(_, _, w)| w / wall).unwrap_or(1.0);
                println!(
                    "{batch:>6} {tiling:>10} {:>6} {threads:>8} {:>12} {:>12} {:>12} {wall:>10.1} {speedup:>7.2}x",
                    format!("x{}", r.shards),
                    r.cycles,
                    r.rounds,
                    r.total_fires(),
                );
            }
        }
    }
    println!("\nresults identical across all thread counts: ok");
}
