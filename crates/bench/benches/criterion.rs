//! Micro/meso benchmarks: one group per reproduced figure's core kernel,
//! plus simulator-infrastructure benchmarks. These measure *host*
//! performance of the harness; the figures themselves report simulated
//! cycles (see the fig* binaries).
//!
//! The build container has no crates.io access, so this is a plain
//! `harness = false` timing harness instead of Criterion: each benchmark
//! is warmed up once, then run for a fixed number of iterations with
//! median/min/max wall-clock reported. Pass a substring argument to run a
//! subset, e.g. `cargo bench -p step-bench -- fig9`.

use std::time::Instant;
use step_hdl::{RefConfig, simulate_swiglu};
use step_models::ModelConfig;
use step_models::attention::{AttentionCfg, ParallelStrategy, attention_graph};
use step_models::moe::{MoeCfg, Tiling, moe_graph};
use step_models::swiglu::{SwigluCfg, swiglu_graph};
use step_sim::{SimConfig, Simulation};
use step_traces::{KvTraceConfig, RoutingConfig, Variability, expert_routing, kv_lengths};

const ITERS: usize = 10;

fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    f(); // warm-up
    let mut times: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    println!(
        "{name:<40} median {:>9.3} ms  (min {:>9.3}, max {:>9.3}, n={ITERS})",
        times[times.len() / 2],
        times[0],
        times[times.len() - 1],
    );
}

fn small_model() -> ModelConfig {
    ModelConfig {
        name: "small",
        hidden: 128,
        moe_intermediate: 256,
        experts: 8,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 2,
    }
}

fn bench_fig8_validation(filter: &str) {
    let cfg = SwigluCfg::validation(32, 64);
    bench(filter, "fig8/step_sim_swiglu", || {
        Simulation::new(swiglu_graph(&cfg).unwrap(), SimConfig::validation())
            .unwrap()
            .run()
            .unwrap();
    });
    bench(filter, "fig8/reference_swiglu", || {
        simulate_swiglu(&cfg, &RefConfig::default());
    });
}

fn bench_fig9_tiling(filter: &str) {
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 32,
        skew: 0.8,
        seed: 7,
    });
    for (label, tiling) in [
        ("static8", Tiling::Static { tile: 8 }),
        ("dynamic", Tiling::Dynamic),
    ] {
        let cfg = MoeCfg::new(model.clone(), tiling);
        bench(filter, &format!("fig9/moe_{label}"), || {
            Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
                .unwrap()
                .run()
                .unwrap();
        });
    }
}

fn bench_fig12_timeshare(filter: &str) {
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 32,
        skew: 0.8,
        seed: 7,
    });
    let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 }).with_regions(2);
    bench(filter, "fig12/moe_timeshare_2regions", || {
        Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
    });
}

fn bench_fig14_attention(filter: &str) {
    let model = small_model();
    let kv = kv_lengths(&KvTraceConfig {
        batch: 32,
        variability: Variability::High,
        median_len: 384.0,
        max_len: 2048,
        seed: 13,
        ..KvTraceConfig::default()
    });
    for (label, strategy) in [
        ("interleave", ParallelStrategy::StaticInterleaved),
        ("dynamic", ParallelStrategy::Dynamic),
    ] {
        let cfg = AttentionCfg::new(model.clone(), strategy);
        bench(filter, &format!("fig14/attention_{label}"), || {
            Simulation::new(attention_graph(&cfg, &kv).unwrap(), SimConfig::default())
                .unwrap()
                .run()
                .unwrap();
        });
    }
}

fn main() {
    // `cargo bench` passes flags like `--bench`; the first non-flag
    // argument is treated as a name filter.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    bench_fig8_validation(&filter);
    bench_fig9_tiling(&filter);
    bench_fig12_timeshare(&filter);
    bench_fig14_attention(&filter);
}
