//! Criterion micro/meso benchmarks: one group per reproduced figure's
//! core kernel, plus simulator-infrastructure benchmarks. These measure
//! *host* performance of the harness; the figures themselves report
//! simulated cycles (see the fig* binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use step_hdl::{simulate_swiglu, RefConfig};
use step_models::attention::{attention_graph, AttentionCfg, ParallelStrategy};
use step_models::moe::{moe_graph, MoeCfg, Tiling};
use step_models::swiglu::{swiglu_graph, SwigluCfg};
use step_models::ModelConfig;
use step_sim::{SimConfig, Simulation};
use step_traces::{expert_routing, kv_lengths, KvTraceConfig, RoutingConfig, Variability};

fn small_model() -> ModelConfig {
    ModelConfig {
        name: "small",
        hidden: 128,
        moe_intermediate: 256,
        experts: 8,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 2,
    }
}

fn bench_fig8_validation(c: &mut Criterion) {
    let cfg = SwigluCfg::validation(32, 64);
    c.bench_function("fig8/step_sim_swiglu", |b| {
        b.iter(|| {
            Simulation::new(swiglu_graph(&cfg).unwrap(), SimConfig::validation())
                .unwrap()
                .run()
                .unwrap()
        })
    });
    c.bench_function("fig8/reference_swiglu", |b| {
        b.iter(|| simulate_swiglu(&cfg, &RefConfig::default()))
    });
}

fn bench_fig9_tiling(c: &mut Criterion) {
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 32,
        skew: 0.8,
        seed: 7,
    });
    for (label, tiling) in [
        ("static8", Tiling::Static { tile: 8 }),
        ("dynamic", Tiling::Dynamic),
    ] {
        let cfg = MoeCfg::new(model.clone(), tiling);
        let trace = trace.clone();
        c.bench_function(&format!("fig9/moe_{label}"), move |b| {
            b.iter(|| {
                Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
                    .unwrap()
                    .run()
                    .unwrap()
            })
        });
    }
}

fn bench_fig12_timeshare(c: &mut Criterion) {
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 32,
        skew: 0.8,
        seed: 7,
    });
    let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 }).with_regions(2);
    c.bench_function("fig12/moe_timeshare_2regions", |b| {
        b.iter(|| {
            Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
                .unwrap()
                .run()
                .unwrap()
        })
    });
}

fn bench_fig14_attention(c: &mut Criterion) {
    let model = small_model();
    let kv = kv_lengths(&KvTraceConfig {
        batch: 32,
        variability: Variability::High,
        median_len: 384.0,
        max_len: 2048,
        seed: 13,
        ..KvTraceConfig::default()
    });
    for (label, strategy) in [
        ("interleave", ParallelStrategy::StaticInterleaved),
        ("dynamic", ParallelStrategy::Dynamic),
    ] {
        let cfg = AttentionCfg::new(model.clone(), strategy);
        let kv = kv.clone();
        c.bench_function(&format!("fig14/attention_{label}"), move |b| {
            b.iter(|| {
                Simulation::new(attention_graph(&cfg, &kv).unwrap(), SimConfig::default())
                    .unwrap()
                    .run()
                    .unwrap()
            })
        });
    }
}

criterion_group!(
    benches,
    bench_fig8_validation,
    bench_fig9_tiling,
    bench_fig12_timeshare,
    bench_fig14_attention
);
criterion_main!(benches);
