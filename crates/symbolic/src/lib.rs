//! Symbolic integer expressions for STeP.
//!
//! The STeP paper (§4.2) uses SymPy to express stream shapes, off-chip
//! memory traffic, and on-chip memory requirements symbolically, so that
//! data-dependent quantities (dynamic-regular and ragged dimensions) can be
//! analyzed before running a simulation and substituted with concrete
//! measurements afterwards. This crate is that symbolic substrate.
//!
//! The expression language is deliberately small: the quantities that appear
//! in shape semantics and the metric equations of the paper are products,
//! sums, ceiling divisions (`⌈D/4⌉`-style tiling expressions), and max/min
//! (roofline terms). All values are non-negative integers at evaluation
//! time, but intermediate coefficients may be negative.
//!
//! # Examples
//!
//! ```
//! use step_symbolic::{Expr, SymbolTable, Env};
//!
//! let mut syms = SymbolTable::new();
//! let d = syms.fresh("D");
//! // ⌈D/4⌉ * 4  — padded row count for static tile size 4.
//! let padded = Expr::from(d.clone()).ceil_div(4) * Expr::from(4);
//!
//! let mut env = Env::new();
//! env.bind(&d, 10);
//! assert_eq!(padded.eval(&env).unwrap(), 12);
//! ```

pub mod env;
pub mod expr;
pub mod symbol;

pub use env::Env;
pub use expr::{EvalError, Expr};
pub use symbol::{Symbol, SymbolTable};
