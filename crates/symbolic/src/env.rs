//! Binding environments mapping symbols to concrete values.

use crate::symbol::Symbol;
use std::collections::BTreeMap;

/// A partial assignment of concrete values to symbols.
///
/// The simulator measures the runtime value of every data-dependent
/// dimension (e.g. the number of tokens routed to each expert) and records
/// it in an `Env`; symbolic metric expressions are then evaluated against it
/// (paper §4.2, "handling data dependencies").
///
/// # Examples
///
/// ```
/// use step_symbolic::{Env, Expr, SymbolTable};
/// let mut t = SymbolTable::new();
/// let d = t.fresh("D");
/// let mut env = Env::new();
/// env.bind(&d, 7);
/// assert_eq!(Expr::from(d).eval(&env).unwrap(), 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Env {
    bindings: BTreeMap<u64, i64>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `sym` to `value`, replacing any previous binding.
    pub fn bind(&mut self, sym: &Symbol, value: i64) -> &mut Self {
        self.bindings.insert(sym.id(), value);
        self
    }

    /// Looks up the binding for `sym`, if any.
    pub fn get(&self, sym: &Symbol) -> Option<i64> {
        self.bindings.get(&sym.id()).copied()
    }

    /// Looks up a binding by raw symbol id.
    pub(crate) fn get_by_id(&self, id: u64) -> Option<i64> {
        self.bindings.get(&id).copied()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the environment has no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Merges all bindings of `other` into `self` (bindings in `other` win).
    pub fn extend(&mut self, other: &Env) {
        for (k, v) in &other.bindings {
            self.bindings.insert(*k, *v);
        }
    }
}

impl<'a> FromIterator<(&'a Symbol, i64)> for Env {
    fn from_iter<I: IntoIterator<Item = (&'a Symbol, i64)>>(iter: I) -> Self {
        let mut env = Env::new();
        for (s, v) in iter {
            env.bind(s, v);
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    #[test]
    fn bind_and_get() {
        let mut t = SymbolTable::new();
        let a = t.fresh("a");
        let b = t.fresh("b");
        let mut env = Env::new();
        env.bind(&a, 3);
        assert_eq!(env.get(&a), Some(3));
        assert_eq!(env.get(&b), None);
        env.bind(&a, 5);
        assert_eq!(env.get(&a), Some(5));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn extend_merges_with_other_winning() {
        let mut t = SymbolTable::new();
        let a = t.fresh("a");
        let b = t.fresh("b");
        let mut e1 = Env::new();
        e1.bind(&a, 1).bind(&b, 2);
        let mut e2 = Env::new();
        e2.bind(&a, 10);
        e1.extend(&e2);
        assert_eq!(e1.get(&a), Some(10));
        assert_eq!(e1.get(&b), Some(2));
    }

    #[test]
    fn from_iterator() {
        let mut t = SymbolTable::new();
        let a = t.fresh("a");
        let env: Env = [(&a, 42)].into_iter().collect();
        assert_eq!(env.get(&a), Some(42));
    }
}
