//! The symbolic expression language.

use crate::env::Env;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;
use std::ops;

/// Error produced when evaluating an expression that still contains unbound
/// symbols, or whose arithmetic is undefined (division by zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol had no binding in the environment.
    UnboundSymbol(Symbol),
    /// A `ceil_div`/`floor_div` divisor evaluated to zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundSymbol(s) => write!(f, "unbound symbol `{s}`"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A symbolic integer expression.
///
/// Expressions are built from constants, [`Symbol`]s, and the operations
/// that arise in STeP shape semantics and metric equations: sums, products,
/// ceiling/floor division, and max/min. `+` and `*` operators are
/// overloaded; use [`Expr::ceil_div`], [`Expr::max_of`], etc. for the rest.
///
/// Expressions are kept in a lightly-canonicalized form by [`Expr::simplify`]
/// (constant folding, flattening, identity elimination); simplification
/// never changes the value of [`Expr::eval`] under any environment — a
/// property-tested invariant.
///
/// # Examples
///
/// ```
/// use step_symbolic::{Expr, SymbolTable, Env};
/// let mut t = SymbolTable::new();
/// let d = t.fresh("D");
/// let e = (Expr::from(d.clone()) + Expr::from(0)) * Expr::from(1);
/// assert_eq!(e.simplify(), Expr::from(d));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// An integer constant.
    Const(i64),
    /// A symbolic variable.
    Sym(Symbol),
    /// A sum of subexpressions.
    Add(Vec<Expr>),
    /// A product of subexpressions.
    Mul(Vec<Expr>),
    /// `⌈lhs / rhs⌉`.
    CeilDiv(Box<Expr>, Box<Expr>),
    /// `⌊lhs / rhs⌋`.
    FloorDiv(Box<Expr>, Box<Expr>),
    /// Maximum of subexpressions.
    Max(Vec<Expr>),
    /// Minimum of subexpressions.
    Min(Vec<Expr>),
}

impl Expr {
    /// The constant zero.
    pub fn zero() -> Expr {
        Expr::Const(0)
    }

    /// The constant one.
    pub fn one() -> Expr {
        Expr::Const(1)
    }

    /// `⌈self / divisor⌉`, the pervasive tiling expression `⌈D/T⌉`.
    pub fn ceil_div(self, divisor: impl Into<Expr>) -> Expr {
        Expr::CeilDiv(Box::new(self), Box::new(divisor.into())).simplify()
    }

    /// `⌊self / divisor⌋`.
    pub fn floor_div(self, divisor: impl Into<Expr>) -> Expr {
        Expr::FloorDiv(Box::new(self), Box::new(divisor.into())).simplify()
    }

    /// Maximum over `items`. Returns `0` for an empty iterator.
    pub fn max_of(items: impl IntoIterator<Item = Expr>) -> Expr {
        let v: Vec<Expr> = items.into_iter().collect();
        if v.is_empty() {
            Expr::zero()
        } else {
            Expr::Max(v).simplify()
        }
    }

    /// Minimum over `items`. Returns `0` for an empty iterator.
    pub fn min_of(items: impl IntoIterator<Item = Expr>) -> Expr {
        let v: Vec<Expr> = items.into_iter().collect();
        if v.is_empty() {
            Expr::zero()
        } else {
            Expr::Min(v).simplify()
        }
    }

    /// Sum over `items`. Returns `0` for an empty iterator.
    pub fn sum_of(items: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Add(items.into_iter().collect()).simplify()
    }

    /// Product over `items`. Returns `1` for an empty iterator.
    pub fn product_of(items: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Mul(items.into_iter().collect()).simplify()
    }

    /// Whether this expression is the literal constant `c`.
    pub fn is_const(&self, c: i64) -> bool {
        matches!(self, Expr::Const(k) if *k == c)
    }

    /// Returns the constant value if this expression is fully constant.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Expr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// The set of symbols occurring in this expression.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Expr::Const(_) => {}
            Expr::Sym(s) => {
                out.insert(s.clone());
            }
            Expr::Add(v) | Expr::Mul(v) | Expr::Max(v) | Expr::Min(v) => {
                for e in v {
                    e.collect_symbols(out);
                }
            }
            Expr::CeilDiv(a, b) | Expr::FloorDiv(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
        }
    }

    /// Whether this expression contains no symbols.
    pub fn is_concrete(&self) -> bool {
        self.symbols().is_empty()
    }

    /// Evaluates the expression under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundSymbol`] if a symbol is missing from
    /// `env`, or [`EvalError::DivisionByZero`] for a zero divisor.
    pub fn eval(&self, env: &Env) -> Result<i64, EvalError> {
        match self {
            Expr::Const(c) => Ok(*c),
            Expr::Sym(s) => env
                .get_by_id(s.id())
                .ok_or_else(|| EvalError::UnboundSymbol(s.clone())),
            Expr::Add(v) => v.iter().try_fold(0i64, |acc, e| Ok(acc + e.eval(env)?)),
            Expr::Mul(v) => v.iter().try_fold(1i64, |acc, e| Ok(acc * e.eval(env)?)),
            Expr::CeilDiv(a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                if b == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(div_ceil(a, b))
                }
            }
            Expr::FloorDiv(a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                if b == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(a.div_euclid(b))
                }
            }
            Expr::Max(v) => v
                .iter()
                .map(|e| e.eval(env))
                .try_fold(i64::MIN, |acc, x| Ok(acc.max(x?))),
            Expr::Min(v) => v
                .iter()
                .map(|e| e.eval(env))
                .try_fold(i64::MAX, |acc, x| Ok(acc.min(x?))),
        }
    }

    /// Substitutes any bound symbols with their values and simplifies; the
    /// result may still contain symbols absent from `env`.
    pub fn subst(&self, env: &Env) -> Expr {
        self.subst_inner(env).simplify()
    }

    fn subst_inner(&self, env: &Env) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Sym(s) => match env.get_by_id(s.id()) {
                Some(v) => Expr::Const(v),
                None => Expr::Sym(s.clone()),
            },
            Expr::Add(v) => Expr::Add(v.iter().map(|e| e.subst_inner(env)).collect()),
            Expr::Mul(v) => Expr::Mul(v.iter().map(|e| e.subst_inner(env)).collect()),
            Expr::CeilDiv(a, b) => {
                Expr::CeilDiv(Box::new(a.subst_inner(env)), Box::new(b.subst_inner(env)))
            }
            Expr::FloorDiv(a, b) => {
                Expr::FloorDiv(Box::new(a.subst_inner(env)), Box::new(b.subst_inner(env)))
            }
            Expr::Max(v) => Expr::Max(v.iter().map(|e| e.subst_inner(env)).collect()),
            Expr::Min(v) => Expr::Min(v.iter().map(|e| e.subst_inner(env)).collect()),
        }
    }

    /// Canonicalizes the expression: folds constants, flattens nested
    /// sums/products, drops additive zeros and multiplicative ones, and
    /// collapses products containing zero. Value-preserving under `eval`.
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Sym(_) => self.clone(),
            Expr::Add(v) => {
                let mut terms: Vec<Expr> = Vec::new();
                let mut acc = 0i64;
                for e in v {
                    match e.simplify() {
                        Expr::Const(c) => acc += c,
                        Expr::Add(inner) => {
                            for t in inner {
                                match t {
                                    Expr::Const(c) => acc += c,
                                    other => terms.push(other),
                                }
                            }
                        }
                        other => terms.push(other),
                    }
                }
                if acc != 0 || terms.is_empty() {
                    terms.push(Expr::Const(acc));
                }
                if terms.len() == 1 {
                    terms.pop().expect("nonempty")
                } else {
                    terms.sort();
                    Expr::Add(terms)
                }
            }
            Expr::Mul(v) => {
                let mut factors: Vec<Expr> = Vec::new();
                let mut acc = 1i64;
                for e in v {
                    match e.simplify() {
                        Expr::Const(c) => acc *= c,
                        Expr::Mul(inner) => {
                            for t in inner {
                                match t {
                                    Expr::Const(c) => acc *= c,
                                    other => factors.push(other),
                                }
                            }
                        }
                        other => factors.push(other),
                    }
                }
                if acc == 0 {
                    return Expr::Const(0);
                }
                if acc != 1 || factors.is_empty() {
                    factors.push(Expr::Const(acc));
                }
                if factors.len() == 1 {
                    factors.pop().expect("nonempty")
                } else {
                    factors.sort();
                    Expr::Mul(factors)
                }
            }
            Expr::CeilDiv(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (&a, &b) {
                    (Expr::Const(x), Expr::Const(y)) if *y != 0 => Expr::Const(div_ceil(*x, *y)),
                    (_, Expr::Const(1)) => a,
                    (Expr::Const(0), _) => Expr::Const(0),
                    _ => Expr::CeilDiv(Box::new(a), Box::new(b)),
                }
            }
            Expr::FloorDiv(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (&a, &b) {
                    (Expr::Const(x), Expr::Const(y)) if *y != 0 => Expr::Const(x.div_euclid(*y)),
                    (_, Expr::Const(1)) => a,
                    (Expr::Const(0), _) => Expr::Const(0),
                    _ => Expr::FloorDiv(Box::new(a), Box::new(b)),
                }
            }
            Expr::Max(v) => simplify_lattice(v, true),
            Expr::Min(v) => simplify_lattice(v, false),
        }
    }
}

/// Shared simplification for Max (`is_max = true`) and Min.
fn simplify_lattice(v: &[Expr], is_max: bool) -> Expr {
    let mut items: Vec<Expr> = Vec::new();
    let mut acc: Option<i64> = None;
    let fold = |acc: &mut Option<i64>, c: i64| {
        *acc = Some(match *acc {
            None => c,
            Some(a) => {
                if is_max {
                    a.max(c)
                } else {
                    a.min(c)
                }
            }
        });
    };
    for e in v {
        let flattened: Vec<Expr> = match e.simplify() {
            Expr::Max(inner) if is_max => inner,
            Expr::Min(inner) if !is_max => inner,
            other => vec![other],
        };
        for item in flattened {
            match item {
                Expr::Const(c) => fold(&mut acc, c),
                other => items.push(other),
            }
        }
    }
    items.sort();
    items.dedup();
    if let Some(c) = acc {
        items.push(Expr::Const(c));
    }
    match items.len() {
        0 => Expr::Const(0),
        1 => items.pop().expect("nonempty"),
        _ => {
            if is_max {
                Expr::Max(items)
            } else {
                Expr::Min(items)
            }
        }
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    let d = a.div_euclid(b);
    if a.rem_euclid(b) != 0 && (a >= 0) == (b >= 0) {
        d + 1
    } else {
        d
    }
}

impl From<i64> for Expr {
    fn from(c: i64) -> Self {
        Expr::Const(c)
    }
}

impl From<i32> for Expr {
    fn from(c: i32) -> Self {
        Expr::Const(i64::from(c))
    }
}

impl From<u64> for Expr {
    fn from(c: u64) -> Self {
        Expr::Const(c as i64)
    }
}

impl From<usize> for Expr {
    fn from(c: usize) -> Self {
        Expr::Const(c as i64)
    }
}

impl From<Symbol> for Expr {
    fn from(s: Symbol) -> Self {
        Expr::Sym(s)
    }
}

impl From<&Symbol> for Expr {
    fn from(s: &Symbol) -> Self {
        Expr::Sym(s.clone())
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(vec![self, rhs]).simplify()
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(vec![self, rhs]).simplify()
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Add(vec![self, Expr::Mul(vec![Expr::Const(-1), rhs])]).simplify()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, v: &[Expr], sep: &str) -> fmt::Result {
            for (i, e) in v.iter().enumerate() {
                if i > 0 {
                    f.write_str(sep)?;
                }
                write_atom(f, e)?;
            }
            Ok(())
        }
        fn write_atom(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
            match e {
                Expr::Add(_) | Expr::Mul(_) => write!(f, "({e})"),
                _ => write!(f, "{e}"),
            }
        }
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Add(v) => join(f, v, " + "),
            Expr::Mul(v) => join(f, v, "*"),
            Expr::CeilDiv(a, b) => write!(f, "ceil({a}, {b})"),
            Expr::FloorDiv(a, b) => write!(f, "floor({a}, {b})"),
            Expr::Max(v) => {
                f.write_str("max(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::Min(v) => {
                f.write_str("min(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn sym() -> (Symbol, Env) {
        let mut t = SymbolTable::new();
        let d = t.fresh("D");
        let mut env = Env::new();
        env.bind(&d, 10);
        (d, env)
    }

    #[test]
    fn const_folding() {
        let e = Expr::from(2) + Expr::from(3) * Expr::from(4);
        assert_eq!(e, Expr::Const(14));
    }

    #[test]
    fn identity_elimination() {
        let (d, _) = sym();
        let e = (Expr::from(&d) + Expr::zero()) * Expr::one();
        assert_eq!(e.simplify(), Expr::Sym(d));
    }

    #[test]
    fn mul_by_zero_collapses() {
        let (d, _) = sym();
        let e = Expr::from(&d) * Expr::zero();
        assert_eq!(e, Expr::Const(0));
    }

    #[test]
    fn ceil_div_semantics() {
        let (d, env) = sym();
        let e = Expr::from(&d).ceil_div(4);
        assert_eq!(e.eval(&env).unwrap(), 3); // ceil(10/4)
        assert_eq!(Expr::from(8).ceil_div(4), Expr::Const(2));
        assert_eq!(Expr::from(9).ceil_div(4), Expr::Const(3));
        assert_eq!(Expr::from(0).ceil_div(4), Expr::Const(0));
    }

    #[test]
    fn ceil_div_by_one_is_identity() {
        let (d, _) = sym();
        assert_eq!(Expr::from(&d).ceil_div(1), Expr::Sym(d));
    }

    #[test]
    fn floor_div_semantics() {
        let (d, env) = sym();
        let e = Expr::from(&d).floor_div(4);
        assert_eq!(e.eval(&env).unwrap(), 2);
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::CeilDiv(Box::new(Expr::Const(4)), Box::new(Expr::Const(0)));
        assert_eq!(e.eval(&Env::new()), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn unbound_symbol_errors() {
        let mut t = SymbolTable::new();
        let d = t.fresh("D");
        let e = Expr::from(&d);
        assert!(matches!(
            e.eval(&Env::new()),
            Err(EvalError::UnboundSymbol(_))
        ));
    }

    #[test]
    fn max_min_fold() {
        assert_eq!(Expr::max_of([Expr::from(3), Expr::from(7)]), Expr::Const(7));
        assert_eq!(Expr::min_of([Expr::from(3), Expr::from(7)]), Expr::Const(3));
        let (d, env) = sym();
        let e = Expr::max_of([Expr::from(&d), Expr::from(4)]);
        assert_eq!(e.eval(&env).unwrap(), 10);
    }

    #[test]
    fn max_of_empty_is_zero() {
        assert_eq!(Expr::max_of([]), Expr::Const(0));
        assert_eq!(Expr::min_of([]), Expr::Const(0));
    }

    #[test]
    fn sum_and_product_helpers() {
        let (d, env) = sym();
        let s = Expr::sum_of([Expr::from(&d), Expr::from(&d), Expr::from(1)]);
        assert_eq!(s.eval(&env).unwrap(), 21);
        let p = Expr::product_of([Expr::from(&d), Expr::from(3)]);
        assert_eq!(p.eval(&env).unwrap(), 30);
        assert_eq!(Expr::product_of([]), Expr::Const(1));
        assert_eq!(Expr::sum_of([]), Expr::Const(0));
    }

    #[test]
    fn sub_operator() {
        let (d, env) = sym();
        let e = Expr::from(&d) - Expr::from(4);
        assert_eq!(e.eval(&env).unwrap(), 6);
    }

    #[test]
    fn subst_partial() {
        let mut t = SymbolTable::new();
        let a = t.fresh("a");
        let b = t.fresh("b");
        let e = Expr::from(&a) * Expr::from(&b);
        let mut env = Env::new();
        env.bind(&a, 6);
        let sub = e.subst(&env);
        assert_eq!(sub.symbols().len(), 1);
        let mut env2 = Env::new();
        env2.bind(&b, 7);
        assert_eq!(sub.eval(&env2).unwrap(), 42);
    }

    #[test]
    fn symbols_collected() {
        let mut t = SymbolTable::new();
        let a = t.fresh("a");
        let b = t.fresh("b");
        let e = Expr::max_of([Expr::from(&a).ceil_div(Expr::from(&b)), Expr::from(3)]);
        let syms = e.symbols();
        assert!(syms.contains(&a) && syms.contains(&b));
        assert!(!e.is_concrete());
        assert!(Expr::from(3).is_concrete());
    }

    #[test]
    fn display_is_readable() {
        let mut t = SymbolTable::new();
        let d = t.fresh("D");
        let e = Expr::from(&d).ceil_div(4) * Expr::from(64);
        let s = e.to_string();
        assert!(s.contains("ceil"), "{s}");
        assert!(s.contains("64"), "{s}");
    }

    #[test]
    fn nested_flattening() {
        let (d, env) = sym();
        let e = Expr::Add(vec![
            Expr::Add(vec![Expr::from(&d), Expr::from(1)]),
            Expr::Add(vec![Expr::from(2), Expr::from(&d)]),
        ])
        .simplify();
        assert_eq!(e.eval(&env).unwrap(), 23);
        // Flattened: no nested Add nodes remain.
        if let Expr::Add(v) = &e {
            assert!(v.iter().all(|x| !matches!(x, Expr::Add(_))));
        } else {
            panic!("expected Add, got {e:?}");
        }
    }
}
