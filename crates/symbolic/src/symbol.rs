//! Symbols and symbol tables.

use std::fmt;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter so that symbols minted by independent
/// [`SymbolTable`]s never collide. Symbol identity is the numeric id; the
/// name is a human-readable label only.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A named symbolic variable, e.g. the size of a dynamic dimension `D0`.
///
/// Two symbols are equal iff they were minted by the same
/// [`SymbolTable::fresh`] call; names are labels and may repeat.
///
/// # Examples
///
/// ```
/// use step_symbolic::SymbolTable;
/// let mut t = SymbolTable::new();
/// let a = t.fresh("D");
/// let b = t.fresh("D");
/// assert_ne!(a, b); // same label, distinct symbols
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol {
    id: u64,
    name: Arc<str>,
}

impl Symbol {
    /// The globally unique numeric id of this symbol.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The human-readable label this symbol was minted with (plus a
    /// uniquifying suffix).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Mints fresh [`Symbol`]s.
///
/// The paper's symbolic frontend introduces a new symbol for every dynamic
/// or ragged dimension it encounters (including fresh symbols created by the
/// ragged absorbing rule, §3.1); `SymbolTable` plays that role here.
#[derive(Debug, Default)]
pub struct SymbolTable {
    minted: Vec<Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh symbol labelled `prefix` with a unique suffix.
    pub fn fresh(&mut self, prefix: &str) -> Symbol {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let sym = Symbol {
            id,
            name: Arc::from(format!("{prefix}#{id}")),
        };
        self.minted.push(sym.clone());
        sym
    }

    /// All symbols minted by this table, in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.minted.iter()
    }

    /// Number of symbols minted by this table.
    pub fn len(&self) -> usize {
        self.minted.len()
    }

    /// Whether this table has minted no symbols.
    pub fn is_empty(&self) -> bool {
        self.minted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_symbols_are_distinct() {
        let mut t = SymbolTable::new();
        let a = t.fresh("D");
        let b = t.fresh("D");
        assert_ne!(a.id(), b.id());
        assert_ne!(a, b);
    }

    #[test]
    fn symbols_from_distinct_tables_are_distinct() {
        let mut t1 = SymbolTable::new();
        let mut t2 = SymbolTable::new();
        assert_ne!(t1.fresh("x"), t2.fresh("x"));
    }

    #[test]
    fn display_uses_label() {
        let mut t = SymbolTable::new();
        let a = t.fresh("Dq");
        assert!(a.to_string().starts_with("Dq#"));
    }

    #[test]
    fn table_tracks_minted() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        let a = t.fresh("a");
        let b = t.fresh("b");
        assert_eq!(t.len(), 2);
        let minted: Vec<_> = t.iter().cloned().collect();
        assert_eq!(minted, vec![a, b]);
    }
}
