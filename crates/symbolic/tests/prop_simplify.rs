//! Property tests: `simplify` and `subst` preserve `eval` under arbitrary
//! environments, and simplification is idempotent.

use proptest::prelude::*;
use step_symbolic::{Env, Expr, Symbol, SymbolTable};

/// A fixed pool of symbols shared by generated expressions.
fn symbol_pool() -> Vec<Symbol> {
    let mut t = SymbolTable::new();
    (0..4).map(|i| t.fresh(&format!("s{i}"))).collect()
}

fn arb_expr(pool: Vec<Symbol>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..64).prop_map(Expr::Const),
        (0usize..4).prop_map(move |i| Expr::Sym(pool[i].clone())),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Add),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Mul),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Max),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Min),
            (inner.clone(), 1i64..16).prop_map(|(a, d)| Expr::CeilDiv(
                Box::new(a),
                Box::new(Expr::Const(d))
            )),
            (inner, 1i64..16).prop_map(|(a, d)| Expr::FloorDiv(
                Box::new(a),
                Box::new(Expr::Const(d))
            )),
        ]
    })
}

proptest! {
    #[test]
    fn simplify_preserves_eval(
        (expr, vals) in {
            let pool = symbol_pool();
            (arb_expr(pool.clone()), prop::collection::vec(0i64..100, 4))
                .prop_map(move |(e, v)| {
                    let env: Env = pool.iter().zip(v.iter().copied()).collect();
                    (e, env)
                })
        }
    ) {
        let simplified = expr.simplify();
        prop_assert_eq!(expr.eval(&vals).unwrap(), simplified.eval(&vals).unwrap());
    }

    #[test]
    fn simplify_is_idempotent(
        expr in arb_expr(symbol_pool())
    ) {
        let once = expr.simplify();
        let twice = once.simplify();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn subst_all_matches_eval(
        (expr, vals) in {
            let pool = symbol_pool();
            (arb_expr(pool.clone()), prop::collection::vec(0i64..100, 4))
                .prop_map(move |(e, v)| {
                    let env: Env = pool.iter().zip(v.iter().copied()).collect();
                    (e, env)
                })
        }
    ) {
        let substituted = expr.subst(&vals);
        prop_assert_eq!(substituted.as_const(), Some(expr.eval(&vals).unwrap()));
    }
}
