//! Property tests for `step_core::partition` invariants: seeded
//! generators build random multi-fragment graphs (fan-out pipelines,
//! bufferize/streamify pairs, wide tile loads, all hanging off a shared
//! trigger fork) and assert, for random partition configurations, that
//!
//! - every shard is a connected subgraph,
//! - buffer-reference edges (shared arenas) are never cut,
//! - the shard node-sets exactly partition the graph, with shard ids
//!   dense and assigned in order of each shard's minimum node index,
//! - the per-shard cut metadata (`cut_ins_of`/`cut_outs_of`/`cut_volume`)
//!   is exactly consistent with `cut_edges`,
//! - small graphs round-trip through [`Partition::monolithic`], and
//! - the partition is invariant under permuted fragment insertion order
//!   (compared through each node's insertion-independent logical label).
//!
//! Cases come from a seeded local PRNG in the PR-1 style (the build
//! container has no crates.io access, so `proptest` is unavailable);
//! failures print the case seed for replay.

use step_core::elem::{Elem, ElemKind};
use step_core::graph::{Graph, GraphBuilder, StreamRef};
use step_core::ops::{LinearLoadCfg, StreamifyCfg};
use step_core::partition::{Partition, PartitionCfg, partition};
use step_core::shape::StreamShape;
use step_core::token;

const CASES: u64 = 24;

/// SplitMix64-based case generator.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// One generated subgraph hanging off its slot of the shared trigger
/// fork. Every fragment consumes its trigger and terminates all its
/// streams, so `GraphBuilder::finish` appends no auto-sinks and each
/// fragment's nodes occupy a contiguous, size-predictable index range.
#[derive(Clone)]
enum Frag {
    /// Trigger forked `ways` wide, each way a load→store pipeline over an
    /// `ms`-shaped tensor (the tile-volume edges that must not be cut).
    Pipelines { ways: u64, ms: (u64, u64) },
    /// A bufferize/streamify pair over its own sources (arena-sharing
    /// buffer edge, never cut); the trigger is sunk.
    BufferPair,
    /// A single load→store chain.
    Chain { ms: (u64, u64) },
}

impl Frag {
    fn generate(g: &mut Gen) -> Frag {
        let shapes = [(16, 16), (16, 64), (64, 64), (64, 256)];
        let ms = shapes[g.range(0, shapes.len() as u64) as usize];
        match g.range(0, 3) {
            0 => Frag::Pipelines {
                ways: g.range(2, 5),
                ms,
            },
            1 => Frag::BufferPair,
            _ => Frag::Chain { ms },
        }
    }

    /// Nodes this fragment inserts (fork + per-way load/store, etc.).
    fn node_count(&self) -> usize {
        match self {
            Frag::Pipelines { ways, .. } => 1 + 2 * *ways as usize,
            Frag::BufferPair => 6,
            Frag::Chain { .. } => 2,
        }
    }

    /// Builds the fragment; `id` keys off-chip addresses to the logical
    /// fragment, not its insertion position.
    fn build(&self, g: &mut GraphBuilder, id: usize, trigger: &StreamRef) {
        let base = 0x100_0000 * (id as u64 + 1);
        match self {
            Frag::Pipelines { ways, ms } => {
                let forks = g.fork(trigger, *ways as u32).unwrap();
                for (w, f) in forks.iter().enumerate() {
                    let tiles = g
                        .linear_offchip_load(f, LinearLoadCfg::new(base, *ms, (16, 16)))
                        .unwrap();
                    g.linear_offchip_store(&tiles, base + 0x10_0000 * (w as u64 + 1))
                        .unwrap();
                }
            }
            Frag::BufferPair => {
                g.sink(trigger).unwrap();
                let groups: Vec<Vec<Elem>> =
                    vec![vec![Elem::Tile(step_core::tile::Tile::phantom(4, 4)); 2]; 2];
                let s = g
                    .source(
                        token::rank1_from_groups(&groups),
                        StreamShape::fixed(&[2, 2]),
                        ElemKind::tile(4, 4),
                    )
                    .unwrap();
                let bufs = g.bufferize(&s, 1).unwrap();
                let r = g
                    .source(
                        token::rank1_from_groups(&[vec![Elem::Unit], vec![Elem::Unit]]),
                        StreamShape::fixed(&[2, 1]),
                        ElemKind::Unit,
                    )
                    .unwrap();
                let out = g.streamify(&bufs, &r, StreamifyCfg::default()).unwrap();
                g.linear_offchip_store(&out, base).unwrap();
            }
            Frag::Chain { ms } => {
                let tiles = g
                    .linear_offchip_load(trigger, LinearLoadCfg::new(base, *ms, (16, 16)))
                    .unwrap();
                g.linear_offchip_store(&tiles, base + 0x10_0000).unwrap();
            }
        }
    }
}

/// Builds the graph inserting fragments in `order`, returning it plus
/// each node's insertion-independent logical label `(fragment, offset)`
/// (the shared trigger prelude uses fragment `usize::MAX`).
fn build(frags: &[Frag], order: &[usize]) -> (Graph, Vec<(usize, usize)>) {
    let mut g = GraphBuilder::new();
    let trig = g.unit_source(1);
    let forks = g.fork(&trig, frags.len() as u32).unwrap();
    let mut label_of: Vec<(usize, usize)> = vec![(usize::MAX, 0), (usize::MAX, 1)];
    for &f in order {
        frags[f].build(&mut g, f, &forks[f]);
        for off in 0..frags[f].node_count() {
            label_of.push((f, off));
        }
    }
    let graph = g.finish();
    assert_eq!(
        graph.nodes().len(),
        label_of.len(),
        "fragments must terminate every stream (no auto-sinks)"
    );
    (graph, label_of)
}

/// The partition as an insertion-order-independent value: the sorted set
/// of shards, each the sorted set of its nodes' logical labels.
fn canonical(p: &Partition, label_of: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
    let mut groups: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p.shards];
    for (i, &s) in p.shard_of.iter().enumerate() {
        groups[s as usize].push(label_of[i]);
    }
    for gr in &mut groups {
        gr.sort_unstable();
    }
    groups.sort();
    groups
}

fn gen_case(seed: u64) -> (Vec<Frag>, PartitionCfg) {
    let mut g = Gen(seed);
    let frags: Vec<Frag> = (0..g.range(3, 8)).map(|_| Frag::generate(&mut g)).collect();
    let cfg = PartitionCfg {
        target_shards: g.range(2, 9) as usize,
        min_nodes: 0,
        balance_slack: [1.0, 1.2, 1.5][g.range(0, 3) as usize],
    };
    (frags, cfg)
}

#[test]
fn shards_partition_the_graph_and_are_connected() {
    for seed in 0..CASES {
        let (frags, cfg) = gen_case(seed);
        let order: Vec<usize> = (0..frags.len()).collect();
        let (graph, _) = build(&frags, &order);
        let p = partition(&graph, &cfg);
        let n = graph.nodes().len();

        // Exact partition of the node set, dense shard ids assigned in
        // order of each shard's minimum node index.
        assert_eq!(p.shard_of.len(), n, "seed {seed}");
        let mut first_node_of = vec![usize::MAX; p.shards];
        for (i, &s) in p.shard_of.iter().enumerate() {
            assert!(
                (s as usize) < p.shards,
                "seed {seed}: shard id out of range"
            );
            let slot = &mut first_node_of[s as usize];
            if *slot == usize::MAX {
                *slot = i;
            }
        }
        assert!(
            first_node_of.windows(2).all(|w| w[0] < w[1]),
            "seed {seed}: shard ids not ordered by minimum node index: {first_node_of:?}"
        );

        // Every shard is connected over its intra-shard edges (viewed
        // undirected).
        let mut adj = vec![Vec::new(); n];
        for e in graph.edges() {
            let Some((dst, _)) = e.dst else { continue };
            let (a, b) = (e.src.0.0 as usize, dst.0 as usize);
            if p.shard_of[a] == p.shard_of[b] {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for s in 0..p.shards {
            let members: Vec<usize> = (0..n).filter(|&i| p.shard_of[i] == s as u32).collect();
            let mut seen = vec![false; n];
            let mut stack = vec![members[0]];
            seen[members[0]] = true;
            while let Some(i) = stack.pop() {
                for &j in &adj[i] {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
            assert!(
                members.iter().all(|&i| seen[i]),
                "seed {seed}: shard {s} is disconnected"
            );
        }
    }
}

#[test]
fn buffer_edges_are_never_cut_and_cut_metadata_is_consistent() {
    for seed in 0..CASES {
        let (frags, cfg) = gen_case(seed);
        let order: Vec<usize> = (0..frags.len()).collect();
        let (graph, _) = build(&frags, &order);
        let p = partition(&graph, &cfg);

        for (i, e) in graph.edges().iter().enumerate() {
            if matches!(e.kind, ElemKind::Buffer { .. })
                && let Some((dst, _)) = e.dst
            {
                assert_eq!(
                    p.shard_of[e.src.0.0 as usize], p.shard_of[dst.0 as usize],
                    "seed {seed}: buffer edge {i} cut"
                );
            }
        }

        assert_eq!(p.cut_volume.len(), p.cut_edges.len(), "seed {seed}");
        assert_eq!(p.cut_ins_of.len(), p.shards, "seed {seed}");
        assert_eq!(p.cut_outs_of.len(), p.shards, "seed {seed}");
        let mut ins: Vec<_> = p.cut_ins_of.iter().flatten().copied().collect();
        let mut outs: Vec<_> = p.cut_outs_of.iter().flatten().copied().collect();
        ins.sort();
        outs.sort();
        assert_eq!(ins, p.cut_edges, "seed {seed}: cut_ins_of mismatch");
        assert_eq!(outs, p.cut_edges, "seed {seed}: cut_outs_of mismatch");
        for e in &p.cut_edges {
            let edge = graph.edge(*e);
            let (ws, rs) = (
                p.shard_of[edge.src.0.0 as usize],
                p.shard_of[edge.dst.unwrap().0.0 as usize],
            );
            assert_ne!(ws, rs, "seed {seed}: cut edge {e:?} is intra-shard");
            assert!(p.cut_outs_of[ws as usize].contains(e), "seed {seed}");
            assert!(p.cut_ins_of[rs as usize].contains(e), "seed {seed}");
        }
    }
}

#[test]
fn small_graphs_round_trip_through_monolithic() {
    for seed in 0..CASES {
        let (frags, mut cfg) = gen_case(seed);
        let order: Vec<usize> = (0..frags.len()).collect();
        let (graph, _) = build(&frags, &order);
        // Below the min-nodes threshold the partition must be exactly
        // the monolithic one.
        cfg.min_nodes = graph.nodes().len() + 1;
        let p = partition(&graph, &cfg);
        assert_eq!(p, Partition::monolithic(&graph), "seed {seed}");
        assert_eq!(p.shards, 1);
        assert!(p.cut_edges.is_empty());
        assert!(p.cut_volume.is_empty());
        assert_eq!(p.cut_ins_of, vec![Vec::new()]);
        assert_eq!(p.cut_outs_of, vec![Vec::new()]);
        assert!(p.shard_of.iter().all(|&s| s == 0));
    }
}

#[test]
fn partition_is_invariant_under_fragment_insertion_order() {
    for seed in 0..CASES {
        let (frags, cfg) = gen_case(seed);
        let identity: Vec<usize> = (0..frags.len()).collect();
        // Seeded Fisher–Yates shuffle of the insertion order.
        let mut shuffled = identity.clone();
        let mut g = Gen(seed ^ 0xDEAD_BEEF);
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, g.range(0, i as u64 + 1) as usize);
        }
        let (graph_a, labels_a) = build(&frags, &identity);
        let (graph_b, labels_b) = build(&frags, &shuffled);
        let pa = partition(&graph_a, &cfg);
        let pb = partition(&graph_b, &cfg);
        assert_eq!(
            canonical(&pa, &labels_a),
            canonical(&pb, &labels_b),
            "seed {seed}: partition depends on insertion order (order {shuffled:?})"
        );
        assert_eq!(pa.cut_edges.len(), pb.cut_edges.len(), "seed {seed}");
    }
}
