//! Streaming Tensor Programs (STeP).
//!
//! STeP is a streaming abstraction for dynamic tensor applications on
//! spatial dataflow accelerators (SDAs), reproduced from the ASPLOS '26
//! paper *"Streaming Tensor Programs: A Streaming Abstraction for Dynamic
//! Parallelism"*. This crate defines the abstraction itself:
//!
//! - [`token`] — the SAM-style token streams (`Val`/`Stop(k)`/`Done`) that
//!   embed logical tensor structure into a data stream (§3.1),
//! - [`shape`] — stream shapes with static-regular, dynamic-regular, and
//!   ragged dimensions backed by symbolic expressions,
//! - [`tile`] — the two-dimensional (possibly dynamically-shaped) tiles
//!   that flow through streams, with dense and phantom payloads,
//! - [`elem`] — the stream data types: tiles, selectors, buffer
//!   references, addresses, and tuples (§3.1 "Data Type"),
//! - [`func`] — the hardware-function algebra passed to higher-order
//!   operators (matmul, elementwise ops, retiling; §3.2.4),
//! - [`ops`] — configuration types for every STeP operator (Tables 3–7),
//! - [`graph`] — the program graph builder with build-time shape
//!   verification mirroring the symbolic frontend (§4.1),
//! - [`metrics`] — the symbolic off-chip-traffic and on-chip-memory
//!   equations of §4.2,
//! - [`partition`] — slack-guided partitioning of program graphs into
//!   connected shards for the parallel simulator,
//! - [`sync`] — poisoning-recovering lock helpers shared by the
//!   panic-isolating simulator and service layers.
//!
//! Execution (functional semantics + cycle-approximate timing) lives in the
//! `step-sim` crate; `step-hdl` provides the fine-grained reference
//! simulator used for validation.
//!
//! # Example: a tiny STeP program
//!
//! ```
//! use step_core::graph::GraphBuilder;
//! use step_core::ops::LinearLoadCfg;
//! use step_core::func::{MapFn, EwOp};
//!
//! let mut g = GraphBuilder::new();
//! // Load a 64x256 tensor as a 1x4 grid of 64x64 tiles, once.
//! let trigger = g.unit_source(1);
//! let tiles = g.linear_offchip_load(
//!     &trigger,
//!     LinearLoadCfg::new(0x1000, (64, 256), (64, 64)),
//! ).unwrap();
//! let act = g.map(&tiles, MapFn::Elementwise(EwOp::Relu), 1024).unwrap();
//! g.linear_offchip_store(&act, 0x9000).unwrap();
//! let graph = g.finish();
//! assert_eq!(graph.nodes().len(), 4);
//! ```

pub mod elem;
pub mod error;
pub mod func;
pub mod graph;
pub mod metrics;
pub mod ops;
pub mod partition;
pub mod shape;
pub mod sync;
pub mod tile;
pub mod token;

pub use elem::{Elem, ElemKind, Selector};
pub use error::{DeadlineKind, Result, StepError};
pub use graph::{Graph, GraphBuilder, NodeId, StreamRef};
pub use shape::{Dim, StreamShape};
pub use tile::Tile;
pub use token::Token;

/// Bytes per tensor element. The paper evaluates BF16 workloads (§4.5).
pub const DTYPE_BYTES: u64 = 2;
