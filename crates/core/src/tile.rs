//! Tiles: two-dimensional regular matrices flowing through streams (§3.1).
//!
//! STeP allows tiles to have *dynamically defined shapes* — the key enabler
//! for dynamic tiling (§5.2). A tile carries either dense `f32` data (used
//! by functional tests and small examples) or a *phantom* payload that
//! records only the shape. All cost accounting (bytes, FLOPs) derives from
//! the shape, so phantom runs are timing-identical to dense runs; MoE
//! routing decisions come from trace-driven selector streams, never from
//! tile values, which keeps phantom simulations faithful.

use crate::DTYPE_BYTES;
use crate::error::{Result, StepError};
use std::fmt;
use std::sync::Arc;

/// Payload of a [`Tile`].
///
/// Dense payloads sit behind an [`Arc`], so cloning a tile — the
/// per-token operation of every broadcast, fork, and routing fan-out in
/// the simulator — is O(1) and never copies the values. The sharing is
/// invisible to users: tiles are immutable once built, and every
/// operation producing new values allocates a fresh payload.
#[derive(Debug, Clone)]
pub enum TileData {
    /// Row-major dense values (shared, immutable).
    Dense(Arc<Vec<f32>>),
    /// Shape-only payload: values are not materialized.
    Phantom,
}

impl PartialEq for TileData {
    fn eq(&self, other: &TileData) -> bool {
        match (self, other) {
            // Pointer equality first: aliased payloads (fan-out clones)
            // compare in O(1).
            (TileData::Dense(a), TileData::Dense(b)) => Arc::ptr_eq(a, b) || a == b,
            (TileData::Phantom, TileData::Phantom) => true,
            _ => false,
        }
    }
}

/// A two-dimensional tile of `rows x cols` elements.
///
/// # Examples
///
/// ```
/// use step_core::tile::Tile;
/// let a = Tile::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tile::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c.get(1, 0), Some(3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    rows: usize,
    cols: usize,
    data: TileData,
}

impl Tile {
    /// A dense tile from explicit row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn dense(rows: usize, cols: usize, data: Vec<f32>) -> Tile {
        assert_eq!(data.len(), rows * cols, "tile data length mismatch");
        Tile {
            rows,
            cols,
            data: TileData::Dense(Arc::new(data)),
        }
    }

    /// A dense tile from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Tile {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in tile literal");
            data.extend_from_slice(row);
        }
        Tile::dense(r, c, data)
    }

    /// A dense tile of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tile {
        Tile::dense(rows, cols, vec![0.0; rows * cols])
    }

    /// A dense identity matrix.
    pub fn identity(n: usize) -> Tile {
        let mut d = vec![0.0f32; n * n];
        for i in 0..n {
            d[i * n + i] = 1.0;
        }
        Tile::dense(n, n, d)
    }

    /// A dense tile filled with `value`.
    pub fn splat(rows: usize, cols: usize, value: f32) -> Tile {
        Tile::dense(rows, cols, vec![value; rows * cols])
    }

    /// A shape-only tile.
    pub fn phantom(rows: usize, cols: usize) -> Tile {
        Tile {
            rows,
            cols,
            data: TileData::Phantom,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the tile has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes at the modeled datatype width (BF16).
    pub fn bytes(&self) -> u64 {
        (self.len() as u64) * DTYPE_BYTES
    }

    /// Whether the payload is phantom (shape-only).
    pub fn is_phantom(&self) -> bool {
        matches!(self.data, TileData::Phantom)
    }

    /// Element at `(r, c)`, if dense and in range.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        match &self.data {
            TileData::Dense(d) if r < self.rows && c < self.cols => Some(d[r * self.cols + c]),
            _ => None,
        }
    }

    /// Dense values in row-major order, if dense.
    pub fn values(&self) -> Option<&[f32]> {
        match &self.data {
            TileData::Dense(d) => Some(d.as_slice()),
            TileData::Phantom => None,
        }
    }

    /// O(1) conservative equality for run coalescing: `true` only when
    /// the two tiles are *provably* interchangeable — same shape and
    /// either both phantom or sharing the same dense payload allocation.
    /// May return `false` for value-equal tiles with distinct payloads;
    /// never `true` for tiles that could behave differently.
    pub fn coalesces_with(&self, other: &Tile) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && match (&self.data, &other.data) {
                (TileData::Phantom, TileData::Phantom) => true,
                (TileData::Dense(a), TileData::Dense(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }

    fn binary_shape_check(&self, other: &Tile, what: &str) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(StepError::Exec(format!(
                "{what}: shape ({}, {}) vs ({}, {})",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        Ok(())
    }

    fn lift2(&self, other: &Tile, f: impl Fn(f32, f32) -> f32) -> Tile {
        match (&self.data, &other.data) {
            (TileData::Dense(a), TileData::Dense(b)) => Tile::dense(
                self.rows,
                self.cols,
                a.iter().zip(b.iter()).map(|(x, y)| f(*x, *y)).collect(),
            ),
            _ => Tile::phantom(self.rows, self.cols),
        }
    }

    /// Applies `f` to each element (phantom stays phantom).
    pub fn map_values(&self, f: impl Fn(f32) -> f32) -> Tile {
        match &self.data {
            TileData::Dense(d) => {
                Tile::dense(self.rows, self.cols, d.iter().map(|x| f(*x)).collect())
            }
            TileData::Phantom => Tile::phantom(self.rows, self.cols),
        }
    }

    /// Matrix product `self x other`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Tile) -> Result<Tile> {
        if self.cols != other.rows {
            return Err(StepError::Exec(format!(
                "matmul: ({}, {}) x ({}, {})",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        match (&self.data, &other.data) {
            (TileData::Dense(a), TileData::Dense(b)) => {
                let (m, k, n) = (self.rows, self.cols, other.cols);
                let mut out = vec![0.0f32; m * n];
                for i in 0..m {
                    for p in 0..k {
                        let av = a[i * k + p];
                        if av == 0.0 {
                            continue;
                        }
                        for j in 0..n {
                            out[i * n + j] += av * b[p * n + j];
                        }
                    }
                }
                Ok(Tile::dense(m, n, out))
            }
            _ => Ok(Tile::phantom(self.rows, other.cols)),
        }
    }

    /// Matrix product `self x otherᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if `self.cols != other.cols`.
    pub fn matmul_bt(&self, other: &Tile) -> Result<Tile> {
        if self.cols != other.cols {
            return Err(StepError::Exec(format!(
                "matmul_bt: ({}, {}) x ({}, {})^T",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        match (&self.data, &other.data) {
            (TileData::Dense(a), TileData::Dense(b)) => {
                let (m, k, n) = (self.rows, self.cols, other.rows);
                let mut out = vec![0.0f32; m * n];
                for i in 0..m {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for p in 0..k {
                            acc += a[i * k + p] * b[j * k + p];
                        }
                        out[i * n + j] = acc;
                    }
                }
                Ok(Tile::dense(m, n, out))
            }
            _ => Ok(Tile::phantom(self.rows, other.rows)),
        }
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] on shape mismatch.
    pub fn add(&self, other: &Tile) -> Result<Tile> {
        self.binary_shape_check(other, "add")?;
        Ok(self.lift2(other, |a, b| a + b))
    }

    /// Elementwise product.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] on shape mismatch.
    pub fn mul(&self, other: &Tile) -> Result<Tile> {
        self.binary_shape_check(other, "mul")?;
        Ok(self.lift2(other, |a, b| a * b))
    }

    /// Vertical concatenation: `[self; other]` (the `RetileRow` function).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] on column-count mismatch.
    pub fn concat_rows(&self, other: &Tile) -> Result<Tile> {
        if self.cols != other.cols {
            return Err(StepError::Exec(format!(
                "concat_rows: {} vs {} cols",
                self.cols, other.cols
            )));
        }
        match (&self.data, &other.data) {
            (TileData::Dense(a), TileData::Dense(b)) => {
                let mut d = Vec::with_capacity(a.len() + b.len());
                d.extend_from_slice(a);
                d.extend_from_slice(b);
                Ok(Tile::dense(self.rows + other.rows, self.cols, d))
            }
            _ => Ok(Tile::phantom(self.rows + other.rows, self.cols)),
        }
    }

    /// Horizontal concatenation: `[self, other]` (the `RetileCol` function).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] on row-count mismatch.
    pub fn concat_cols(&self, other: &Tile) -> Result<Tile> {
        if self.rows != other.rows {
            return Err(StepError::Exec(format!(
                "concat_cols: {} vs {} rows",
                self.rows, other.rows
            )));
        }
        match (&self.data, &other.data) {
            (TileData::Dense(a), TileData::Dense(b)) => {
                let cols = self.cols + other.cols;
                let mut d = Vec::with_capacity(self.rows * cols);
                for r in 0..self.rows {
                    d.extend_from_slice(&a[r * self.cols..(r + 1) * self.cols]);
                    d.extend_from_slice(&b[r * other.cols..(r + 1) * other.cols]);
                }
                Ok(Tile::dense(self.rows, cols, d))
            }
            _ => Ok(Tile::phantom(self.rows, self.cols + other.cols)),
        }
    }

    /// The sub-tile of rows `r0..r0+n`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the range exceeds the tile.
    pub fn row_slice(&self, r0: usize, n: usize) -> Result<Tile> {
        if r0 + n > self.rows {
            return Err(StepError::Exec(format!(
                "row_slice {r0}..{} of {} rows",
                r0 + n,
                self.rows
            )));
        }
        match &self.data {
            TileData::Dense(d) => Ok(Tile::dense(
                n,
                self.cols,
                d[r0 * self.cols..(r0 + n) * self.cols].to_vec(),
            )),
            TileData::Phantom => Ok(Tile::phantom(n, self.cols)),
        }
    }

    /// The sub-tile of columns `c0..c0+n`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Exec`] if the range exceeds the tile.
    pub fn col_slice(&self, c0: usize, n: usize) -> Result<Tile> {
        if c0 + n > self.cols {
            return Err(StepError::Exec(format!(
                "col_slice {c0}..{} of {} cols",
                c0 + n,
                self.cols
            )));
        }
        match &self.data {
            TileData::Dense(d) => {
                let mut out = Vec::with_capacity(self.rows * n);
                for r in 0..self.rows {
                    out.extend_from_slice(&d[r * self.cols + c0..r * self.cols + c0 + n]);
                }
                Ok(Tile::dense(self.rows, n, out))
            }
            TileData::Phantom => Ok(Tile::phantom(self.rows, n)),
        }
    }

    /// Row-wise reduction to a `rows x 1` tile using `f` with `init`.
    pub fn row_reduce(&self, init: f32, f: impl Fn(f32, f32) -> f32) -> Tile {
        match &self.data {
            TileData::Dense(d) => {
                let mut out = Vec::with_capacity(self.rows);
                for r in 0..self.rows {
                    let mut acc = init;
                    for c in 0..self.cols {
                        acc = f(acc, d[r * self.cols + c]);
                    }
                    out.push(acc);
                }
                Tile::dense(self.rows, 1, out)
            }
            TileData::Phantom => Tile::phantom(self.rows, 1),
        }
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.data {
            TileData::Dense(_) => write!(f, "Tile[{}x{}]", self.rows, self.cols),
            TileData::Phantom => write!(f, "Tile[{}x{} phantom]", self.rows, self.cols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tile::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tile::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.values().unwrap(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_bt_matches_transposed_matmul() {
        let a = Tile::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Tile::from_rows(&[&[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let c = a.matmul_bt(&b).unwrap();
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.values().unwrap(), &[32.0, 50.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Tile::zeros(2, 3);
        let b = Tile::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_bt(&b).is_ok());
    }

    #[test]
    fn phantom_propagates_shape() {
        let a = Tile::phantom(4, 64);
        let b = Tile::phantom(64, 256);
        let c = a.matmul(&b).unwrap();
        assert!(c.is_phantom());
        assert_eq!((c.rows(), c.cols()), (4, 256));
        assert_eq!(c.bytes(), 4 * 256 * 2);
    }

    #[test]
    fn dense_phantom_mix_degrades_to_phantom() {
        let a = Tile::zeros(2, 2);
        let b = Tile::phantom(2, 2);
        assert!(a.add(&b).unwrap().is_phantom());
        assert!(a.matmul(&b).unwrap().is_phantom());
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = Tile::from_rows(&[&[1.0, 2.0]]);
        let b = Tile::from_rows(&[&[3.0, 4.0]]);
        let v = a.concat_rows(&b).unwrap();
        assert_eq!((v.rows(), v.cols()), (2, 2));
        assert_eq!(v.values().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        let h = a.concat_cols(&b).unwrap();
        assert_eq!((h.rows(), h.cols()), (1, 4));
        assert_eq!(h.values().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_mismatch_errors() {
        let a = Tile::zeros(1, 2);
        let b = Tile::zeros(1, 3);
        assert!(a.concat_rows(&b).is_err());
        let c = Tile::zeros(2, 3);
        assert!(a.concat_cols(&c).is_err());
    }

    #[test]
    fn row_slice_splits() {
        let t = Tile::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let s = t.row_slice(1, 2).unwrap();
        assert_eq!(s.values().unwrap(), &[2.0, 3.0]);
        assert!(t.row_slice(3, 2).is_err());
    }

    #[test]
    fn col_slice_splits() {
        let t = Tile::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = t.col_slice(1, 2).unwrap();
        assert_eq!(s.values().unwrap(), &[2.0, 3.0, 5.0, 6.0]);
        assert!(t.col_slice(2, 2).is_err());
    }

    #[test]
    fn row_reduce_sums() {
        let t = Tile::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let r = t.row_reduce(0.0, |a, b| a + b);
        assert_eq!(r.values().unwrap(), &[3.0, 7.0]);
        assert_eq!((r.rows(), r.cols()), (2, 1));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Tile::from_rows(&[&[2.0, 3.0], &[4.0, 5.0]]);
        let c = a.matmul(&Tile::identity(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn bytes_uses_bf16() {
        assert_eq!(Tile::zeros(16, 16).bytes(), 512);
    }

    #[test]
    fn map_values_applies() {
        let t = Tile::from_rows(&[&[-1.0, 2.0]]);
        let r = t.map_values(|x| x.max(0.0));
        assert_eq!(r.values().unwrap(), &[0.0, 2.0]);
    }
}
