//! Error types shared across the STeP crates.

use std::fmt;

/// Convenience result alias for STeP operations.
pub type Result<T> = std::result::Result<T, StepError>;

/// The unit a run deadline is denominated in.
///
/// `Cycles` and `Rounds` are simulated quantities: a deadline expressed
/// in them fails at exactly the same point of the schedule at any thread
/// or worker count, so they are the only kinds CI may assert on.
/// `WallMs` is host wall-clock — opt-in, inherently nondeterministic,
/// never used by any conformance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineKind {
    /// Simulated cycles (the conservative execution horizon).
    Cycles,
    /// Scheduler rounds (coordination barriers / waves).
    Rounds,
    /// Host wall-clock milliseconds. Nondeterministic; never in CI.
    WallMs,
}

impl fmt::Display for DeadlineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlineKind::Cycles => write!(f, "cycles"),
            DeadlineKind::Rounds => write!(f, "rounds"),
            DeadlineKind::WallMs => write!(f, "wall-ms"),
        }
    }
}

/// Errors raised while building or executing STeP programs.
#[derive(Debug, Clone, PartialEq)]
pub enum StepError {
    /// Producer/consumer stream shapes do not align (build-time check
    /// mirroring the symbolic frontend's verification, §4.1).
    Shape(String),
    /// The stream's data type is not accepted by the operator.
    ElemType(String),
    /// A token stream violated well-formedness (stop-token discipline).
    Malformed(String),
    /// Operator configuration is invalid (e.g. zero tile size).
    Config(String),
    /// Execution-time failure (selector out of range, buffer missing, ...).
    Exec(String),
    /// The dataflow graph made no progress before all nodes finished.
    Deadlock(String),
    /// A caught panic, carrying the panic payload's message. Raised by
    /// layers that isolate panics (`catch_unwind`) so a dying builder
    /// or executor surfaces as a typed error instead of an abort.
    Panicked(String),
    /// The scheduler exceeded its configured round budget
    /// (`SimConfig::max_rounds`) before the graph finished. Carries the
    /// counters at the blow so callers can classify the overrun as
    /// non-retryable and tests can match on it.
    RoundLimit {
        /// The configured round budget.
        limit: u64,
        /// Rounds executed when the budget blew.
        rounds: u64,
        /// Total node fires executed when the budget blew.
        fires: u64,
    },
    /// A per-run deadline expired before the graph finished.
    Deadline {
        /// The unit the deadline was denominated in.
        kind: DeadlineKind,
        /// The configured deadline.
        limit: u64,
        /// The observed value that tripped the deadline.
        at: u64,
    },
    /// The run was cancelled through a cooperative `CancelToken`.
    Cancelled,
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Shape(m) => write!(f, "shape mismatch: {m}"),
            StepError::ElemType(m) => write!(f, "element type mismatch: {m}"),
            StepError::Malformed(m) => write!(f, "malformed stream: {m}"),
            StepError::Config(m) => write!(f, "invalid configuration: {m}"),
            StepError::Exec(m) => write!(f, "execution error: {m}"),
            StepError::Deadlock(m) => write!(f, "deadlock: {m}"),
            StepError::Panicked(m) => write!(f, "panicked: {m}"),
            StepError::RoundLimit {
                limit,
                rounds,
                fires,
            } => write!(
                f,
                "round budget exceeded: {rounds} rounds (limit {limit}, {fires} fires)"
            ),
            StepError::Deadline { kind, limit, at } => {
                write!(f, "deadline exceeded: {at} {kind} (limit {limit})")
            }
            StepError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for StepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StepError::Shape("rank 2 vs 3".into());
        assert_eq!(e.to_string(), "shape mismatch: rank 2 vs 3");
        let e = StepError::Deadlock("node 4 blocked".into());
        assert!(e.to_string().contains("deadlock"));
    }

    #[test]
    fn failure_variants_display_their_counters() {
        let e = StepError::RoundLimit {
            limit: 10,
            rounds: 11,
            fires: 42,
        };
        assert_eq!(
            e.to_string(),
            "round budget exceeded: 11 rounds (limit 10, 42 fires)"
        );
        let e = StepError::Deadline {
            kind: DeadlineKind::Cycles,
            limit: 100,
            at: 128,
        };
        assert_eq!(e.to_string(), "deadline exceeded: 128 cycles (limit 100)");
        assert_eq!(StepError::Cancelled.to_string(), "cancelled");
        assert_eq!(
            StepError::Panicked("boom".into()).to_string(),
            "panicked: boom"
        );
    }
}
