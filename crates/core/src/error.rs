//! Error types shared across the STeP crates.

use std::fmt;

/// Convenience result alias for STeP operations.
pub type Result<T> = std::result::Result<T, StepError>;

/// Errors raised while building or executing STeP programs.
#[derive(Debug, Clone, PartialEq)]
pub enum StepError {
    /// Producer/consumer stream shapes do not align (build-time check
    /// mirroring the symbolic frontend's verification, §4.1).
    Shape(String),
    /// The stream's data type is not accepted by the operator.
    ElemType(String),
    /// A token stream violated well-formedness (stop-token discipline).
    Malformed(String),
    /// Operator configuration is invalid (e.g. zero tile size).
    Config(String),
    /// Execution-time failure (selector out of range, buffer missing, ...).
    Exec(String),
    /// The dataflow graph made no progress before all nodes finished.
    Deadlock(String),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Shape(m) => write!(f, "shape mismatch: {m}"),
            StepError::ElemType(m) => write!(f, "element type mismatch: {m}"),
            StepError::Malformed(m) => write!(f, "malformed stream: {m}"),
            StepError::Config(m) => write!(f, "invalid configuration: {m}"),
            StepError::Exec(m) => write!(f, "execution error: {m}"),
            StepError::Deadlock(m) => write!(f, "deadlock: {m}"),
        }
    }
}

impl std::error::Error for StepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StepError::Shape("rank 2 vs 3".into());
        assert_eq!(e.to_string(), "shape mismatch: rank 2 vs 3");
        let e = StepError::Deadlock("node 4 blocked".into());
        assert!(e.to_string().contains("deadlock"));
    }
}
