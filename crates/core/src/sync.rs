//! Poisoning-recovering lock helpers.
//!
//! The simulator and the sweep service isolate panics with
//! `catch_unwind`, which means a `Mutex` or `Condvar` can legitimately
//! be poisoned by a fault that was already converted into a typed
//! error. Every shared structure in this workspace is either discarded
//! after a failed run (per-run shard state, pooled state that only
//! parks on success) or explicitly repaired by its owner (cache slots
//! transition to a `Failed` state), so poisoning carries no information
//! here — these helpers recover the guard via
//! [`std::sync::PoisonError::into_inner`] instead of aborting the whole
//! process for a fault that was already contained.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard if a panicking holder poisoned it.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Exclusive access to `m`'s value, recovering from poisoning.
pub fn get_mut<T>(m: &mut Mutex<T>) -> &mut T {
    m.get_mut().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv`, recovering the reacquired guard from poisoning.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{AssertUnwindSafe, catch_unwind};
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_after_a_panicking_holder() {
        let m = Mutex::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
        let mut m = m;
        *get_mut(&mut m) = 9;
        assert_eq!(*lock(&m), 9);
    }
}
