//! Graph partitioning for sharded simulation.
//!
//! Splits a program graph into connected shards so the simulator can run
//! each shard's scheduler on its own worker. The cut heuristic follows the
//! §4.3 execution model: operators decouple across bounded latency-carrying
//! FIFOs, so the best places to cut are *high-slack* channels — streams
//! that carry few tokens relative to the work on either side (a routed
//! expert assignment, a load trigger), where one barrier of extra credit
//! latency is invisible. Channels carrying dense tile traffic (weight
//! streams, activation chunks) are kept inside a shard.
//!
//! The token-volume estimate comes from the symbolic shape metrics of
//! §4.2: the stream's [`StreamShape::cardinality`] with a fixed default
//! substituted for dynamic dimensions. Buffer-reference streams are never
//! cut — `Bufferize`/`Streamify` pairs share an on-chip arena, which stays
//! shard-local.
//!
//! The partition is a pure function of the graph and
//! [`PartitionCfg`] — it never depends on worker count or host timing, so
//! a simulation's committed execution order (and therefore every reported
//! metric) is reproducible at any thread count.

use crate::elem::ElemKind;
use crate::graph::{EdgeId, Graph};
use crate::shape::StreamShape;

/// Assumed extent of a dynamic or ragged dimension when estimating stream
/// volume (the partitioner only needs relative magnitudes).
const DEFAULT_DYN_EXTENT: u64 = 8;

/// Tuning knobs for [`partition`].
#[derive(Debug, Clone)]
pub struct PartitionCfg {
    /// Target number of shards. The result may have more (balance caps
    /// can stop merges early) or fewer (small graphs); every shard is a
    /// connected subgraph.
    pub target_shards: usize,
    /// Graphs with fewer nodes than this stay monolithic (one shard).
    pub min_nodes: usize,
    /// Balance slack: no shard may exceed `ceil(nodes * slack /
    /// target_shards)` nodes (buffer-edge merges excepted).
    pub balance_slack: f64,
}

impl Default for PartitionCfg {
    fn default() -> Self {
        PartitionCfg {
            target_shards: 16,
            min_nodes: 256,
            balance_slack: 1.2,
        }
    }
}

/// A partition of a graph's nodes into connected shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Shard index per node, indexed like `graph.nodes()`.
    pub shard_of: Vec<u32>,
    /// Number of shards.
    pub shards: usize,
    /// Edges whose endpoints live in different shards, ascending.
    pub cut_edges: Vec<EdgeId>,
    /// Per shard, the cut edges whose *reader* (destination) lives in
    /// that shard, ascending. These are the only channels on which a
    /// shard can receive tokens from outside, so their time floors bound
    /// how far the shard may run ahead of the global horizon without a
    /// coordination barrier (the engine's barrier-elision check).
    pub cut_ins_of: Vec<Vec<EdgeId>>,
    /// Per shard, the cut edges whose *writer* (source) lives in that
    /// shard, ascending.
    pub cut_outs_of: Vec<Vec<EdgeId>>,
    /// Estimated token volume per entry of [`Partition::cut_edges`] (the
    /// agglomeration key): low volume = high slack = a cheap cut. Kept
    /// for diagnostics and scheduling heuristics.
    pub cut_volume: Vec<u64>,
}

impl Partition {
    /// The trivial single-shard partition.
    pub fn monolithic(graph: &Graph) -> Partition {
        Partition {
            shard_of: vec![0; graph.nodes().len()],
            shards: 1,
            cut_edges: Vec::new(),
            cut_ins_of: vec![Vec::new()],
            cut_outs_of: vec![Vec::new()],
            cut_volume: Vec::new(),
        }
    }
}

/// Estimated number of tokens a stream carries: the symbolic cardinality
/// with [`DEFAULT_DYN_EXTENT`] substituted for every dynamic dimension,
/// saturating. Higher volume = stronger affinity = worse cut.
fn volume_estimate(shape: &StreamShape) -> u64 {
    let mut v: u64 = 1;
    for d in shape.dims() {
        let extent = match d.as_static() {
            Some(n) => n.max(1),
            None => DEFAULT_DYN_EXTENT,
        };
        v = v.saturating_mul(extent);
    }
    v
}

/// FNV-1a accumulation (explicitly seeded — `DefaultHasher` is randomly
/// keyed per process and would break run-to-run determinism).
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Canonical structural ranks per node: Weisfeiler–Leman-style
/// refinement seeded with each node's operator fingerprint (its `Debug`
/// form, which includes configuration such as base addresses) and folded
/// over `log n` rounds of port-ordered neighborhood hashes. Two nodes get
/// the same rank only if their rooted neighborhoods are indistinguishable
/// — so ranks are invariant under graph-isomorphic reorderings of node
/// insertion, and the partitioner's tie-breaks on them make the whole
/// partition a function of the *abstract* graph, not its encoding.
/// (Genuinely automorphic nodes share a rank and fall back to node-id
/// order — no structural comparison can observe that choice.)
fn structural_ranks(graph: &Graph) -> Vec<u32> {
    let n = graph.nodes().len();
    let seed = 0xCBF2_9CE4_8422_2325u64;
    let mut h: Vec<u64> = graph
        .nodes()
        .iter()
        .map(|nd| {
            let mut x = seed;
            // The operator fingerprint: its configuration's Debug form —
            // except sources, whose config embeds the whole
            // pre-materialized token stream (a routing trace can be the
            // bulk of the graph); their stream length is fingerprint
            // enough, and the refinement rounds fold in their consumers'
            // fingerprints anyway.
            match &nd.op {
                crate::ops::OpKind::Source(cfg) => {
                    fnv(&mut x, b"Source");
                    fnv(&mut x, &(cfg.tokens.len() as u64).to_le_bytes());
                    fnv(&mut x, &cfg.tokens_per_cycle.to_le_bytes());
                }
                op => fnv(&mut x, format!("{op:?}").as_bytes()),
            }
            x
        })
        .collect();
    let rounds = (usize::BITS - n.leading_zeros()) as usize + 1;
    for _ in 0..rounds {
        let mut next = vec![0u64; n];
        for (i, nd) in graph.nodes().iter().enumerate() {
            let mut x = h[i];
            for (dir, edges) in [(0u8, &nd.inputs), (1u8, &nd.outputs)] {
                for (port, e) in edges.iter().enumerate() {
                    let edge = graph.edge(*e);
                    let peer = if dir == 0 {
                        h[edge.src.0.0 as usize]
                    } else {
                        edge.dst.map_or(0, |(d, _)| h[d.0 as usize])
                    };
                    let mut t = seed;
                    fnv(&mut t, &[dir]);
                    fnv(&mut t, &(port as u64).to_le_bytes());
                    fnv(&mut t, &peer.to_le_bytes());
                    fnv(&mut t, &volume_estimate(&edge.shape).to_le_bytes());
                    x = x.wrapping_mul(0x0000_0100_0000_01B3) ^ t;
                }
            }
            next[i] = x;
        }
        h = next;
    }
    let mut sorted = h.clone();
    sorted.sort_unstable();
    sorted.dedup();
    h.iter()
        .map(|x| sorted.binary_search(x).expect("own hash") as u32)
        .collect()
}

struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }

    /// Unions the components of `a` and `b`; returns false if already
    /// joined. Deterministic: the lower root becomes the parent.
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        self.size[lo as usize] += self.size[hi as usize];
        true
    }
}

/// Partitions `graph` into connected shards, cutting at high-slack
/// (low-volume) channels.
///
/// Greedy agglomeration: edges are processed in descending volume order
/// (ties by structural rank of the endpoints, then port, then edge id)
/// and merged subject to the balance cap, so the cut set ends up on the
/// lowest-volume channels. Buffer-reference edges are merged
/// unconditionally first. Shard ids are assigned in order of each
/// shard's minimum node index. Tie-breaking on [`structural_ranks`]
/// makes the node-grouping invariant under permuted node insertion
/// order (for graphs without non-trivial automorphisms).
pub fn partition(graph: &Graph, cfg: &PartitionCfg) -> Partition {
    let n = graph.nodes().len();
    if n < cfg.min_nodes || cfg.target_shards <= 1 {
        return Partition::monolithic(graph);
    }
    let cap = ((n as f64) * cfg.balance_slack / cfg.target_shards as f64).ceil() as u32;
    let cap = cap.max(2);
    let mut dsu = Dsu::new(n);

    // Phase 1: arena-sharing groups are indivisible.
    for e in graph.edges() {
        if matches!(e.kind, ElemKind::Buffer { .. })
            && let Some((dst, _)) = e.dst
        {
            dsu.union(e.src.0.0, dst.0);
        }
    }

    // Phase 2: agglomerate along high-volume edges under the balance cap,
    // in an insertion-order-invariant total order.
    type EdgeKey = (u32, u16, u32, u16);
    let ranks = structural_ranks(graph);
    let mut order: Vec<(u64, EdgeKey, u32)> = graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.dst.is_some())
        .map(|(i, e)| {
            let (dst, dport) = e.dst.expect("filtered");
            (
                volume_estimate(&e.shape),
                (
                    ranks[e.src.0.0 as usize],
                    e.src.1,
                    ranks[dst.0 as usize],
                    dport,
                ),
                i as u32,
            )
        })
        .collect();
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    for (_, _, idx) in order {
        let e = &graph.edges()[idx as usize];
        let (a, b) = (e.src.0.0, e.dst.expect("filtered").0.0);
        let (ra, rb) = (dsu.find(a), dsu.find(b));
        if ra != rb && dsu.size[ra as usize] + dsu.size[rb as usize] <= cap {
            dsu.union(ra, rb);
        }
    }

    // Dense shard ids in order of minimum node index.
    let mut shard_of = vec![u32::MAX; n];
    let mut shards = 0u32;
    for i in 0..n as u32 {
        let r = dsu.find(i) as usize;
        if shard_of[r] == u32::MAX {
            shard_of[r] = shards;
            shards += 1;
        }
        shard_of[i as usize] = shard_of[r];
    }
    if shards == 1 {
        return Partition::monolithic(graph);
    }
    let mut cut_edges = Vec::new();
    let mut cut_volume = Vec::new();
    let mut cut_ins_of = vec![Vec::new(); shards as usize];
    let mut cut_outs_of = vec![Vec::new(); shards as usize];
    for (i, e) in graph.edges().iter().enumerate() {
        let Some((dst, _)) = e.dst else { continue };
        let (ws, rs) = (shard_of[e.src.0.0 as usize], shard_of[dst.0 as usize]);
        if ws == rs {
            continue;
        }
        cut_edges.push(EdgeId(i as u32));
        cut_volume.push(volume_estimate(&e.shape));
        cut_outs_of[ws as usize].push(EdgeId(i as u32));
        cut_ins_of[rs as usize].push(EdgeId(i as u32));
    }
    Partition {
        shard_of,
        shards: shards as usize,
        cut_edges,
        cut_ins_of,
        cut_outs_of,
        cut_volume,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::Elem;
    use crate::graph::GraphBuilder;
    use crate::ops::LinearLoadCfg;
    use crate::token;

    /// Many independent load->store pipelines off a shared trigger fork:
    /// the natural shardable shape (one pipeline per shard).
    fn fanout_graph(ways: u32) -> Graph {
        let mut g = GraphBuilder::new();
        let trig = g.unit_source(1);
        let forks = g.fork(&trig, ways).unwrap();
        for (k, f) in forks.iter().enumerate() {
            let tiles = g
                .linear_offchip_load(
                    f,
                    LinearLoadCfg::new(k as u64 * 0x10000, (64, 256), (64, 64)),
                )
                .unwrap();
            g.linear_offchip_store(&tiles, 0x100_0000 + k as u64 * 0x10000)
                .unwrap();
        }
        g.finish()
    }

    #[test]
    fn small_graphs_stay_monolithic() {
        let g = fanout_graph(4);
        let p = partition(&g, &PartitionCfg::default());
        assert_eq!(p.shards, 1);
        assert!(p.cut_edges.is_empty());
    }

    #[test]
    fn fanout_splits_into_connected_shards_cut_at_triggers() {
        let g = fanout_graph(128);
        let cfg = PartitionCfg {
            min_nodes: 16,
            ..PartitionCfg::default()
        };
        let p = partition(&g, &cfg);
        assert!(p.shards > 1, "shards {}", p.shards);
        // Every cut edge is a trigger (unit) stream, never a tile stream.
        for e in &p.cut_edges {
            let vol = volume_estimate(&g.edge(*e).shape);
            assert!(vol <= 4, "cut a volume-{vol} edge");
        }
        // Each load stays with its store (they share high-volume tile
        // edges).
        for (i, node) in g.nodes().iter().enumerate() {
            for e in &node.outputs {
                let edge = g.edge(*e);
                if volume_estimate(&edge.shape) > 4
                    && let Some((dst, _)) = edge.dst
                {
                    assert_eq!(p.shard_of[i], p.shard_of[dst.0 as usize]);
                }
            }
        }
    }

    #[test]
    fn cut_metadata_is_consistent_with_cut_edges() {
        let g = fanout_graph(128);
        let cfg = PartitionCfg {
            min_nodes: 16,
            ..PartitionCfg::default()
        };
        let p = partition(&g, &cfg);
        assert_eq!(p.cut_volume.len(), p.cut_edges.len());
        assert_eq!(p.cut_ins_of.len(), p.shards);
        assert_eq!(p.cut_outs_of.len(), p.shards);
        let mut ins: Vec<EdgeId> = p.cut_ins_of.iter().flatten().copied().collect();
        let mut outs: Vec<EdgeId> = p.cut_outs_of.iter().flatten().copied().collect();
        ins.sort();
        outs.sort();
        assert_eq!(ins, p.cut_edges);
        assert_eq!(outs, p.cut_edges);
        for (s, edges) in p.cut_ins_of.iter().enumerate() {
            for e in edges {
                let (dst, _) = g.edge(*e).dst.unwrap();
                assert_eq!(p.shard_of[dst.0 as usize] as usize, s);
            }
        }
        for (s, edges) in p.cut_outs_of.iter().enumerate() {
            for e in edges {
                assert_eq!(p.shard_of[g.edge(*e).src.0.0 as usize] as usize, s);
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let cfg = PartitionCfg {
            min_nodes: 16,
            ..PartitionCfg::default()
        };
        let a = partition(&fanout_graph(64), &cfg);
        let b = partition(&fanout_graph(64), &cfg);
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.cut_edges, b.cut_edges);
    }

    #[test]
    fn buffer_edges_are_never_cut() {
        let mut g = GraphBuilder::new();
        // Dozens of bufferize/streamify pairs, forced small cap.
        for k in 0..24u64 {
            let groups: Vec<Vec<Elem>> =
                vec![vec![Elem::Tile(crate::tile::Tile::phantom(4, 4)); 2]; 2];
            let s = g
                .source(
                    token::rank1_from_groups(&groups),
                    StreamShape::fixed(&[2, 2]),
                    ElemKind::tile(4, 4),
                )
                .unwrap();
            let bufs = g.bufferize(&s, 1).unwrap();
            let r = g
                .source(
                    token::rank1_from_groups(&[vec![Elem::Unit], vec![Elem::Unit]]),
                    StreamShape::fixed(&[2, 1]),
                    ElemKind::Unit,
                )
                .unwrap();
            let out = g
                .streamify(&bufs, &r, crate::ops::StreamifyCfg::default())
                .unwrap();
            g.linear_offchip_store(&out, k * 0x1000).ok();
        }
        let graph = g.finish();
        let p = partition(
            &graph,
            &PartitionCfg {
                min_nodes: 8,
                target_shards: 64,
                balance_slack: 1.0,
            },
        );
        for (i, e) in graph.edges().iter().enumerate() {
            if matches!(e.kind, ElemKind::Buffer { .. }) {
                let (a, b) = (e.src.0, e.dst.unwrap().0);
                assert_eq!(
                    p.shard_of[a.0 as usize], p.shard_of[b.0 as usize],
                    "buffer edge {i} cut"
                );
            }
        }
    }
}
